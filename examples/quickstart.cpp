/**
 * @file
 * Quickstart: encode one cache block with every scheme and walk
 * through the paper's Fig. 3 flow — approximation, compression to the
 * network representation, packetization, and decode at the far end.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/codec_factory.h"
#include "noc/packet.h"

using namespace approxnoc;

int
main()
{
    // A 64 B cache block of float32 data with strong value locality:
    // a few exact repeats plus near values, annotated approximable.
    DataBlock block = DataBlock::fromFloats(
        {3.14159f, 3.14159f, 3.14160f, 3.14100f,
         2.71828f, 2.71828f, 2.71801f, 0.0f,
         0.0f, 0.0f, 1.5f, 1.5f,
         1.49995f, 100.25f, 100.25f, 100.2502f},
        /*approximable=*/true);

    std::printf("precise block (%zu words, %zu bits):\n  %s\n\n",
                block.size(), block.sizeBits(), block.toString().c_str());

    CodecConfig cfg;
    cfg.n_nodes = 2;              // one sender, one receiver
    cfg.error_threshold_pct = 10; // Table 1 default

    for (Scheme scheme : kAllSchemes) {
        auto codec = CodecFactory::create(scheme, cfg);

        // Dictionary schemes learn online: warm them up by sending the
        // block a few times (decoders promote patterns and notify the
        // encoder after the update latency).
        Cycle t = 0;
        for (int i = 0; i < 4; ++i) {
            EncodedBlock warm = codec->encodeBlock(block, 0, 1, t);
            codec->decodeBlock(warm, 0, 1, t);
            t += 50;
        }

        EncodedBlock enc = codec->encodeBlock(block, 0, 1, t);
        DataBlock out = codec->decodeBlock(enc, 0, 1, t);
        unsigned flits = 1 + payload_flits(enc.bits(), 64);

        std::printf("%-8s : NR %4zu bits -> %u flits  "
                    "(exact %zu, approx %zu, raw %zu words)  "
                    "rel.err %.4f%%\n",
                    to_string(scheme).c_str(), enc.bits(), flits,
                    enc.exactCompressedWords(), enc.approximatedWords(),
                    enc.uncompressedWords(),
                    100.0 * block_relative_error(block, out));
    }

    std::printf("\nA baseline data packet needs %u flits; every scheme "
                "above shrinks it while\nkeeping each word within the "
                "10%% error threshold (exactly 0 for the\nnon-VAXX "
                "schemes).\n",
                1 + payload_flits(block.sizeBits(), 64));
    return 0;
}
