/**
 * @file
 * Image transmission over the NoC: a procedural grayscale image is
 * sent block-by-block from a producer tile to a consumer tile under
 * FP-VAXX, the motivating image/video use case of the paper. Reports
 * flits saved, PSNR of the received image, and writes before/after
 * PGMs to results/.
 *
 * Usage: ./build/examples/image_transmission [--threshold=10]
 */
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/cli.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"

using namespace approxnoc;

namespace {

constexpr unsigned kW = 128, kH = 128;

std::vector<float>
make_image()
{
    // Continuous luminance values: dense mantissas, so exact matching
    // alone gets little traction and VAXX has real work to do.
    std::vector<float> img(kW * kH);
    for (unsigned y = 0; y < kH; ++y) {
        for (unsigned x = 0; x < kW; ++x) {
            double v = 120 + 60 * std::sin(x * 0.10) * std::cos(y * 0.07) +
                       40 * std::exp(-(std::pow(x - 80.0, 2) +
                                       std::pow(y - 40.0, 2)) /
                                     600.0);
            img[y * kW + x] = static_cast<float>(std::clamp(v, 0.0, 255.0));
        }
    }
    return img;
}

std::vector<std::uint8_t>
quantize(const std::vector<float> &img)
{
    std::vector<std::uint8_t> out(img.size());
    for (std::size_t i = 0; i < img.size(); ++i)
        out[i] = static_cast<std::uint8_t>(std::clamp(img[i], 0.0f, 255.0f));
    return out;
}

void
write_pgm(const std::string &path, const std::vector<std::uint8_t> &img)
{
    std::ofstream f(path, std::ios::binary);
    f << "P5\n" << kW << " " << kH << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data()),
            static_cast<std::streamsize>(img.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    double threshold = args.getDouble("threshold", 10.0);

    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = threshold;
    auto codec = CodecFactory::create(Scheme::FpVaxx, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    auto img = make_image();
    std::vector<float> received(img.size(), 0.0f);
    std::size_t delivered_blocks = 0;

    // Reassemble arriving blocks in delivery order (16 pixels/word
    // block = 16 words x 1 pixel per word keeps the math simple).
    // Pixels travel as float32 luminance (a typical image-pipeline
    // intermediate), which is where mantissa approximation pays off.
    net.setDeliveryCallback([&](const PacketPtr &p, Cycle) {
        if (!p->carries_block)
            return;
        std::size_t base = p->id == 0 ? 0 : (p->id - 1) * 16;
        for (std::size_t i = 0;
             i < p->delivered.size() && base + i < received.size(); ++i) {
            received[base + i] =
                std::clamp(p->delivered.floatAt(i), 0.0f, 255.0f);
        }
        ++delivered_blocks;
    });

    const NodeId producer = 0, consumer = 30; // opposite corners
    for (std::size_t base = 0; base < img.size(); base += 16) {
        std::vector<float> words;
        for (std::size_t i = 0; i < 16; ++i)
            words.push_back(img[base + i]);
        auto pkt = net.makeDataPacket(producer, consumer,
                                      DataBlock::fromFloats(words, true));
        net.inject(pkt, sim.now());
        sim.run(2); // stream faster than the link drains: backlogged
    }
    bool ok = sim.runUntil([&] { return net.drained(); }, 1000000);
    Cycle makespan = sim.now();

    double mse = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i) {
        double d = double(img[i]) - double(received[i]);
        mse += d * d;
    }
    mse /= static_cast<double>(img.size());
    double psnr = mse > 0 ? 10.0 * std::log10(255.0 * 255.0 / mse) : 1e9;

    std::uint64_t flits = net.dataFlitsInjected();
    std::uint64_t baseline_flits = (img.size() / 16) * 9;

    std::printf("image transmission over 4x4 cmesh, FP-VAXX @ %.0f%%\n",
                threshold);
    std::printf("  blocks delivered : %zu (%s)\n", delivered_blocks,
                ok ? "drained" : "TIMEOUT");
    std::printf("  data flits       : %llu vs %llu baseline (%.1f%% saved)\n",
                static_cast<unsigned long long>(flits),
                static_cast<unsigned long long>(baseline_flits),
                100.0 * (1.0 - double(flits) / double(baseline_flits)));
    std::printf("  makespan         : %llu cycles (baseline needs >= %llu "
                "just to serialize)\n",
                static_cast<unsigned long long>(makespan),
                static_cast<unsigned long long>(baseline_flits));
    if (mse > 0)
        std::printf("  PSNR             : %.2f dB\n", psnr);
    else
        std::printf("  PSNR             : inf (lossless on this image)\n");

    std::filesystem::create_directories("results");
    write_pgm("results/image_sent.pgm", quantize(img));
    write_pgm("results/image_received.pgm", quantize(received));
    std::printf("  images           : results/image_sent.pgm, "
                "results/image_received.pgm\n");
    return ok ? 0 : 1;
}
