/**
 * @file
 * Trace workbench: record a communication trace from any benchmark
 * kernel, save/load it in the textual trace format, summarize it, and
 * replay it through the NoC under a chosen scheme — the full
 * trace-driven methodology as a command-line tool.
 *
 * Usage:
 *   trace_tool record --benchmark=blackscholes --out=bs.trace
 *   trace_tool info --in=bs.trace
 *   trace_tool replay --in=bs.trace --scheme=FP-VAXX [--load=0.04]
 */
#include <cstdio>
#include <map>
#include <sstream>

#include "common/cli.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/replay.h"
#include "traffic/trace.h"
#include "workloads/workload.h"

using namespace approxnoc;

namespace {

int
cmd_record(const CliArgs &args)
{
    std::string bm = args.getString("benchmark", "blackscholes");
    std::string out = args.getString("out", bm + ".trace");
    CacheConfig ccfg;
    ApproxCacheSystem mem(ccfg, nullptr);
    CommTrace trace;
    mem.setTraceSink(&trace);
    make_workload(bm, static_cast<unsigned>(args.getInt("scale", 1)))
        ->run(mem);
    trace.save(out);
    std::printf("recorded %zu records (%zu blocks, %llu cycles) from %s "
                "-> %s\n",
                trace.size(), trace.blocks().size(),
                static_cast<unsigned long long>(trace.duration()),
                bm.c_str(), out.c_str());
    return 0;
}

int
cmd_info(const CliArgs &args)
{
    std::string in = args.getString("in", "");
    if (in.empty()) {
        std::fprintf(stderr, "trace_tool info --in=<file>\n");
        return 1;
    }
    CommTrace trace = CommTrace::load(in);
    std::map<DataType, std::size_t> type_blocks;
    std::size_t approximable = 0;
    for (const auto &b : trace.blocks()) {
        ++type_blocks[b.type()];
        approximable += b.approximable() ? 1 : 0;
    }
    std::printf("%s:\n", in.c_str());
    std::printf("  records        : %zu (%.1f%% data)\n", trace.size(),
                100.0 * trace.dataPacketRatio());
    std::printf("  duration       : %llu cycles\n",
                static_cast<unsigned long long>(trace.duration()));
    std::printf("  blocks         : %zu (%.1f%% annotated approximable)\n",
                trace.blocks().size(),
                trace.blocks().empty()
                    ? 0.0
                    : 100.0 * approximable / trace.blocks().size());
    for (auto [t, n] : type_blocks)
        std::printf("    %-8s : %zu\n", to_string(t).c_str(), n);
    return 0;
}

int
cmd_replay(const CliArgs &args)
{
    std::string in = args.getString("in", "");
    if (in.empty()) {
        std::fprintf(stderr, "trace_tool replay --in=<file> "
                             "[--scheme=FP-VAXX]\n");
        return 1;
    }
    CommTrace trace = CommTrace::load(in);
    Scheme scheme = scheme_from_string(args.getString("scheme", "FP-VAXX"));
    double load = args.getDouble("load", 0.04);

    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = args.getDouble("threshold", 10.0);
    auto codec = CodecFactory::create(scheme, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    std::uint64_t flits = 0;
    for (const auto &r : trace.records())
        flits += r.cls == PacketClass::Data ? 9 : 1;
    double natural = trace.duration()
                         ? static_cast<double>(flits) /
                               (static_cast<double>(trace.duration()) *
                                ncfg.nodes())
                         : 0.0;
    TraceReplay replay(net, trace, natural > 0 ? natural / load : 1.0,
                       args.getDouble("approx-ratio", 0.75));
    sim.add(&replay);
    bool ok = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));

    std::printf("replayed %s under %s (%s)\n\n", in.c_str(),
                to_string(scheme).c_str(), ok ? "drained" : "TIMEOUT");
    std::ostringstream os;
    net.dumpStats(os, sim.now());
    std::fputs(os.str().c_str(), stdout);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    std::string cmd =
        args.positional().empty() ? "help" : args.positional()[0];
    if (cmd == "record")
        return cmd_record(args);
    if (cmd == "info")
        return cmd_info(args);
    if (cmd == "replay")
        return cmd_replay(args);
    std::printf("usage: trace_tool <record|info|replay> [flags]\n"
                "  record --benchmark=<name> --out=<file> [--scale=N]\n"
                "  info   --in=<file>\n"
                "  replay --in=<file> [--scheme=S] [--load=L] "
                "[--threshold=T]\n");
    return cmd == "help" ? 0 : 1;
}
