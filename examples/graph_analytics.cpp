/**
 * @file
 * Big-data graph analytics with approximate communication: runs the
 * SSCA2 betweenness-centrality kernel through the multicore cache
 * model with DI-VAXX on the response path and compares the identified
 * key entities against the precise run — the paper's headline big-data
 * use case.
 *
 * Usage: ./build/examples/graph_analytics [--threshold=10] [--scale=1]
 */
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/cli.h"
#include "core/codec_factory.h"
#include "workloads/kernels.h"

using namespace approxnoc;

namespace {

WorkloadResult
run(Scheme scheme, double threshold, unsigned scale)
{
    CacheConfig ccfg;
    CodecConfig cc;
    cc.n_nodes = ccfg.n_nodes;
    cc.error_threshold_pct = threshold;
    auto codec = CodecFactory::create(scheme, cc);
    ApproxCacheSystem mem(ccfg, codec.get());
    Ssca2Workload wl(scale);
    return wl.run(mem);
}

std::vector<std::size_t>
top_k(const std::vector<double> &scores, std::size_t k)
{
    std::vector<std::size_t> idx(scores.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](std::size_t a, std::size_t b) {
                          return scores[a] > scores[b];
                      });
    idx.resize(k);
    return idx;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    double threshold = args.getDouble("threshold", 10.0);
    auto scale = static_cast<unsigned>(args.getInt("scale", 1));

    std::printf("SSCA2 betweenness centrality (R-MAT small world), "
                "16-core cache model\n\n");

    WorkloadResult precise = run(Scheme::Baseline, 0.0, scale);
    WorkloadResult approx = run(Scheme::FpVaxx, threshold, scale);

    Ssca2Workload metric(scale);
    double err = metric.outputError(precise, approx);

    const std::size_t k = 10;
    auto tp = top_k(precise.output, k);
    auto ta = top_k(approx.output, k);
    std::size_t overlap = 0;
    for (std::size_t v : ta)
        overlap += std::count(tp.begin(), tp.end(), v) ? 1 : 0;

    std::printf("top-%zu key entities (precise vs FP-VAXX @ %.0f%%):\n",
                k, threshold);
    std::printf("  %-6s %-22s %-22s\n", "rank", "precise (node: BC)",
                "approximate (node: BC)");
    for (std::size_t i = 0; i < k; ++i) {
        std::printf("  %-6zu %4zu: %-15.1f %4zu: %-15.1f\n", i + 1, tp[i],
                    precise.output[tp[i]], ta[i], approx.output[ta[i]]);
    }
    std::printf("\n  top-%zu overlap          : %zu/%zu\n", k, overlap, k);
    std::printf("  pair-wise BC error      : %.3f%%\n", err * 100.0);
    double speedup = 100.0 * (1.0 - double(approx.exec_cycles) /
                                        double(precise.exec_cycles));
    std::printf("  exec cycles             : %llu -> %llu (%+.1f%%)\n",
                static_cast<unsigned long long>(precise.exec_cycles),
                static_cast<unsigned long long>(approx.exec_cycles),
                speedup);
    return overlap >= k / 2 ? 0 : 1;
}
