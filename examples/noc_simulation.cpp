/**
 * @file
 * Standalone NoC simulation: sweep synthetic injection rates on the
 * paper's 4x4 concentrated mesh and print the load-latency curve for a
 * chosen scheme and traffic pattern — the classic network-evaluation
 * workflow, exercised end to end through the public API.
 *
 * Usage: ./build/examples/noc_simulation [--scheme=FP-VAXX]
 *        [--pattern=uniform] [--cycles=20000] [--type=float] [--stats]
 */
#include <cstdio>
#include <sstream>

#include "common/cli.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    Scheme scheme = scheme_from_string(args.getString("scheme", "FP-VAXX"));
    TrafficPattern pattern =
        pattern_from_string(args.getString("pattern", "uniform"));
    auto cycles = static_cast<Cycle>(args.getInt("cycles", 20000));
    DataType type = args.getString("type", "float") == "int"
                        ? DataType::Int32
                        : DataType::Float32;
    bool want_stats = args.getBool("stats", false);

    std::printf("%s, %s traffic, value-local %s payloads\n\n",
                to_string(scheme).c_str(), to_string(pattern).c_str(),
                to_string(type).c_str());
    std::printf("%-8s %-12s %-10s %-12s\n", "rate", "latency", "delivered",
                "data-flits");

    for (double rate = 0.05; rate <= 0.66; rate += 0.10) {
        NocConfig ncfg;
        CodecConfig cc;
        cc.n_nodes = ncfg.nodes();
        auto codec = CodecFactory::create(scheme, cc);
        Network net(ncfg, codec.get());
        Simulator sim;
        net.attach(sim);

        SyntheticConfig tc;
        tc.injection_rate = rate;
        tc.pattern = pattern;
        SyntheticDataProvider provider(type, 16, 0.9, 3.0, 11, 0.7, 8);
        SyntheticTraffic gen(net, tc, provider);
        sim.add(&gen);
        sim.run(cycles);

        double lat = net.stats().total_lat.mean();
        bool sat = net.stats().packets_delivered.value() <
                       gen.packetsOffered() * 7 / 10 ||
                   lat > 300;
        std::printf("%-8.2f %-12s %-10llu %-12llu\n", rate,
                    sat ? "saturated" : fmt(lat, 2).c_str(),
                    static_cast<unsigned long long>(
                        net.stats().packets_delivered.value()),
                    static_cast<unsigned long long>(net.dataFlitsInjected()));
        if (want_stats) {
            std::printf("\n");
            std::ostringstream os;
            net.dumpStats(os, sim.now());
            std::fputs(os.str().c_str(), stdout);
            std::printf("\n");
        }
        if (sat)
            break;
    }
    return 0;
}
