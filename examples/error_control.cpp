/**
 * @file
 * Online data-error control: a QoS loop watches the data error the
 * network actually incurs and retunes the VAXX error threshold at run
 * time (AIMD), keeping quality under an application target while
 * harvesting as much compression as that target permits — the
 * "online data error control mechanism" of the paper's abstract.
 *
 * Usage: ./build/examples/error_control [--target=0.2] [--initial=30]
 */
#include <cstdio>

#include "common/cli.h"
#include "core/codec_factory.h"
#include "noc/qos_loop.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    double target = args.getDouble("target", 0.2);   // mean data error %
    double initial = args.getDouble("initial", 30.0); // threshold %

    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = initial;
    auto codec = CodecFactory::create(Scheme::FpVaxx, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    SyntheticConfig tc;
    tc.injection_rate = 0.15;
    tc.data_packet_ratio = 0.6;
    SyntheticDataProvider provider(DataType::Int32, 16, 0.95, 4.0, 9, 0.6,
                                   8);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);

    ErrorControlLoop loop(net, QosController(target, initial), 1000);
    sim.add(&loop);

    std::printf("FP-VAXX with online error control "
                "(target %.2f%% mean data error)\n\n", target);
    std::printf("%-8s %-12s %-14s %-12s\n", "cycle", "threshold",
                "window_err(%)", "compr_ratio");

    std::uint64_t last_blocks = 0;
    double last_err = 0.0;
    for (int step = 0; step < 12; ++step) {
        sim.run(5000);
        const QualityTracker &q = net.stats().quality;
        double window_err =
            q.blocks() > last_blocks
                ? 100.0 * (q.errorSum() - last_err) /
                      static_cast<double>(q.blocks() - last_blocks)
                : 0.0;
        last_blocks = q.blocks();
        last_err = q.errorSum();
        std::printf("%-8llu %-12.2f %-14.4f %-12.3f\n",
                    static_cast<unsigned long long>(sim.now()),
                    loop.controller().threshold(), window_err,
                    q.compressionRatio());
    }

    std::printf("\nthreshold adjustments: %llu, violations: %llu, "
                "mean window error %.4f%% (target %.2f%%)\n",
                static_cast<unsigned long long>(loop.adjustments()),
                static_cast<unsigned long long>(
                    loop.controller().violations()),
                loop.meanWindowErrorPct(), target);
    return 0;
}
