/**
 * @file
 * Plug-and-play demonstration (paper Sec. 3: "VAXX can be used in the
 * manner of a plug and play module for any underlying NoC data
 * compression mechanism"): implements a third compression scheme —
 * base-delta encoding after Zhan et al. [36] — as a user-defined
 * CodecSystem, adds VAXX-style approximation in front of it, and runs
 * it through the unmodified Network against the built-in schemes.
 *
 * Usage: ./build/examples/custom_compressor
 */
#include <cstdio>
#include <memory>

#include "approx/avcl.h"
#include "common/bits.h"
#include "common/rng.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

/**
 * Base-delta compression: if every word of the block sits within a
 * narrow band around the block's first word, transmit the base plus
 * small deltas. An optional AVCL pass first zeroes each word's
 * don't-care bits so more words fall inside the band.
 */
class BaseDeltaCodec : public CodecSystem
{
  public:
    explicit BaseDeltaCodec(double threshold_pct)
        : avcl_(ErrorModel(threshold_pct))
    {}

    Scheme scheme() const override { return Scheme::Baseline; /* custom */ }

    EncodedBlock
    encode(const DataBlock &block, NodeId, NodeId, Cycle) override
    {
        noteEncoded(block.size());
        const bool approx_ok =
            block.approximable() && block.type() != DataType::Raw &&
            avcl_.errorModel().enabled();

        EncodedBlock enc;
        if (block.size() == 0)
            return enc;

        // Candidate words after optional approximation.
        std::vector<Word> cand(block.size());
        std::vector<bool> approximated(block.size(), false);
        for (std::size_t i = 0; i < block.size(); ++i) {
            Word w = block.word(i);
            if (approx_ok) {
                auto d = avcl_.analyze(w, block.type());
                if (!d.bypass) {
                    Word zeroed = w & ~low_mask32(d.dont_care_bits);
                    approximated[i] = zeroed != w;
                    w = zeroed;
                }
            }
            cand[i] = w;
        }

        // Adaptive delta width: the widest delta in the block decides
        // how many bits every delta needs. Zeroing don't-care bits can
        // shrink the spread and thus the whole block.
        Word base = cand[0];
        std::uint64_t max_delta = 0;
        for (Word w : cand)
            max_delta = std::max(max_delta, abs_diff_unsigned(w, base));
        unsigned delta_bits =
            max_delta == 0 ? 1 : log2_ceil(max_delta + 1) + 1; // sign bit
        bool fits = delta_bits <= 20;

        for (std::size_t i = 0; i < cand.size(); ++i) {
            EncodedWord ew;
            ew.decoded = fits ? cand[i] : block.word(i);
            ew.approximated = fits && approximated[i];
            ew.approx_count = ew.approximated ? 1 : 0;
            if (fits) {
                ew.kind = 1;
                // Word 0 carries the base and the 5-bit width field.
                ew.bits = i == 0 ? 1 + 32 + 5
                                 : 1 + static_cast<std::uint16_t>(delta_bits);
            } else {
                ew.kind = 0;
                ew.bits = 1 + 32;
                ew.uncompressed = true;
            }
            ew.payload = ew.decoded;
            enc.append(ew);
        }
        enc.setMeta(block.type(), block.approximable());
        return enc;
    }

    DataBlock
    decode(const EncodedBlock &enc, NodeId, NodeId, Cycle) override
    {
        noteDecoded(enc.wordCount());
        std::vector<Word> ws;
        for (const auto &w : enc.words())
            ws.push_back(w.decoded);
        return DataBlock(std::move(ws), enc.type(), enc.approximable());
    }

  private:
    Avcl avcl_;
};

/**
 * Blocks whose words cluster around a per-block base value — sensor or
 * pointer-array style data, base-delta's sweet spot.
 */
class ClusteredProvider : public DataProvider
{
  public:
    DataBlock
    next(NodeId) override
    {
        Word base = 1u << (10 + rng_.next(14));
        std::vector<Word> ws(16);
        for (auto &w : ws) {
            auto jitter =
                static_cast<std::int32_t>(rng_.range(-4000, 4000));
            w = base + static_cast<Word>(jitter);
        }
        return DataBlock(std::move(ws), DataType::Int32, true);
    }

  private:
    Rng rng_{77};
};

double
run(CodecSystem *codec, const char *name)
{
    NocConfig ncfg;
    Network net(ncfg, codec);
    Simulator sim;
    net.attach(sim);
    SyntheticConfig tc;
    tc.injection_rate = 0.25;
    tc.data_packet_ratio = 0.5;
    ClusteredProvider provider;
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);
    sim.run(20000);
    gen.setEnabled(false);
    sim.runUntil([&] { return net.drained(); }, 200000);
    double lat = net.stats().total_lat.mean();
    std::printf("  %-22s latency %7.2f   data flits %8llu   "
                "compr ratio %.2f\n",
                name, lat,
                static_cast<unsigned long long>(net.dataFlitsInjected()),
                net.stats().quality.compressionRatio());
    return lat;
}

} // namespace

int
main()
{
    std::printf("plug-and-play: a user-defined base-delta codec (with and "
                "without VAXX)\nagainst the built-in schemes, same network, "
                "same traffic:\n\n");

    CodecConfig cc;
    cc.n_nodes = NocConfig{}.nodes();

    auto baseline = CodecFactory::create(Scheme::Baseline, cc);
    auto fpvaxx = CodecFactory::create(Scheme::FpVaxx, cc);
    BaseDeltaCodec bd_exact(0.0);
    BaseDeltaCodec bd_vaxx(10.0);

    run(baseline.get(), "Baseline");
    run(fpvaxx.get(), "FP-VAXX (built-in)");
    double exact = run(&bd_exact, "Base-Delta (custom)");
    double vaxx = run(&bd_vaxx, "BD-VAXX (custom+AVCL)");

    std::printf("\nVAXX in front of the custom codec changes latency by "
                "%.1f%% — no changes to\nthe network or NI code were "
                "needed.\n",
                100.0 * (vaxx - exact) / exact);
    return 0;
}
