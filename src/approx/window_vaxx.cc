#include "approx/window_vaxx.h"

#include <algorithm>
#include <vector>

#include "common/arena.h"
#include "common/bits.h"

namespace approxnoc {

EncodedBlock
WindowVaxxCodec::encode(const DataBlock &block, NodeId src, NodeId dst, Cycle)
{
    return encodeImpl(block, src, dst, nullptr);
}

EncodedBlock
WindowVaxxCodec::encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle, Arena &arena)
{
    return encodeImpl(block, src, dst, &arena);
}

EncodedBlock
WindowVaxxCodec::encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                            std::pmr::memory_resource *mr)
{
    noteEncoded(block.size());
    const bool approx_ok = block.approximable() &&
                           block.type() != DataType::Raw &&
                           model_.enabled();
    last_spent_ = 0.0;
    if (!approx_ok) {
        EncodedBlock enc =
            fpc_encode_block(block, [](std::size_t) { return 0u; }, mr);
        noteBlockEncoded(enc);
        return enc;
    }

    // Cumulative budget in "percent-words": each word nominally
    // contributes thresholdPct; exact matches return theirs to the
    // pool. The per-word draw is capped so the budget spreads.
    double budget = model_.thresholdPct() * static_cast<double>(block.size());
    const double cap = model_.thresholdPct() * per_word_cap_;
    double spent = 0.0;

    // Allocate the budget greedily in word order, once per word (the
    // block encoder may probe a word more than once while forming
    // zero runs, so the masks are fixed up front).
    std::vector<unsigned> ks(block.size(), 0);
    for (std::size_t i = 0; i < block.size(); ++i) {
        double allowance = std::min(cap, budget);
        if (allowance <= 0.0)
            continue;
        ErrorModel word_model(std::min(allowance, 100.0), model_.mode());
        ApproxDecision d =
            avcl_analyze(word_model, block.word(i), block.type());
        if (d.bypass)
            continue;

        // Charge the worst error the mask can incur: the candidate's
        // low bits can land anywhere in [0, mask], so the extreme
        // deviations are all-zeros and all-ones. Charging that maximum
        // keeps the window guarantee independent of which pattern the
        // matcher ends up choosing.
        Word mask = low_mask32(d.dont_care_bits);
        double worst =
            100.0 * std::max(avcl_relative_error(block.word(i),
                                                 block.word(i) & ~mask,
                                                 block.type()),
                             avcl_relative_error(block.word(i),
                                                 block.word(i) | mask,
                                                 block.type()));
        if (worst > allowance + 1e-9)
            continue; // conservative: never overdraw
        budget -= worst;
        spent += worst;
        ks[i] = d.dont_care_bits;
    }

    EncodedBlock enc = fpc_encode_block(
        block, [&](std::size_t i) { return ks[i]; }, mr);
    last_spent_ = spent;
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

DataBlock
WindowVaxxCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, ws.data()));
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

DecodedSpan
WindowVaxxCodec::decodeSpan(const EncodedBlock &enc, NodeId, NodeId, Cycle,
                            Arena &arena)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    Word *buf = arena.alloc<Word>(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, buf));
    return DecodedSpan{buf, enc.wordCount(), enc.type(),
                       enc.approximable()};
}

} // namespace approxnoc
