/**
 * @file
 * The VAXX error-range computation (paper Sec. 3.2). Given an error
 * threshold e%, the number of low-order bits of a value that can be
 * treated as don't cares is derived from
 *     error_range = value * e / 100
 * which the hardware approximates with a right shift by
 * ceil(log2(100/e)) bits — conservative (the shift never over-estimates
 * the range), multiplier-free, and the paper's headline trick. Both the
 * shift and the exact multiply are implemented so their effect can be
 * ablated.
 */
#ifndef APPROXNOC_APPROX_ERROR_MODEL_H
#define APPROXNOC_APPROX_ERROR_MODEL_H

#include <cstdint>

#include "common/types.h"

namespace approxnoc {

/** How the error range is computed from the value magnitude. */
enum class ErrorRangeMode : std::uint8_t {
    Shift, ///< value >> ceil(log2(100/e)) — the paper's cheap logic
    Exact, ///< floor(value * e / 100) — reference multiplier datapath
};

/**
 * Error-threshold policy shared by the AVCL and the APCL. Immutable
 * after construction; the framework swaps instances to change the
 * threshold at run time (paper: threshold is compiler-set and can be
 * adjusted dynamically).
 */
class ErrorModel
{
  public:
    /**
     * @param threshold_pct allowed relative error e in percent (> 0
     *        enables approximation; 0 disables it entirely).
     * @param mode shift-based (default, hardware) or exact multiply.
     */
    explicit ErrorModel(double threshold_pct,
                        ErrorRangeMode mode = ErrorRangeMode::Shift);

    double thresholdPct() const { return threshold_pct_; }
    ErrorRangeMode mode() const { return mode_; }

    /** True when the threshold permits any approximation at all. */
    bool enabled() const { return threshold_pct_ > 0.0; }

    /** The precomputed shift amount ceil(log2(100/e)). */
    unsigned shiftBits() const { return shift_bits_; }

    /** Largest absolute deviation allowed for a value of @p magnitude. */
    std::uint64_t errorRange(std::uint64_t magnitude) const;

    /**
     * Number of low-order don't-care bits k for @p magnitude: the
     * largest k with 2^k - 1 <= errorRange(magnitude), so flipping any
     * of the k low bits stays within the allowed range.
     */
    unsigned dontCareBits(std::uint64_t magnitude) const;

  private:
    double threshold_pct_;
    ErrorRangeMode mode_;
    unsigned shift_bits_;
};

} // namespace approxnoc

#endif // APPROXNOC_APPROX_ERROR_MODEL_H
