#include "approx/error_model.h"

#include <cmath>

#include "common/bits.h"
#include "common/log.h"

namespace approxnoc {

ErrorModel::ErrorModel(double threshold_pct, ErrorRangeMode mode)
    : threshold_pct_(threshold_pct), mode_(mode)
{
    ANOC_ASSERT(threshold_pct >= 0.0 && threshold_pct <= 100.0,
                "error threshold must be in [0, 100] percent");
    if (threshold_pct_ > 0.0) {
        // ceil(log2(100 / e)); e = 10% -> 4, e = 20% -> 3, e = 5% -> 5.
        double ratio = 100.0 / threshold_pct_;
        shift_bits_ = static_cast<unsigned>(std::ceil(std::log2(ratio)));
    } else {
        shift_bits_ = 64; // shifts everything to zero: no approximation
    }
}

std::uint64_t
ErrorModel::errorRange(std::uint64_t magnitude) const
{
    if (!enabled())
        return 0;
    if (mode_ == ErrorRangeMode::Shift)
        return shift_bits_ >= 64 ? 0 : (magnitude >> shift_bits_);
    return static_cast<std::uint64_t>(
        static_cast<double>(magnitude) * threshold_pct_ / 100.0);
}

unsigned
ErrorModel::dontCareBits(std::uint64_t magnitude) const
{
    std::uint64_t range = errorRange(magnitude);
    if (range == 0)
        return 0;
    // Largest k with 2^k - 1 <= range.
    return log2_floor(range + 1);
}

} // namespace approxnoc
