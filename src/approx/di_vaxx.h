/**
 * @file
 * DI-VAXX (paper Sec. 4.2.1, Fig. 8): dictionary compression whose
 * encoder PMT is a TCAM of *approximate* patterns. The APCL computes
 * each reference pattern's don't-care mask once, when the update
 * notification is recorded — keeping the AVCL off the packetization
 * critical path — and the original patterns are stored alongside so
 * non-approximable data can still be matched exactly.
 */
#ifndef APPROXNOC_APPROX_DI_VAXX_H
#define APPROXNOC_APPROX_DI_VAXX_H

#include <map>
#include <vector>

#include "approx/avcl.h"
#include "common/contract.h"
#include "compression/dictionary.h"
#include "tcam/tcam.h"

namespace approxnoc {

/**
 * Where the approximation logic sits relative to the dictionary.
 * Insertion is the paper's design (APCL at update-record time, TCAM
 * lookup on the critical path); Lookup is the naive ablation (AVCL in
 * series before a dictionary lookup), functionally similar but two
 * cycles slower per block.
 */
enum class VaxxPlacement : std::uint8_t {
    Insertion, ///< paper: precomputed TCAM patterns
    Lookup,    ///< ablation: AVCL on the critical path
};

/** The DI-VAXX codec. */
class DiVaxxCodec : public DictionaryCodecBase
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    DiVaxxCodec(const DictionaryConfig &cfg, const ErrorModel &model,
                VaxxPlacement placement = VaxxPlacement::Insertion);

    Scheme scheme() const override { return Scheme::DiVaxx; }

    Cycle
    compressionLatency() const override
    {
        // Lookup placement serializes the AVCL (2 extra cycles) before
        // the 3-cycle match+encode pipeline.
        return placement_ == VaxxPlacement::Insertion ? kCompressionLatency
                                                      : kCompressionLatency + 2;
    }

    std::uint64_t encoderSearches() const override;
    std::uint64_t encoderWrites() const override;

    /** Encoder TCAM occupancy at @p node (tests). */
    std::size_t encoderPatternCount(NodeId node) const;

    const Avcl &avcl() const { return avcl_; }
    VaxxPlacement placement() const { return placement_; }

    /** New threshold applies to patterns recorded from now on. */
    bool
    setErrorThreshold(double pct) override
    {
        avcl_.setErrorModel(ErrorModel(pct, avcl_.errorModel().mode()));
        return true;
    }

    CodecActivity
    activity() const override
    {
        CodecActivity a = CodecSystem::activity();
        a.tcam_searches = encoderSearches();
        a.tcam_writes = encoderWrites();
        a.cam_searches = decoderSearches();
        a.cam_writes = decoderWrites();
        a.avcl_ops = avcl_.activations();
        return a;
    }

  protected:
    EncodedWord encodeWord(Word w, const DataBlock &block, NodeId src,
                           NodeId dst) override;
    void encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                    EncodedBlock &out) override;
    void applyUpdateAtEncoder(NodeId enc, const Update &u) override;

  private:
    /** Per-destination view of one TCAM entry (Fig. 8: idx + op). */
    struct DstEntry {
        std::uint8_t index;
        Word original;
    };

    struct EncoderState {
        Tcam tcam;
        std::vector<DataType> types;
        std::vector<std::map<NodeId, DstEntry>> dst_entries;

        EncoderState(const DictionaryConfig &cfg);
    };

    /**
     * The per-word encode step both paths share: one bit-sliced TCAM
     * probe visiting matches in priority order until one holds a
     * usable mapping for @p dst. @p approx_ok and @p type are hoisted
     * by encodeSpan and recomputed per word by encodeWord.
     */
    EncodedWord encodeOne(EncoderState &e, Word w, DataType type,
                          bool approx_ok, NodeId dst);

    ANOC_SHARD_LOCAL std::vector<EncoderState> encoders_;
    /** Shared read-only analysis logic; its activation count is the
     * Avcl class's own relaxed-atomic contract state. */
    ANOC_REGION_SHARED Avcl avcl_;
    ANOC_REGION_SHARED VaxxPlacement placement_;
};

} // namespace approxnoc

#endif // APPROXNOC_APPROX_DI_VAXX_H
