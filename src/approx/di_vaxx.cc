#include "approx/di_vaxx.h"

#include "common/log.h"

namespace approxnoc {

DiVaxxCodec::EncoderState::EncoderState(const DictionaryConfig &cfg)
    : tcam(cfg.pmt_entries, cfg.policy),
      types(cfg.pmt_entries, DataType::Raw),
      dst_entries(cfg.pmt_entries)
{}

DiVaxxCodec::DiVaxxCodec(const DictionaryConfig &cfg, const ErrorModel &model,
                         VaxxPlacement placement)
    : DictionaryCodecBase(cfg), avcl_(model), placement_(placement)
{
    encoders_.reserve(cfg.n_nodes);
    for (std::size_t i = 0; i < cfg.n_nodes; ++i)
        encoders_.emplace_back(cfg);
    preloadEncoders();
}

EncodedWord
DiVaxxCodec::encodeOne(EncoderState &e, Word w, DataType type, bool approx_ok,
                       NodeId dst)
{
    EncodedWord ew;
    bool compressed = false;
    // One TCAM access per word (counts towards the power model). The
    // bit-sliced probe hands us the matches in priority order, so
    // finding the first entry with a usable mapping for dst costs a
    // single search instead of a search plus a full-match sweep.
    e.tcam.searchVisit(w, [&](std::size_t slot) {
        auto it = e.dst_entries[slot].find(dst);
        if (it == e.dst_entries[slot].end())
            return false;
        const DstEntry &de = it->second;
        // Approximate hit: allowed only for approximable data of the
        // same type the pattern was learned from (masks are only valid
        // within one type's semantics). Exact hit: always allowed.
        bool exact = de.original == w;
        if (!exact && (!approx_ok || e.types[slot] != type))
            return false;
        ew.kind = static_cast<std::uint8_t>(DiWordKind::Compressed);
        ew.bits = compressedBits();
        ew.payload = de.index;
        ew.decoded = de.original;
        ew.approximated = !exact;
        ew.approx_count = exact ? 0 : 1;
        compressed = true;
        return true;
    });
    if (compressed)
        return ew;

    ew.kind = static_cast<std::uint8_t>(DiWordKind::Raw);
    ew.bits = rawBits();
    ew.payload = w;
    ew.decoded = w;
    ew.uncompressed = true;
    return ew;
}

EncodedWord
DiVaxxCodec::encodeWord(Word w, const DataBlock &block, NodeId src, NodeId dst)
{
    const bool approx_ok = block.approximable() &&
                           block.type() != DataType::Raw &&
                           avcl_.errorModel().enabled();
    return encodeOne(encoders_[src], w, block.type(), approx_ok, dst);
}

void
DiVaxxCodec::encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                        EncodedBlock &out)
{
    EncoderState &e = encoders_[src];
    const bool approx_ok = block.approximable() &&
                           block.type() != DataType::Raw &&
                           avcl_.errorModel().enabled();
    const DataType type = block.type();
    for (std::size_t i = 0; i < block.size(); ++i)
        out.append(encodeOne(e, block.word(i), type, approx_ok, dst));
}

void
DiVaxxCodec::applyUpdateAtEncoder(NodeId enc, const Update &u)
{
    EncoderState &e = encoders_[enc];
    if (u.invalidate) {
        for (std::size_t s = 0; s < e.tcam.capacity(); ++s) {
            auto it = e.dst_entries[s].find(u.decoder);
            if (it != e.dst_entries[s].end() && it->second.index == u.index) {
                e.dst_entries[s].erase(it);
                if (e.dst_entries[s].empty())
                    e.tcam.erase(s);
            }
        }
        return;
    }

    // APCL: compute the approximate pattern once, at record time.
    TernaryPattern tp = avcl_.patternFor(u.pattern, u.type);
    std::size_t slot = e.tcam.victimFor(tp);
    bool evicting = e.tcam.valid(slot) && !(e.tcam.pattern(slot) == tp);
    if (evicting)
        e.dst_entries[slot].clear();
    std::size_t got = e.tcam.insert(tp);
    ANOC_ASSERT(got == slot, "encoder TCAM victim selection diverged");
    e.types[slot] = u.type;
    e.dst_entries[slot][u.decoder] = DstEntry{u.index, u.pattern};
}

std::uint64_t
DiVaxxCodec::encoderSearches() const
{
    std::uint64_t n = 0;
    for (const auto &e : encoders_)
        n += e.tcam.searches();
    return n;
}

std::uint64_t
DiVaxxCodec::encoderWrites() const
{
    std::uint64_t n = 0;
    for (const auto &e : encoders_)
        n += e.tcam.writes();
    return n;
}

std::size_t
DiVaxxCodec::encoderPatternCount(NodeId node) const
{
    return encoders_[node].tcam.validCount();
}

} // namespace approxnoc
