#include "approx/fp_vaxx.h"

#include "common/arena.h"

namespace approxnoc {

namespace {

/** Words covered by the stack-allocated don't-care hoist; larger
 * blocks (none in practice — cache blocks are 16 words) fall back to
 * recomputing per word, which encodes identically. */
constexpr std::size_t kMaxHoistedWords = 64;

} // namespace

EncodedBlock
FpVaxxCodec::encode(const DataBlock &block, NodeId src, NodeId dst, Cycle)
{
    noteEncoded(block.size());
    const bool approximable = block.approximable() &&
                              block.type() != DataType::Raw &&
                              avcl_.errorModel().enabled();
    EncodedBlock enc =
        approximable
            ? fpc_encode_block(block,
                               [&](std::size_t i) -> unsigned {
                                   Word w = block.word(i);
                                   ApproxDecision d =
                                       avcl_.analyze(w, block.type());
                                   if (d.bypass)
                                       return 0u;
                                   if (mode_ == FpcPriorityMode::PreferExact &&
                                       fpc_match(w, 0))
                                       return 0u;
                                   return d.dont_care_bits;
                               })
            : fpc_encode_block(block, [](std::size_t) { return 0u; });
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

EncodedBlock
FpVaxxCodec::encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                        std::pmr::memory_resource *mr)
{
    noteEncoded(block.size());
    const bool approximable = block.approximable() &&
                              block.type() != DataType::Raw &&
                              avcl_.errorModel().enabled();
    EncodedBlock enc;
    if (!approximable) {
        enc = fpc_encode_block(block, [](std::size_t) { return 0u; }, mr);
    } else if (block.size() > kMaxHoistedWords) {
        enc = fpc_encode_block(block,
                               [&](std::size_t i) -> unsigned {
                                   Word w = block.word(i);
                                   ApproxDecision d =
                                       avcl_.analyze(w, block.type());
                                   if (d.bypass)
                                       return 0u;
                                   if (mode_ == FpcPriorityMode::PreferExact &&
                                       fpc_match(w, 0))
                                       return 0u;
                                   return d.dont_care_bits;
                               },
                               mr);
    } else {
        unsigned k[kMaxHoistedWords];
        for (std::size_t i = 0; i < block.size(); ++i) {
            Word w = block.word(i);
            ApproxDecision d = avcl_.analyze(w, block.type());
            if (d.bypass)
                k[i] = 0;
            else if (mode_ == FpcPriorityMode::PreferExact && fpc_match(w, 0))
                k[i] = 0;
            else
                k[i] = d.dont_care_bits;
        }
        enc = fpc_encode_block(block, [&](std::size_t i) { return k[i]; }, mr);
    }
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

EncodedBlock
FpVaxxCodec::encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                         Cycle)
{
    return encodeImpl(block, src, dst, nullptr);
}

EncodedBlock
FpVaxxCodec::encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle, Arena &arena)
{
    return encodeImpl(block, src, dst, &arena);
}

DataBlock
FpVaxxCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    // The NR is plain FPC; the decoder is unchanged (paper: the decoder
    // never knows approximation happened).
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, ws.data()));
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

DecodedSpan
FpVaxxCodec::decodeSpan(const EncodedBlock &enc, NodeId, NodeId, Cycle,
                        Arena &arena)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    Word *buf = arena.alloc<Word>(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, buf));
    return DecodedSpan{buf, enc.wordCount(), enc.type(),
                       enc.approximable()};
}

} // namespace approxnoc
