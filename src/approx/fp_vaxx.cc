#include "approx/fp_vaxx.h"

namespace approxnoc {

EncodedBlock
FpVaxxCodec::encode(const DataBlock &block, NodeId, NodeId, Cycle)
{
    noteEncoded(block.size());
    const bool approximable = block.approximable() &&
                              block.type() != DataType::Raw &&
                              avcl_.errorModel().enabled();
    EncodedBlock enc =
        approximable
            ? fpc_encode_block(block,
                               [&](std::size_t i) -> unsigned {
                                   Word w = block.word(i);
                                   ApproxDecision d =
                                       avcl_.analyze(w, block.type());
                                   if (d.bypass)
                                       return 0u;
                                   if (mode_ == FpcPriorityMode::PreferExact &&
                                       fpc_match(w, 0))
                                       return 0u;
                                   return d.dont_care_bits;
                               })
            : fpc_encode_block(block, [](std::size_t) { return 0u; });
    noteBlockEncoded(enc);
    return enc;
}

DataBlock
FpVaxxCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    // The NR is plain FPC; the decoder is unchanged (paper: the decoder
    // never knows approximation happened).
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws;
    ws.reserve(enc.wordCount());
    for (const auto &w : enc.words()) {
        Word v = w.uncompressed
                     ? w.payload
                     : fpc_decode(static_cast<FpcPattern>(w.kind), w.payload);
        if (v != w.decoded)
            noteMismatch();
        for (unsigned r = 0; r < w.run; ++r)
            ws.push_back(v);
    }
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

} // namespace approxnoc
