#include "approx/fp_vaxx.h"

namespace approxnoc {

namespace {

/** Words covered by the stack-allocated don't-care hoist; larger
 * blocks (none in practice — cache blocks are 16 words) fall back to
 * recomputing per word, which encodes identically. */
constexpr std::size_t kMaxHoistedWords = 64;

} // namespace

EncodedBlock
FpVaxxCodec::encode(const DataBlock &block, NodeId src, NodeId dst, Cycle)
{
    noteEncoded(block.size());
    const bool approximable = block.approximable() &&
                              block.type() != DataType::Raw &&
                              avcl_.errorModel().enabled();
    EncodedBlock enc =
        approximable
            ? fpc_encode_block(block,
                               [&](std::size_t i) -> unsigned {
                                   Word w = block.word(i);
                                   ApproxDecision d =
                                       avcl_.analyze(w, block.type());
                                   if (d.bypass)
                                       return 0u;
                                   if (mode_ == FpcPriorityMode::PreferExact &&
                                       fpc_match(w, 0))
                                       return 0u;
                                   return d.dont_care_bits;
                               })
            : fpc_encode_block(block, [](std::size_t) { return 0u; });
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

EncodedBlock
FpVaxxCodec::encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                         Cycle now)
{
    const bool approximable = block.approximable() &&
                              block.type() != DataType::Raw &&
                              avcl_.errorModel().enabled();
    if (!approximable || block.size() > kMaxHoistedWords)
        return encode(block, src, dst, now);

    noteEncoded(block.size());
    unsigned k[kMaxHoistedWords];
    for (std::size_t i = 0; i < block.size(); ++i) {
        Word w = block.word(i);
        ApproxDecision d = avcl_.analyze(w, block.type());
        if (d.bypass)
            k[i] = 0;
        else if (mode_ == FpcPriorityMode::PreferExact && fpc_match(w, 0))
            k[i] = 0;
        else
            k[i] = d.dont_care_bits;
    }
    EncodedBlock enc =
        fpc_encode_block(block, [&](std::size_t i) { return k[i]; });
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

DataBlock
FpVaxxCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    // The NR is plain FPC; the decoder is unchanged (paper: the decoder
    // never knows approximation happened).
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws;
    noteMismatches(fpc_decode_block(enc, ws));
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

} // namespace approxnoc
