/**
 * @file
 * FP-VAXX (paper Sec. 4.1.1, Fig. 6): frequent-pattern compression with
 * approximate matching. The AVCL computes the per-word don't-care bits;
 * the remaining (shaded) bits must match a static pattern exactly.
 */
#ifndef APPROXNOC_APPROX_FP_VAXX_H
#define APPROXNOC_APPROX_FP_VAXX_H

#include "approx/avcl.h"
#include "common/contract.h"
#include "compression/fpc.h"

namespace approxnoc {

/**
 * Which match wins when both an approximate high-priority pattern and
 * an exact lower-priority pattern exist. The paper's hardware always
 * takes the highest-priority pattern (PreferApprox), which it notes
 * costs accuracy at large thresholds without latency benefit
 * (Sec. 5.3.1); PreferExact is the ablation.
 */
enum class FpcPriorityMode : std::uint8_t {
    PreferApprox, ///< paper behaviour: priority order with don't-cares
    PreferExact,  ///< try exact table first, approximate only on miss
};

/** The FP-VAXX codec: stateless, shared by all nodes. */
class FpVaxxCodec : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    explicit FpVaxxCodec(const ErrorModel &model,
                         FpcPriorityMode mode = FpcPriorityMode::PreferApprox)
        : avcl_(model), mode_(mode)
    {}

    Scheme scheme() const override { return Scheme::FpVaxx; }

    std::uint8_t
    rawKind() const override
    {
        return static_cast<std::uint8_t>(FpcPattern::Uncompressed);
    }

    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    /** Batched path: the per-word AVCL analysis is hoisted into one
     * precomputed don't-care array, so the zero-run extension inside
     * fpc_encode_block never re-analyzes a word at a run boundary.
     * Emits the same NR bits as encode(). */
    EncodedBlock encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                             Cycle now) override;
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                           Cycle now, Arena &arena) override;

    const Avcl &avcl() const { return avcl_; }
    FpcPriorityMode priorityMode() const { return mode_; }

    bool
    setErrorThreshold(double pct) override
    {
        avcl_.setErrorModel(ErrorModel(pct, avcl_.errorModel().mode()));
        return true;
    }

    CodecActivity
    activity() const override
    {
        CodecActivity a = CodecSystem::activity();
        a.avcl_ops = avcl_.activations();
        // The static pattern table is matched once per encoded word.
        a.cam_searches = a.words_encoded;
        return a;
    }

  private:
    /** The one batched encode body behind encodeBlock()/encodeSpan():
     * hoisted AVCL analysis, NR storage on @p mr (null = heap). */
    EncodedBlock encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                            std::pmr::memory_resource *mr);

    /** Shared read-only analysis logic; its activation count is the
     * Avcl class's own relaxed-atomic contract state. */
    ANOC_REGION_SHARED Avcl avcl_;
    ANOC_REGION_SHARED FpcPriorityMode mode_;
};

} // namespace approxnoc

#endif // APPROXNOC_APPROX_FP_VAXX_H
