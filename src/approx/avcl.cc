#include "approx/avcl.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/bits.h"
#include "common/relative_error.h"

namespace approxnoc {

ApproxDecision
avcl_analyze(const ErrorModel &model, Word w, DataType t)
{
    ApproxDecision d;
    if (!model.enabled())
        return d;

    switch (t) {
      case DataType::Int32: {
        std::int64_t v = static_cast<std::int32_t>(w);
        std::uint64_t magnitude = static_cast<std::uint64_t>(v < 0 ? -v : v);
        unsigned k = model.dontCareBits(magnitude);
        if (k > 31)
            k = 31;
        d.bypass = k == 0;
        d.dont_care_bits = k;
        return d;
      }
      case DataType::Float32: {
        if (Float32Fields::isSpecial(w))
            return d; // zero / denormal / inf / NaN: bypass
        // Significand = 1.mantissa scaled to an integer: the exponent
        // is scaled out, so the same integer logic applies.
        std::uint64_t significand =
            (1ull << Float32Fields::kMantissaBits) | Float32Fields::mantissa(w);
        unsigned k = model.dontCareBits(significand);
        if (k > Float32Fields::kMantissaBits)
            k = Float32Fields::kMantissaBits;
        d.bypass = k == 0;
        d.dont_care_bits = k;
        return d;
      }
      case DataType::Raw:
        return d;
    }
    return d;
}

double
avcl_relative_error(Word w, Word candidate, DataType t)
{
    // The admission check only cares about the magnitude; the signed
    // value feeds the QoR error telemetry. Folding fabs over the
    // signed error is bit-identical to the historical formula (IEEE
    // division computes sign and magnitude independently).
    return std::fabs(signed_relative_error(w, candidate, t));
}

ApproxDecision
Avcl::analyze(Word w, DataType t)
{
    ++activations_;
    return avcl_analyze(model_, w, t);
}

TernaryPattern
Avcl::patternFor(Word w, DataType t)
{
    ApproxDecision d = analyze(w, t);
    Word mask = d.bypass ? 0 : low_mask32(d.dont_care_bits);
    return TernaryPattern{w, mask}.canonical();
}

} // namespace approxnoc
