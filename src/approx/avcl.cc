#include "approx/avcl.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/bits.h"

namespace approxnoc {

ApproxDecision
avcl_analyze(const ErrorModel &model, Word w, DataType t)
{
    ApproxDecision d;
    if (!model.enabled())
        return d;

    switch (t) {
      case DataType::Int32: {
        std::int64_t v = static_cast<std::int32_t>(w);
        std::uint64_t magnitude = static_cast<std::uint64_t>(v < 0 ? -v : v);
        unsigned k = model.dontCareBits(magnitude);
        if (k > 31)
            k = 31;
        d.bypass = k == 0;
        d.dont_care_bits = k;
        return d;
      }
      case DataType::Float32: {
        if (Float32Fields::isSpecial(w))
            return d; // zero / denormal / inf / NaN: bypass
        // Significand = 1.mantissa scaled to an integer: the exponent
        // is scaled out, so the same integer logic applies.
        std::uint64_t significand =
            (1ull << Float32Fields::kMantissaBits) | Float32Fields::mantissa(w);
        unsigned k = model.dontCareBits(significand);
        if (k > Float32Fields::kMantissaBits)
            k = Float32Fields::kMantissaBits;
        d.bypass = k == 0;
        d.dont_care_bits = k;
        return d;
      }
      case DataType::Raw:
        return d;
    }
    return d;
}

double
avcl_relative_error(Word w, Word candidate, DataType t)
{
    if (w == candidate)
        return 0.0;
    switch (t) {
      case DataType::Int32: {
        double p = static_cast<double>(static_cast<std::int32_t>(w));
        double a = static_cast<double>(static_cast<std::int32_t>(candidate));
        return p == 0.0 ? 1.0 : std::fabs(a - p) / std::fabs(p);
      }
      case DataType::Float32: {
        if (Float32Fields::isSpecial(w))
            return 1.0; // specials must never be substituted
        double sig = static_cast<double>(
            (1ull << Float32Fields::kMantissaBits) |
            Float32Fields::mantissa(w));
        double sig_c = static_cast<double>(
            (1ull << Float32Fields::kMantissaBits) |
            Float32Fields::mantissa(candidate));
        if (Float32Fields::exponent(w) != Float32Fields::exponent(candidate) ||
            Float32Fields::sign(w) != Float32Fields::sign(candidate)) {
            // Exponent/sign changed: compute on the actual values.
            float fw, fc;
            static_assert(sizeof(fw) == sizeof(w));
            std::memcpy(&fw, &w, sizeof(fw));
            std::memcpy(&fc, &candidate, sizeof(fc));
            return fw == 0.0f ? 1.0
                              : std::fabs((double)fc - (double)fw) /
                                    std::fabs((double)fw);
        }
        return std::fabs(sig_c - sig) / sig;
      }
      case DataType::Raw:
        return 1.0;
    }
    return 1.0;
}

ApproxDecision
Avcl::analyze(Word w, DataType t)
{
    ++activations_;
    return avcl_analyze(model_, w, t);
}

TernaryPattern
Avcl::patternFor(Word w, DataType t)
{
    ApproxDecision d = analyze(w, t);
    Word mask = d.bypass ? 0 : low_mask32(d.dont_care_bits);
    return TernaryPattern{w, mask}.canonical();
}

} // namespace approxnoc
