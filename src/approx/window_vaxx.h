/**
 * @file
 * Window-based VAXX — the paper's stated future work (Sec. 7): instead
 * of bounding every word's error by the threshold, a *cumulative*
 * error budget is maintained over a window of words (here: the cache
 * block), so words that matched exactly donate their unused budget to
 * words that need a wider mask. Targeted at image/video data where a
 * per-frame error bound is the natural quality contract.
 *
 * The per-word allowance is capped at `per_word_cap` times the base
 * threshold so a single word can never absorb the whole window budget.
 */
#ifndef APPROXNOC_APPROX_WINDOW_VAXX_H
#define APPROXNOC_APPROX_WINDOW_VAXX_H

#include "approx/avcl.h"
#include "approx/fp_vaxx.h"
#include "common/contract.h"
#include "compression/fpc.h"

namespace approxnoc {

/** FP-VAXX with a per-block cumulative error budget. */
class WindowVaxxCodec : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    /**
     * @param model base error model; the window budget is
     *        model.thresholdPct() * words-per-block percent-words.
     * @param per_word_cap max per-word allowance as a multiple of the
     *        base threshold (>= 1).
     */
    explicit WindowVaxxCodec(const ErrorModel &model,
                             double per_word_cap = 4.0)
        : model_(model), per_word_cap_(per_word_cap)
    {}

    Scheme scheme() const override { return Scheme::FpVaxx; }

    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                           Cycle now, Arena &arena) override;

    const ErrorModel &errorModel() const { return model_; }
    double perWordCap() const { return per_word_cap_; }

    /** Cumulative relative error actually spent, per encoded block. */
    double lastBlockErrorSpent() const { return last_spent_; }

    bool
    setErrorThreshold(double pct) override
    {
        model_ = ErrorModel(pct, model_.mode());
        return true;
    }

  private:
    /** The one encode body behind encode()/encodeSpan(): budget walk
     * then fpc_encode_block with NR storage on @p mr (null = heap). */
    EncodedBlock encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                            std::pmr::memory_resource *mr);

    ANOC_REGION_SHARED ErrorModel model_;
    ANOC_REGION_SHARED double per_word_cap_;
    /** Serial-only diagnostic: a plain double overwritten by every
     * encode regardless of src, so under sharded encode its value is
     * whichever shard wrote last. Read only by serial tests; not part
     * of any artifact, hence exempt rather than RelaxedCounter. */
    // anoc-lint: allow(C1) -- last-writer-wins diagnostic, read only by serial tests, never feeds artifacts
    double last_spent_ = 0.0;
};

} // namespace approxnoc

#endif // APPROXNOC_APPROX_WINDOW_VAXX_H
