/**
 * @file
 * The Approximate Value Compute Logic (paper Fig. 4): the data-type
 * aware datapath that turns a 32-bit word into a set of low-order
 * don't-care bits under the error threshold.
 *
 * Integers use their magnitude directly. Floats route only the mantissa
 * through the integer logic: the 23-bit mantissa is concatenated with
 * the implied leading 1 to form the significand, which scales out the
 * exponent; don't-care bits therefore only ever cover mantissa bits.
 * Words whose exponent is all zeros or all ones (zero, denormals,
 * infinities, NaNs) bypass approximation, as do non-approximable words.
 */
#ifndef APPROXNOC_APPROX_AVCL_H
#define APPROXNOC_APPROX_AVCL_H

#include <cstdint>

#include "common/relaxed_counter.h"
#include "common/types.h"

#include "approx/error_model.h"
#include "tcam/tcam.h"

namespace approxnoc {

/** Outcome of analyzing one word. */
struct ApproxDecision {
    /** True when the word must not be approximated at all. */
    bool bypass = true;
    /** Number of low-order word bits that are don't cares (0..23/31). */
    unsigned dont_care_bits = 0;
};

/**
 * The pure AVCL datapath: don't-care bits of @p w under @p model.
 * Free function so policies that vary the model per word (e.g. the
 * window-budget extension) can reuse it without an Avcl instance.
 */
ApproxDecision avcl_analyze(const ErrorModel &model, Word w, DataType t);

/**
 * Relative error of substituting @p candidate for @p w (integers by
 * magnitude, floats by significand; 0 when bits are equal).
 */
double avcl_relative_error(Word w, Word candidate, DataType t);

/** The AVCL datapath plus activity counters for the power model. */
class Avcl
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation);

    explicit Avcl(const ErrorModel &model) : model_(model) {}

    const ErrorModel &errorModel() const { return model_; }

    /**
     * Swap the error model at run time (the paper: the threshold "can
     * be dynamically adjusted at run time"). Takes effect on the next
     * analysis; DI-VAXX patterns already recorded keep their masks.
     */
    void setErrorModel(const ErrorModel &m) { model_ = m; }

    /**
     * Analyze @p w of type @p t: how many low bits may change?
     * Counts one AVCL activation.
     */
    ApproxDecision analyze(Word w, DataType t);

    /**
     * The APCL operation (paper Fig. 8): the ternary approximate
     * pattern of a reference word — its don't-care bits masked out —
     * used when recording a pattern in the DI-VAXX encoder TCAM.
     */
    TernaryPattern patternFor(Word w, DataType t);

    /** Total activations (power model input). */
    std::uint64_t activations() const { return activations_; }

  private:
    ANOC_REGION_SHARED ErrorModel model_;
    /** Relaxed-atomic: one Avcl instance is shared by every encoder
     * node of a codec, so concurrent per-flow encode shards race only
     * on this commutative count — the datapath itself is pure. */
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter activations_;
};

} // namespace approxnoc

#endif // APPROXNOC_APPROX_AVCL_H
