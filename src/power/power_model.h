/**
 * @file
 * Event-energy power model (paper Sec. 5.5). Per-event energies are
 * analytical 45 nm estimates in the spirit of Orion/DSENT for the
 * router datapath and Agrawal & Sherwood [1] for the CAM/TCAM
 * structures; absolute numbers are indicative, but the *relative*
 * dynamic power across schemes — the paper's Fig. 15 — is driven by
 * the activity counts the simulator measures.
 */
#ifndef APPROXNOC_POWER_POWER_MODEL_H
#define APPROXNOC_POWER_POWER_MODEL_H

#include "compression/codec.h"
#include "noc/network.h"

namespace approxnoc {

/** Per-event energies in picojoules (45 nm, 64-bit flits). */
struct PowerParams {
    double e_buffer_write_pj = 1.2; ///< flit into an input VC buffer
    double e_switch_pj = 1.8;       ///< crossbar traversal per flit
    double e_link_pj = 2.4;         ///< 1 mm link traversal per flit
    // The PMT structures are tiny (8 entries x 32 b) next to the
    // 64-bit-wide 4-VC router buffers, so per-event energies are an
    // order of magnitude below the flit events.
    double e_cam_search_pj = 0.12;  ///< 8-entry x 32 b CAM search
    double e_cam_write_pj = 0.08;
    double e_tcam_search_pj = 0.22; ///< TCAM search (~1.8x CAM [1])
    double e_tcam_write_pj = 0.12;
    double e_avcl_pj = 0.08;        ///< one AVCL/APCL evaluation
    double e_word_encode_pj = 0.05; ///< encode mux/shift per word
    double e_word_decode_pj = 0.04; ///< decode per word
    double static_power_mw_per_router = 8.0;
    double clock_ghz = 2.0;         ///< Table 1: 2 GHz routers
};

/** Energy totals for one simulation, split by component. */
struct PowerBreakdown {
    double router_pj = 0.0; ///< buffers + crossbar
    double link_pj = 0.0;
    double codec_pj = 0.0;  ///< compression + approximation logic

    double total_pj() const { return router_pj + link_pj + codec_pj; }
};

/** Computes energy/power from network + codec activity counters. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = {}) : p_(params) {}

    const PowerParams &params() const { return p_; }

    /** Dynamic energy consumed so far by @p net and its codec. */
    PowerBreakdown dynamicEnergy(const Network &net) const;

    /** Mean dynamic power in mW over @p elapsed cycles. */
    double dynamicPowerMw(const Network &net, Cycle elapsed) const;

    /** Static power of the whole NoC in mW (scheme-independent). */
    double staticPowerMw(const Network &net) const;

  private:
    PowerParams p_;
};

} // namespace approxnoc

#endif // APPROXNOC_POWER_POWER_MODEL_H
