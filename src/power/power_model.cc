#include "power/power_model.h"

namespace approxnoc {

PowerBreakdown
PowerModel::dynamicEnergy(const Network &net) const
{
    PowerBreakdown b;

    // Router datapath: every accepted flit is one buffer write and one
    // crossbar traversal (when forwarded); inter-router hops add a link
    // traversal. NI injections also write the first router buffer —
    // already counted via Router::bufferWrites().
    b.router_pj = static_cast<double>(net.routerBufferWrites()) *
                      p_.e_buffer_write_pj +
                  static_cast<double>(net.routerFlitsForwarded()) *
                      p_.e_switch_pj;
    b.link_pj =
        static_cast<double>(net.routerLinkTraversals()) * p_.e_link_pj;

    const CodecActivity a = net.codecActivity();
    b.codec_pj = static_cast<double>(a.cam_searches) * p_.e_cam_search_pj +
                 static_cast<double>(a.cam_writes) * p_.e_cam_write_pj +
                 static_cast<double>(a.tcam_searches) * p_.e_tcam_search_pj +
                 static_cast<double>(a.tcam_writes) * p_.e_tcam_write_pj +
                 static_cast<double>(a.avcl_ops) * p_.e_avcl_pj +
                 static_cast<double>(a.words_encoded) * p_.e_word_encode_pj +
                 static_cast<double>(a.words_decoded) * p_.e_word_decode_pj;
    return b;
}

double
PowerModel::dynamicPowerMw(const Network &net, Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    double pj = dynamicEnergy(net).total_pj();
    // P[mW] = E[pJ] / t[ns] ; t = cycles / f[GHz].
    double t_ns = static_cast<double>(elapsed) / p_.clock_ghz;
    return pj / t_ns;
}

double
PowerModel::staticPowerMw(const Network &net) const
{
    return p_.static_power_mw_per_router *
           static_cast<double>(net.config().routers());
}

} // namespace approxnoc
