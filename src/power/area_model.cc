#include "power/area_model.h"

namespace approxnoc {

namespace {

/** Bits kept per stored original pattern: the paper stores only the
 * bits the approximate pattern masked out, plus tag overhead (~20). */
constexpr double kOriginalBits = 20.0;

} // namespace

double
encoder_area_mm2(Scheme scheme, const DictionaryConfig &dict,
                 unsigned n_nodes, AreaParams p)
{
    const double entries = static_cast<double>(dict.pmt_entries);
    const double dsts = static_cast<double>(n_nodes > 0 ? n_nodes - 1 : 0);
    const double index_bits = static_cast<double>(dict.indexBits());
    double um2 = 0.0;

    switch (scheme) {
      case Scheme::Baseline:
        return 0.0;

      case Scheme::FpComp:
        // Static pattern-match logic plus arbitration.
        um2 = p.fpc_logic_um2 + p.arbitration_um2;
        break;

      case Scheme::FpVaxx:
        // FPC logic, 8 parallel APCL units (Sec. 4.3), the masked
        // pattern CAM and arbitration.
        um2 = p.fpc_logic_um2 + 8.0 * p.avcl_unit_um2 +
              entries * 32.0 * p.cam_bit_um2 + p.arbitration_um2;
        break;

      case Scheme::DiComp:
        // Exact-match CAM + per-destination index vectors (Fig. 7a)
        // + frequency counters.
        um2 = entries * 32.0 * p.cam_bit_um2 +
              entries * dsts * index_bits * p.sram_bit_um2 +
              entries * 8.0 * p.sram_bit_um2 + p.arbitration_um2;
        break;

      case Scheme::DiVaxx:
        // TCAM of approximate patterns + per-destination (index,
        // original) store (Fig. 8) + one APCL + arbitration.
        um2 = entries * 32.0 * p.tcam_bit_um2 +
              entries * dsts * (index_bits + kOriginalBits) *
                  p.sram_bit_um2 +
              entries * 8.0 * p.sram_bit_um2 + p.avcl_unit_um2 +
              p.arbitration_um2;
        break;
    }
    return um2 / 1e6;
}

} // namespace approxnoc
