/**
 * @file
 * Analytical 45 nm area model for the APPROX-NoC encoder structures
 * (paper Sec. 5.5: DI-VAXX 0.0037 mm^2 per NI, FP-VAXX 0.0029 mm^2).
 * Cell areas follow typical 45 nm ratios: a TCAM cell is ~2.7x an SRAM
 * cell and a binary CAM cell ~1.8x; matching/priority and AVCL logic
 * are charged as gate-equivalent blocks.
 */
#ifndef APPROXNOC_POWER_AREA_MODEL_H
#define APPROXNOC_POWER_AREA_MODEL_H

#include <cstddef>

#include "common/types.h"
#include "compression/dictionary.h"

namespace approxnoc {

/** Cell and logic areas in square micrometres (45 nm). */
struct AreaParams {
    double sram_bit_um2 = 0.50;
    double cam_bit_um2 = 0.90;
    double tcam_bit_um2 = 1.35;
    double avcl_unit_um2 = 220.0;   ///< shift/mask datapath + control
    double fpc_logic_um2 = 380.0;   ///< static pattern match + encode
    double arbitration_um2 = 150.0; ///< compress arbitration / priority
};

/** Per-NI encoder area for @p scheme in mm^2. */
double encoder_area_mm2(Scheme scheme, const DictionaryConfig &dict,
                        unsigned n_nodes, AreaParams p = {});

} // namespace approxnoc

#endif // APPROXNOC_POWER_AREA_MODEL_H
