/**
 * @file
 * Online data-error control (the abstract's "online data error control
 * mechanism", in the runtime-QoS spirit of Rumba [18]): an AIMD
 * controller keeps the *measured* data error under an application
 * quality target by retuning the codec's error threshold while the
 * system runs — raising it gently while quality is comfortable,
 * cutting it multiplicatively on violation. The network-side closed
 * loop lives in noc/qos_loop.h.
 */
#ifndef APPROXNOC_CORE_ERROR_CONTROL_H
#define APPROXNOC_CORE_ERROR_CONTROL_H

#include <cstdint>

namespace approxnoc {

/** AIMD threshold controller. Pure policy: feed it measurements. */
class QosController
{
  public:
    /**
     * @param target_error_pct measured mean data error to stay under.
     * @param initial_pct starting threshold.
     * @param min_pct minimum threshold (0 disables approximation).
     * @param max_pct maximum threshold.
     * @param additive_step threshold increase when under target.
     * @param multiplicative_cut factor applied on violation (< 1).
     */
    QosController(double target_error_pct, double initial_pct = 10.0,
                  double min_pct = 0.0, double max_pct = 50.0,
                  double additive_step = 1.0,
                  double multiplicative_cut = 0.5);

    /**
     * Feed the error measured over the last window.
     * @return the (possibly adjusted) threshold to apply.
     */
    double update(double measured_error_pct);

    double threshold() const { return threshold_; }
    double target() const { return target_; }
    std::uint64_t violations() const { return violations_; }

  private:
    double target_;
    double threshold_;
    double min_;
    double max_;
    double step_;
    double cut_;
    std::uint64_t violations_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_CORE_ERROR_CONTROL_H
