#include "core/quality.h"

namespace approxnoc {

void
QualityTracker::record(const DataBlock &precise, const EncodedBlock &enc,
                       const DataBlock &delivered)
{
    ++blocks_;
    error_sum_ += block_relative_error(precise, delivered);
    words_total_ += enc.wordCount();
    words_exact_ += enc.exactCompressedWords();
    words_approx_ += enc.approximatedWords();
    bits_original_ += precise.sizeBits();
    bits_encoded_ += enc.bits();
}

double
QualityTracker::meanRelativeError() const
{
    return blocks_ ? error_sum_ / static_cast<double>(blocks_) : 0.0;
}

double
QualityTracker::exactEncodedFraction() const
{
    return words_total_
               ? static_cast<double>(words_exact_) /
                     static_cast<double>(words_total_)
               : 0.0;
}

double
QualityTracker::approxEncodedFraction() const
{
    return words_total_
               ? static_cast<double>(words_approx_) /
                     static_cast<double>(words_total_)
               : 0.0;
}

double
QualityTracker::compressionRatio() const
{
    return bits_encoded_
               ? static_cast<double>(bits_original_) /
                     static_cast<double>(bits_encoded_)
               : 1.0;
}

} // namespace approxnoc
