/**
 * @file
 * Data-value quality accounting (paper Fig. 9's Data_approx_quality):
 * the per-word relative error incurred across all delivered blocks,
 * reported as quality = 1 - mean relative error. Also tracks the
 * encoded-word breakdown for Fig. 10(a) and compression ratios for
 * Fig. 10(b).
 */
#ifndef APPROXNOC_CORE_QUALITY_H
#define APPROXNOC_CORE_QUALITY_H

#include <cstdint>

#include "common/data_block.h"
#include "compression/encoded.h"

namespace approxnoc {

/** Accumulates codec effectiveness and value quality over blocks. */
class QualityTracker
{
  public:
    /** Record one encoded block and its delivered reconstruction. */
    void record(const DataBlock &precise, const EncodedBlock &enc,
                const DataBlock &delivered);

    /** Blocks observed. */
    std::uint64_t blocks() const { return blocks_; }

    /** Mean per-word relative error across blocks. */
    double meanRelativeError() const;

    /** Running sum of per-block mean relative error (windowing). */
    double errorSum() const { return error_sum_; }

    /** The paper's data quality metric: 1 - meanRelativeError(). */
    double dataQuality() const { return 1.0 - meanRelativeError(); }

    /** Fraction of words compressed exactly (of all words). */
    double exactEncodedFraction() const;

    /** Fraction of words compressed via approximation (of all words). */
    double approxEncodedFraction() const;

    /** Fraction of words encoded at all (exact + approx). */
    double
    encodedFraction() const
    {
        return exactEncodedFraction() + approxEncodedFraction();
    }

    /** Mean compression ratio: original bits / NR bits. */
    double compressionRatio() const;

    std::uint64_t totalWords() const { return words_total_; }
    std::uint64_t approximatedWords() const { return words_approx_; }

    /** Forget everything (measurement-window bookkeeping). */
    void reset() { *this = QualityTracker(); }

  private:
    std::uint64_t blocks_ = 0;
    double error_sum_ = 0.0; ///< sum of per-block mean relative error
    std::uint64_t words_total_ = 0;
    std::uint64_t words_exact_ = 0;
    std::uint64_t words_approx_ = 0;
    std::uint64_t bits_original_ = 0;
    std::uint64_t bits_encoded_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_CORE_QUALITY_H
