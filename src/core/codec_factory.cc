#include "core/codec_factory.h"

#include <algorithm>
#include <cctype>

#include "common/log.h"

namespace approxnoc {

std::unique_ptr<CodecSystem>
CodecFactory::create(Scheme scheme, const CodecConfig &cfg)
{
    DictionaryConfig dict = cfg.dict;
    dict.n_nodes = cfg.n_nodes;

    switch (scheme) {
      case Scheme::Baseline:
        return std::make_unique<BaselineCodec>();
      case Scheme::DiComp:
        return std::make_unique<DiCompCodec>(dict);
      case Scheme::DiVaxx:
        return std::make_unique<DiVaxxCodec>(dict, cfg.errorModel(),
                                             cfg.vaxx_placement);
      case Scheme::FpComp:
        return std::make_unique<FpcCodec>();
      case Scheme::FpVaxx:
        return std::make_unique<FpVaxxCodec>(cfg.errorModel(),
                                             cfg.fpc_priority);
    }
    ANOC_PANIC("unknown scheme in CodecFactory::create");
}

std::unique_ptr<CodecSystem>
CodecFactory::create(const std::string &name, const CodecConfig &cfg)
{
    return create(scheme_from_string(name), cfg);
}

Scheme
scheme_from_string(const std::string &name)
{
    std::string s;
    for (char c : name)
        if (c != '-' && c != '_')
            s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "baseline")
        return Scheme::Baseline;
    if (s == "dicomp")
        return Scheme::DiComp;
    if (s == "divaxx")
        return Scheme::DiVaxx;
    if (s == "fpcomp")
        return Scheme::FpComp;
    if (s == "fpvaxx")
        return Scheme::FpVaxx;
    ANOC_FATAL("unknown scheme name '", name,
               "' (expected Baseline, DI-COMP, DI-VAXX, FP-COMP or FP-VAXX)");
}

} // namespace approxnoc
