/**
 * @file
 * The APPROX-NoC framework entry point: a single configuration object
 * covering the approximation policy (error threshold, error-range mode,
 * VAXX placement) and the underlying compression scheme, plus the
 * factory that builds the matching CodecSystem. VAXX is plug-and-play:
 * pick any Scheme and the factory assembles the right pipeline.
 */
#ifndef APPROXNOC_CORE_CODEC_FACTORY_H
#define APPROXNOC_CORE_CODEC_FACTORY_H

#include <memory>

#include "approx/di_vaxx.h"
#include "approx/error_model.h"
#include "approx/fp_vaxx.h"
#include "compression/codec.h"
#include "compression/dictionary.h"
#include "compression/fpc.h"

namespace approxnoc {

/** Everything needed to instantiate any of the five paper schemes. */
struct CodecConfig {
    /** Number of network endpoints (dictionary schemes). */
    std::size_t n_nodes = 32;
    /** Error threshold e%% (paper default 10). */
    double error_threshold_pct = 10.0;
    /** Error-range computation (paper: shift). */
    ErrorRangeMode error_mode = ErrorRangeMode::Shift;
    /** FP-VAXX priority behaviour (paper: PreferApprox). */
    FpcPriorityMode fpc_priority = FpcPriorityMode::PreferApprox;
    /** DI-VAXX approximation placement (paper: Insertion). */
    VaxxPlacement vaxx_placement = VaxxPlacement::Insertion;
    /** Dictionary parameters (n_nodes is overwritten from above). */
    DictionaryConfig dict;

    ErrorModel
    errorModel() const
    {
        return ErrorModel(error_threshold_pct, error_mode);
    }
};

/**
 * The single registry entry point for codec construction. Every
 * consumer — harness, tools, examples, tests — builds codecs through
 * CodecFactory::create so scheme wiring lives in exactly one place.
 */
class CodecFactory
{
  public:
    /** Build the codec system for @p scheme under @p cfg. */
    static std::unique_ptr<CodecSystem> create(Scheme scheme,
                                               const CodecConfig &cfg = {});

    /** create(scheme_from_string(name), cfg). */
    static std::unique_ptr<CodecSystem> create(const std::string &name,
                                               const CodecConfig &cfg = {});
};

/** Parse a scheme name ("Baseline", "DI-COMP", "di-vaxx"...). */
Scheme scheme_from_string(const std::string &name);

} // namespace approxnoc

#endif // APPROXNOC_CORE_CODEC_FACTORY_H
