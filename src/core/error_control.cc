#include "core/error_control.h"

#include <algorithm>

#include "common/log.h"

namespace approxnoc {

QosController::QosController(double target_error_pct, double initial_pct,
                             double min_pct, double max_pct,
                             double additive_step,
                             double multiplicative_cut)
    : target_(target_error_pct), threshold_(initial_pct), min_(min_pct),
      max_(max_pct), step_(additive_step), cut_(multiplicative_cut)
{
    ANOC_ASSERT(target_error_pct >= 0.0, "QoS target must be non-negative");
    ANOC_ASSERT(multiplicative_cut > 0.0 && multiplicative_cut < 1.0,
                "multiplicative cut must be in (0, 1)");
    ANOC_ASSERT(min_pct <= initial_pct && initial_pct <= max_pct,
                "initial threshold outside [min, max]");
}

double
QosController::update(double measured_error_pct)
{
    if (measured_error_pct > target_) {
        ++violations_;
        threshold_ *= cut_;
    } else {
        threshold_ += step_;
    }
    threshold_ = std::clamp(threshold_, min_, max_);
    return threshold_;
}

} // namespace approxnoc
