/**
 * @file
 * Synthetic destination patterns (paper Fig. 12 uses Uniform Random
 * and Transpose; the usual NoC suspects are included for completeness).
 */
#ifndef APPROXNOC_TRAFFIC_PATTERNS_H
#define APPROXNOC_TRAFFIC_PATTERNS_H

#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace approxnoc {

/** Destination selection policy for synthetic traffic. */
enum class TrafficPattern : std::uint8_t {
    UniformRandom, ///< any other node, uniformly
    Transpose,     ///< node (x,y) -> (y,x) on the node grid
    BitComplement, ///< node i -> ~i
    Hotspot,       ///< a fraction of traffic to one node, rest uniform
    Neighbor,      ///< node i -> i+1 (wraps)
};

TrafficPattern pattern_from_string(const std::string &name);
std::string to_string(TrafficPattern p);

/**
 * Pick a destination for @p src under pattern @p p over @p n_nodes
 * endpoints. Deterministic patterns whose mapping would be the source
 * itself fall back to uniform-random reselection.
 */
NodeId pick_destination(TrafficPattern p, NodeId src, unsigned n_nodes,
                        Rng &rng);

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_PATTERNS_H
