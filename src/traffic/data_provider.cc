#include "traffic/data_provider.h"

#include <bit>
#include <cmath>

#include "common/bits.h"
#include "common/log.h"

namespace approxnoc {

TraceDataProvider::TraceDataProvider(std::vector<DataBlock> blocks)
    : blocks_(std::move(blocks))
{
    ANOC_ASSERT(!blocks_.empty(), "trace data provider needs blocks");
}

DataBlock
TraceDataProvider::next(NodeId src)
{
    if (cursor_.size() <= src)
        cursor_.resize(src + 1, static_cast<std::size_t>(src));
    std::size_t &c = cursor_[src];
    DataBlock b = blocks_[c % blocks_.size()];
    c += 1;
    return b;
}

SyntheticDataProvider::SyntheticDataProvider(DataType type,
                                             std::size_t words_per_block,
                                             double locality,
                                             double spread_pct,
                                             std::uint64_t seed,
                                             double exact_fraction,
                                             std::size_t n_bases)
    : type_(type), words_(words_per_block), locality_(locality),
      spread_pct_(spread_pct), rng_(seed), exact_fraction_(exact_fraction)
{
    // A shared pool of hot values; nodes index into it so senders to a
    // common destination exhibit overlapping value locality.
    for (std::size_t i = 0; i < n_bases; ++i) {
        if (type_ == DataType::Float32) {
            float v = static_cast<float>(rng_.uniform(0.5, 100.0));
            bases_.push_back(std::bit_cast<Word>(v));
        } else {
            bases_.push_back(static_cast<Word>(rng_.range(-50000, 50000)));
        }
    }
}

Word
SyntheticDataProvider::jitter(Word base, NodeId)
{
    double f = 1.0 + rng_.uniform(-spread_pct_, spread_pct_) / 100.0;
    if (type_ == DataType::Float32) {
        float v = std::bit_cast<float>(base) * static_cast<float>(f);
        return std::bit_cast<Word>(v);
    }
    double v = static_cast<double>(static_cast<std::int32_t>(base)) * f;
    return static_cast<Word>(static_cast<std::int32_t>(std::lround(v)));
}

DataBlock
SyntheticDataProvider::next(NodeId src)
{
    std::vector<Word> ws;
    ws.reserve(words_);
    for (std::size_t i = 0; i < words_; ++i) {
        if (rng_.chance(locality_)) {
            Word base = bases_[rng_.next(bases_.size())];
            ws.push_back(rng_.chance(exact_fraction_) ? base
                                                      : jitter(base, src));
        } else if (rng_.chance(0.3)) {
            ws.push_back(0); // zero words are frequent in practice
        } else if (type_ == DataType::Float32) {
            float v = static_cast<float>(rng_.uniform(-1e6, 1e6));
            ws.push_back(std::bit_cast<Word>(v));
        } else {
            ws.push_back(static_cast<Word>(rng_.bits()));
        }
    }
    return DataBlock(std::move(ws), type_, true);
}

} // namespace approxnoc
