#include "traffic/synthetic.h"

#include "common/log.h"
#include "noc/packet.h"

namespace approxnoc {

SyntheticTraffic::SyntheticTraffic(Network &net, const SyntheticConfig &cfg,
                                   DataProvider &provider)
    : Clocked("synthetic-traffic"), net_(net), cfg_(cfg),
      provider_(provider), rng_(cfg.seed)
{
    // Offered load is specified in uncompressed flits/cycle/node; a
    // data packet is 1 head + payload flits, a control packet 1 flit.
    unsigned data_flits =
        1 + payload_flits(cfg.words_per_block * 32,
                          net.config().flit_bits);
    double avg_flits = cfg.data_packet_ratio * data_flits +
                       (1.0 - cfg.data_packet_ratio) * 1.0;
    packet_prob_ = cfg.injection_rate / avg_flits;
    ANOC_ASSERT(packet_prob_ <= 1.0,
                "injection rate too high for Bernoulli generation");
}

void
SyntheticTraffic::evaluate(Cycle)
{
}

void
SyntheticTraffic::advance(Cycle now)
{
    if (!enabled_)
        return;
    unsigned n = net_.config().nodes();
    for (NodeId src = 0; src < n; ++src) {
        if (!rng_.chance(packet_prob_))
            continue;
        NodeId dst = pick_destination(cfg_.pattern, src, n, rng_);
        PacketPtr p;
        if (rng_.chance(cfg_.data_packet_ratio)) {
            DataBlock b = provider_.next(src);
            if (b.approximable())
                b.setApproximable(rng_.chance(cfg_.approx_ratio));
            p = net_.makeDataPacket(src, dst, std::move(b));
        } else {
            p = net_.makeControlPacket(src, dst);
        }
        net_.inject(p, now);
        ++offered_;
    }
}

} // namespace approxnoc
