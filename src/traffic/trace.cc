#include "traffic/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace approxnoc {

std::uint32_t
CommTrace::addBlock(DataBlock b)
{
    blocks_.push_back(std::move(b));
    return static_cast<std::uint32_t>(blocks_.size() - 1);
}

void
CommTrace::add(const TraceRecord &r)
{
    ANOC_ASSERT(records_.empty() || records_.back().t <= r.t,
                "trace records must be time-ordered");
    ANOC_ASSERT(r.block == TraceRecord::kNoBlock || r.block < blocks_.size(),
                "trace record references unknown block");
    records_.push_back(r);
}

Cycle
CommTrace::duration() const
{
    return records_.empty() ? 0 : records_.back().t;
}

double
CommTrace::dataPacketRatio() const
{
    if (records_.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &r : records_)
        n += r.cls == PacketClass::Data ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(records_.size());
}

void
CommTrace::save(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        ANOC_FATAL("cannot open trace file for writing: ", path);
    f << "# approxnoc trace v1\n";
    for (const auto &b : blocks_) {
        f << "B " << to_string(b.type()) << " " << (b.approximable() ? 1 : 0)
          << " " << b.size();
        char buf[16];
        for (std::size_t i = 0; i < b.size(); ++i) {
            std::snprintf(buf, sizeof(buf), " %08x", b.word(i));
            f << buf;
        }
        f << "\n";
    }
    for (const auto &r : records_) {
        f << "R " << r.t << " " << r.src << " " << r.dst << " "
          << (r.cls == PacketClass::Data ? 'D' : 'C') << " ";
        if (r.block == TraceRecord::kNoBlock)
            f << "-";
        else
            f << r.block;
        f << "\n";
    }
}

CommTrace
CommTrace::load(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        ANOC_FATAL("cannot open trace file: ", path);
    CommTrace t;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        char tag;
        is >> tag;
        if (tag == 'B') {
            std::string type_s;
            int approx;
            std::size_t n;
            is >> type_s >> approx >> n;
            DataType type = type_s == "int32"     ? DataType::Int32
                            : type_s == "float32" ? DataType::Float32
                                                  : DataType::Raw;
            std::vector<Word> ws(n);
            for (std::size_t i = 0; i < n; ++i) {
                std::string hex;
                is >> hex;
                ws[i] = static_cast<Word>(std::stoul(hex, nullptr, 16));
            }
            t.addBlock(DataBlock(std::move(ws), type, approx != 0));
        } else if (tag == 'R') {
            TraceRecord r;
            char cls;
            std::string blk;
            is >> r.t >> r.src >> r.dst >> cls >> blk;
            r.cls = cls == 'D' ? PacketClass::Data : PacketClass::Control;
            r.block = blk == "-" ? TraceRecord::kNoBlock
                                 : static_cast<std::uint32_t>(std::stoul(blk));
            t.add(r);
        } else {
            ANOC_FATAL("bad trace line: ", line);
        }
    }
    return t;
}

} // namespace approxnoc
