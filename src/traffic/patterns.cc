#include "traffic/patterns.h"

#include <cmath>

#include "common/bits.h"
#include "common/log.h"

namespace approxnoc {

TrafficPattern
pattern_from_string(const std::string &name)
{
    if (name == "uniform" || name == "ur" || name == "uniform_random")
        return TrafficPattern::UniformRandom;
    if (name == "transpose" || name == "tr")
        return TrafficPattern::Transpose;
    if (name == "bitcomp" || name == "bit_complement" || name == "bc")
        return TrafficPattern::BitComplement;
    if (name == "hotspot" || name == "hs")
        return TrafficPattern::Hotspot;
    if (name == "neighbor" || name == "nn")
        return TrafficPattern::Neighbor;
    ANOC_FATAL("unknown traffic pattern '", name, "'");
}

std::string
to_string(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::UniformRandom: return "uniform-random";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::BitComplement: return "bit-complement";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Neighbor: return "neighbor";
    }
    return "?";
}

NodeId
pick_destination(TrafficPattern p, NodeId src, unsigned n_nodes, Rng &rng)
{
    ANOC_ASSERT(n_nodes > 1, "need at least two nodes for traffic");
    NodeId dst = src;
    switch (p) {
      case TrafficPattern::UniformRandom:
        break;
      case TrafficPattern::Transpose: {
        // Arrange the node space as the tightest square grid.
        unsigned side =
            static_cast<unsigned>(std::lround(std::sqrt(double(n_nodes))));
        if (side * side == n_nodes) {
            unsigned x = src % side, y = src / side;
            dst = x * side + y;
        }
        break;
      }
      case TrafficPattern::BitComplement: {
        unsigned bits = log2_ceil(n_nodes);
        dst = (~src) & ((1u << bits) - 1u);
        if (dst >= n_nodes)
            dst = src; // fall back to uniform below
        break;
      }
      case TrafficPattern::Hotspot: {
        // 25% of traffic to node 0, rest uniform.
        if (rng.chance(0.25))
            dst = 0;
        break;
      }
      case TrafficPattern::Neighbor:
        dst = (src + 1) % n_nodes;
        break;
    }
    while (dst == src)
        dst = static_cast<NodeId>(rng.next(n_nodes));
    return dst;
}

} // namespace approxnoc
