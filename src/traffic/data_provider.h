/**
 * @file
 * Data payload sources for traffic generators. The paper's synthetic
 * workloads (Sec. 5.1) keep the *data* constant and correlated with the
 * benchmark's value locality while the pattern/rate vary: TraceDataProvider
 * replays blocks recorded from a benchmark run; SyntheticDataProvider
 * generates value-clustered blocks when no trace is at hand.
 */
#ifndef APPROXNOC_TRAFFIC_DATA_PROVIDER_H
#define APPROXNOC_TRAFFIC_DATA_PROVIDER_H

#include <memory>
#include <vector>

#include "common/data_block.h"
#include "common/rng.h"
#include "common/types.h"

namespace approxnoc {

/** Supplies the data block for the next data packet at node @p src. */
class DataProvider
{
  public:
    virtual ~DataProvider() = default;
    virtual DataBlock next(NodeId src) = 0;
};

/** Replays a recorded pool of blocks, round-robin per node. */
class TraceDataProvider : public DataProvider
{
  public:
    explicit TraceDataProvider(std::vector<DataBlock> blocks);
    DataBlock next(NodeId src) override;

  private:
    std::vector<DataBlock> blocks_;
    std::vector<std::size_t> cursor_;
};

/**
 * Value-clustered synthetic blocks: each node draws words near a small
 * set of per-node "hot" base values (mimicking benchmark value
 * locality), with occasional uniform noise words.
 */
class SyntheticDataProvider : public DataProvider
{
  public:
    /**
     * @param type block data type
     * @param words_per_block block size (16 = 64 B)
     * @param locality probability a word comes from a hot base value
     * @param spread_pct relative jitter around the base value (percent)
     * @param seed RNG seed
     * @param exact_fraction of the hot words, the fraction repeated
     *        bit-exactly (the rest are jittered by spread_pct) —
     *        exact repeats feed the dictionary schemes, near values
     *        feed the approximate ones
     */
    SyntheticDataProvider(DataType type, std::size_t words_per_block = 16,
                          double locality = 0.8, double spread_pct = 5.0,
                          std::uint64_t seed = 1,
                          double exact_fraction = 0.5,
                          std::size_t n_bases = 16);

    DataBlock next(NodeId src) override;

  private:
    Word jitter(Word base, NodeId src);

    DataType type_;
    std::size_t words_;
    double locality_;
    double spread_pct_;
    Rng rng_;
    double exact_fraction_;
    std::vector<Word> bases_;
};

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_DATA_PROVIDER_H
