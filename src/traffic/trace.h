/**
 * @file
 * Communication traces: the timestamped packet stream (with data
 * payloads) a workload run produces, replayable through the NoC under
 * any scheme — the paper's trace-driven methodology (Sec. 5.1).
 */
#ifndef APPROXNOC_TRAFFIC_TRACE_H
#define APPROXNOC_TRAFFIC_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/data_block.h"
#include "common/types.h"

namespace approxnoc {

/** One packet in a trace. */
struct TraceRecord {
    Cycle t = 0;
    NodeId src = 0;
    NodeId dst = 0;
    PacketClass cls = PacketClass::Control;
    /** Index into CommTrace::blocks(), or kNoBlock for control. */
    std::uint32_t block = kNoBlock;

    static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;
};

/** A full trace: deduplicated block pool + time-ordered records. */
class CommTrace
{
  public:
    /** Register a payload block; returns its index. */
    std::uint32_t addBlock(DataBlock b);

    /** Append a record (timestamps must be non-decreasing). */
    void add(const TraceRecord &r);

    const std::vector<TraceRecord> &records() const { return records_; }
    const std::vector<DataBlock> &blocks() const { return blocks_; }
    const DataBlock &block(std::uint32_t i) const { return blocks_[i]; }

    bool empty() const { return records_.empty(); }
    std::size_t size() const { return records_.size(); }

    /** Last record timestamp (0 when empty). */
    Cycle duration() const;

    /** Fraction of records that are data packets. */
    double dataPacketRatio() const;

    /** Serialize to / parse from the textual trace format. */
    void save(const std::string &path) const;
    static CommTrace load(const std::string &path);

  private:
    std::vector<DataBlock> blocks_;
    std::vector<TraceRecord> records_;
};

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_TRACE_H
