/**
 * @file
 * Closed-loop request-reply traffic: every core node keeps a bounded
 * window of outstanding requests to home nodes; each request (1-flit
 * control packet) triggers a data-block reply from the home. This is
 * the memory-system-shaped load the trace replays approximate, but
 * self-throttling — useful for end-to-end latency studies where open
 * loops would diverge past saturation.
 */
#ifndef APPROXNOC_TRAFFIC_CLOSED_LOOP_H
#define APPROXNOC_TRAFFIC_CLOSED_LOOP_H

#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "noc/network.h"
#include "sim/clocked.h"
#include "traffic/data_provider.h"

namespace approxnoc {

/** Closed-loop generator parameters. */
struct ClosedLoopConfig {
    /** Nodes with even ids issue requests; odd ids serve them
     * (matching the cache model's core/home interleave). */
    unsigned window = 4;    ///< max outstanding requests per core
    Cycle think_time = 4;   ///< cycles between a reply and the next request
    double approx_ratio = 0.75;
    std::uint64_t seed = 1234;
};

/**
 * The generator. Installs itself as the network's delivery callback
 * (don't combine with another user callback).
 */
class ClosedLoopTraffic : public Clocked
{
  public:
    ClosedLoopTraffic(Network &net, const ClosedLoopConfig &cfg,
                      DataProvider &provider);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** Stop issuing new requests (outstanding ones still complete). */
    void setEnabled(bool on) { enabled_ = on; }

    /** Round-trip latency of completed request/reply pairs. */
    const RunningStat &roundTrip() const { return round_trip_; }
    std::uint64_t requestsIssued() const { return requests_; }
    std::uint64_t repliesReceived() const { return replies_; }

    /** True when no request is outstanding. */
    bool quiesced() const;

  private:
    void onDelivery(const PacketPtr &pkt, Cycle now);

    struct CoreState {
        unsigned outstanding = 0;
        Cycle next_issue = 0;
    };

    Network &net_;
    ClosedLoopConfig cfg_;
    DataProvider &provider_;
    Rng rng_;
    bool enabled_ = true;
    std::vector<NodeId> cores_;
    std::vector<NodeId> homes_;
    std::vector<CoreState> state_; ///< parallel to cores_
    /** request issue time by request packet id (reply carries it back). */
    std::map<std::uint64_t, std::pair<NodeId, Cycle>> pending_;
    RunningStat round_trip_;
    std::uint64_t requests_ = 0;
    std::uint64_t replies_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_CLOSED_LOOP_H
