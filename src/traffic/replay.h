/**
 * @file
 * Trace replay: injects a CommTrace into a Network, optionally scaling
 * timestamps (to vary load density) and overriding the approximable
 * packet ratio (paper Sec. 5.3.2's knob).
 */
#ifndef APPROXNOC_TRAFFIC_REPLAY_H
#define APPROXNOC_TRAFFIC_REPLAY_H

#include "noc/network.h"
#include "sim/clocked.h"
#include "traffic/trace.h"

namespace approxnoc {

/** Replays a trace through a network. */
class TraceReplay : public Clocked
{
  public:
    /**
     * @param net the target network.
     * @param trace the trace to replay (borrowed; outlive the replay).
     * @param time_scale multiply record timestamps by this (> 0; < 1
     *        densifies traffic).
     * @param approx_ratio fraction of annotated-approximable data
     *        packets that keep the annotation (default 0.75 per Table 1).
     */
    TraceReplay(Network &net, const CommTrace &trace, double time_scale = 1.0,
                double approx_ratio = 0.75);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** True when every record has been injected. */
    bool done() const { return cursor_ >= trace_.size(); }

    std::uint64_t injected() const { return injected_; }

  private:
    Network &net_;
    const CommTrace &trace_;
    double time_scale_;
    double approx_ratio_;
    std::size_t cursor_ = 0;
    std::uint64_t injected_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_REPLAY_H
