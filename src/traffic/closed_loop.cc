#include "traffic/closed_loop.h"

#include "common/log.h"

namespace approxnoc {

ClosedLoopTraffic::ClosedLoopTraffic(Network &net,
                                     const ClosedLoopConfig &cfg,
                                     DataProvider &provider)
    : Clocked("closed-loop"), net_(net), cfg_(cfg), provider_(provider),
      rng_(cfg.seed)
{
    for (NodeId n = 0; n < net.config().nodes(); ++n)
        (n % 2 == 0 ? cores_ : homes_).push_back(n);
    ANOC_ASSERT(!cores_.empty() && !homes_.empty(),
                "closed loop needs both cores and homes");
    state_.resize(cores_.size());
    net_.setDeliveryCallback(
        [this](const PacketPtr &p, Cycle now) { onDelivery(p, now); });
}

void
ClosedLoopTraffic::evaluate(Cycle)
{
}

void
ClosedLoopTraffic::advance(Cycle now)
{
    if (!enabled_)
        return;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        CoreState &s = state_[i];
        while (s.outstanding < cfg_.window && s.next_issue <= now) {
            NodeId home = homes_[rng_.next(homes_.size())];
            auto req = net_.makeControlPacket(cores_[i], home);
            pending_[req->id] = {cores_[i], now};
            net_.inject(req, now);
            ++s.outstanding;
            ++requests_;
        }
    }
}

void
ClosedLoopTraffic::onDelivery(const PacketPtr &pkt, Cycle now)
{
    auto it = pending_.find(pkt->id);
    if (it == pending_.end())
        return; // not ours (e.g. dictionary notification)

    auto [core, issued] = it->second;
    pending_.erase(it);

    if (pkt->cls == PacketClass::Control) {
        // Request arrived at the home: send the data reply, carrying
        // the original issue time forward under the reply's id.
        DataBlock b = provider_.next(pkt->dst);
        if (b.approximable())
            b.setApproximable(rng_.chance(cfg_.approx_ratio));
        auto reply = net_.makeDataPacket(pkt->dst, core, std::move(b));
        pending_[reply->id] = {core, issued};
        net_.inject(reply, now);
        return;
    }

    // Reply arrived back at the core.
    round_trip_.add(static_cast<double>(pkt->decode_done - issued));
    ++replies_;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (cores_[i] == core) {
            ANOC_ASSERT(state_[i].outstanding > 0,
                        "reply without outstanding request");
            --state_[i].outstanding;
            state_[i].next_issue = now + cfg_.think_time;
            break;
        }
    }
}

bool
ClosedLoopTraffic::quiesced() const
{
    return pending_.empty();
}

} // namespace approxnoc
