/**
 * @file
 * Open-loop synthetic traffic for the throughput studies (paper
 * Fig. 12): per-node Bernoulli packet generation at an offered load in
 * flits/cycle/node (counted in *uncompressed* flits, so all schemes see
 * the same offered work), a configurable data:control packet mix and a
 * DataProvider for payloads.
 */
#ifndef APPROXNOC_TRAFFIC_SYNTHETIC_H
#define APPROXNOC_TRAFFIC_SYNTHETIC_H

#include <memory>

#include "common/rng.h"
#include "noc/network.h"
#include "sim/clocked.h"
#include "traffic/data_provider.h"
#include "traffic/patterns.h"

namespace approxnoc {

/** Synthetic traffic parameters. */
struct SyntheticConfig {
    double injection_rate = 0.1;    ///< offered flits/cycle/node
    double data_packet_ratio = 0.25; ///< paper Fig. 12: 25:75 data:control
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    double approx_ratio = 0.75;     ///< approximable data packets
    std::size_t words_per_block = 16; ///< 64 B blocks
    std::uint64_t seed = 42;
};

/** The generator. Register with the Simulator alongside the Network. */
class SyntheticTraffic : public Clocked
{
  public:
    SyntheticTraffic(Network &net, const SyntheticConfig &cfg,
                     DataProvider &provider);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** Stop/resume offering new packets (drain phases). */
    void setEnabled(bool on) { enabled_ = on; }

    std::uint64_t packetsOffered() const { return offered_; }

  private:
    Network &net_;
    SyntheticConfig cfg_;
    DataProvider &provider_;
    Rng rng_;
    bool enabled_ = true;
    double packet_prob_; ///< per-node per-cycle packet probability
    std::uint64_t offered_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TRAFFIC_SYNTHETIC_H
