#include "traffic/replay.h"

#include <cmath>

#include "common/log.h"

namespace approxnoc {

namespace {
/** Deterministic per-record hash for the approximable-ratio draw. */
std::uint32_t
mix(std::uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7FEB352Du;
    x ^= x >> 15;
    x *= 0x846CA68Bu;
    x ^= x >> 16;
    return x;
}
} // namespace

TraceReplay::TraceReplay(Network &net, const CommTrace &trace,
                         double time_scale, double approx_ratio)
    : Clocked("trace-replay"), net_(net), trace_(trace),
      time_scale_(time_scale), approx_ratio_(approx_ratio)
{
    ANOC_ASSERT(time_scale > 0.0, "time scale must be positive");
}

void
TraceReplay::evaluate(Cycle)
{
}

void
TraceReplay::advance(Cycle now)
{
    unsigned n_nodes = net_.config().nodes();
    while (cursor_ < trace_.size()) {
        const TraceRecord &r = trace_.records()[cursor_];
        Cycle when = static_cast<Cycle>(
            std::llround(static_cast<double>(r.t) * time_scale_));
        if (when > now)
            break;

        NodeId src = r.src % n_nodes;
        NodeId dst = r.dst % n_nodes;
        if (src != dst) {
            PacketPtr p;
            if (r.cls == PacketClass::Data &&
                r.block != TraceRecord::kNoBlock) {
                DataBlock b = trace_.block(r.block);
                if (b.approximable()) {
                    bool keep = (mix(static_cast<std::uint32_t>(cursor_)) %
                                 10000) < approx_ratio_ * 10000.0;
                    b.setApproximable(keep);
                }
                p = net_.makeDataPacket(src, dst, std::move(b));
            } else {
                p = net_.makeControlPacket(src, dst);
            }
            net_.inject(p, now);
            ++injected_;
        }
        ++cursor_;
    }
}

} // namespace approxnoc
