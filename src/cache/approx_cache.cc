#include "cache/approx_cache.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace approxnoc {

namespace {
std::uint32_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
}
} // namespace

ApproxCacheSystem::ApproxCacheSystem(const CacheConfig &cfg,
                                     CodecSystem *codec)
    : cfg_(cfg), codec_(codec)
{
    ANOC_ASSERT(cfg.line_bytes % 4 == 0, "line size must be word multiple");
    ANOC_ASSERT(cfg.n_nodes == 2 * cfg.n_cores,
                "interleaved core/home mapping needs one home per core");
    sets_ = static_cast<unsigned>(cfg.l1_bytes / (cfg.line_bytes * cfg.assoc));
    ANOC_ASSERT(sets_ > 0, "L1 too small for one set");
    l1_.resize(cfg.n_cores);
    for (auto &c : l1_) {
        c.lines.resize(static_cast<std::size_t>(sets_) * cfg.assoc);
        for (auto &l : c.lines)
            l.data.resize(cfg.wordsPerLine(), 0);
    }
    core_time_.resize(cfg.n_cores, 0);

    l2_sets_ = static_cast<unsigned>(cfg.l2_bytes /
                                     (cfg.line_bytes * cfg.l2_assoc));
    ANOC_ASSERT(l2_sets_ > 0, "L2 too small for one set");
    l2_.resize(static_cast<std::size_t>(l2_sets_) * cfg.l2_assoc);
}

bool
ApproxCacheSystem::l2Access(std::size_t line_idx)
{
    std::size_t set = line_idx % l2_sets_;
    L2Way *victim = &l2_[set * cfg_.l2_assoc];
    for (unsigned w = 0; w < cfg_.l2_assoc; ++w) {
        L2Way &way = l2_[set * cfg_.l2_assoc + w];
        if (way.valid && way.tag == line_idx) {
            way.lru = ++l2_tick_;
            ++l2_hits_;
            return true;
        }
        if (!way.valid)
            victim = &way;
        else if (victim->valid && way.lru < victim->lru)
            victim = &way;
    }
    ++l2_misses_;
    victim->valid = true;
    victim->tag = line_idx;
    victim->lru = ++l2_tick_;
    return false;
}

std::size_t
ApproxCacheSystem::alloc(std::size_t words, const std::string &)
{
    // Line-align every region so annotations stay line-homogeneous.
    unsigned wpl = cfg_.wordsPerLine();
    std::size_t base = (mem_.size() + wpl - 1) / wpl * wpl;
    std::size_t padded = (words + wpl - 1) / wpl * wpl;
    mem_.resize(base + padded, 0);
    wtype_.resize(mem_.size(), DataType::Raw);
    return base;
}

void
ApproxCacheSystem::annotate(std::size_t base, std::size_t words, DataType t)
{
    ANOC_ASSERT(base + words <= mem_.size(), "annotation out of range");
    for (std::size_t i = 0; i < words; ++i)
        wtype_[base + i] = t;
}

void
ApproxCacheSystem::initWord(std::size_t addr, Word w)
{
    ANOC_ASSERT(addr < mem_.size(), "initWord out of range");
    mem_[addr] = w;
}

void
ApproxCacheSystem::initFloat(std::size_t addr, float v)
{
    initWord(addr, std::bit_cast<Word>(v));
}

void
ApproxCacheSystem::initInt(std::size_t addr, std::int32_t v)
{
    initWord(addr, static_cast<Word>(v));
}

Word
ApproxCacheSystem::peekWord(std::size_t addr) const
{
    ANOC_ASSERT(addr < mem_.size(), "peekWord out of range");
    return mem_[addr];
}

float
ApproxCacheSystem::peekFloat(std::size_t addr) const
{
    return std::bit_cast<float>(peekWord(addr));
}

std::int32_t
ApproxCacheSystem::peekInt(std::size_t addr) const
{
    return static_cast<std::int32_t>(peekWord(addr));
}

NodeId
ApproxCacheSystem::homeOf(std::size_t line_idx) const
{
    unsigned homes = cfg_.n_nodes - cfg_.n_cores;
    return nodeOfHome(static_cast<unsigned>(line_idx % homes));
}

DataBlock
ApproxCacheSystem::lineBlock(std::size_t line_idx) const
{
    unsigned wpl = cfg_.wordsPerLine();
    std::size_t base = line_idx * wpl;
    std::vector<Word> ws(mem_.begin() + base, mem_.begin() + base + wpl);
    DataType type;
    DataBlock b(std::move(ws), DataType::Raw, false);
    if (lineApproximable(line_idx, type)) {
        b.setType(type);
        // The approximable-packet-ratio knob: a deterministic draw per
        // line keeps behaviour reproducible across schemes.
        bool approx = (mix(line_idx) % 10000) < cfg_.approx_ratio * 10000.0;
        b.setApproximable(approx);
    }
    return b;
}

bool
ApproxCacheSystem::lineApproximable(std::size_t line_idx, DataType &type) const
{
    unsigned wpl = cfg_.wordsPerLine();
    std::size_t base = line_idx * wpl;
    DataType t = wtype_[base];
    if (t == DataType::Raw)
        return false;
    for (unsigned i = 1; i < wpl; ++i)
        if (wtype_[base + i] != t)
            return false; // conservative: mixed-type lines stay precise
    type = t;
    return true;
}

ApproxCacheSystem::Line &
ApproxCacheSystem::lookup(unsigned core, std::size_t line_idx, bool &hit)
{
    L1 &c = l1_[core];
    std::size_t set = line_idx % sets_;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &l = c.lines[set * cfg_.assoc + w];
        if (l.valid && l.tag == line_idx) {
            hit = true;
            l.lru = ++c.tick;
            return l;
        }
    }
    hit = false;
    // Victim: an invalid way if any, else the LRU way.
    Line *victim = &c.lines[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &l = c.lines[set * cfg_.assoc + w];
        if (!l.valid)
            return l;
        if (l.lru < victim->lru)
            victim = &l;
    }
    return *victim;
}

void
ApproxCacheSystem::writeback(unsigned core, const Line &way)
{
    ++writebacks_;
    unsigned wpl = cfg_.wordsPerLine();
    std::size_t base = way.tag * wpl;
    std::copy(way.data.begin(), way.data.end(), mem_.begin() + base);
    if (trace_) {
        DataBlock b(way.data, DataType::Raw, false);
        DataType t;
        if (lineApproximable(way.tag, t))
            b.setType(t); // written-back data rides precise
        std::uint32_t blk = trace_->addBlock(std::move(b));
        trace_->add(TraceRecord{time_, nodeOfCore(core), homeOf(way.tag),
                                PacketClass::Data, blk});
    }
}

void
ApproxCacheSystem::fill(unsigned core, Line &way, std::size_t line_idx)
{
    ++misses_;
    ++miss_seq_;
    if (way.valid && way.dirty)
        writeback(core, way);

    DataBlock precise = lineBlock(line_idx);
    if (dedup_)
        precise = dedup_->canonicalize(precise);
    NodeId home = homeOf(line_idx);
    NodeId core_node = nodeOfCore(core);

    Cycle penalty = cfg_.miss_base_cycles;
    if (!l2Access(line_idx))
        penalty += cfg_.l2_miss_cycles; // slice fetches from memory
    if (codec_ && home != core_node) {
        // encode+decode back to back on one thread: fills are free to
        // use any (home, core) pair because the cache never overlaps
        // codec calls. A parallel fill path would shard encodes by
        // home node and decodes by core node, phase-separated — the
        // CodecSystem isolation contracts (compression/codec.h);
        // harness::ShardedCodecPipeline packages exactly that.
        EncodedBlock enc = codec_->encodeBlock(precise, home, core_node, time_);
        DataBlock delivered = codec_->decodeBlock(enc, home, core_node, time_);
        unsigned flits = 1 + static_cast<unsigned>((enc.bits() + 63) / 64);
        penalty += static_cast<Cycle>(flits) * cfg_.per_flit_cycles +
                   codec_->compressionLatency() +
                   codec_->decompressionLatency();
        way.data = delivered.words();
    } else {
        unsigned flits =
            1 + static_cast<unsigned>((precise.sizeBits() + 63) / 64);
        penalty += static_cast<Cycle>(flits) * cfg_.per_flit_cycles;
        way.data = precise.words();
    }

    if (trace_) {
        trace_->add(TraceRecord{time_, core_node, home, PacketClass::Control,
                                TraceRecord::kNoBlock});
        std::uint32_t blk = trace_->addBlock(lineBlock(line_idx));
        trace_->add(
            TraceRecord{time_ + 1, home, core_node, PacketClass::Data, blk});
    }

    way.valid = true;
    way.dirty = false;
    way.tag = line_idx;
    way.lru = ++l1_[core].tick;
    core_time_[core] += penalty;
    time_ += 1;
}

Word
ApproxCacheSystem::load(unsigned core, std::size_t addr)
{
    ANOC_ASSERT(core < cfg_.n_cores && addr < mem_.size(),
                "load out of range");
    ++accesses_;
    core_time_[core] += cfg_.hit_cycles;
    time_ += 1;
    std::size_t line_idx = addr / cfg_.wordsPerLine();
    bool hit;
    Line &way = lookup(core, line_idx, hit);
    if (!hit)
        fill(core, way, line_idx);
    return way.data[addr % cfg_.wordsPerLine()];
}

void
ApproxCacheSystem::store(unsigned core, std::size_t addr, Word w)
{
    ANOC_ASSERT(core < cfg_.n_cores && addr < mem_.size(),
                "store out of range");
    ++accesses_;
    core_time_[core] += cfg_.hit_cycles;
    time_ += 1;
    std::size_t line_idx = addr / cfg_.wordsPerLine();
    bool hit;
    Line &way = lookup(core, line_idx, hit);
    if (!hit)
        fill(core, way, line_idx); // write-allocate
    way.data[addr % cfg_.wordsPerLine()] = w;
    way.dirty = true;
}

float
ApproxCacheSystem::loadFloat(unsigned core, std::size_t addr)
{
    return std::bit_cast<float>(load(core, addr));
}

void
ApproxCacheSystem::storeFloat(unsigned core, std::size_t addr, float v)
{
    store(core, addr, std::bit_cast<Word>(v));
}

std::int32_t
ApproxCacheSystem::loadInt(unsigned core, std::size_t addr)
{
    return static_cast<std::int32_t>(load(core, addr));
}

void
ApproxCacheSystem::storeInt(unsigned core, std::size_t addr, std::int32_t v)
{
    store(core, addr, static_cast<Word>(v));
}

void
ApproxCacheSystem::barrier()
{
    for (unsigned core = 0; core < cfg_.n_cores; ++core) {
        for (auto &l : l1_[core].lines) {
            if (l.valid && l.dirty)
                writeback(core, l);
            l.valid = false;
            l.dirty = false;
        }
    }
    // Barrier cost: cores synchronize to the slowest.
    Cycle max_t = *std::max_element(core_time_.begin(), core_time_.end());
    std::fill(core_time_.begin(), core_time_.end(), max_t);
}

double
ApproxCacheSystem::missRate() const
{
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
}

void
ApproxCacheSystem::enableDoppelganger(const DoppelgangerConfig &cfg)
{
    dedup_ = std::make_unique<DoppelgangerTable>(cfg);
}

Cycle
ApproxCacheSystem::executionCycles() const
{
    return *std::max_element(core_time_.begin(), core_time_.end());
}

} // namespace approxnoc
