#include "cache/doppelganger.h"

#include "common/bits.h"
#include "common/log.h"

namespace approxnoc {

DoppelgangerTable::DoppelgangerTable(const DoppelgangerConfig &cfg)
    : cfg_(cfg), avcl_(ErrorModel(cfg.threshold_pct, cfg.mode))
{
    ANOC_ASSERT(cfg.entries > 0, "dedup table needs at least one entry");
}

std::vector<Word>
DoppelgangerTable::signatureOf(const DataBlock &block)
{
    std::vector<Word> sig;
    sig.reserve(block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
        Word w = block.word(i);
        ApproxDecision d = avcl_.analyze(w, block.type());
        sig.push_back(d.bypass ? w : (w & ~low_mask32(d.dont_care_bits)));
    }
    return sig;
}

bool
DoppelgangerTable::withinThreshold(const DataBlock &block,
                                   const std::vector<Word> &c) const
{
    // Signature equality already confines each word to the canonical
    // word's quantization cell, but the cells were computed from the
    // *incoming* word; verify against the canonical explicitly so the
    // substitution is always within bound (paper-style per-block map
    // check in Doppelganger).
    const double bound = cfg_.threshold_pct / (100.0 - cfg_.threshold_pct);
    for (std::size_t i = 0; i < block.size(); ++i) {
        if (block.word(i) == c[i])
            continue;
        double err = avcl_relative_error(block.word(i), c[i], block.type());
        if (err > bound)
            return false;
    }
    return true;
}

DataBlock
DoppelgangerTable::canonicalize(const DataBlock &block)
{
    if (!block.approximable() || block.type() == DataType::Raw ||
        block.size() == 0)
        return block;
    ++lookups_;

    std::vector<Word> sig = signatureOf(block);
    auto it = table_.find(sig);
    if (it != table_.end()) {
        Entry &e = *it->second;
        if (withinThreshold(block, e.canonical)) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);
            return DataBlock(e.canonical, block.type(),
                             block.approximable());
        }
        // Signature collided outside the bound: refresh the canonical.
        e.canonical = block.words();
        lru_.splice(lru_.begin(), lru_, it->second);
        return block;
    }

    // Install as a new canonical, evicting the LRU entry when full.
    if (lru_.size() >= cfg_.entries) {
        table_.erase(lru_.back().signature);
        lru_.pop_back();
    }
    lru_.push_front(Entry{sig, block.words()});
    table_[std::move(sig)] = lru_.begin();
    return block;
}

} // namespace approxnoc
