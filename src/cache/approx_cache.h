/**
 * @file
 * The full-system substitute for the paper's gem5 + Pin methodology
 * (Sec. 5.4): a multicore private-L1 cache model over a shared memory
 * image, where every L1 miss emulates a data response packet from a
 * remote home node. The response block runs through the APPROX-NoC
 * codec, so the *approximated* data is installed and consumed by the
 * workload — application output error propagates exactly as it would
 * with approximation on the NoC response path.
 *
 * Coherence model: cores write-allocate into private L1s and write
 * back on eviction; workloads partition writable data across cores and
 * call barrier() between phases (write-back + invalidate-all), making
 * the system coherent at barriers. This matches how the data-parallel
 * PARSEC kernels actually share data.
 */
#ifndef APPROXNOC_CACHE_APPROX_CACHE_H
#define APPROXNOC_CACHE_APPROX_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "cache/doppelganger.h"
#include "common/data_block.h"
#include "common/types.h"
#include "compression/codec.h"
#include "traffic/trace.h"

namespace approxnoc {

/** Cache-system parameters (paper Sec. 5.4: 16 cores, 64 KB 2-way). */
struct CacheConfig {
    unsigned n_cores = 16;
    unsigned n_nodes = 32;      ///< network endpoints (cores + homes)
    std::size_t l1_bytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned line_bytes = 64;   ///< 16 words
    /** Shared L2, distributed across the home slices (Table 1: 2 MB). */
    std::size_t l2_bytes = 2 * 1024 * 1024;
    unsigned l2_assoc = 8;
    Cycle hit_cycles = 1;
    Cycle miss_base_cycles = 24; ///< request + directory overhead
    Cycle l2_miss_cycles = 100;  ///< memory access behind the slice
    Cycle per_flit_cycles = 1;   ///< serialization of the response
    double approx_ratio = 0.75;  ///< Table 1 default
    std::uint64_t seed = 99;

    unsigned wordsPerLine() const { return line_bytes / 4; }
};

/**
 * Word-addressed approximate memory system. Addresses are in words.
 */
class ApproxCacheSystem
{
  public:
    /** @param codec borrowed; nullptr means precise (no emulation). */
    ApproxCacheSystem(const CacheConfig &cfg, CodecSystem *codec);

    const CacheConfig &config() const { return cfg_; }

    /** @name Allocation and annotation */
    ///@{
    /** Reserve @p words words; returns the base word address. */
    std::size_t alloc(std::size_t words, const std::string &name);
    /** Mark [base, base+words) as approximable data of type @p t. */
    void annotate(std::size_t base, std::size_t words, DataType t);
    ///@}

    /** @name Precise (non-simulated) access, for init and readback */
    ///@{
    void initWord(std::size_t addr, Word w);
    void initFloat(std::size_t addr, float v);
    void initInt(std::size_t addr, std::int32_t v);
    Word peekWord(std::size_t addr) const;
    float peekFloat(std::size_t addr) const;
    std::int32_t peekInt(std::size_t addr) const;
    ///@}

    /** @name Simulated per-core accesses */
    ///@{
    Word load(unsigned core, std::size_t addr);
    void store(unsigned core, std::size_t addr, Word w);
    float loadFloat(unsigned core, std::size_t addr);
    void storeFloat(unsigned core, std::size_t addr, float v);
    std::int32_t loadInt(unsigned core, std::size_t addr);
    void storeInt(unsigned core, std::size_t addr, std::int32_t v);
    ///@}

    /** Write back every dirty line and invalidate all L1s. */
    void barrier();

    /** Attach a trace sink; misses/writebacks are recorded into it. */
    void setTraceSink(CommTrace *trace) { trace_ = trace; }

    /**
     * Enable Doppelganger-style approximate dedup at the home slices
     * (paper Sec. 6's synergy): response blocks are canonicalized
     * before they enter the NoC codec path.
     */
    void enableDoppelganger(const DoppelgangerConfig &cfg);
    /** The dedup table, when enabled (stats); nullptr otherwise. */
    const DoppelgangerTable *doppelganger() const { return dedup_.get(); }

    /** @name Stats */
    ///@{
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t l2Hits() const { return l2_hits_; }
    std::uint64_t l2Misses() const { return l2_misses_; }
    double missRate() const;
    /** Execution time estimate: the slowest core's cycle count. */
    Cycle executionCycles() const;
    ///@}

    /**
     * Network endpoint of core @p c. Cores and L2 home slices
     * interleave (core c at node 2c, home h at node 2h+1) so each
     * cmesh router hosts one core and one slice, as in the paper's
     * tiled layout.
     */
    NodeId nodeOfCore(unsigned c) const { return 2 * c; }
    /** Network endpoint of home slice @p h. */
    NodeId nodeOfHome(unsigned h) const { return 2 * h + 1; }

  private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        std::size_t tag = 0; ///< line index in memory
        std::uint64_t lru = 0;
        std::vector<Word> data;
    };
    struct L1 {
        std::vector<Line> lines; ///< sets * assoc, way-major within set
        std::uint64_t tick = 0;
    };

    Line &lookup(unsigned core, std::size_t line_idx, bool &hit);
    void fill(unsigned core, Line &way, std::size_t line_idx);
    /** Tag-only lookup+fill at the home slice; true on L2 hit. */
    bool l2Access(std::size_t line_idx);
    void writeback(unsigned core, const Line &way);
    DataBlock lineBlock(std::size_t line_idx) const;
    NodeId homeOf(std::size_t line_idx) const;
    bool lineApproximable(std::size_t line_idx, DataType &type) const;

    CacheConfig cfg_;
    CodecSystem *codec_;
    std::vector<Word> mem_;
    std::vector<DataType> wtype_; ///< per-word annotation (Raw = none)
    std::vector<L1> l1_;
    std::vector<Cycle> core_time_;
    unsigned sets_;
    Cycle time_ = 0; ///< global logical time for codec/trace
    CommTrace *trace_ = nullptr;
    std::unique_ptr<DoppelgangerTable> dedup_;
    std::uint64_t miss_seq_ = 0;

    /**
     * Shared-L2 home slices, tag-only (data always comes from the
     * memory image; the tags model hit/miss timing and traffic).
     */
    struct L2Way {
        bool valid = false;
        std::size_t tag = 0;
        std::uint64_t lru = 0;
    };
    std::vector<L2Way> l2_;
    unsigned l2_sets_ = 0;
    std::uint64_t l2_tick_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t l2_hits_ = 0;
    std::uint64_t l2_misses_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_CACHE_APPROX_CACHE_H
