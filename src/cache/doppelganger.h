/**
 * @file
 * Doppelganger-style approximate block deduplication (San Miguel et
 * al., MICRO'15 [23]) at the home slices, as a synergy partner for
 * APPROX-NoC: the paper argues its network-side approximation "can
 * work in synergy with approximate storage mechanisms like
 * Doppelganger cache" (Sec. 6).
 *
 * Model: each home keeps a small table of canonical blocks keyed by an
 * approximate signature (the AVCL don't-care masks quantize each word).
 * When a response block's signature matches a canonical block AND every
 * word is verified to sit within the error threshold of the canonical
 * word, the canonical block is returned instead — deduplicating
 * storage and making the NoC-visible value stream more repetitive
 * (which in turn feeds the dictionary compressors).
 */
#ifndef APPROXNOC_CACHE_DOPPELGANGER_H
#define APPROXNOC_CACHE_DOPPELGANGER_H

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "approx/avcl.h"
#include "common/data_block.h"

namespace approxnoc {

/** Parameters of the approximate-dedup table. */
struct DoppelgangerConfig {
    std::size_t entries = 64;  ///< canonical blocks kept (LRU)
    double threshold_pct = 10.0;
    ErrorRangeMode mode = ErrorRangeMode::Shift;
};

/** The approximate block-dedup table. */
class DoppelgangerTable
{
  public:
    explicit DoppelgangerTable(const DoppelgangerConfig &cfg);

    /**
     * Map @p block to its canonical representative. Non-approximable
     * or Raw blocks pass through untouched. On a verified signature
     * hit the canonical block (with @p block's metadata) is returned
     * and dedupHits() increments; otherwise @p block is installed as a
     * new canonical and returned unchanged.
     */
    DataBlock canonicalize(const DataBlock &block);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t dedupHits() const { return hits_; }
    std::size_t size() const { return table_.size(); }

  private:
    /** Signature: every word reduced to its AVCL care bits. */
    std::vector<Word> signatureOf(const DataBlock &block);

    /** True when every word of @p block is within threshold of @p c. */
    bool withinThreshold(const DataBlock &block,
                         const std::vector<Word> &c) const;

    struct Entry {
        std::vector<Word> signature;
        std::vector<Word> canonical;
    };

    DoppelgangerConfig cfg_;
    Avcl avcl_;
    std::list<Entry> lru_; ///< front = most recently used
    std::map<std::vector<Word>, std::list<Entry>::iterator> table_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_CACHE_DOPPELGANGER_H
