/**
 * @file
 * Lightweight self-profiling for the simulator: named phases, scoped
 * steady-clock timers, relaxed-atomic accumulation. Header-only (the
 * only dependency is `common/relaxed_counter.h`) so that `src/sim` —
 * which `approxnoc_telemetry` itself links against — can be
 * instrumented without creating a library cycle.
 *
 * Cost model: every instrumentation site holds a possibly-null
 * `PhaseProfiler *`. A `Scope` constructed from a null profiler is a
 * single branch and no clock read — the disabled overhead the perf
 * gate bounds at <1%. When enabled, a scope is two `steady_clock`
 * reads and two relaxed fetch-adds; accumulation commutes, so shards
 * can add into the same profiler concurrently.
 *
 * Phase registration (`definePhase`) is NOT thread-safe against
 * concurrent `add`/`Scope` traffic — define every phase during
 * single-threaded setup (binding time), then profile freely.
 *
 * Reported numbers are wall-clock and therefore inherently
 * non-deterministic; `profile.json` is a tuning artifact, explicitly
 * outside the byte-identical determinism contract that metrics and
 * `qor.json` honor.
 */
#ifndef APPROXNOC_TELEMETRY_PHASE_PROFILER_H
#define APPROXNOC_TELEMETRY_PHASE_PROFILER_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/relaxed_counter.h"

namespace approxnoc::telemetry {

/** Accumulates (ns, calls) per named phase; merge folds by name. */
class PhaseProfiler
{
  public:
    using PhaseId = std::size_t;

    /** Snapshot row for reporting. */
    struct Phase {
        std::string name;
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
    };

    PhaseProfiler() = default;

    /** Register (or look up) a phase by name. Setup-time only. */
    PhaseId
    definePhase(const std::string &name)
    {
        auto it = by_name_.find(name);
        if (it != by_name_.end())
            return it->second;
        PhaseId id = names_.size();
        names_.push_back(name);
        cells_.emplace_back(); // deque: no reference invalidation
        by_name_.emplace(name, id);
        return id;
    }

    /** Record @p ns nanoseconds / @p calls invocations against @p id. */
    void
    add(PhaseId id, std::uint64_t ns, std::uint64_t calls = 1)
    {
        Cell &c = cells_[id];
        c.ns.add(ns);
        c.calls.add(calls);
    }

    /**
     * RAII phase timer. `Scope(nullptr, id)` is inert: the null check
     * is the only work, which is what keeps disabled profiling off the
     * hot-path cost profile.
     */
    class Scope
    {
      public:
        Scope(PhaseProfiler *p, PhaseId id) : p_(p), id_(id)
        {
            if (p_)
                // anoc-lint: allow(D1) -- the PhaseProfiler IS the sanctioned wall-clock boundary; its output never enters deterministic artifacts
                start_ = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (p_) {
                // anoc-lint: allow(D1) -- the PhaseProfiler IS the sanctioned wall-clock boundary; its output never enters deterministic artifacts
                auto end = std::chrono::steady_clock::now();
                p_->add(id_, static_cast<std::uint64_t>(
                                 std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(end - start_)
                                     .count()));
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseProfiler *p_;
        PhaseId id_;
        std::chrono::steady_clock::time_point start_; // anoc-lint: allow(D1) -- profiler-internal timestamp type, wall-clock boundary
    };

    /** Fold @p o into this profiler, matching phases by name. */
    void
    merge(const PhaseProfiler &o)
    {
        if (&o == this)
            return;
        for (PhaseId i = 0; i < o.names_.size(); ++i) {
            PhaseId id = definePhase(o.names_[i]);
            add(id, o.cells_[i].ns.load(), o.cells_[i].calls.load());
        }
    }

    std::size_t phases() const { return names_.size(); }

    std::uint64_t
    totalNs() const
    {
        std::uint64_t t = 0;
        for (const Cell &c : cells_)
            t += c.ns.load();
        return t;
    }

    /** Rows sorted by name (deterministic key order for reports). */
    std::vector<Phase>
    snapshot() const
    {
        std::map<std::string, Phase> sorted;
        for (PhaseId i = 0; i < names_.size(); ++i)
            sorted[names_[i]] = Phase{names_[i], cells_[i].ns.load(),
                                      cells_[i].calls.load()};
        std::vector<Phase> out;
        out.reserve(sorted.size());
        for (auto &[name, ph] : sorted)
            out.push_back(ph);
        return out;
    }

    /**
     * JSON summary: per-phase ns/calls/avg plus the share of the
     * summed phase time. Keys sorted; values are timings and thus not
     * byte-stable across runs.
     */
    void
    writeJson(std::ostream &os) const
    {
        const std::vector<Phase> rows = snapshot();
        const std::uint64_t total = totalNs();
        os << "{\n  \"schema\": \"approxnoc-phase-profile-v1\",\n";
        os << "  \"total_ns\": " << total << ",\n  \"phases\": {";
        bool first = true;
        for (const Phase &ph : rows) {
            if (!first)
                os << ",";
            first = false;
            const double avg =
                ph.calls == 0
                    ? 0.0
                    : static_cast<double>(ph.ns) /
                          static_cast<double>(ph.calls);
            const double share =
                total == 0 ? 0.0
                           : static_cast<double>(ph.ns) /
                                 static_cast<double>(total);
            os << "\n    \"" << ph.name << "\": {\"ns\": " << ph.ns
               << ", \"calls\": " << ph.calls << ", \"avg_ns\": "
               << static_cast<std::uint64_t>(avg) << ", \"share\": ";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.4f", share);
            os << buf << "}";
        }
        os << (rows.empty() ? "" : "\n  ") << "}\n}\n";
    }

  private:
    struct Cell {
        RelaxedCounter ns;
        RelaxedCounter calls;
    };

    std::vector<std::string> names_;
    std::map<std::string, PhaseId> by_name_;
    std::deque<Cell> cells_;
};

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_PHASE_PROFILER_H
