/**
 * @file
 * Per-point telemetry bundle: one MetricRegistry plus optional Sampler
 * and PacketTracer, created from the harness-level TelemetryOptions and
 * written out as per-point artifacts at point completion. Each worker
 * owns its point's bundle exclusively — no locks anywhere — and the
 * harness later folds the registries in spec order, so merged output is
 * byte-identical across --jobs settings.
 */
#ifndef APPROXNOC_TELEMETRY_TELEMETRY_H
#define APPROXNOC_TELEMETRY_TELEMETRY_H

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metric_registry.h"
#include "telemetry/packet_tracer.h"
#include "telemetry/sampler.h"

namespace approxnoc::telemetry {

/**
 * What to collect and where to put it. Empty directory strings disable
 * the corresponding output; default-constructed options disable
 * everything (the simulator then pays only null-pointer guards).
 */
struct TelemetryOptions {
    std::string metrics_dir; ///< per-point metrics + time-series files
    std::string trace_dir;   ///< per-point Chrome trace-event files
    Cycle sample_interval = 0; ///< epoch length in cycles; 0 = off
    std::string label = "run"; ///< artifact file-name stem
    std::uint32_t pid = 0;     ///< trace process id (point index)

    bool metricsEnabled() const { return !metrics_dir.empty(); }
    bool traceEnabled() const { return !trace_dir.empty(); }
    bool samplingEnabled() const
    {
        return metricsEnabled() && sample_interval > 0;
    }
    bool enabled() const { return metricsEnabled() || traceEnabled(); }
};

/**
 * Lowercase @p name and replace path-hostile / separator characters so
 * it can be both a metric path segment and a file-name stem
 * ("DI-VAXX" -> "di_vaxx").
 */
std::string sanitize_component(const std::string &name);

/** The live collectors for one experiment point. */
class PointTelemetry
{
  public:
    explicit PointTelemetry(const TelemetryOptions &opts);

    const TelemetryOptions &options() const { return opts_; }

    /** Always present; shared so results can outlive the point. */
    const std::shared_ptr<MetricRegistry> &metrics() const
    {
        return metrics_;
    }
    /** Null unless options().samplingEnabled(). */
    Sampler *sampler() const { return sampler_.get(); }
    /** Null unless options().traceEnabled(). */
    PacketTracer *tracer() const { return tracer_.get(); }

    /**
     * Write every enabled artifact:
     *   <trace_dir>/<label>.trace.json
     *   <metrics_dir>/<label>.metrics.json
     *   <metrics_dir>/<label>.timeseries.csv and .json
     * Best-effort: an unwritable directory is reported on stderr, never
     * fatal (telemetry must not kill a finished simulation).
     */
    void write() const;

    /** Deterministic per-point label: `p<index>_<benchmark>_<scheme>`. */
    static std::string pointLabel(std::size_t index,
                                  const std::string &benchmark,
                                  const std::string &scheme);

  private:
    TelemetryOptions opts_;
    std::shared_ptr<MetricRegistry> metrics_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<PacketTracer> tracer_;
};

/**
 * Fold per-point registries (spec order) into one and write
 * `<dir>/<name>` as JSON. Null entries (points without telemetry) are
 * skipped. Returns false if the file could not be written.
 */
bool write_merged_metrics(
    const std::string &dir, const std::string &name,
    const std::vector<std::shared_ptr<const MetricRegistry>> &parts);

/**
 * Create @p dir as needed and stream @p writer into `<dir>/<file>`.
 * Best-effort like PointTelemetry::write(): failures are reported on
 * stderr and return false, never throw. Shared by the qor.json /
 * profile.json emitters in the harness and the tools.
 */
bool write_json_artifact(const std::string &dir, const std::string &file,
                         const std::function<void(std::ostream &)> &writer);

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_TELEMETRY_H
