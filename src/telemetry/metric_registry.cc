#include "telemetry/metric_registry.h"

#include <cstdio>

namespace approxnoc::telemetry {

namespace {

/** %.17g round-trips doubles and renders equal values identically. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

Counter &
MetricScope::counter(const std::string &name) const
{
    return reg_->counter(prefix_ + "." + name);
}

RunningStat &
MetricScope::stat(const std::string &name) const
{
    return reg_->stat(prefix_ + "." + name);
}

Histogram &
MetricScope::histogram(const std::string &name, double bucket_width,
                       std::size_t n_buckets) const
{
    return reg_->histogram(prefix_ + "." + name, bucket_width, n_buckets);
}

MetricScope
MetricScope::scope(const std::string &sub) const
{
    return MetricScope(*reg_, prefix_ + "." + sub);
}

Histogram &
MetricRegistry::histogram(const std::string &path, double bucket_width,
                          std::size_t n_buckets)
{
    auto it = histograms_.find(path);
    if (it == histograms_.end())
        it = histograms_.emplace(path, Histogram(bucket_width, n_buckets))
                 .first;
    return it->second;
}

void
MetricRegistry::merge(const MetricRegistry &o)
{
    for (const auto &[path, c] : o.counters_)
        counters_[path].merge(c);
    for (const auto &[path, s] : o.stats_)
        stats_[path].merge(s);
    for (const auto &[path, h] : o.histograms_) {
        auto it = histograms_.find(path);
        if (it == histograms_.end())
            histograms_.emplace(path, h);
        else
            it->second.merge(h);
    }
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[path, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << path
           << "\": " << c.value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"stats\": {";
    first = true;
    for (const auto &[path, s] : stats_) {
        os << (first ? "\n" : ",\n") << "    \"" << path << "\": {\"n\": "
           << s.count() << ", \"mean\": " << num(s.mean())
           << ", \"min\": " << num(s.min()) << ", \"max\": " << num(s.max())
           << ", \"sum\": " << num(s.sum()) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[path, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << path
           << "\": {\"bucket_width\": " << num(h.bucketWidth())
           << ", \"count\": " << h.count()
           << ", \"underflow\": " << h.underflow()
           << ", \"mean\": " << num(h.mean())
           << ", \"p50\": " << num(h.percentile(0.5))
           << ", \"p99\": " << num(h.percentile(0.99)) << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets().size(); ++i)
            os << (i ? ", " : "") << h.buckets()[i];
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricRegistry::writeCsv(std::ostream &os) const
{
    os << "path,kind,count,value,min,max\n";
    for (const auto &[path, c] : counters_)
        os << path << ",counter," << c.value() << "," << c.value() << ",,\n";
    for (const auto &[path, s] : stats_)
        os << path << ",stat," << s.count() << "," << num(s.mean()) << ","
           << num(s.min()) << "," << num(s.max()) << "\n";
    for (const auto &[path, h] : histograms_)
        os << path << ",histogram," << h.count() << "," << num(h.mean())
           << ",0," << num(h.percentile(1.0)) << "\n";
}

void
MetricRegistry::reset()
{
    for (auto &[path, c] : counters_)
        c.reset();
    for (auto &[path, s] : stats_)
        s.reset();
    for (auto &[path, h] : histograms_)
        h.reset();
}

} // namespace approxnoc::telemetry
