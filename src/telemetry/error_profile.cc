#include "telemetry/error_profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "telemetry/metric_registry.h"

namespace approxnoc::telemetry {

namespace {

constexpr double kFpScale = 4294967296.0; // 2^32

__int128
to_fp(double v)
{
    return static_cast<__int128>(std::llround(v * kFpScale));
}

double
fp_to_double(__int128 v)
{
    return static_cast<double>(v) / kFpScale;
}

/** %.17g, the registry's round-trippable double format. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
ErrorProfile::Agg::add(double signed_err)
{
    if (count == 0) {
        min = max = signed_err;
    } else {
        min = std::min(min, signed_err);
        max = std::max(max, signed_err);
    }
    ++count;
    const double a = std::fabs(signed_err);
    if (signed_err == 0.0)
        ++zero;
    max_abs = std::max(max_abs, a);
    const double clamped = std::clamp(signed_err, -kClampAbs, kClampAbs);
    sum_fp += to_fp(clamped);
    sum_abs_fp += to_fp(std::fabs(clamped));
}

void
ErrorProfile::Agg::merge(const Agg &o)
{
    if (o.count == 0)
        return;
    if (count == 0) {
        *this = o;
        return;
    }
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    max_abs = std::max(max_abs, o.max_abs);
    count += o.count;
    zero += o.zero;
    sum_fp += o.sum_fp;
    sum_abs_fp += o.sum_abs_fp;
}

int
ErrorProfile::bucketOf(double abs_err)
{
    if (abs_err == 0.0)
        return -1;
    const double x = std::log10(abs_err);
    const double idx = std::floor((x - kLogFloor) / kLogWidth);
    if (idx < 0.0)
        return 0;
    if (idx >= static_cast<double>(kBuckets))
        return kBuckets; // |e| >= 1: overflow bucket
    return static_cast<int>(idx);
}

double
ErrorProfile::bucketLowerEdge(int b)
{
    if (b <= 0)
        return 0.0;
    if (b >= kBuckets)
        return 1.0;
    return std::pow(10.0, kLogFloor + b * kLogWidth);
}

void
ErrorProfile::record(NodeId src, NodeId dst, double signed_err)
{
    const double a = std::fabs(signed_err);
    std::lock_guard<std::mutex> lk(mu_);
    total_.add(signed_err);
    const int b = bucketOf(a);
    if (b >= 0)
        ++buckets_[static_cast<std::size_t>(b)];
    flows_[{src, dst}].add(signed_err);
    if (debug_limit_ > 0.0 && a > debug_limit_) {
        ++violations_;
        assert(!"recorded relative error exceeds the armed QoR debug limit");
    }
}

void
ErrorProfile::merge(const ErrorProfile &o)
{
    if (&o == this)
        return;
    // Consistent lock order by address: merge may run concurrently
    // from several directions during a sharded fold.
    std::lock(mu_, o.mu_);
    std::lock_guard<std::mutex> la(mu_, std::adopt_lock);
    std::lock_guard<std::mutex> lb(o.mu_, std::adopt_lock);
    total_.merge(o.total_);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    for (const auto &[flow, agg] : o.flows_)
        flows_[flow].merge(agg);
    violations_ += o.violations_;
}

std::uint64_t
ErrorProfile::samples() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.count;
}

std::uint64_t
ErrorProfile::zeroCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.zero;
}

std::uint64_t
ErrorProfile::violations() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return violations_;
}

double
ErrorProfile::mean() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.count == 0
               ? 0.0
               : fp_to_double(total_.sum_fp) /
                     static_cast<double>(total_.count);
}

double
ErrorProfile::meanAbs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.count == 0
               ? 0.0
               : fp_to_double(total_.sum_abs_fp) /
                     static_cast<double>(total_.count);
}

double
ErrorProfile::minSigned() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.min;
}

double
ErrorProfile::maxSigned() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.max;
}

double
ErrorProfile::maxAbs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_.max_abs;
}

double
ErrorProfile::percentileAbs(double q) const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (total_.count == 0)
        return 0.0;
    const double target = q * static_cast<double>(total_.count);
    double cum = static_cast<double>(total_.zero);
    if (cum >= target)
        return 0.0;
    for (int b = 0; b <= kBuckets; ++b) {
        cum += static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
        if (cum >= target) {
            // Upper edge of the holding bucket; the overflow bucket
            // reports the true observed maximum instead of +inf.
            return b >= kBuckets ? total_.max_abs : bucketLowerEdge(b + 1);
        }
    }
    return total_.max_abs;
}

void
ErrorProfile::setDebugLimit(double limit)
{
    std::lock_guard<std::mutex> lk(mu_);
    debug_limit_ = limit;
}

void
ErrorProfile::exportTo(MetricRegistry &reg, const std::string &prefix) const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (total_.count == 0)
        return; // exact schemes leave no qor.* paths behind
    reg.counter(prefix + ".samples").inc(total_.count);
    reg.counter(prefix + ".zero").inc(total_.zero);
    reg.counter(prefix + ".violations").inc(violations_);
    const double n = static_cast<double>(total_.count);
    reg.stat(prefix + ".mean_rel_err").add(fp_to_double(total_.sum_fp) / n);
    reg.stat(prefix + ".mean_abs_rel_err")
        .add(fp_to_double(total_.sum_abs_fp) / n);
    reg.stat(prefix + ".max_abs_rel_err").add(total_.max_abs);
    for (const auto &[flow, agg] : flows_) {
        const std::string fp = prefix + ".flow." +
                               std::to_string(flow.first) + "_" +
                               std::to_string(flow.second);
        reg.counter(fp + ".samples").inc(agg.count);
        reg.stat(fp + ".max_abs_rel_err").add(agg.max_abs);
    }
}

void
ErrorProfile::writeAgg(std::ostream &os, const Agg &a)
{
    const double n = a.count == 0 ? 1.0 : static_cast<double>(a.count);
    os << "{\"count\": " << a.count << ", \"zero\": " << a.zero
       << ", \"mean\": " << num(fp_to_double(a.sum_fp) / n)
       << ", \"mean_abs\": " << num(fp_to_double(a.sum_abs_fp) / n)
       << ", \"min\": " << num(a.min) << ", \"max\": " << num(a.max)
       << ", \"max_abs\": " << num(a.max_abs) << "}";
}

void
ErrorProfile::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(mu_);

    // Percentiles inline (the public accessors would re-lock).
    auto pct = [&](double q) {
        if (total_.count == 0)
            return 0.0;
        const double target = q * static_cast<double>(total_.count);
        double cum = static_cast<double>(total_.zero);
        if (cum >= target)
            return 0.0;
        for (int b = 0; b <= kBuckets; ++b) {
            cum += static_cast<double>(
                buckets_[static_cast<std::size_t>(b)]);
            if (cum >= target)
                return b >= kBuckets ? total_.max_abs
                                     : bucketLowerEdge(b + 1);
        }
        return total_.max_abs;
    };

    os << "{\n  \"schema\": \"approxnoc-qor-profile-v1\",\n";
    os << "  \"total\": ";
    writeAgg(os, total_);
    os << ",\n  \"violations\": " << violations_;
    os << ",\n  \"p50_abs\": " << num(pct(0.50));
    os << ",\n  \"p90_abs\": " << num(pct(0.90));
    os << ",\n  \"p99_abs\": " << num(pct(0.99));
    os << ",\n  \"buckets\": [";
    bool first = true;
    for (int b = 0; b <= kBuckets; ++b) {
        const std::uint64_t c = buckets_[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "{\"lo\": " << num(bucketLowerEdge(b)) << ", \"count\": " << c
           << "}";
    }
    os << "],\n  \"flows\": {";
    first = true;
    for (const auto &[flow, agg] : flows_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << flow.first << "->" << flow.second << "\": ";
        writeAgg(os, agg);
    }
    os << (flows_.empty() ? "" : "\n  ") << "}\n}\n";
}

} // namespace approxnoc::telemetry
