/**
 * @file
 * Packet lifecycle tracing in the Chrome trace-event JSON format
 * (loadable in Perfetto / chrome://tracing). Tracks map onto hardware:
 * tid 0..N-1 are the network endpoints (NI injection/ejection plus the
 * encode/decode spans of packets they source), tid 1000+r are the
 * routers (per-flit VC allocation and switch/link traversal instants).
 * One simulated cycle is emitted as one microsecond of trace time.
 *
 * The writer sorts events by the full canonical key
 * (tid, ts, ph, name, dur, args), so timestamps are monotonic within
 * every track no matter when the events were recorded — lifecycle
 * spans are reconstructed at delivery time from the packet's
 * timestamps, out of order with the router instants — and the output
 * is a pure function of the recorded event *multiset*: region-parallel
 * stepping, which records the same events in a different interleaving,
 * produces a byte-identical trace file. (Caveat: at the max_events
 * cap, *which* events get dropped depends on record order, so
 * cross-job byte equality only holds below the cap.)
 *
 * Recording is thread-safe (one mutex on the record path) so routers
 * and NIs may trace from inside parallel region phases; the accessors
 * and writeJson are for serial (post-run / post-barrier) use.
 */
#ifndef APPROXNOC_TELEMETRY_PACKET_TRACER_H
#define APPROXNOC_TELEMETRY_PACKET_TRACER_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace approxnoc::telemetry {

/** One recorded trace event (pre-rendered args). */
struct TraceEvent {
    std::string name;
    char ph = 'i';          ///< 'X' span, 'i' instant, 'C' counter
    Cycle ts = 0;           ///< start cycle (emitted as µs)
    Cycle dur = 0;          ///< span length ('X' only)
    std::uint32_t tid = 0;  ///< track within the process
    std::string args;       ///< rendered JSON object body, "" = none
};

/** Bounded in-memory trace-event recorder. */
class PacketTracer
{
  public:
    /**
     * @param pid trace process id (one per simulated network, e.g. the
     *        experiment point index).
     * @param max_events recording stops (and counts drops) beyond this
     *        bound so a saturated run cannot exhaust memory.
     */
    explicit PacketTracer(std::uint32_t pid = 0,
                          std::size_t max_events = 1u << 20)
        : pid_(pid), max_events_(max_events)
    {}

    /** @name Track naming */
    ///@{
    static std::uint32_t nodeTrack(NodeId n) { return n; }
    static std::uint32_t routerTrack(RouterId r) { return 1000 + r; }
    /** Counter tracks (epoch time-series rendered as Perfetto counter
     * plots); one tid hosts any number of named counter series. */
    static std::uint32_t counterTrack() { return 2000; }
    void setProcessName(std::string name) { process_name_ = std::move(name); }
    void setThreadName(std::uint32_t tid, std::string name)
    {
        thread_names_[tid] = std::move(name);
    }
    ///@}

    /** Record a complete span [start, start+dur) on @p tid. */
    void span(std::uint32_t tid, const std::string &name, Cycle start,
              Cycle dur, std::string args = {});

    /** Record an instant event at @p ts on @p tid. */
    void instant(std::uint32_t tid, const std::string &name, Cycle ts,
                 std::string args = {});

    /** Record a Perfetto counter sample (ph 'C') at @p ts on @p tid:
     * the named series plots @p value over trace time. */
    void counter(std::uint32_t tid, const std::string &name, Cycle ts,
                 double value);

    std::uint32_t pid() const { return pid_; }
    std::size_t events() const { return events_.size(); }
    /** Events discarded after hitting max_events (never silent). */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Emit `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Every
     * event carries name/cat/ph/ts/pid/tid (plus dur for spans); the
     * metadata (process/thread name) events lead, then payload events
     * in canonical (tid, ts, ph, name, dur, args) order — a total
     * order, so the file depends only on what was recorded, never on
     * the interleaving it was recorded in.
     */
    void writeJson(std::ostream &os) const;

  private:
    bool admit();

    std::uint32_t pid_;
    std::size_t max_events_;
    std::uint64_t dropped_ = 0;
    std::string process_name_;
    std::map<std::uint32_t, std::string> thread_names_;
    std::vector<TraceEvent> events_;
    /** Serializes the record path (span/instant/counter). */
    std::mutex mtx_;
};

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_PACKET_TRACER_H
