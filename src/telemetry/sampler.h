/**
 * @file
 * Epoch time-series sampling: a Clocked component that evaluates a set
 * of named probes every N cycles and accumulates the readings as a
 * (cycle x probe) table, emitted as CSV/JSON next to the other harness
 * artifacts. The sampler is only registered with the Simulator when
 * telemetry is on, so a disabled run pays nothing.
 */
#ifndef APPROXNOC_TELEMETRY_SAMPLER_H
#define APPROXNOC_TELEMETRY_SAMPLER_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/clocked.h"

namespace approxnoc::telemetry {

class PacketTracer;

/** Samples registered probes every `interval` cycles. */
class Sampler : public Clocked
{
  public:
    using ProbeFn = std::function<double()>;

    explicit Sampler(Cycle interval)
        : Clocked("sampler"), interval_(interval)
    {}

    /** Register a probe column; call before the first sample. */
    void
    addProbe(std::string name, ProbeFn fn)
    {
        names_.push_back(std::move(name));
        probes_.push_back(std::move(fn));
    }

    void evaluate(Cycle) override {}

    /** Runs after every component's advance, so a sample row sees the
     * committed state of the cycle it is stamped with. */
    void
    advance(Cycle now) override
    {
        if (interval_ == 0 || now % interval_ != 0)
            return;
        sample(now);
    }

    /** Take one row unconditionally (end-of-run snapshot). */
    void sample(Cycle now);

    /**
     * Mirror every sampled row into @p tracer as Perfetto counter
     * events (ph 'C') on @p tid — each probe becomes a named counter
     * series plotted over trace time, viewable alongside the packet
     * lifecycle tracks. Call before the run; null detaches.
     */
    void
    bindTracer(PacketTracer *tracer, std::uint32_t tid)
    {
        tracer_ = tracer;
        tracer_tid_ = tid;
    }

    Cycle interval() const { return interval_; }
    std::size_t rows() const { return cycles_.size(); }
    const std::vector<std::string> &columns() const { return names_; }
    const std::vector<Cycle> &sampleCycles() const { return cycles_; }
    const std::vector<std::vector<double>> &data() const { return rows_; }

    /** `cycle,probe1,probe2,...` with one row per epoch. */
    void writeCsv(std::ostream &os) const;
    /** `{"columns": [...], "rows": [[cycle, v1, ...], ...]}`. */
    void writeJson(std::ostream &os) const;

  private:
    Cycle interval_;
    std::vector<std::string> names_;
    std::vector<ProbeFn> probes_;
    std::vector<Cycle> cycles_;
    std::vector<std::vector<double>> rows_;
    PacketTracer *tracer_ = nullptr;
    std::uint32_t tracer_tid_ = 0;
};

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_SAMPLER_H
