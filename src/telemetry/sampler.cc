#include "telemetry/sampler.h"

#include <cstdio>

#include "telemetry/packet_tracer.h"

namespace approxnoc::telemetry {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

void
Sampler::sample(Cycle now)
{
    std::vector<double> row;
    row.reserve(probes_.size());
    for (const auto &p : probes_)
        row.push_back(p());
    if (tracer_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            tracer_->counter(tracer_tid_, names_[i], now, row[i]);
    }
    cycles_.push_back(now);
    rows_.push_back(std::move(row));
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &n : names_)
        os << "," << n;
    os << "\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << cycles_[r];
        for (double v : rows_[r])
            os << "," << num(v);
        os << "\n";
    }
}

void
Sampler::writeJson(std::ostream &os) const
{
    os << "{\n  \"columns\": [\"cycle\"";
    for (const auto &n : names_)
        os << ", \"" << n << "\"";
    os << "],\n  \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? ",\n    [" : "\n    [") << cycles_[r];
        for (double v : rows_[r])
            os << ", " << num(v);
        os << "]";
    }
    os << (rows_.empty() ? "" : "\n  ") << "]\n}\n";
}

} // namespace approxnoc::telemetry
