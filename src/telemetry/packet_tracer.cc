#include "telemetry/packet_tracer.h"

#include <algorithm>
#include <cstdio>

#include "common/table.h"

namespace approxnoc::telemetry {

bool
PacketTracer::admit()
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
PacketTracer::span(std::uint32_t tid, const std::string &name, Cycle start,
                   Cycle dur, std::string args)
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (!admit())
        return;
    events_.push_back({name, 'X', start, dur, tid, std::move(args)});
}

void
PacketTracer::instant(std::uint32_t tid, const std::string &name, Cycle ts,
                      std::string args)
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (!admit())
        return;
    events_.push_back({name, 'i', ts, 0, tid, std::move(args)});
}

void
PacketTracer::counter(std::uint32_t tid, const std::string &name, Cycle ts,
                      double value)
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (!admit())
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"value\": %.17g}", value);
    events_.push_back({name, 'C', ts, 0, tid, buf});
}

void
PacketTracer::writeJson(std::ostream &os) const
{
    // Canonical total order: same-key events are byte-identical in
    // the output, so the file is a function of the event multiset —
    // the record interleaving (serial vs region-parallel) is erased.
    std::vector<const TraceEvent *> order;
    order.reserve(events_.size());
    for (const auto &e : events_)
        order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const TraceEvent *a, const TraceEvent *b) {
                  if (a->tid != b->tid)
                      return a->tid < b->tid;
                  if (a->ts != b->ts)
                      return a->ts < b->ts;
                  if (a->ph != b->ph)
                      return a->ph < b->ph;
                  if (a->name != b->name)
                      return a->name < b->name;
                  if (a->dur != b->dur)
                      return a->dur < b->dur;
                  return a->args < b->args;
              });

    os << "{\n\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };
    if (!process_name_.empty()) {
        sep();
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid_
           << ", \"tid\": 0, \"args\": {\"name\": \""
           << json_escape(process_name_) << "\"}}";
    }
    for (const auto &[tid, name] : thread_names_) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid_
           << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
           << json_escape(name) << "\"}}";
    }
    for (const TraceEvent *e : order) {
        sep();
        os << "{\"name\": \"" << json_escape(e->name)
           << "\", \"cat\": \"noc\", \"ph\": \"" << e->ph
           << "\", \"ts\": " << e->ts;
        if (e->ph == 'X')
            os << ", \"dur\": " << e->dur;
        if (e->ph == 'i')
            os << ", \"s\": \"t\"";
        os << ", \"pid\": " << pid_ << ", \"tid\": " << e->tid;
        if (!e->args.empty())
            os << ", \"args\": " << e->args;
        os << "}";
    }
    os << (first ? "" : "\n") << "],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

} // namespace approxnoc::telemetry
