/**
 * @file
 * Quality-of-result error telemetry: a thread-safe profile of the
 * signed per-word relative errors a codec introduced at approximation
 * time. This is the paper's bounded-error claim made observable — not
 * just "compression ratio X at threshold T" but the actual error
 * distribution the threshold bought.
 *
 * Determinism contract: every accumulator is either an integer (sample
 * counts, log-bucket occupancy, a fixed-point error sum) or an
 * order-independent fold (min/max). `merge` is therefore commutative
 * and associative, and `writeJson` renders byte-identical files no
 * matter how per-shard or per-point profiles were combined — the same
 * property `MetricRegistry` guarantees, extended to exact means. The
 * one deliberate approximation is the fixed-point sum: errors are
 * accumulated at 2^-32 resolution with |e| clamped to kClampAbs, which
 * keeps 128-bit accumulation exact for ~2^87 samples while bounding
 * the influence of pathological relative errors (a near-zero precise
 * word can make |e| arbitrarily large; anything beyond the clamp is
 * "completely wrong" regardless).
 */
#ifndef APPROXNOC_TELEMETRY_ERROR_PROFILE_H
#define APPROXNOC_TELEMETRY_ERROR_PROFILE_H

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>

#include "common/types.h"

namespace approxnoc::telemetry {

class MetricRegistry;

/** Order-independent profile of signed per-word relative errors. */
class ErrorProfile
{
  public:
    /** Log-scaled |error| buckets: kBuckets quarter-decade buckets
     * covering [1e-16, 1), plus one overflow bucket for |e| >= 1.
     * Exact zeros are counted separately, not bucketed. */
    static constexpr int kBuckets = 64;
    static constexpr double kLogFloor = -16.0;
    static constexpr double kLogWidth = 0.25;
    /** |error| clamp for the fixed-point mean accumulator. */
    static constexpr double kClampAbs = 256.0;
    /** Scheme-overshoot slack the harness multiplies into the armed
     * debug limit (see setDebugLimit): covers WindowVaxx's per-word
     * budget cap (4x) and the TCAM don't-care rounding overshoot. */
    static constexpr double kDebugSlack = 8.0;

    ErrorProfile() = default;

    /** Record one approximated word on flow @p src -> @p dst. */
    void record(NodeId src, NodeId dst, double signed_err);

    /** Fold @p o into this profile (commutative, associative). */
    void merge(const ErrorProfile &o);

    std::uint64_t samples() const;
    std::uint64_t zeroCount() const;
    /** Recorded errors whose |e| exceeded the debug limit (0 if no
     * limit was armed). Debug builds assert instead of counting on. */
    std::uint64_t violations() const;

    double mean() const;    ///< signed mean (fixed-point exact)
    double meanAbs() const; ///< mean of |e| (fixed-point exact)
    double minSigned() const;
    double maxSigned() const;
    double maxAbs() const;

    /** Upper edge of the log bucket holding quantile @p q of |e|
     * (0 < q <= 1); exact zeros participate as error 0. */
    double percentileAbs(double q) const;

    /** Bucket index for |e| (kBuckets = overflow, -1 = exact zero). */
    static int bucketOf(double abs_err);
    /** Lower |e| edge of bucket @p b. */
    static double bucketLowerEdge(int b);

    /**
     * Arm the threshold-violation check: any recorded |e| beyond
     * @p limit trips an assertion in debug builds (and is counted in
     * `violations()` in every build). The harness arms this with the
     * configured AVCL threshold times a scheme slack factor — the
     * window codec's per-word cap and the TCAM's don't-care overshoot
     * both legitimately exceed the nominal threshold.
     */
    void setDebugLimit(double limit);

    /** Export scalar summaries under @p prefix dotted paths. */
    void exportTo(MetricRegistry &reg, const std::string &prefix) const;

    /** Deterministic JSON dump (sorted keys, %.17g doubles). */
    void writeJson(std::ostream &os) const;

  private:
    /** One commutative accumulator bundle. */
    struct Agg {
        std::uint64_t count = 0;      ///< recorded words
        std::uint64_t zero = 0;       ///< exact-zero errors among them
        __int128 sum_fp = 0;          ///< signed error sum, scale 2^32
        __int128 sum_abs_fp = 0;      ///< |error| sum, scale 2^32
        double min = 0.0, max = 0.0;  ///< signed extremes (count > 0)
        double max_abs = 0.0;

        void add(double signed_err);
        void merge(const Agg &o);
    };

    static void writeAgg(std::ostream &os, const Agg &a);

    mutable std::mutex mu_;
    Agg total_;
    std::array<std::uint64_t, kBuckets + 1> buckets_{};
    std::map<std::pair<NodeId, NodeId>, Agg> flows_;
    double debug_limit_ = 0.0; ///< 0 = disarmed
    std::uint64_t violations_ = 0;
};

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_ERROR_PROFILE_H
