/**
 * @file
 * Hierarchical metric registry: counters, running stats and histograms
 * keyed by dotted component paths ("router.3.vc_stall",
 * "codec.di_vaxx.hit_approx"), layered on the common/stats primitives
 * and their parallel merge() support. Each worker thread owns a private
 * registry and the harness folds them at point completion, so the hot
 * path never takes a lock. std::map keying makes every dump
 * deterministic regardless of insertion or merge order.
 */
#ifndef APPROXNOC_TELEMETRY_METRIC_REGISTRY_H
#define APPROXNOC_TELEMETRY_METRIC_REGISTRY_H

#include <map>
#include <ostream>
#include <string>

#include "common/stats.h"

namespace approxnoc::telemetry {

class MetricRegistry;

/**
 * A prefixed view into a registry: every lookup is rooted at a
 * component path, so a router asks for "vc_stall" and gets
 * "router.3.vc_stall". Scopes nest (scope("router").scope("3")).
 * Cheap to copy; holds no metric state of its own.
 */
class MetricScope
{
  public:
    MetricScope(MetricRegistry &reg, std::string prefix)
        : reg_(&reg), prefix_(std::move(prefix))
    {}

    Counter &counter(const std::string &name) const;
    RunningStat &stat(const std::string &name) const;
    Histogram &histogram(const std::string &name, double bucket_width = 1.0,
                         std::size_t n_buckets = 64) const;

    /** A nested scope rooted at "<prefix>.<sub>". */
    MetricScope scope(const std::string &sub) const;

    const std::string &prefix() const { return prefix_; }
    MetricRegistry &registry() const { return *reg_; }

  private:
    MetricRegistry *reg_;
    std::string prefix_;
};

/**
 * The registry proper. Entries are created on first access (like
 * StatRegistry) and owned by the registry; components keep references
 * or pointers for hot-path increments.
 */
class MetricRegistry
{
  public:
    Counter &counter(const std::string &path) { return counters_[path]; }
    RunningStat &stat(const std::string &path) { return stats_[path]; }

    /**
     * The histogram at @p path, created with the given shape on first
     * access. Later calls return the existing histogram (shape
     * arguments are ignored; merge() still asserts shape equality).
     */
    Histogram &histogram(const std::string &path, double bucket_width = 1.0,
                         std::size_t n_buckets = 64);

    /** A view rooted at @p prefix. */
    MetricScope scope(const std::string &prefix)
    {
        return MetricScope(*this, prefix);
    }

    /**
     * Fold another registry in, entry by entry. Same-path histograms
     * must share their shape. Merging per-point registries in spec
     * order yields byte-identical dumps regardless of how many workers
     * produced them.
     */
    void merge(const MetricRegistry &o);

    bool
    empty() const
    {
        return counters_.empty() && stats_.empty() && histograms_.empty();
    }

    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, RunningStat> &stats() const { return stats_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Emit everything as one JSON object:
     * `{"counters": {...}, "stats": {...}, "histograms": {...}}`,
     * keys sorted, doubles printed with %.17g so equal values always
     * render identically.
     */
    void writeJson(std::ostream &os) const;

    /** Flat CSV: `path,kind,count,value,min,max` one metric per row. */
    void writeCsv(std::ostream &os) const;

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, RunningStat> stats_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace approxnoc::telemetry

#endif // APPROXNOC_TELEMETRY_METRIC_REGISTRY_H
