#include "telemetry/telemetry.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace approxnoc::telemetry {

namespace {

/** Open @p dir/@p file for writing, creating @p dir as needed. */
bool
open_artifact(const std::string &dir, const std::string &file,
              std::ofstream &os)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const auto path = std::filesystem::path(dir) / file;
    os.open(path);
    if (!os) {
        std::cerr << "telemetry: cannot write " << path.string() << "\n";
        return false;
    }
    return true;
}

} // namespace

std::string
sanitize_component(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        else
            out.push_back('_');
    }
    return out;
}

PointTelemetry::PointTelemetry(const TelemetryOptions &opts)
    : opts_(opts), metrics_(std::make_shared<MetricRegistry>())
{
    if (opts_.samplingEnabled())
        sampler_ = std::make_unique<Sampler>(opts_.sample_interval);
    if (opts_.traceEnabled())
        tracer_ = std::make_unique<PacketTracer>(opts_.pid);
}

void
PointTelemetry::write() const
{
    std::ofstream os;
    if (tracer_ && open_artifact(opts_.trace_dir,
                                 opts_.label + ".trace.json", os)) {
        tracer_->writeJson(os);
        os.close();
    }
    if (opts_.metricsEnabled()) {
        if (open_artifact(opts_.metrics_dir, opts_.label + ".metrics.json",
                          os)) {
            metrics_->writeJson(os);
            os.close();
        }
        if (sampler_) {
            if (open_artifact(opts_.metrics_dir,
                              opts_.label + ".timeseries.csv", os)) {
                sampler_->writeCsv(os);
                os.close();
            }
            if (open_artifact(opts_.metrics_dir,
                              opts_.label + ".timeseries.json", os)) {
                sampler_->writeJson(os);
                os.close();
            }
        }
    }
}

std::string
PointTelemetry::pointLabel(std::size_t index, const std::string &benchmark,
                           const std::string &scheme)
{
    return "p" + std::to_string(index) + "_" + sanitize_component(benchmark) +
           "_" + sanitize_component(scheme);
}

bool
write_merged_metrics(
    const std::string &dir, const std::string &name,
    const std::vector<std::shared_ptr<const MetricRegistry>> &parts)
{
    MetricRegistry merged;
    for (const auto &p : parts)
        if (p)
            merged.merge(*p);
    std::ofstream os;
    if (!open_artifact(dir, name, os))
        return false;
    merged.writeJson(os);
    return static_cast<bool>(os);
}

bool
write_json_artifact(const std::string &dir, const std::string &file,
                    const std::function<void(std::ostream &)> &writer)
{
    std::ofstream os;
    if (!open_artifact(dir, file, os))
        return false;
    writer(os);
    return static_cast<bool>(os);
}

} // namespace approxnoc::telemetry
