#include "harness/point_runner.h"

#include <optional>
#include <stdexcept>

#include "core/codec_factory.h"
#include "harness/experiment.h"
#include "harness/trace_library.h"
#include "noc/network.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "telemetry/error_profile.h"
#include "telemetry/phase_profiler.h"
#include "traffic/replay.h"

namespace approxnoc::harness {

ReplayResult
run_replay(const CommTrace &trace, const ReplayJob &job)
{
    NocConfig ncfg; // Table 1
    if (job.flit_bits)
        ncfg.flit_bits = job.flit_bits;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = job.threshold;
    if (job.pmt_entries)
        cc.dict.pmt_entries = job.pmt_entries;
    auto codec = CodecFactory::create(job.scheme, cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    // QoR error telemetry is always on: recording costs one uncontended
    // mutex lock per approximated block, and the figure executors need
    // the mean/worst-case relative error even without --metrics-out.
    // The debug limit arms the ErrorProfile assertion: no recorded
    // relative error may exceed the configured threshold by more than
    // the codec overshoot slack (WindowVaxx's per-word budget cap and
    // the TCAM don't-care rounding both legitimately land above e%).
    auto qor = std::make_shared<telemetry::ErrorProfile>();
    if (job.threshold > 0)
        qor->setDebugLimit(job.threshold / 100.0 *
                           telemetry::ErrorProfile::kDebugSlack);
    net.bindErrorProfile(qor.get());

    std::shared_ptr<telemetry::PhaseProfiler> prof;
    if (job.profile) {
        prof = std::make_shared<telemetry::PhaseProfiler>();
        sim.bindProfiler(prof.get());
        net.bindProfiler(prof.get());
    }

    // Telemetry bundle, owned by this point alone (lock-free). The
    // sampler joins the simulator after the network components so each
    // row reads the committed state of its cycle.
    std::optional<telemetry::PointTelemetry> pt;
    if (job.telemetry.enabled()) {
        pt.emplace(job.telemetry);
        net.bindTelemetry(*pt);
        if (pt->tracer())
            pt->tracer()->setProcessName(job.telemetry.label);
        if (pt->sampler())
            sim.add(pt->sampler());
    }

    // Cap the replayed portion of the trace for bounded runtime.
    CommTrace capped;
    if (trace.size() > job.max_records) {
        // Rebuild the prefix (block indices are preserved by copying
        // the pool wholesale).
        for (const auto &b : trace.blocks())
            capped.addBlock(b);
        for (std::size_t i = 0; i < job.max_records; ++i)
            capped.add(trace.records()[i]);
    }
    const CommTrace &use = trace.size() > job.max_records ? capped : trace;

    // Normalize the offered load of the *replayed* portion.
    double natural = TraceLibrary::naturalLoad(use, ncfg.nodes());
    double time_scale =
        natural > 0 && job.load > 0 ? natural / job.load : 1.0;

    TraceReplay replay(net, use, time_scale, job.approx_ratio);
    sim.add(&replay);

    // Region-parallel stepping; a no-op plan (serial fallback) below
    // two regions. Enabled after every component registered so the
    // replay source lands in the serial tail.
    if (job.sim_jobs != 1)
        net.enableRegionParallel(sim, job.sim_jobs);

    bool done = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));
    if (!done)
        // Thrown (not panicked) so a parallel sweep reports this point
        // as a failed cell and keeps going.
        throw std::runtime_error("replay failed to drain within bound");

    const NetworkStats &s = net.stats();
    ReplayResult r;
    r.queue_lat = s.queue_lat.mean();
    r.net_lat = s.net_lat.mean();
    r.decode_lat = s.decode_lat.mean();
    r.total_lat = s.total_lat.mean();
    r.quality = s.quality.dataQuality();
    r.exact_fraction = s.quality.exactEncodedFraction();
    r.approx_fraction = s.quality.approxEncodedFraction();
    r.compression_ratio = s.quality.compressionRatio();
    r.data_flits = net.dataFlitsInjected();
    r.packets = s.packets_delivered.value();
    r.elapsed = sim.now();
    PowerModel pm;
    r.dynamic_power_mw = pm.dynamicPowerMw(net, sim.now());

    if (pt) {
        if (telemetry::Sampler *smp = pt->sampler()) {
            // Final snapshot, unless the last epoch already landed on
            // the end cycle.
            if (smp->sampleCycles().empty() ||
                smp->sampleCycles().back() != sim.now())
                smp->sample(sim.now());
        }
        net.collectTelemetry(*pt->metrics());
        pt->metrics()->counter("sim.elapsed_cycles").inc(sim.now());
        qor->exportTo(*pt->metrics(),
                      "qor." + telemetry::sanitize_component(
                                   to_string(job.scheme)));
        pt->write();
        r.metrics = pt->metrics();
        if (job.telemetry.metricsEnabled()) {
            telemetry::write_json_artifact(
                job.telemetry.metrics_dir, job.telemetry.label + ".qor.json",
                [&](std::ostream &os) { qor->writeJson(os); });
            if (prof)
                telemetry::write_json_artifact(
                    job.telemetry.metrics_dir,
                    job.telemetry.label + ".profile.json",
                    [&](std::ostream &os) { prof->writeJson(os); });
        }
    }
    r.qor = qor;
    r.profile = prof;
    return r;
}

ReplayResult
run_replay_point(const CommTrace &trace, const ExperimentPoint &pt,
                 const ExperimentConfig &cfg)
{
    ReplayJob job;
    job.scheme = pt.scheme;
    job.threshold = pt.threshold;
    job.approx_ratio = pt.approx_ratio;
    job.load = pt.load;
    job.max_records = cfg.max_records;
    job.seed = pt.seed;
    job.profile = cfg.profile;
    job.sim_jobs = cfg.sim_jobs;

    // Per-point artifact identity derives from the spec coordinates,
    // never from which worker ran the point, so --jobs=N runs produce
    // identical file sets.
    job.telemetry.metrics_dir = cfg.metrics_dir;
    job.telemetry.trace_dir = cfg.trace_dir;
    job.telemetry.sample_interval = cfg.sample_interval;
    job.telemetry.label = telemetry::PointTelemetry::pointLabel(
        pt.index, pt.benchmark, to_string(pt.scheme));
    job.telemetry.pid = static_cast<std::uint32_t>(pt.index);
    return run_replay(trace, job);
}

} // namespace approxnoc::harness
