#include "harness/point_runner.h"

#include <stdexcept>

#include "core/codec_factory.h"
#include "harness/experiment.h"
#include "harness/trace_library.h"
#include "noc/network.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "traffic/replay.h"

namespace approxnoc::harness {

ReplayResult
run_replay(const CommTrace &trace, const ReplayJob &job)
{
    NocConfig ncfg; // Table 1
    if (job.flit_bits)
        ncfg.flit_bits = job.flit_bits;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = job.threshold;
    if (job.pmt_entries)
        cc.dict.pmt_entries = job.pmt_entries;
    auto codec = CodecFactory::create(job.scheme, cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    // Cap the replayed portion of the trace for bounded runtime.
    CommTrace capped;
    if (trace.size() > job.max_records) {
        // Rebuild the prefix (block indices are preserved by copying
        // the pool wholesale).
        for (const auto &b : trace.blocks())
            capped.addBlock(b);
        for (std::size_t i = 0; i < job.max_records; ++i)
            capped.add(trace.records()[i]);
    }
    const CommTrace &use = trace.size() > job.max_records ? capped : trace;

    // Normalize the offered load of the *replayed* portion.
    double natural = TraceLibrary::naturalLoad(use, ncfg.nodes());
    double time_scale =
        natural > 0 && job.load > 0 ? natural / job.load : 1.0;

    TraceReplay replay(net, use, time_scale, job.approx_ratio);
    sim.add(&replay);

    bool done = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));
    if (!done)
        // Thrown (not panicked) so a parallel sweep reports this point
        // as a failed cell and keeps going.
        throw std::runtime_error("replay failed to drain within bound");

    const NetworkStats &s = net.stats();
    ReplayResult r;
    r.queue_lat = s.queue_lat.mean();
    r.net_lat = s.net_lat.mean();
    r.decode_lat = s.decode_lat.mean();
    r.total_lat = s.total_lat.mean();
    r.quality = s.quality.dataQuality();
    r.exact_fraction = s.quality.exactEncodedFraction();
    r.approx_fraction = s.quality.approxEncodedFraction();
    r.compression_ratio = s.quality.compressionRatio();
    r.data_flits = net.dataFlitsInjected();
    r.packets = s.packets_delivered.value();
    r.elapsed = sim.now();
    PowerModel pm;
    r.dynamic_power_mw = pm.dynamicPowerMw(net, sim.now());
    return r;
}

ReplayResult
run_replay_point(const CommTrace &trace, const ExperimentPoint &pt,
                 const ExperimentConfig &cfg)
{
    ReplayJob job;
    job.scheme = pt.scheme;
    job.threshold = pt.threshold;
    job.approx_ratio = pt.approx_ratio;
    job.load = pt.load;
    job.max_records = cfg.max_records;
    job.seed = pt.seed;
    return run_replay(trace, job);
}

} // namespace approxnoc::harness
