/**
 * @file
 * Thread-safe communication-trace cache. Traces are generated once per
 * benchmark by running the kernel through the cache model with a
 * precise codec and a trace sink (the paper's gem5 trace-collection
 * step), then shared read-only by every concurrently replaying point.
 */
#ifndef APPROXNOC_HARNESS_TRACE_LIBRARY_H
#define APPROXNOC_HARNESS_TRACE_LIBRARY_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "traffic/trace.h"

namespace approxnoc::harness {

class ExperimentRunner;

/** Lazily generated, mutex-guarded per-benchmark trace store. */
class TraceLibrary
{
  public:
    explicit TraceLibrary(unsigned scale = 1) : scale_(scale) {}

    /**
     * The trace for @p benchmark, generated on first use. Safe to call
     * from any thread; distinct benchmarks generate concurrently, and
     * the returned reference stays valid for the library's lifetime.
     */
    const CommTrace &get(const std::string &benchmark);

    /** Generate all of @p benchmarks in parallel on @p runner. */
    void prefetch(const std::vector<std::string> &benchmarks,
                  ExperimentRunner &runner);

    /** Natural offered load of a trace in data-flits/cycle/node. */
    static double naturalLoad(const CommTrace &t, unsigned n_nodes);

  private:
    struct Entry {
        std::once_flag once;
        CommTrace trace;
    };

    unsigned scale_;
    std::mutex mtx_;
    std::map<std::string, std::unique_ptr<Entry>> entries_;
};

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_TRACE_LIBRARY_H
