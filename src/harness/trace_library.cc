#include "harness/trace_library.h"

#include "cache/approx_cache.h"
#include "common/log.h"
#include "harness/runner.h"
#include "workloads/workload.h"

namespace approxnoc::harness {

const CommTrace &
TraceLibrary::get(const std::string &benchmark)
{
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        auto &slot = entries_[benchmark];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    // Generation runs outside the map lock so distinct benchmarks
    // build concurrently; call_once serializes same-benchmark callers.
    std::call_once(entry->once, [&] {
        // The paper's trace-collection step: run the kernel through
        // the coherent cache model with a precise codec, recording
        // every miss request/response and writeback as a packet.
        CacheConfig ccfg; // 16 cores + 16 homes = Table 1's 32 endpoints
        ApproxCacheSystem mem(ccfg, nullptr);
        CommTrace trace;
        mem.setTraceSink(&trace);
        auto wl = make_workload(benchmark, scale_);
        wl->run(mem);
        entry->trace = std::move(trace);
        ANOC_INFORM("trace ", benchmark, ": ", entry->trace.size(),
                    " records, ", entry->trace.duration(), " cycles");
    });
    return entry->trace;
}

void
TraceLibrary::prefetch(const std::vector<std::string> &benchmarks,
                       ExperimentRunner &runner)
{
    auto statuses =
        runner.run(benchmarks.size(),
                   [&](std::size_t i) { (void)get(benchmarks[i]); });
    for (std::size_t i = 0; i < statuses.size(); ++i)
        if (!statuses[i].ok)
            ANOC_FATAL("trace generation for '", benchmarks[i],
                       "' failed: ", statuses[i].error);
}

double
TraceLibrary::naturalLoad(const CommTrace &t, unsigned n_nodes)
{
    if (t.duration() == 0)
        return 0.0;
    std::uint64_t flits = 0;
    for (const auto &r : t.records())
        flits += r.cls == PacketClass::Data ? 9 : 1;
    return static_cast<double>(flits) /
           (static_cast<double>(t.duration()) * n_nodes);
}

} // namespace approxnoc::harness
