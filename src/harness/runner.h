/**
 * @file
 * Parallel experiment execution: a small self-scheduling thread pool
 * that fans a list of independent jobs out over worker threads. Each
 * idle worker steals the next unclaimed job index from a shared
 * counter, so load imbalance between points (saturated vs idle
 * networks, large vs small traces) never leaves a core idle.
 *
 * Results are always delivered indexed by job position, so output is
 * bit-identical regardless of the worker count or completion order —
 * the determinism contract every harness binary relies on.
 */
#ifndef APPROXNOC_HARNESS_RUNNER_H
#define APPROXNOC_HARNESS_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/worker_pool.h"

namespace approxnoc::harness {

/** Completion state of one parallel job. */
struct JobStatus {
    bool ok = true;
    std::string error; ///< exception text when !ok
};

/** Outcome of one job in a typed parallel map. */
template <typename R> struct Outcome {
    bool ok = false;
    R value{};
    std::string error;
};

/** Progress callback: (jobs finished, jobs total). Serialized. */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Executes batches of independent jobs over a fixed worker count.
 * `jobs == 0` selects the hardware concurrency; `jobs == 1` runs
 * inline on the calling thread (no threads spawned).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(unsigned jobs = 1, ProgressFn progress = {});

    /** Worker count after resolving 0 -> hardware concurrency. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(i) for every i in [0, n). Exceptions thrown by a job are
     * captured into its JobStatus; the remaining jobs still run.
     */
    std::vector<JobStatus> run(std::size_t n,
                               const std::function<void(std::size_t)> &fn);

    /**
     * Typed convenience: results land at their job's index so callers
     * iterate in deterministic order. A throwing job yields
     * `ok == false` with a default-constructed value.
     */
    template <typename Fn,
              typename R = std::decay_t<std::invoke_result_t<Fn, std::size_t>>>
    std::vector<Outcome<R>>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<Outcome<R>> out(n);
        auto statuses = run(n, [&](std::size_t i) { out[i].value = fn(i); });
        for (std::size_t i = 0; i < n; ++i) {
            out[i].ok = statuses[i].ok;
            out[i].error = std::move(statuses[i].error);
        }
        return out;
    }

  private:
    unsigned jobs_;
    ProgressFn progress_;
    /** Lazily-created persistent pool shared across run() calls, so a
     *  sweep that maps many batches pays thread spawn once. */
    std::unique_ptr<WorkerPool> pool_;
};

/** `jobs == 0` -> hardware concurrency (at least 1). */
unsigned resolve_jobs(unsigned jobs);

/**
 * Derive the RNG seed of grid point @p index from the experiment base
 * seed (splitmix64 finalizer): well-decorrelated streams per point,
 * and identical whether the point runs on 1 or N workers.
 */
std::uint64_t derive_seed(std::uint64_t base_seed, std::size_t index);

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_RUNNER_H
