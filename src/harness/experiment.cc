#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/cli.h"
#include "common/log.h"
#include "core/codec_factory.h"
#include "harness/report.h"
#include "workloads/workload.h"

namespace approxnoc::harness {

std::vector<Scheme>
parse_scheme_list(const std::string &s)
{
    if (s == "all")
        return {kAllSchemes, kAllSchemes + 5};
    std::vector<Scheme> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(scheme_from_string(item));
    if (out.empty())
        ANOC_FATAL("no schemes selected");
    return out;
}

std::vector<std::string>
parse_benchmark_list(const std::string &s)
{
    if (s == "all")
        return workload_names();
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        make_workload(item); // validates the name
        out.push_back(item);
    }
    if (out.empty())
        ANOC_FATAL("no benchmarks selected");
    return out;
}

bool
PointQuery::matches(const ExperimentPoint &p) const
{
    if (benchmark && *benchmark != p.benchmark)
        return false;
    if (scheme && *scheme != p.scheme)
        return false;
    if (threshold && *threshold != p.threshold)
        return false;
    if (approx_ratio && *approx_ratio != p.approx_ratio)
        return false;
    if (load && *load != p.load)
        return false;
    return true;
}

// ---------------------------------------------------------------- Builder

ExperimentSpec::Builder::Builder()
    : benchmarks_(workload_names()),
      schemes_(kAllSchemes, kAllSchemes + 5),
      thresholds_{10.0},
      ratios_{0.75},
      loads_{0.04}
{}

ExperimentSpec::Builder &
ExperimentSpec::Builder::benchmarks(std::vector<std::string> v)
{
    benchmarks_ = std::move(v);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::schemes(std::vector<Scheme> v)
{
    schemes_ = std::move(v);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::thresholds(std::vector<double> v)
{
    thresholds_ = std::move(v);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::threshold(double v)
{
    return thresholds({v});
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::approxRatios(std::vector<double> v)
{
    ratios_ = std::move(v);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::approxRatio(double v)
{
    return approxRatios({v});
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::loads(std::vector<double> v)
{
    loads_ = std::move(v);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::load(double v)
{
    return loads({v});
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::jobs(unsigned n)
{
    cfg_.jobs = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::simJobs(unsigned n)
{
    cfg_.sim_jobs = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::seed(std::uint64_t s)
{
    cfg_.base_seed = s;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::maxRecords(std::size_t n)
{
    cfg_.max_records = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::cycles(Cycle n)
{
    cfg_.cycles = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::scale(unsigned n)
{
    cfg_.scale = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::csvDir(std::string dir)
{
    cfg_.csv_dir = std::move(dir);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::jsonDir(std::string dir)
{
    cfg_.json_dir = std::move(dir);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::metricsDir(std::string dir)
{
    cfg_.metrics_dir = std::move(dir);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::traceDir(std::string dir)
{
    cfg_.trace_dir = std::move(dir);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::sampleInterval(Cycle n)
{
    cfg_.sample_interval = n;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::profile(bool v)
{
    cfg_.profile = v;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::verbose(bool v)
{
    cfg_.verbose = v;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::progress(bool v)
{
    cfg_.progress = v;
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::filter(std::function<bool(const ExperimentPoint &)> keep)
{
    keep_ = std::move(keep);
    return *this;
}

ExperimentSpec::Builder &
ExperimentSpec::Builder::fromCli(int argc, char **argv, const std::string &what)
{
    CliArgs args(argc, argv);
    if (args.has("help")) {
        std::printf(
            "%s\n"
            "Flags:\n"
            "  --benchmarks=<all|name,name,...>  (default all)\n"
            "  --schemes=<all|name,name,...>     (default all)\n"
            "  --threshold=<pct>                 error threshold (10)\n"
            "  --approx-ratio=<0..1>             approximable ratio (0.75)\n"
            "  --max-records=<n>                 trace replay cap (20000)\n"
            "  --load=<flits/cycle/node>         replay target load (0.04)\n"
            "  --cycles=<n>                      synthetic run length (50000)\n"
            "  --scale=<n>                       workload size multiplier (1)\n"
            "  --jobs=<n>                        worker threads, 0=auto (1)\n"
            "  --sim-jobs=<n>                    region-parallel sim threads\n"
            "                                    per point, 0=auto (1)\n"
            "  --seed=<n>                        experiment base seed\n"
            "  --csv-dir=<dir>                   CSV output dir (results)\n"
            "  --json-dir=<dir>                  JSON output dir (csv-dir)\n"
            "  --metrics-out=<dir>               per-point + merged metrics JSON\n"
            "  --trace-out=<dir>                 Chrome trace-event JSON per point\n"
            "  --sample-interval=<cycles>        time-series epoch, 0=off (0)\n"
            "  --profile                         phase self-profiling + profile.json\n"
            "  --progress                        per-point progress on stderr\n"
            "  --verbose                         chatty logging\n",
            what.c_str());
        std::exit(0);
    }
    benchmarks_ = parse_benchmark_list(args.getString("benchmarks", "all"));
    schemes_ = parse_scheme_list(args.getString("schemes", "all"));
    thresholds_ = {args.getDouble("threshold", 10.0)};
    ratios_ = {args.getDouble("approx-ratio", 0.75)};
    loads_ = {args.getDouble("load", 0.04)};
    cfg_.max_records =
        static_cast<std::size_t>(args.getInt("max-records", 20000));
    cfg_.cycles = static_cast<Cycle>(args.getInt("cycles", 50000));
    cfg_.scale = static_cast<unsigned>(args.getInt("scale", 1));
    cfg_.jobs = static_cast<unsigned>(args.getInt("jobs", 1));
    cfg_.sim_jobs = static_cast<unsigned>(args.getInt("sim-jobs", 1));
    cfg_.base_seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<long>(cfg_.base_seed)));
    cfg_.csv_dir = args.getString("csv-dir", "results");
    cfg_.json_dir = args.getString("json-dir", "");
    cfg_.metrics_dir = args.getString("metrics-out", "");
    cfg_.trace_dir = args.getString("trace-out", "");
    cfg_.sample_interval =
        static_cast<Cycle>(args.getInt("sample-interval", 0));
    cfg_.profile = args.getBool("profile", false);
    cfg_.progress = args.getBool("progress", false);
    cfg_.verbose = args.getBool("verbose", false);
    set_verbose(cfg_.verbose);
    return *this;
}

ExperimentSpec
ExperimentSpec::Builder::build() const
{
    ANOC_ASSERT(!benchmarks_.empty() && !schemes_.empty() &&
                    !thresholds_.empty() && !ratios_.empty() &&
                    !loads_.empty(),
                "experiment grid has an empty dimension");
    ExperimentSpec spec;
    spec.cfg_ = cfg_;
    spec.benchmarks_ = benchmarks_;
    spec.schemes_ = schemes_;
    spec.thresholds_ = thresholds_;
    spec.ratios_ = ratios_;
    spec.loads_ = loads_;

    // Benchmark-major nesting mirrors the original per-figure loops,
    // so tables read in the familiar order.
    for (const auto &bm : benchmarks_)
        for (Scheme s : schemes_)
            for (double th : thresholds_)
                for (double ratio : ratios_)
                    for (double ld : loads_) {
                        ExperimentPoint p;
                        p.benchmark = bm;
                        p.scheme = s;
                        p.threshold = th;
                        p.approx_ratio = ratio;
                        p.load = ld;
                        if (keep_ && !keep_(p))
                            continue;
                        p.index = spec.points_.size();
                        p.seed = derive_seed(cfg_.base_seed, p.index);
                        spec.points_.push_back(std::move(p));
                    }
    ANOC_ASSERT(!spec.points_.empty(), "experiment grid is empty");
    return spec;
}

std::vector<std::size_t>
ExperimentSpec::select(const PointQuery &q) const
{
    std::vector<std::size_t> out;
    for (const auto &p : points_)
        if (q.matches(p))
            out.push_back(p.index);
    return out;
}

std::size_t
ExperimentSpec::indexOf(const PointQuery &q) const
{
    auto matches = select(q);
    if (matches.size() != 1)
        ANOC_FATAL("point query matched ", matches.size(),
                   " grid points (expected exactly 1)");
    return matches.front();
}

// ------------------------------------------------------------- Experiment

Experiment::Experiment(ExperimentSpec spec)
    : spec_(std::move(spec)), traces_(spec_.config().scale)
{}

void
Experiment::prefetchTraces()
{
    // Generate every trace the grid references up front (in parallel)
    // so point workers only ever read shared immutable traces.
    std::vector<std::string> needed;
    for (const auto &p : spec_.points()) {
        if (p.benchmark.empty())
            continue;
        bool seen = false;
        for (const auto &bm : needed)
            seen = seen || bm == p.benchmark;
        if (!seen)
            needed.push_back(p.benchmark);
    }
    ExperimentRunner runner(spec_.config().jobs);
    traces_.prefetch(needed, runner);
}

const ResultSink &
Experiment::run()
{
    prefetchTraces();
    return run([this](const ExperimentPoint &pt) {
        return run_replay_point(traces_.get(pt.benchmark), pt,
                                spec_.config());
    });
}

ProgressFn
make_progress(const ExperimentConfig &cfg)
{
    if (!cfg.progress)
        return {};
    return [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r[%zu/%zu points]", done, total);
        if (done == total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };
}

const ResultSink &
Experiment::run(const PointFn &fn)
{
    const ExperimentConfig &cfg = spec_.config();
    ExperimentRunner runner(cfg.jobs, make_progress(cfg));

    sink_ = std::make_unique<ResultSink>(spec_.size());
    const auto &points = spec_.points();
    auto statuses = runner.run(points.size(), [&](std::size_t i) {
        sink_->record(i, fn(points[i]));
    });
    for (std::size_t i = 0; i < statuses.size(); ++i)
        if (!statuses[i].ok)
            sink_->recordFailure(i, statuses[i].error);
    if (sink_->failures())
        ANOC_WARN(sink_->failures(), " of ", points.size(),
                  " grid points failed");

    // Fold the per-point registries in spec order into one merged
    // dump. Spec-order iteration (not completion order) keeps the file
    // byte-identical across --jobs settings.
    if (!cfg.metrics_dir.empty()) {
        std::vector<std::shared_ptr<const telemetry::MetricRegistry>> parts;
        parts.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const PointResult &pr = sink_->at(i);
            parts.push_back(pr.ok ? pr.replay.metrics : nullptr);
        }
        telemetry::write_merged_metrics(cfg.metrics_dir, "metrics.json",
                                        parts);

        // Same spec-order discipline for the sweep-level QoR report:
        // ErrorProfile::merge commutes, so qor.json is byte-identical
        // at any --jobs. profile.json is wall-clock and exempt.
        QorParts qor;
        ProfileParts prof;
        qor.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const PointResult &pr = sink_->at(i);
            const std::string label = telemetry::PointTelemetry::pointLabel(
                points[i].index, points[i].benchmark,
                to_string(points[i].scheme));
            qor.emplace_back(label, pr.ok ? pr.replay.qor : nullptr);
            if (cfg.profile)
                prof.emplace_back(label, pr.ok ? pr.replay.profile : nullptr);
        }
        write_qor_report(cfg.metrics_dir, qor);
        if (cfg.profile)
            write_profile_report(cfg.metrics_dir, prof);
    }
    return *sink_;
}

const ResultSink &
Experiment::results() const
{
    ANOC_ASSERT(sink_, "Experiment::run() has not been called");
    return *sink_;
}

const PointResult &
Experiment::result(const PointQuery &q) const
{
    return results().at(spec_.indexOf(q));
}

const PointResult &
Experiment::resultAt(std::size_t index) const
{
    return results().at(index);
}

} // namespace approxnoc::harness
