/**
 * @file
 * The unified experiment API. An ExperimentSpec describes a
 * (benchmark x scheme x threshold x approx-ratio x load) grid plus the
 * shared run configuration; its fluent Builder parses the common CLI
 * flags every harness binary accepts (including --jobs, --seed and
 * --json-dir). An Experiment executes the grid on a worker pool, one
 * isolated Simulator + Network + CodecSystem per point, with
 * deterministic per-point seeds — `--jobs=1` and `--jobs=N` produce
 * bit-identical result tables.
 */
#ifndef APPROXNOC_HARNESS_EXPERIMENT_H
#define APPROXNOC_HARNESS_EXPERIMENT_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "harness/point_runner.h"
#include "harness/result_sink.h"
#include "harness/runner.h"
#include "harness/trace_library.h"

namespace approxnoc::harness {

/** Run-wide knobs shared by every grid point. */
struct ExperimentConfig {
    std::size_t max_records = 20000; ///< trace replay cap
    Cycle cycles = 50000;            ///< synthetic run length
    unsigned scale = 1;              ///< workload problem-size multiplier
    unsigned jobs = 1;               ///< worker threads (0 = hardware)
    /** Region-parallel simulator threads per point (0 = hardware,
     *  1 = serial stepping). Orthogonal to `jobs`: `jobs` fans grid
     *  points out, `sim_jobs` parallelizes inside one simulation —
     *  results stay byte-identical either way. */
    unsigned sim_jobs = 1;
    std::uint64_t base_seed = 0xA9C0FFEEull; ///< per-point seed root
    std::string csv_dir = "results";
    std::string json_dir; ///< empty = alongside the CSV in csv_dir

    /** @name Telemetry (all off by default) */
    ///@{
    std::string metrics_dir;   ///< per-point metrics + merged metrics.json
    std::string trace_dir;     ///< per-point Chrome trace-event files
    Cycle sample_interval = 0; ///< time-series epoch length, 0 = off
    ///@}

    /** Self-profiling (`--profile`): per-point phase timers plus, with
     * metrics enabled, per-point and merged profile.json artifacts. */
    bool profile = false;

    bool verbose = false;
    bool progress = false; ///< per-point progress lines on stderr
};

/** One cell of the experiment grid. */
struct ExperimentPoint {
    std::size_t index = 0; ///< position in spec order
    std::string benchmark;
    Scheme scheme = Scheme::Baseline;
    double threshold = 10.0;    ///< error threshold e%
    double approx_ratio = 0.75; ///< approximable packet fraction
    double load = 0.04;         ///< offered data flits/cycle/node
    std::uint64_t seed = 0;     ///< derived from (base_seed, index)
};

/** Grid coordinates with wildcards; unset fields match anything. */
struct PointQuery {
    std::optional<std::string> benchmark;
    std::optional<Scheme> scheme;
    std::optional<double> threshold;
    std::optional<double> approx_ratio;
    std::optional<double> load;

    bool matches(const ExperimentPoint &p) const;
};

/** Immutable description of one experiment sweep. */
class ExperimentSpec
{
  public:
    /** Fluent builder; dimensions default to the paper's Table 1. */
    class Builder
    {
      public:
        Builder();

        Builder &benchmarks(std::vector<std::string> v);
        Builder &schemes(std::vector<Scheme> v);
        Builder &thresholds(std::vector<double> v);
        Builder &threshold(double v);
        Builder &approxRatios(std::vector<double> v);
        Builder &approxRatio(double v);
        Builder &loads(std::vector<double> v);
        Builder &load(double v);

        Builder &jobs(unsigned n);
        Builder &simJobs(unsigned n);
        Builder &seed(std::uint64_t s);
        Builder &maxRecords(std::size_t n);
        Builder &cycles(Cycle n);
        Builder &scale(unsigned n);
        Builder &csvDir(std::string dir);
        Builder &jsonDir(std::string dir);
        Builder &metricsDir(std::string dir);
        Builder &traceDir(std::string dir);
        Builder &sampleInterval(Cycle n);
        Builder &profile(bool v);
        Builder &verbose(bool v);
        Builder &progress(bool v);

        /** Drop grid points @p keep rejects (applied at build()). */
        Builder &filter(std::function<bool(const ExperimentPoint &)> keep);

        /**
         * Parse the shared harness flags (--benchmarks, --schemes,
         * --threshold, --approx-ratio, --load, --max-records,
         * --cycles, --scale, --jobs, --seed, --csv-dir, --json-dir,
         * --metrics-out, --trace-out, --sample-interval, --progress,
         * --verbose). Prints @p what and the flag list on --help,
         * then exits. Dimension calls made after fromCli() override
         * the CLI values.
         */
        Builder &fromCli(int argc, char **argv, const std::string &what);

        /** Materialize the (filtered) grid in deterministic order. */
        ExperimentSpec build() const;

      private:
        ExperimentConfig cfg_;
        std::vector<std::string> benchmarks_;
        std::vector<Scheme> schemes_;
        std::vector<double> thresholds_;
        std::vector<double> ratios_;
        std::vector<double> loads_;
        std::function<bool(const ExperimentPoint &)> keep_;
    };

    const ExperimentConfig &config() const { return cfg_; }
    const std::vector<ExperimentPoint> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }

    const std::vector<std::string> &benchmarks() const { return benchmarks_; }
    const std::vector<Scheme> &schemes() const { return schemes_; }
    const std::vector<double> &thresholds() const { return thresholds_; }
    const std::vector<double> &approxRatios() const { return ratios_; }
    const std::vector<double> &loads() const { return loads_; }

    /** Indices of every point matching @p q, in spec order. */
    std::vector<std::size_t> select(const PointQuery &q) const;
    /** Index of the unique point matching @p q (fatal otherwise). */
    std::size_t indexOf(const PointQuery &q) const;

  private:
    friend class Builder;
    ExperimentConfig cfg_;
    std::vector<std::string> benchmarks_;
    std::vector<Scheme> schemes_;
    std::vector<double> thresholds_;
    std::vector<double> ratios_;
    std::vector<double> loads_;
    std::vector<ExperimentPoint> points_;
};

/**
 * An executable experiment: the spec, its trace library and, after
 * run(), the per-point results.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentSpec spec);

    const ExperimentSpec &spec() const { return spec_; }
    TraceLibrary &traces() { return traces_; }

    /** Custom point executor (testing, non-replay experiments). */
    using PointFn = std::function<ReplayResult(const ExperimentPoint &)>;

    /**
     * Run every grid point through the standard trace-replay executor
     * on config().jobs workers. Traces are pre-generated in parallel
     * first. Returns the sink with results in spec order.
     */
    const ResultSink &run();

    /**
     * Like run(), but with @p fn as the per-point executor. Traces
     * are not prefetched; call prefetchTraces() first (or rely on the
     * library's lazy thread-safe generation) if @p fn replays traces.
     */
    const ResultSink &run(const PointFn &fn);

    /** Generate every trace the grid references, in parallel. */
    void prefetchTraces();

    /** Results of the last run() (fatal if never run). */
    const ResultSink &results() const;

    /** Result of the unique point matching @p q. */
    const PointResult &result(const PointQuery &q) const;
    const PointResult &resultAt(std::size_t index) const;

  private:
    ExperimentSpec spec_;
    TraceLibrary traces_;
    std::unique_ptr<ResultSink> sink_;
};

/**
 * Standard stderr progress callback (`\r[done/total points]`) when
 * @p cfg asks for progress, empty otherwise. Shared by Experiment and
 * binaries that drive an ExperimentRunner directly.
 */
ProgressFn make_progress(const ExperimentConfig &cfg);

/** Scheme list parsing ("all" or comma-separated names). */
std::vector<Scheme> parse_scheme_list(const std::string &s);
/** Benchmark list parsing ("all" or comma-separated names). */
std::vector<std::string> parse_benchmark_list(const std::string &s);

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_EXPERIMENT_H
