/**
 * @file
 * Compatibility alias. FlowShardedEncoder moved to
 * harness/sharded_codec_pipeline.h when parallel decoding landed and
 * the two directions were unified under ShardedCodecPipeline; include
 * that header directly in new code.
 */
#ifndef APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H
#define APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H

#include "harness/sharded_codec_pipeline.h"

#endif // APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H
