/**
 * @file
 * Intra-sweep parallel block encoding. A sweep point often holds a
 * large batch of pending blocks whose flows are independent — the
 * APPROX-NoC dictionaries are keyed by endpoint, so blocks from
 * different source nodes never share mutable encoder state (the
 * CodecSystem flow-isolation contract, compression/codec.h). This
 * encoder exploits that: it partitions a batch by encoder endpoint,
 * encodes the shards concurrently on the work-stealing
 * ExperimentRunner pool, and writes every result at its submission
 * index.
 *
 * Determinism contract: output, stats and telemetry are byte-identical
 * at any job count.
 *  - Each shard owns every request of one source endpoint, in
 *    submission order — exactly the subsequence the serial path would
 *    feed that encoder's tables, so per-source state (PMT contents,
 *    replacement metadata, pending-update application) evolves
 *    identically.
 *  - Flows sharing a source are co-located in one shard: same-src
 *    blocks contend on that encoder's CAM/TCAM touch state and update
 *    FIFO even when their destinations differ, so one flow's blocks
 *    are never encoded concurrently with each other or with any flow
 *    sharing its encoder.
 *  - Cross-shard state is limited to relaxed-atomic commutative
 *    counters, whose totals are interleaving-independent.
 *  - Results land at their request index, so the merged stream never
 *    depends on completion order.
 */
#ifndef APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H
#define APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H

#include <cstddef>
#include <vector>

#include "common/data_block.h"
#include "common/types.h"
#include "compression/codec.h"
#include "compression/encoded.h"
#include "harness/runner.h"

namespace approxnoc::harness {

/** One pending block encode: @c *block headed @c src -> @c dst at
 * cycle @c now. The block is borrowed; it must outlive encodeAll(). */
struct EncodeRequest {
    const DataBlock *block = nullptr;
    NodeId src = 0;
    NodeId dst = 0;
    Cycle now = 0;
};

/**
 * Encodes batches of independent blocks through one shared
 * CodecSystem, sharded by source endpoint. `jobs == 1` (the default)
 * runs the serial reference path inline; `jobs == 0` selects the
 * hardware concurrency.
 */
class FlowShardedEncoder
{
  public:
    explicit FlowShardedEncoder(CodecSystem &codec, unsigned jobs = 1);

    /** Worker count after resolving 0 -> hardware concurrency. */
    unsigned jobs() const { return runner_.jobs(); }

    /**
     * Encode every request through CodecSystem::encodeBlock and return
     * the encoded blocks in submission order. Throws std::runtime_error
     * (first failing shard, lowest source first) if any encode throws;
     * the remaining shards still run to completion.
     */
    std::vector<EncodedBlock> encodeAll(const std::vector<EncodeRequest> &reqs);

    /** Distinct encoder endpoints in the last encodeAll() batch — the
     * available parallelism (shards are the unit of scheduling). */
    std::size_t lastShardCount() const { return last_shards_; }

  private:
    CodecSystem &codec_;
    ExperimentRunner runner_;
    std::size_t last_shards_ = 0;
};

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_FLOW_SHARDED_ENCODER_H
