#include "harness/flow_sharded_encoder.h"

#include <stdexcept>
#include <unordered_map>

#include "common/log.h"

namespace approxnoc::harness {

FlowShardedEncoder::FlowShardedEncoder(CodecSystem &codec, unsigned jobs)
    : codec_(codec), runner_(jobs)
{}

std::vector<EncodedBlock>
FlowShardedEncoder::encodeAll(const std::vector<EncodeRequest> &reqs)
{
    std::vector<EncodedBlock> out(reqs.size());

    // Shard by source endpoint, preserving submission order inside
    // each shard. Shards are enumerated in first-appearance order so
    // the partition itself is deterministic, though nothing below
    // depends on shard order — only on per-shard request order.
    std::vector<std::vector<std::size_t>> shards;
    std::unordered_map<NodeId, std::size_t> shard_of_src;
    shards.reserve(16);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ANOC_ASSERT(reqs[i].block != nullptr,
                    "encode request without a block");
        auto [it, fresh] =
            shard_of_src.try_emplace(reqs[i].src, shards.size());
        if (fresh)
            shards.emplace_back();
        shards[it->second].push_back(i);
    }
    last_shards_ = shards.size();

    // The serial reference path: one thread, submission order. This is
    // the executable specification the sharded path must match
    // byte-for-byte (tests/test_parallel_encode.cc pins it down).
    if (runner_.jobs() <= 1 || shards.size() <= 1) {
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const EncodeRequest &r = reqs[i];
            out[i] = codec_.encodeBlock(*r.block, r.src, r.dst, r.now);
        }
        return out;
    }

    auto statuses = runner_.run(shards.size(), [&](std::size_t s) {
        for (std::size_t i : shards[s]) {
            const EncodeRequest &r = reqs[i];
            out[i] = codec_.encodeBlock(*r.block, r.src, r.dst, r.now);
        }
    });
    for (std::size_t s = 0; s < statuses.size(); ++s) {
        if (!statuses[s].ok)
            throw std::runtime_error(
                "flow-sharded encode failed (src " +
                std::to_string(reqs[shards[s].front()].src) +
                "): " + statuses[s].error);
    }
    return out;
}

} // namespace approxnoc::harness
