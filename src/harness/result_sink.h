/**
 * @file
 * Thread-safe collection point for per-point experiment results. The
 * sink is pre-sized to the spec's point count; workers record into
 * their own slot, so results always read back in spec order no matter
 * which worker finished first. A point that threw is kept as a failed
 * cell (with its error text) instead of aborting the sweep.
 */
#ifndef APPROXNOC_HARNESS_RESULT_SINK_H
#define APPROXNOC_HARNESS_RESULT_SINK_H

#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness/point_runner.h"

namespace approxnoc::harness {

class ExperimentSpec;

/** Result slot of one grid point. */
struct PointResult {
    bool done = false;  ///< the point ran (ok or failed)
    bool ok = false;    ///< the point produced a result
    std::string error;  ///< failure text when done && !ok
    ReplayResult replay;
};

/** Indexed, mutex-guarded result store. */
class ResultSink
{
  public:
    explicit ResultSink(std::size_t n_points) : results_(n_points) {}

    /** Record a successful point (thread-safe). */
    void record(std::size_t index, const ReplayResult &r);
    /** Record a failed point (thread-safe). */
    void recordFailure(std::size_t index, std::string error);

    std::size_t size() const { return results_.size(); }
    const PointResult &at(std::size_t index) const;

    /** Number of failed cells so far. */
    std::size_t failures() const;

    /** Merged distribution of per-point mean total latencies. */
    const RunningStat &latencySummary() const { return latency_summary_; }

    /**
     * The full grid as one table, one row per point in spec order:
     * coordinates, status, then every ReplayResult metric. Failed
     * cells carry "FAILED" and their error.
     */
    Table toTable(const ExperimentSpec &spec) const;

  private:
    mutable std::mutex mtx_;
    std::vector<PointResult> results_;
    RunningStat latency_summary_;
};

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_RESULT_SINK_H
