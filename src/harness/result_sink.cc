#include "harness/result_sink.h"

#include "common/log.h"
#include "harness/experiment.h"

namespace approxnoc::harness {

void
ResultSink::record(std::size_t index, const ReplayResult &r)
{
    std::lock_guard<std::mutex> lock(mtx_);
    ANOC_ASSERT(index < results_.size(), "result index out of range");
    PointResult &slot = results_[index];
    slot.done = true;
    slot.ok = true;
    slot.replay = r;
    latency_summary_.add(r.total_lat);
}

void
ResultSink::recordFailure(std::size_t index, std::string error)
{
    std::lock_guard<std::mutex> lock(mtx_);
    ANOC_ASSERT(index < results_.size(), "result index out of range");
    PointResult &slot = results_[index];
    slot.done = true;
    slot.ok = false;
    slot.error = std::move(error);
}

const PointResult &
ResultSink::at(std::size_t index) const
{
    ANOC_ASSERT(index < results_.size(), "result index out of range");
    return results_[index];
}

std::size_t
ResultSink::failures() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::size_t n = 0;
    for (const auto &r : results_)
        if (r.done && !r.ok)
            ++n;
    return n;
}

Table
ResultSink::toTable(const ExperimentSpec &spec) const
{
    Table t({"benchmark", "scheme", "threshold", "approx_ratio", "load",
             "status", "queue_lat", "net_lat", "decode_lat", "total_lat",
             "quality", "exact_frac", "approx_frac", "compr_ratio",
             "data_flits", "packets", "dyn_power_mw"});
    for (const ExperimentPoint &p : spec.points()) {
        const PointResult &r = at(p.index);
        auto row = t.row();
        row.cell(p.benchmark.empty() ? std::string("-") : p.benchmark)
            .cell(to_string(p.scheme))
            .cell(p.threshold, 1)
            .cell(p.approx_ratio, 2)
            .cell(p.load, 3);
        if (!r.done) {
            row.cell(std::string("SKIPPED"));
            for (int i = 0; i < 11; ++i)
                row.cell(std::string("-"));
        } else if (!r.ok) {
            row.cell(std::string("FAILED: ") + r.error);
            for (int i = 0; i < 11; ++i)
                row.cell(std::string("-"));
        } else {
            row.cell(std::string("ok"))
                .cell(r.replay.queue_lat, 2)
                .cell(r.replay.net_lat, 2)
                .cell(r.replay.decode_lat, 2)
                .cell(r.replay.total_lat, 2)
                .cell(r.replay.quality, 4)
                .cell(r.replay.exact_fraction, 3)
                .cell(r.replay.approx_fraction, 3)
                .cell(r.replay.compression_ratio, 3)
                .cell(static_cast<long>(r.replay.data_flits))
                .cell(static_cast<long>(r.replay.packets))
                .cell(r.replay.dynamic_power_mw, 3);
        }
    }
    return t;
}

} // namespace approxnoc::harness
