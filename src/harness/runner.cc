#include "harness/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace approxnoc::harness {

unsigned
resolve_jobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::uint64_t
derive_seed(std::uint64_t base_seed, std::size_t index)
{
    // splitmix64 finalizer over the (base, index) pair. Index + 1 so
    // point 0 does not collapse onto the bare base seed.
    std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull *
                                      (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

ExperimentRunner::ExperimentRunner(unsigned jobs, ProgressFn progress)
    : jobs_(resolve_jobs(jobs)), progress_(std::move(progress))
{}

std::vector<JobStatus>
ExperimentRunner::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    std::vector<JobStatus> statuses(n);
    if (n == 0)
        return statuses;

    std::atomic<std::size_t> done{0};
    std::mutex progress_mtx;

    // The WorkerPool contract forbids throwing tasks, so exception
    // capture into JobStatus lives in this wrapper — job i's status
    // lands at index i regardless of which lane ran it.
    auto task = [&](std::size_t i) {
        try {
            fn(i);
        } catch (const std::exception &e) {
            statuses[i].ok = false;
            statuses[i].error = e.what();
        } catch (...) {
            statuses[i].ok = false;
            statuses[i].error = "unknown exception";
        }
        std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress_) {
            std::lock_guard<std::mutex> lock(progress_mtx);
            progress_(d, n);
        }
    };

    if (jobs_ <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return statuses;
    }
    if (!pool_)
        pool_ = std::make_unique<WorkerPool>(jobs_);
    pool_->parallelFor(n, task);
    return statuses;
}

} // namespace approxnoc::harness
