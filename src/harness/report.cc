#include "harness/report.h"

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "telemetry/error_profile.h"
#include "telemetry/phase_profiler.h"
#include "telemetry/telemetry.h"

namespace approxnoc::harness {

void
emit_table(const Table &t, const ExperimentConfig &cfg,
           const std::string &name)
{
    t.print(std::cout);
    std::error_code ec;
    std::filesystem::create_directories(cfg.csv_dir, ec);
    if (!ec)
        t.writeCsv(cfg.csv_dir + "/" + name + ".csv");
    const std::string &json_dir =
        cfg.json_dir.empty() ? cfg.csv_dir : cfg.json_dir;
    std::error_code jec;
    std::filesystem::create_directories(json_dir, jec);
    if (!jec)
        t.writeJson(json_dir + "/" + name + ".json", name);
    std::printf("\n[csv: %s/%s.csv] [json: %s/%s.json]\n", cfg.csv_dir.c_str(),
                name.c_str(), json_dir.c_str(), name.c_str());
}

void
print_banner(const std::string &figure, const ExperimentSpec &spec)
{
    const ExperimentConfig &cfg = spec.config();
    std::printf("== APPROX-NoC reproduction: %s ==\n", figure.c_str());
    std::printf(
        "config: 4x4 concentrated 2D mesh (32 nodes), 3-stage routers, "
        "4 VCs x 4 flits, 64-bit flits, XY wormhole\n");
    std::printf("        error threshold %.0f%%, approximable ratio %.0f%%, "
                "8-entry PMTs\n",
                spec.thresholds().front(),
                spec.approxRatios().front() * 100.0);
    std::printf("        %zu grid points, %u worker thread%s\n\n",
                spec.size(), resolve_jobs(cfg.jobs),
                resolve_jobs(cfg.jobs) == 1 ? "" : "s");
}

bool
write_qor_report(const std::string &dir, const QorParts &parts)
{
    telemetry::ErrorProfile merged;
    for (const auto &[label, qor] : parts)
        if (qor)
            merged.merge(*qor);
    return telemetry::write_json_artifact(
        dir, "qor.json", [&](std::ostream &os) {
            os << "{\n\"schema\": \"approxnoc-qor-report-v1\",\n";
            os << "\"points\": {";
            bool first = true;
            for (const auto &[label, qor] : parts) {
                if (!qor)
                    continue;
                if (!first)
                    os << ",";
                first = false;
                os << "\n\"" << label << "\": ";
                qor->writeJson(os);
            }
            os << (first ? "" : "\n") << "},\n\"merged\": ";
            merged.writeJson(os);
            os << "}\n";
        });
}

bool
write_profile_report(const std::string &dir, const ProfileParts &parts)
{
    telemetry::PhaseProfiler merged;
    for (const auto &[label, prof] : parts)
        if (prof)
            merged.merge(*prof);
    return telemetry::write_json_artifact(
        dir, "profile.json", [&](std::ostream &os) {
            os << "{\n\"schema\": \"approxnoc-profile-report-v1\",\n";
            os << "\"points\": {";
            bool first = true;
            for (const auto &[label, prof] : parts) {
                if (!prof)
                    continue;
                if (!first)
                    os << ",";
                first = false;
                os << "\n\"" << label << "\": ";
                prof->writeJson(os);
            }
            os << (first ? "" : "\n") << "},\n\"merged\": ";
            merged.writeJson(os);
            os << "}\n";
        });
}

} // namespace approxnoc::harness
