#include "harness/report.h"

#include <cstdio>
#include <filesystem>
#include <iostream>

namespace approxnoc::harness {

void
emit_table(const Table &t, const ExperimentConfig &cfg,
           const std::string &name)
{
    t.print(std::cout);
    std::error_code ec;
    std::filesystem::create_directories(cfg.csv_dir, ec);
    if (!ec)
        t.writeCsv(cfg.csv_dir + "/" + name + ".csv");
    const std::string &json_dir =
        cfg.json_dir.empty() ? cfg.csv_dir : cfg.json_dir;
    std::error_code jec;
    std::filesystem::create_directories(json_dir, jec);
    if (!jec)
        t.writeJson(json_dir + "/" + name + ".json", name);
    std::printf("\n[csv: %s/%s.csv] [json: %s/%s.json]\n", cfg.csv_dir.c_str(),
                name.c_str(), json_dir.c_str(), name.c_str());
}

void
print_banner(const std::string &figure, const ExperimentSpec &spec)
{
    const ExperimentConfig &cfg = spec.config();
    std::printf("== APPROX-NoC reproduction: %s ==\n", figure.c_str());
    std::printf(
        "config: 4x4 concentrated 2D mesh (32 nodes), 3-stage routers, "
        "4 VCs x 4 flits, 64-bit flits, XY wormhole\n");
    std::printf("        error threshold %.0f%%, approximable ratio %.0f%%, "
                "8-entry PMTs\n",
                spec.thresholds().front(),
                spec.approxRatios().front() * 100.0);
    std::printf("        %zu grid points, %u worker thread%s\n\n",
                spec.size(), resolve_jobs(cfg.jobs),
                resolve_jobs(cfg.jobs) == 1 ? "" : "s");
}

} // namespace approxnoc::harness
