#include "harness/sharded_codec_pipeline.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/log.h"

namespace approxnoc::harness {
namespace {

// anoc-lint: allow(D1) -- shard self-profiling wall clock; feeds only the profile artifact, which is documented as outside the byte-identical contract
using profile_clock = std::chrono::steady_clock;

std::uint64_t
elapsed_ns(profile_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            profile_clock::now() - t0)
            .count());
}

/**
 * The shared shard-map / submission-index-merge / first-failing-shard
 * machinery both directions run on. Partitions @p reqs by @p key
 * (preserving submission order inside each shard, enumerating shards
 * in first-appearance order so the partition itself is deterministic),
 * calls @p prep once with the shard count (arena provisioning happens
 * there, on the calling thread, before any worker starts), applies
 * @p op to every request together with its shard index — inline on the
 * calling thread for the serial reference path (jobs <= 1 or a single
 * shard), else one runner job per shard — and writes each result at
 * its request index. Throws std::runtime_error naming the lowest-index
 * failing shard's endpoint; the remaining shards still run to
 * completion.
 */
template <typename Req, typename Out, typename KeyFn, typename PrepFn,
          typename OpFn>
std::vector<Out>
shard_apply(const std::vector<Req> &reqs, ExperimentRunner &runner,
            std::size_t &last_shards, ShardStats *stats, const char *what,
            const char *key_name, KeyFn key, PrepFn prep, OpFn op)
{
    std::vector<Out> out(reqs.size());

    std::vector<std::vector<std::size_t>> shards;
    std::vector<std::size_t> shard_of(reqs.size());
    std::unordered_map<NodeId, std::size_t> shard_of_key;
    shards.reserve(16);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        auto [it, fresh] = shard_of_key.try_emplace(key(reqs[i]), shards.size());
        if (fresh)
            shards.emplace_back();
        shards[it->second].push_back(i);
        shard_of[i] = it->second;
    }
    last_shards = shards.size();
    prep(shards.size());

    // The serial reference path: one thread, submission order. This is
    // the executable specification the sharded path must match
    // byte-for-byte (tests/test_parallel_encode.cc and
    // tests/test_parallel_decode.cc pin it down).
    if (runner.jobs() <= 1 || shards.size() <= 1) {
        if (!stats) {
            for (std::size_t i = 0; i < reqs.size(); ++i)
                out[i] = op(reqs[i], shard_of[i]);
            return out;
        }
        // The serial reference path genuinely runs as one unit of
        // work, so it is accounted as a single shard slot.
        const auto t0 = profile_clock::now();
        for (std::size_t i = 0; i < reqs.size(); ++i)
            out[i] = op(reqs[i], shard_of[i]);
        const std::uint64_t ns = elapsed_ns(t0);
        ++stats->batches;
        stats->blocks += reqs.size();
        stats->shard_slots += 1;
        stats->busy_ns += ns;
        stats->max_busy_ns += ns;
        stats->wall_ns += ns;
        return out;
    }

    // Workers write disjoint busy[s] slots; the main thread folds them
    // into the cumulative stats only after runner.run() joined.
    std::vector<std::uint64_t> busy(stats ? shards.size() : 0, 0);
    const auto batch0 = profile_clock::now();
    auto statuses = runner.run(shards.size(), [&](std::size_t s) {
        if (!stats) {
            for (std::size_t i : shards[s])
                out[i] = op(reqs[i], s);
            return;
        }
        const auto t0 = profile_clock::now();
        for (std::size_t i : shards[s])
            out[i] = op(reqs[i], s);
        busy[s] = elapsed_ns(t0);
    });
    if (stats) {
        const std::uint64_t wall = elapsed_ns(batch0);
        std::uint64_t sum = 0, mx = 0;
        for (std::uint64_t b : busy) {
            sum += b;
            mx = std::max(mx, b);
        }
        ++stats->batches;
        stats->blocks += reqs.size();
        stats->shard_slots += shards.size();
        stats->busy_ns += sum;
        stats->max_busy_ns += mx;
        stats->wall_ns += wall;
        stats->merge_wait_ns += wall > mx ? wall - mx : 0;
    }
    for (std::size_t s = 0; s < statuses.size(); ++s) {
        if (!statuses[s].ok)
            throw std::runtime_error(
                std::string(what) + " failed (" + key_name + " " +
                std::to_string(key(reqs[shards[s].front()])) +
                "): " + statuses[s].error);
    }
    return out;
}

/**
 * Reset every retained arena (rewinds cursors, keeps chunk capacity)
 * and grow the pool to @p nshards. Runs on the batch's calling thread
 * before any shard starts, so a shard only ever sees its own arena.
 */
void
prepare_arenas(std::vector<std::unique_ptr<Arena>> &arenas,
               std::size_t nshards)
{
    for (auto &a : arenas)
        a->reset();
    while (arenas.size() < nshards)
        arenas.push_back(std::make_unique<Arena>());
}

std::size_t
arenas_bytes_reserved(const std::vector<std::unique_ptr<Arena>> &arenas)
{
    std::size_t total = 0;
    for (const auto &a : arenas)
        total += a->bytesReserved();
    return total;
}

} // namespace

FlowShardedEncoder::FlowShardedEncoder(CodecSystem &codec, unsigned jobs)
    : codec_(codec), runner_(jobs)
{}

std::size_t
FlowShardedEncoder::arenaBytesReserved() const
{
    return arenas_bytes_reserved(arenas_);
}

std::vector<EncodedBlock>
FlowShardedEncoder::encodeAll(const std::vector<EncodeRequest> &reqs)
{
    auto key = [](const EncodeRequest &r) {
        ANOC_ASSERT(r.block != nullptr, "encode request without a block");
        return r.src;
    };
    if (!arena_mode_) {
        return shard_apply<EncodeRequest, EncodedBlock>(
            reqs, runner_, last_shards_, profiling_ ? &stats_ : nullptr,
            "flow-sharded encode", "src", key, [](std::size_t) {},
            [this](const EncodeRequest &r, std::size_t) {
                return codec_.encodeBlock(*r.block, r.src, r.dst, r.now);
            });
    }
    // Arena mode: the previous batch's blocks die here (reset inside
    // prep), then each shard bump-allocates from its own arena.
    return shard_apply<EncodeRequest, EncodedBlock>(
        reqs, runner_, last_shards_, profiling_ ? &stats_ : nullptr,
        "flow-sharded encode", "src", key,
        [this](std::size_t nshards) { prepare_arenas(arenas_, nshards); },
        [this](const EncodeRequest &r, std::size_t s) {
            return codec_.encodeSpan(*r.block, r.src, r.dst, r.now,
                                     *arenas_[s]);
        });
}

FlowShardedDecoder::FlowShardedDecoder(CodecSystem &codec, unsigned jobs)
    : codec_(codec), runner_(jobs)
{}

std::size_t
FlowShardedDecoder::arenaBytesReserved() const
{
    return arenas_bytes_reserved(arenas_);
}

std::vector<DataBlock>
FlowShardedDecoder::decodeAll(const std::vector<DecodeRequest> &reqs)
{
    return shard_apply<DecodeRequest, DataBlock>(
        reqs, runner_, last_shards_, profiling_ ? &stats_ : nullptr,
        "flow-sharded decode", "dst",
        [](const DecodeRequest &r) {
            ANOC_ASSERT(r.enc != nullptr, "decode request without a block");
            return r.dst;
        },
        [](std::size_t) {},
        [this](const DecodeRequest &r, std::size_t) {
            return codec_.decodeBlock(*r.enc, r.src, r.dst, r.now);
        });
}

std::vector<DecodedSpan>
FlowShardedDecoder::decodeAllSpans(const std::vector<DecodeRequest> &reqs)
{
    return shard_apply<DecodeRequest, DecodedSpan>(
        reqs, runner_, last_shards_, profiling_ ? &stats_ : nullptr,
        "flow-sharded span decode", "dst",
        [](const DecodeRequest &r) {
            ANOC_ASSERT(r.enc != nullptr, "decode request without a block");
            return r.dst;
        },
        [this](std::size_t nshards) { prepare_arenas(arenas_, nshards); },
        [this](const DecodeRequest &r, std::size_t s) {
            return codec_.decodeSpan(*r.enc, r.src, r.dst, r.now,
                                     *arenas_[s]);
        });
}

ShardedCodecPipeline::RoundTripResult
ShardedCodecPipeline::roundTrip(const std::vector<EncodeRequest> &reqs,
                                Cycle decode_delay)
{
    RoundTripResult rt;
    rt.encoded = encoder_.encodeAll(reqs);

    // Phase barrier: every encode above has retired before any decode
    // below starts, so the decodes' appends to the pending-update
    // channels never race an encoder draining them.
    std::vector<DecodeRequest> dec;
    dec.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        dec.push_back(DecodeRequest{&rt.encoded[i], reqs[i].src, reqs[i].dst,
                                    reqs[i].now + decode_delay});
    rt.decoded = decoder_.decodeAll(dec);
    return rt;
}

} // namespace approxnoc::harness
