/**
 * @file
 * The standard experiment point executor: replay one benchmark trace
 * through a freshly built, fully isolated Simulator + Network +
 * CodecSystem triple and reduce the run to the scalar metrics the
 * paper figures plot. Every run is self-contained, so any number of
 * points can execute concurrently.
 */
#ifndef APPROXNOC_HARNESS_POINT_RUNNER_H
#define APPROXNOC_HARNESS_POINT_RUNNER_H

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "telemetry/telemetry.h"
#include "traffic/trace.h"

namespace approxnoc::telemetry {
class ErrorProfile;
class PhaseProfiler;
} // namespace approxnoc::telemetry

namespace approxnoc::harness {

struct ExperimentConfig;
struct ExperimentPoint;

/** Scalar metrics of one trace replay through the NoC. */
struct ReplayResult {
    double queue_lat = 0.0;
    double net_lat = 0.0;
    double decode_lat = 0.0;
    double total_lat = 0.0;
    double quality = 1.0;           ///< data value quality
    double exact_fraction = 0.0;    ///< Fig. 10a
    double approx_fraction = 0.0;   ///< Fig. 10a
    double compression_ratio = 1.0; ///< Fig. 10b
    std::uint64_t data_flits = 0;   ///< Fig. 11
    std::uint64_t packets = 0;
    double dynamic_power_mw = 0.0;  ///< Fig. 15
    Cycle elapsed = 0;

    /**
     * The point's hierarchical metrics, null unless the job ran with
     * telemetry. Shared (immutable once the point completes) so the
     * harness can fold per-point registries in spec order after the
     * sweep — byte-identical merged output at any --jobs.
     */
    std::shared_ptr<const telemetry::MetricRegistry> metrics;

    /**
     * The point's QoR error profile — always present: one signed
     * relative error per approximated word, recorded at encode time.
     * Immutable once the point completes; the harness merges the
     * per-point profiles in spec order for the sweep-level qor.json.
     */
    std::shared_ptr<const telemetry::ErrorProfile> qor;

    /** Phase timings, null unless the job ran with profile = true.
     * Wall-clock — outside the byte-identical determinism contract. */
    std::shared_ptr<const telemetry::PhaseProfiler> profile;
};

/**
 * Everything one replay run needs beyond the trace itself. The
 * zero-valued hardware knobs fall back to the Table 1 defaults.
 */
struct ReplayJob {
    Scheme scheme = Scheme::FpVaxx;
    double threshold = 10.0;     ///< error threshold e%
    double approx_ratio = 0.75;  ///< approximable packet fraction
    double load = 0.04;          ///< offered data flits/cycle/node
    std::size_t max_records = 20000;
    std::uint64_t seed = 0;      ///< per-point stream seed
    unsigned flit_bits = 0;      ///< 0 = NocConfig default (64)
    std::size_t pmt_entries = 0; ///< 0 = DictionaryConfig default (8)

    /** Region-parallel simulator threads (0 = hardware, 1 = serial).
     * Results are byte-identical at any value. */
    unsigned sim_jobs = 1;

    /** Telemetry collection; default-constructed = everything off. */
    telemetry::TelemetryOptions telemetry;

    /** Self-profiling: time the simulator/codec phases and (with
     * metrics enabled) write `<label>.profile.json`. */
    bool profile = false;
};

/**
 * Replay @p trace on the paper's 4x4 cmesh under @p job. Throws
 * std::runtime_error if the replay fails to drain (the runner reports
 * the point as a failed cell instead of aborting the sweep).
 */
ReplayResult run_replay(const CommTrace &trace, const ReplayJob &job);

/** Map a grid point onto a ReplayJob and run it. */
ReplayResult run_replay_point(const CommTrace &trace,
                              const ExperimentPoint &pt,
                              const ExperimentConfig &cfg);

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_POINT_RUNNER_H
