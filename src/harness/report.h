/**
 * @file
 * Uniform result emission for harness binaries: print the table, then
 * write it as CSV and JSON under the spec's output directories.
 */
#ifndef APPROXNOC_HARNESS_REPORT_H
#define APPROXNOC_HARNESS_REPORT_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace approxnoc::harness {

/** (point label, per-point profile) pairs, in spec order. */
using QorParts = std::vector<
    std::pair<std::string, std::shared_ptr<const telemetry::ErrorProfile>>>;
using ProfileParts = std::vector<
    std::pair<std::string, std::shared_ptr<const telemetry::PhaseProfiler>>>;

/**
 * Print @p t and write `<csv_dir>/<name>.csv` plus
 * `<json_dir|csv_dir>/<name>.json` (best effort).
 */
void emit_table(const Table &t, const ExperimentConfig &cfg,
                const std::string &name);

/** Print the Table-1 style banner every harness binary emits. */
void print_banner(const std::string &figure, const ExperimentSpec &spec);

/**
 * Write `<dir>/qor.json`: every point's QoR error profile plus the
 * spec-order merge of all of them. Null profiles (failed points) are
 * skipped. ErrorProfile::merge is order-independent, so the file is
 * byte-identical at any --jobs setting. Best effort like the other
 * telemetry artifacts; returns false when the file cannot be written.
 */
bool write_qor_report(const std::string &dir, const QorParts &parts);

/**
 * Write `<dir>/profile.json`: every point's phase timings plus their
 * by-name merge. Wall-clock derived — outside the byte-identical
 * determinism contract (unlike qor.json/metrics.json).
 */
bool write_profile_report(const std::string &dir,
                          const ProfileParts &parts);

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_REPORT_H
