/**
 * @file
 * Uniform result emission for harness binaries: print the table, then
 * write it as CSV and JSON under the spec's output directories.
 */
#ifndef APPROXNOC_HARNESS_REPORT_H
#define APPROXNOC_HARNESS_REPORT_H

#include <string>

#include "common/table.h"
#include "harness/experiment.h"

namespace approxnoc::harness {

/**
 * Print @p t and write `<csv_dir>/<name>.csv` plus
 * `<json_dir|csv_dir>/<name>.json` (best effort).
 */
void emit_table(const Table &t, const ExperimentConfig &cfg,
                const std::string &name);

/** Print the Table-1 style banner every harness binary emits. */
void print_banner(const std::string &figure, const ExperimentSpec &spec);

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_REPORT_H
