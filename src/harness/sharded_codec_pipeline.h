/**
 * @file
 * Intra-sweep parallel block coding, both directions. A sweep point
 * often holds a large batch of pending blocks whose flows are
 * independent — the APPROX-NoC dictionaries are keyed by endpoint, so
 * blocks from different source nodes never share mutable encoder
 * state and blocks for different destination nodes never share mutable
 * decoder state (the flow-isolation and destination-isolation
 * contracts, compression/codec.h). The classes here exploit that:
 * FlowShardedEncoder partitions a batch by source endpoint,
 * FlowShardedDecoder by destination endpoint, each runs its shards
 * concurrently on the work-stealing ExperimentRunner pool and writes
 * every result at its submission index. ShardedCodecPipeline fronts
 * both with one shard-map/jobs/merge/error discipline and enforces the
 * encode/decode phase separation the decode contract requires.
 *
 * Determinism contract: output, stats, telemetry and notification
 * streams are byte-identical at any job count.
 *  - Each shard owns every request of one endpoint (src for encode,
 *    dst for decode), in submission order — exactly the subsequence
 *    the serial path would feed that endpoint's tables, so per-endpoint
 *    state (PMT contents, replacement metadata, candidate trackers,
 *    notification sequence numbers) evolves identically.
 *  - Requests sharing the endpoint are co-located in one shard, so
 *    none of them ever run concurrently with each other.
 *  - Cross-shard state is limited to relaxed-atomic commutative
 *    counters and (decode side) the per-(encoder, decoder) pending
 *    channels, which the encoder merges in an interleaving-independent
 *    order.
 *  - Results land at their request index, so the merged stream never
 *    depends on completion order.
 */
#ifndef APPROXNOC_HARNESS_SHARDED_CODEC_PIPELINE_H
#define APPROXNOC_HARNESS_SHARDED_CODEC_PIPELINE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/contract.h"
#include "common/data_block.h"
#include "common/types.h"
#include "compression/codec.h"
#include "compression/encoded.h"
#include "harness/runner.h"

namespace approxnoc::harness {

/** One pending block encode: @c *block headed @c src -> @c dst at
 * cycle @c now. The block is borrowed; it must outlive encodeAll(). */
struct EncodeRequest {
    const DataBlock *block = nullptr;
    NodeId src = 0;
    NodeId dst = 0;
    Cycle now = 0;
};

/**
 * Cumulative self-profiling counters for one sharded direction,
 * accumulated across batches while profiling is enabled (see
 * FlowShardedEncoder::setProfiling). Wall-clock derived — explicitly
 * outside the byte-identical determinism contract, like every other
 * `profile` artifact.
 *
 * The serial reference path (jobs <= 1 or a single shard) counts as
 * one shard slot per batch: it genuinely runs as one unit of work.
 */
struct ShardStats {
    std::uint64_t batches = 0;     ///< encodeAll()/decodeAll() calls
    std::uint64_t blocks = 0;      ///< total requests processed
    std::uint64_t shard_slots = 0; ///< sum of shards over batches
    std::uint64_t busy_ns = 0;     ///< sum of per-shard busy time
    std::uint64_t max_busy_ns = 0; ///< sum of per-batch slowest shard
    std::uint64_t wall_ns = 0;     ///< sum of per-batch wall time
    /** Sum of (wall - slowest shard) per batch: time spent joining the
     * pool and merging after the last shard retired. */
    std::uint64_t merge_wait_ns = 0;

    /** Mean blocks per batch. */
    double
    meanBatchSize() const
    {
        return batches ? static_cast<double>(blocks) / batches : 0.0;
    }

    /**
     * Load-imbalance ratio: summed slowest-shard time over the mean
     * per-shard busy time. 1.0 is perfectly balanced; S means the
     * slowest shard carried an S-shard batch alone.
     */
    double
    imbalance() const
    {
        if (busy_ns == 0 || shard_slots == 0)
            return 1.0;
        const double mean_busy =
            static_cast<double>(busy_ns) / shard_slots;
        return static_cast<double>(max_busy_ns) / (mean_busy * batches);
    }

    void
    merge(const ShardStats &o)
    {
        batches += o.batches;
        blocks += o.blocks;
        shard_slots += o.shard_slots;
        busy_ns += o.busy_ns;
        max_busy_ns += o.max_busy_ns;
        wall_ns += o.wall_ns;
        merge_wait_ns += o.merge_wait_ns;
    }
};

/** One pending block decode: @c *enc from @c src arriving at @c dst at
 * cycle @c now. The block is borrowed; it must outlive decodeAll(). */
struct DecodeRequest {
    const EncodedBlock *enc = nullptr;
    NodeId src = 0;
    NodeId dst = 0;
    Cycle now = 0;
};

/**
 * Encodes batches of independent blocks through one shared
 * CodecSystem, sharded by source endpoint. `jobs == 1` (the default)
 * runs the serial reference path inline; `jobs == 0` selects the
 * hardware concurrency.
 */
class FlowShardedEncoder
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation);

    explicit FlowShardedEncoder(CodecSystem &codec, unsigned jobs = 1);

    /** Worker count after resolving 0 -> hardware concurrency. */
    unsigned jobs() const { return runner_.jobs(); }

    /**
     * Encode every request through CodecSystem::encodeBlock and return
     * the encoded blocks in submission order. Throws std::runtime_error
     * (first failing shard, lowest source first) if any encode throws;
     * the remaining shards still run to completion.
     */
    std::vector<EncodedBlock> encodeAll(const std::vector<EncodeRequest> &reqs);

    /** Distinct encoder endpoints in the last encodeAll() batch — the
     * available parallelism (shards are the unit of scheduling). */
    std::size_t lastShardCount() const { return last_shards_; }

    /**
     * Zero-copy mode: route encodes through CodecSystem::encodeSpan so
     * every block's word storage lands in a per-shard bump arena
     * instead of per-block heap allocations. Output bits are identical;
     * only the storage backing changes. The arenas are reset at the
     * START of the next encodeAll() call, so a batch's EncodedBlocks
     * stay valid until then (copying one detaches it to the heap).
     */
    void setArenaMode(bool on) { arena_mode_ = on; }
    bool arenaMode() const { return arena_mode_; }

    /** Arenas currently provisioned (grows to the widest batch seen). */
    std::size_t arenaShards() const { return arenas_.size(); }
    /** Bytes of chunk capacity retained across all shard arenas. */
    std::size_t arenaBytesReserved() const;

    /** Toggle per-shard timing; off (the default) costs one branch per
     * batch. Timings accumulate in stats() across batches. */
    void setProfiling(bool on) { profiling_ = on; }
    const ShardStats &stats() const { return stats_; }

  private:
    /** The codec is the shared substrate the shards run over; its own
     * contract (per-src encoder state) makes that safe. */
    ANOC_REGION_SHARED CodecSystem &codec_;
    ANOC_REGION_SHARED ExperimentRunner runner_;
    /** Batch bookkeeping, written only between batches (serial). */
    ANOC_REGION_SHARED std::size_t last_shards_ = 0;
    ANOC_REGION_SHARED bool profiling_ = false;
    ANOC_REGION_SHARED ShardStats stats_;
    ANOC_REGION_SHARED bool arena_mode_ = false;
    /** One bump arena per shard slot: during a batch, shard s allocates
     * exclusively from arenas_[s]; the vector itself is grown/reset
     * only between batches, on the calling thread. */
    ANOC_SHARD_LOCAL std::vector<std::unique_ptr<Arena>> arenas_;
};

/**
 * Decodes batches of independent blocks through one shared
 * CodecSystem, sharded by destination endpoint — the decode-side twin
 * of FlowShardedEncoder. `jobs == 1` (the default) runs the serial
 * reference path inline; `jobs == 0` selects the hardware concurrency.
 *
 * Callers own the phasing obligation of the destination-isolation
 * contract: no encode of the same codec may overlap a decodeAll()
 * call (ShardedCodecPipeline sequences the two for you).
 */
class FlowShardedDecoder
{
  public:
    ANOC_ISOLATION_CONTRACT(destination_isolation);

    explicit FlowShardedDecoder(CodecSystem &codec, unsigned jobs = 1);

    /** Worker count after resolving 0 -> hardware concurrency. */
    unsigned jobs() const { return runner_.jobs(); }

    /**
     * Decode every request through CodecSystem::decodeBlock and return
     * the data blocks in submission order. Throws std::runtime_error
     * (first failing shard, lowest destination first) if any decode
     * throws; the remaining shards still run to completion.
     */
    std::vector<DataBlock> decodeAll(const std::vector<DecodeRequest> &reqs);

    /**
     * Zero-copy twin of decodeAll(): decode through
     * CodecSystem::decodeSpan and return views whose word storage lives
     * in per-shard bump arenas. The decoded words are byte-identical to
     * decodeAll()'s; only the storage backing changes. Every span is
     * invalidated by the next decodeAllSpans() call (the arenas are
     * reset at its start) — copy words out before then if they must
     * outlive the batch.
     */
    std::vector<DecodedSpan>
    decodeAllSpans(const std::vector<DecodeRequest> &reqs);

    /** Distinct decoder endpoints in the last decodeAll() batch. */
    std::size_t lastShardCount() const { return last_shards_; }

    /** Arenas currently provisioned (grows to the widest batch seen). */
    std::size_t arenaShards() const { return arenas_.size(); }
    /** Bytes of chunk capacity retained across all shard arenas. */
    std::size_t arenaBytesReserved() const;

    /** Toggle per-shard timing; off (the default) costs one branch per
     * batch. Timings accumulate in stats() across batches. */
    void setProfiling(bool on) { profiling_ = on; }
    const ShardStats &stats() const { return stats_; }

  private:
    /** The codec is the shared substrate the shards run over; its own
     * contract (per-dst decoder state) makes that safe. */
    ANOC_REGION_SHARED CodecSystem &codec_;
    ANOC_REGION_SHARED ExperimentRunner runner_;
    /** Batch bookkeeping, written only between batches (serial). */
    ANOC_REGION_SHARED std::size_t last_shards_ = 0;
    ANOC_REGION_SHARED bool profiling_ = false;
    ANOC_REGION_SHARED ShardStats stats_;
    /** One bump arena per shard slot (see FlowShardedEncoder::arenas_);
     * only decodeAllSpans() touches these. */
    ANOC_SHARD_LOCAL std::vector<std::unique_ptr<Arena>> arenas_;
};

/**
 * The unified front-end: one encoder and one decoder over the same
 * codec, sharing the jobs policy and the determinism discipline.
 * encodeAll()/decodeAll() forward to the respective side; roundTrip()
 * runs the full encode -> wire -> decode pipeline with the phase
 * separation the decode contract requires (the decode phase starts
 * only after every encode of the batch has retired).
 */
class ShardedCodecPipeline
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    /** Same worker count on both sides. */
    explicit ShardedCodecPipeline(CodecSystem &codec, unsigned jobs = 1)
        : ShardedCodecPipeline(codec, jobs, jobs)
    {}

    /** Split policy, e.g. encode serial while decode fans out. */
    ShardedCodecPipeline(CodecSystem &codec, unsigned encode_jobs,
                         unsigned decode_jobs)
        : encoder_(codec, encode_jobs), decoder_(codec, decode_jobs)
    {}

    unsigned encodeJobs() const { return encoder_.jobs(); }
    unsigned decodeJobs() const { return decoder_.jobs(); }

    std::vector<EncodedBlock>
    encodeAll(const std::vector<EncodeRequest> &reqs)
    {
        return encoder_.encodeAll(reqs);
    }

    std::vector<DataBlock>
    decodeAll(const std::vector<DecodeRequest> &reqs)
    {
        return decoder_.decodeAll(reqs);
    }

    std::vector<DecodedSpan>
    decodeAllSpans(const std::vector<DecodeRequest> &reqs)
    {
        return decoder_.decodeAllSpans(reqs);
    }

    /** Zero-copy encode batches: see FlowShardedEncoder::setArenaMode.
     * (Span decodes always run arena-backed; no toggle needed.) */
    void setArenaMode(bool on) { encoder_.setArenaMode(on); }
    bool arenaMode() const { return encoder_.arenaMode(); }

    /** Both phases of one batch, submission-indexed. */
    struct RoundTripResult {
        std::vector<EncodedBlock> encoded;
        std::vector<DataBlock> decoded;
    };

    /**
     * Encode the batch, then decode every encoded block at its
     * destination @c decode_delay cycles after its encode cycle
     * (model the wire however the caller likes). The two phases are
     * strictly sequenced — decodes only start once encodeAll() has
     * returned — which is exactly the phasing obligation of the
     * destination-isolation contract.
     */
    RoundTripResult roundTrip(const std::vector<EncodeRequest> &reqs,
                              Cycle decode_delay = 0);

    std::size_t lastEncodeShardCount() const
    {
        return encoder_.lastShardCount();
    }
    std::size_t lastDecodeShardCount() const
    {
        return decoder_.lastShardCount();
    }

    /** Toggle per-shard timing on both directions. */
    void
    setProfiling(bool on)
    {
        encoder_.setProfiling(on);
        decoder_.setProfiling(on);
    }
    const ShardStats &encodeStats() const { return encoder_.stats(); }
    const ShardStats &decodeStats() const { return decoder_.stats(); }

    FlowShardedEncoder &encoder() { return encoder_; }
    FlowShardedDecoder &decoder() { return decoder_; }

  private:
    ANOC_REGION_SHARED FlowShardedEncoder encoder_;
    ANOC_REGION_SHARED FlowShardedDecoder decoder_;
};

} // namespace approxnoc::harness

#endif // APPROXNOC_HARNESS_SHARDED_CODEC_PIPELINE_H
