/**
 * @file
 * Signed per-word relative error between a precise word and an
 * approximation candidate. This is the single definition of "relative
 * error" shared by the AVCL admission check (which only needs the
 * magnitude) and the QoR error telemetry (which keeps the sign so
 * over- and under-approximation are distinguishable in the profile).
 *
 * The magnitude contract is exact: for every input,
 * `std::fabs(signed_relative_error(w, c, t))` is bit-identical to the
 * historical `avcl_relative_error(w, c, t)` — IEEE-754 division
 * computes the sign separately from the magnitude, so folding the sign
 * into the numerator cannot perturb a single mantissa bit. The AVCL
 * threshold comparisons therefore approximate exactly the same words
 * before and after this refactor.
 */
#ifndef APPROXNOC_COMMON_RELATIVE_ERROR_H
#define APPROXNOC_COMMON_RELATIVE_ERROR_H

#include "common/types.h"

namespace approxnoc {

/**
 * Relative error of @p candidate w.r.t. the precise word @p w under
 * data type @p t, signed: positive when the candidate overshoots the
 * precise value, negative when it undershoots.
 *
 * Conventions (matching the unsigned version this generalizes):
 * - equal bits are error 0;
 * - Int32: (c - w) / |w|; a zero precise word yields ±1 by direction;
 * - Float32: specials (zero/denormal/inf/NaN) must never be
 *   substituted and count as +1; same exponent+sign compares scaled
 *   significands, otherwise the actual float values are compared;
 * - Raw data has no value semantics: any flip counts as +1.
 */
double signed_relative_error(Word w, Word candidate, DataType t);

} // namespace approxnoc

#endif // APPROXNOC_COMMON_RELATIVE_ERROR_H
