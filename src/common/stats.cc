#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace approxnoc {

void
Histogram::add(double x)
{
    ++count_;
    sum_ += x;
    if (x < 0) {
        ++underflow_;
        return;
    }
    std::size_t idx = static_cast<std::size_t>(x / width_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1;
    ++buckets_[idx];
}

void
Histogram::merge(const Histogram &o)
{
    ANOC_ASSERT(width_ == o.width_ && buckets_.size() == o.buckets_.size(),
                "merging histograms with different shapes");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    underflow_ += o.underflow_;
    sum_ += o.sum_;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    // Underflow samples rank below bucket 0: a target inside them
    // (q = 0 included) resolves to the histogram's lower bound.
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (static_cast<double>(i) + 1.0) * width_;
    }
    return static_cast<double>(buckets_.size()) * width_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    underflow_ = 0;
    sum_ = 0.0;
}

void
StatRegistry::merge(const StatRegistry &o)
{
    for (const auto &[name, c] : o.counters())
        counters_[name].merge(c);
    for (const auto &[name, s] : o.stats())
        stats_[name].merge(s);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, s] : stats_) {
        os << name << " mean=" << s.mean() << " min=" << s.min()
           << " max=" << s.max() << " n=" << s.count() << "\n";
    }
}

void
StatRegistry::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, s] : stats_)
        s.reset();
}

} // namespace approxnoc
