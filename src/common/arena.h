/**
 * @file
 * Bump-allocator arena for the zero-copy codec paths (docs/perf.md,
 * "Arena-backed block buffers"). An Arena hands out monotonically
 * increasing slices of a few large chunks and frees nothing until
 * reset(), which rewinds every chunk for reuse without returning
 * memory to the OS — so a steady-state encode/decode batch performs
 * zero heap allocations after warm-up.
 *
 * It is a std::pmr::memory_resource, so pmr containers (EncodedBlock's
 * word vector) can live directly in it; deallocate is a no-op, which
 * makes destroying an arena-backed container after reset() safe (the
 * storage was already reclaimed wholesale).
 *
 * Isolation contract: an Arena is single-threaded state. The sharded
 * pipeline keeps one arena per shard (ANOC_SHARD_LOCAL), reset at the
 * start of the shard's next batch — so batch N's blocks stay valid
 * until batch N+1 begins, and no allocation ever crosses a shard.
 *
 * Determinism: allocation order inside a shard is the codec's own
 * deterministic order, and no pointer value ever influences results
 * (the D1/D2 lint rules keep it that way), so arena placement cannot
 * perturb outputs.
 */
#ifndef APPROXNOC_COMMON_ARENA_H
#define APPROXNOC_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <vector>

#include "common/contract.h"

namespace approxnoc {

class Arena final : public std::pmr::memory_resource
{
  public:
    /** Owned by exactly one shard task at a time; never shared. */
    ANOC_ISOLATION_CONTRACT(flow_isolation);

    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunk_bytes_(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Rewind every chunk for reuse. O(#chunks), frees nothing.
     * Everything previously allocated from this arena — raw slices and
     * pmr containers alike — is invalidated wholesale.
     */
    void
    reset()
    {
        cursor_chunk_ = 0;
        cursor_off_ = 0;
        bytes_live_ = 0;
        ++resets_;
    }

    /** Typed slice of @p n default-constructible Ts (uninitialized for
     * trivial Ts is avoided: value-initialized via placement-new would
     * cost a pass, so this returns raw storage suitably aligned — the
     * codec paths always write every element before reading). */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        return static_cast<T *>(do_allocate(n * sizeof(T), alignof(T)));
    }

    /** Bytes handed out since the last reset(). */
    std::size_t bytesLive() const { return bytes_live_; }
    /** High-water mark of bytes held across all chunks. */
    std::size_t bytesReserved() const { return bytes_reserved_; }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t resets() const { return resets_; }

  protected:
    void *
    do_allocate(std::size_t bytes, std::size_t alignment) override
    {
        if (bytes == 0)
            bytes = 1;
        ++allocations_;
        bytes_live_ += bytes;
        while (cursor_chunk_ < chunks_.size()) {
            Chunk &c = chunks_[cursor_chunk_];
            std::size_t off = align_up(cursor_off_, alignment);
            if (off + bytes <= c.size) {
                cursor_off_ = off + bytes;
                return c.data.get() + off;
            }
            ++cursor_chunk_;
            cursor_off_ = 0;
        }
        // Oversize requests get their own chunk so one huge block can't
        // force every later chunk to that size.
        std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
        chunks_.push_back(Chunk{
            std::unique_ptr<std::byte[]>(new std::byte[size]), size});
        bytes_reserved_ += size;
        cursor_chunk_ = chunks_.size() - 1;
        cursor_off_ = bytes;
        return chunks_.back().data.get();
    }

    void
    do_deallocate(void *, std::size_t, std::size_t) override
    {
        // Bump allocator: individual frees are no-ops; reset() reclaims.
    }

    bool
    do_is_equal(const std::pmr::memory_resource &other) const noexcept override
    {
        return this == &other;
    }

  private:
    // Chunk storage comes from operator new[], so it is aligned for
    // any standard type; offset rounding handles the rest. Requests
    // over alignof(max_align_t) are out of scope for the codec paths.
    static std::size_t
    align_up(std::size_t v, std::size_t a)
    {
        return (v + a - 1) & ~(a - 1);
    }

    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size;
    };

    ANOC_SHARD_LOCAL std::size_t chunk_bytes_;
    ANOC_SHARD_LOCAL std::vector<Chunk> chunks_;
    ANOC_SHARD_LOCAL std::size_t cursor_chunk_ = 0;
    ANOC_SHARD_LOCAL std::size_t cursor_off_ = 0;
    ANOC_SHARD_LOCAL std::size_t bytes_live_ = 0;
    ANOC_SHARD_LOCAL std::size_t bytes_reserved_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t allocations_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t resets_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_ARENA_H
