#include "common/cli.h"

#include <cstdlib>

#include "common/log.h"

namespace approxnoc {

CliArgs::CliArgs(int argc, char **argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            positional_.push_back(a);
            continue;
        }
        a = a.substr(2);
        auto eq = a.find('=');
        if (eq != std::string::npos)
            values_[a.substr(0, eq)] = a.substr(eq + 1);
        else
            values_[a] = "true";
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

long
CliArgs::getInt(const std::string &name, long def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == it->second.c_str())
        ANOC_FATAL("flag --", name, " expects an integer, got '", it->second, "'");
    return v;
}

double
CliArgs::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str())
        ANOC_FATAL("flag --", name, " expects a number, got '", it->second, "'");
    return v;
}

bool
CliArgs::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

} // namespace approxnoc
