/**
 * @file
 * A monotonically increasing event counter that may be bumped from
 * several threads at once. All operations use relaxed memory order:
 * the counter carries no synchronization, only a sum — which is all
 * the activity/telemetry counters need, because addition commutes, so
 * the final value is independent of thread interleaving. This is what
 * makes per-shard parallel block encoding (harness/FlowShardedEncoder)
 * produce stats byte-identical to the serial path.
 *
 * Copy and assignment transfer the current value, so classes holding
 * one (Cam, Tcam, Avcl, the codecs) stay copyable/movable and can live
 * in std::vector — a bare std::atomic would delete those operations.
 * Copying is NOT atomic with respect to concurrent increments; copy
 * only while no other thread is writing (construction, tests).
 */
#ifndef APPROXNOC_COMMON_RELAXED_COUNTER_H
#define APPROXNOC_COMMON_RELAXED_COUNTER_H

#include <atomic>
#include <cstdint>

namespace approxnoc {

/** Relaxed-atomic commutative counter, copyable by value. */
class RelaxedCounter
{
  public:
    RelaxedCounter() = default;
    RelaxedCounter(std::uint64_t v) : v_(v) {}

    RelaxedCounter(const RelaxedCounter &o) : v_(o.load()) {}

    RelaxedCounter &
    operator=(const RelaxedCounter &o)
    {
        v_.store(o.load(), std::memory_order_relaxed);
        return *this;
    }

    RelaxedCounter &
    operator=(std::uint64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }

    void
    add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Decrement, for counters that gate work rather than accumulate
     * totals (e.g. the dictionary codecs' pending-update occupancy).
     * Increments and decrements still commute, so the value is
     * interleaving-independent; the caller must never let concurrent
     * subs outrun the adds.
     */
    void
    sub(std::uint64_t n = 1)
    {
        v_.fetch_sub(n, std::memory_order_relaxed);
    }

    RelaxedCounter &
    operator++()
    {
        add(1);
        return *this;
    }

    RelaxedCounter &
    operator+=(std::uint64_t n)
    {
        add(n);
        return *this;
    }

    std::uint64_t
    load() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    operator std::uint64_t() const { return load(); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_RELAXED_COUNTER_H
