/**
 * @file
 * Deterministic random number generation. Every stochastic component
 * takes an explicit Rng (or a seed) so simulations are reproducible.
 */
#ifndef APPROXNOC_COMMON_RNG_H
#define APPROXNOC_COMMON_RNG_H

#include <cstdint>
#include <random>

namespace approxnoc {

/**
 * Thin wrapper over a 64-bit Mersenne twister with convenience draws.
 * Not thread safe; use one instance per simulated component.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0xA9C0FFEEull) : engine_(seed) {}

    /** Re-seed the generator. */
    void seed(std::uint64_t s) { engine_.seed(s); }

    /** Uniform integer in [0, bound) — bound must be > 0. */
    std::uint64_t
    next(std::uint64_t bound)
    {
        return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Normal draw. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Raw 64 random bits. */
    std::uint64_t bits() { return engine_(); }

    /** The underlying engine, for std::shuffle etc. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_RNG_H
