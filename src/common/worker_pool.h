/**
 * @file
 * A persistent work-stealing thread pool built for barrier-heavy use:
 * the region-parallel simulator loop dispatches two batches per
 * simulated cycle, so dispatch and join must cost microseconds, not a
 * thread spawn. Workers spin briefly on the batch epoch before
 * sleeping on a condition variable, which keeps a tight step loop hot
 * while an idle pool still parks its threads.
 *
 * The one-shot ExperimentRunner (src/harness/runner.*) delegates here,
 * so sweep-level and cycle-level parallelism share one implementation.
 */
#ifndef APPROXNOC_COMMON_WORKER_POOL_H
#define APPROXNOC_COMMON_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace approxnoc {

/**
 * Fixed-size pool executing batches of independent tasks. The calling
 * thread participates in every batch (a pool of `threads == n` runs
 * `n - 1` workers), and `parallelFor` returns only after every task of
 * the batch has completed — it is the phase barrier of the region
 * scheduler.
 *
 * Tasks are claimed work-stealing-style from a shared cursor, so an
 * imbalanced batch (one slow region, one saturated sweep point) never
 * idles the other lanes while unclaimed work remains. The cursor is
 * generation-tagged and claims go through compare-and-swap, so a
 * worker delayed across a batch boundary can never steal or replay an
 * index of a later batch.
 *
 * Contract: tasks must not throw (wrap and capture in the closure if
 * failure is expected — see ExperimentRunner), and `parallelFor` must
 * not be re-entered from inside a task.
 */
class WorkerPool
{
  public:
    /** @param threads total parallelism including the caller;
     *  0 resolves to the hardware concurrency. */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total parallelism including the calling thread. */
    unsigned threads() const { return n_threads_; }

    /**
     * Run fn(i) for every i in [0, n), stealing indices over the pool
     * plus the calling thread; returns when all n tasks are done
     * (acts as a full barrier with acquire/release ordering, so state
     * written by any task is visible to the caller afterwards).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runTasks();

    unsigned n_threads_;
    std::vector<std::thread> workers_;

    std::mutex mtx_;
    std::condition_variable cv_;
    std::atomic<bool> stop_{false};

    /** Wake signal: bumped once per published batch. */
    std::atomic<std::uint64_t> epoch_{0};

    /**
     * The claim cursor: batch generation in the high 32 bits, next
     * unclaimed index in the low 32. Claims CAS the index up, so a
     * claim succeeds only against the generation the claimant read —
     * stale claimants fail the CAS and bow out instead of consuming
     * (or double-running) an index of a newer batch.
     */
    std::atomic<std::uint64_t> cursor_{0};
    std::atomic<std::size_t> n_{0};
    std::atomic<std::size_t> left_{0};
    const std::function<void(std::size_t)> *fn_ = nullptr;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_WORKER_POOL_H
