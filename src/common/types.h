/**
 * @file
 * Fundamental scalar types shared by every APPROX-NoC module.
 */
#ifndef APPROXNOC_COMMON_TYPES_H
#define APPROXNOC_COMMON_TYPES_H

#include <cstdint>
#include <limits>
#include <string>

namespace approxnoc {

/** A 32-bit machine word as it travels through the codec datapath. */
using Word = std::uint32_t;

/** Simulation time in router clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a network endpoint (tile / NI). */
using NodeId = std::uint32_t;

/** Identifier of a router in the topology. */
using RouterId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel cycle value meaning "never / unset". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/**
 * Data type carried by a cache block. The VAXX engine only
 * distinguishes 32-bit integers from IEEE-754 single-precision floats;
 * anything else is treated as raw (non-approximable) bits.
 */
enum class DataType : std::uint8_t {
    Int32,   ///< two's-complement 32-bit integers
    Float32, ///< IEEE-754 binary32
    Raw,     ///< opaque bits; never approximated
};

/** Human-readable name of a DataType. */
std::string to_string(DataType t);

/** Category of a network packet. */
enum class PacketClass : std::uint8_t {
    Control, ///< single-flit coherence / request packet
    Data,    ///< multi-flit packet carrying a cache block
};

/** Compression / approximation scheme selector (the five paper bars). */
enum class Scheme : std::uint8_t {
    Baseline, ///< no compression
    DiComp,   ///< dynamic dictionary compression (Jin et al.)
    DiVaxx,   ///< dictionary compression + VAXX approximation
    FpComp,   ///< static frequent-pattern compression (Das et al.)
    FpVaxx,   ///< frequent-pattern compression + VAXX approximation
};

/** Human-readable name of a Scheme ("DI-VAXX" etc., paper spelling). */
std::string to_string(Scheme s);

/** All five schemes in the order the paper plots them. */
inline constexpr Scheme kAllSchemes[] = {
    Scheme::Baseline, Scheme::DiComp, Scheme::DiVaxx,
    Scheme::FpComp, Scheme::FpVaxx,
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_TYPES_H
