#include "common/bitstream.h"

#include "common/log.h"

namespace approxnoc {

void
BitWriter::write(std::uint64_t value, unsigned n)
{
    ANOC_ASSERT(n <= 64, "bit field too wide");
    for (unsigned i = 0; i < n; ++i) {
        if (bits_ % 8 == 0)
            bytes_.push_back(0);
        if ((value >> i) & 1ull)
            bytes_.back() |= static_cast<std::uint8_t>(1u << (bits_ % 8));
        ++bits_;
    }
}

std::uint64_t
BitReader::read(unsigned n)
{
    ANOC_ASSERT(n <= 64, "bit field too wide");
    ANOC_ASSERT(!exhausted(n), "bitstream underrun");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i, ++pos_) {
        std::uint8_t byte = bytes_[pos_ / 8];
        if ((byte >> (pos_ % 8)) & 1u)
            v |= 1ull << i;
    }
    return v;
}

} // namespace approxnoc
