/**
 * @file
 * Small constexpr bit-manipulation helpers used by the codec datapath.
 */
#ifndef APPROXNOC_COMMON_BITS_H
#define APPROXNOC_COMMON_BITS_H

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace approxnoc {

/** Mask with the low @p n bits set (n in [0, 32]). */
constexpr std::uint32_t
low_mask32(unsigned n)
{
    return n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1u);
}

/** Mask with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
low_mask64(unsigned n)
{
    return n >= 64 ? ~0ull : ((1ull << n) - 1ull);
}

/** Extract bits [hi..lo] of @p v (inclusive, hi >= lo). */
constexpr std::uint32_t
bits32(std::uint32_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & low_mask32(hi - lo + 1);
}

/** floor(log2(v)) for v >= 1. */
constexpr unsigned
log2_floor(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1ull));
}

/** ceil(log2(v)) for v >= 1. */
constexpr unsigned
log2_ceil(std::uint64_t v)
{
    unsigned f = log2_floor(v);
    return (v & (v - 1)) ? f + 1 : f;
}

/** True iff the value fits in @p n bits when sign-extended from bit n-1. */
constexpr bool
fits_signed(std::uint32_t v, unsigned n)
{
    std::int32_t s = static_cast<std::int32_t>(v);
    std::int32_t lo = -(1 << (n - 1));
    std::int32_t hi = (1 << (n - 1)) - 1;
    return s >= lo && s <= hi;
}

/** Sign-extend the low @p n bits of @p v to a full 32-bit word. */
constexpr std::uint32_t
sign_extend32(std::uint32_t v, unsigned n)
{
    if (n >= 32)
        return v;
    std::uint32_t m = 1u << (n - 1);
    v &= low_mask32(n);
    return (v ^ m) - m;
}

/** Absolute difference of two words interpreted as signed integers. */
constexpr std::uint64_t
abs_diff_signed(Word a, Word b)
{
    std::int64_t d = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) -
                     static_cast<std::int64_t>(static_cast<std::int32_t>(b));
    return d < 0 ? static_cast<std::uint64_t>(-d) : static_cast<std::uint64_t>(d);
}

/** Absolute difference of two words interpreted as unsigned integers. */
constexpr std::uint64_t
abs_diff_unsigned(Word a, Word b)
{
    return a > b ? static_cast<std::uint64_t>(a - b)
                 : static_cast<std::uint64_t>(b - a);
}

/** IEEE-754 binary32 field accessors. */
struct Float32Fields {
    static constexpr unsigned kMantissaBits = 23;
    static constexpr unsigned kExponentBits = 8;

    /** The 23-bit mantissa field. */
    static constexpr std::uint32_t mantissa(Word w) { return bits32(w, 22, 0); }
    /** The 8-bit biased exponent field. */
    static constexpr std::uint32_t exponent(Word w) { return bits32(w, 30, 23); }
    /** The sign bit. */
    static constexpr std::uint32_t sign(Word w) { return bits32(w, 31, 31); }

    /**
     * True when the exponent is all zeros or all ones: the word encodes
     * zero, a denormal, an infinity or a NaN, and the AVCL must bypass it.
     */
    static constexpr bool
    isSpecial(Word w)
    {
        std::uint32_t e = exponent(w);
        return e == 0 || e == 0xFF;
    }

    /** Reassemble a float word from its fields. */
    static constexpr Word
    assemble(std::uint32_t s, std::uint32_t e, std::uint32_t m)
    {
        return (s << 31) | ((e & 0xFF) << 23) | (m & low_mask32(23));
    }
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_BITS_H
