#include "common/worker_pool.h"

namespace approxnoc {

namespace {

/** Spin iterations before a worker parks on the condition variable.
 * Sized so back-to-back simulator phases (a few microseconds apart)
 * never pay a futex round trip, while a pool idle between sweeps
 * sleeps within ~a hundred microseconds. */
constexpr unsigned kSpinIters = 1u << 14;

/** Within a spin window, hand the core over every so often: when the
 * machine is oversubscribed (fewer cores than pool threads — notably
 * the 1-core CI container) the thread being waited on may need this
 * very core to make progress. */
constexpr unsigned kYieldEvery = 1u << 10;

constexpr std::uint64_t kIdxMask = 0xffffffffull;
constexpr std::uint64_t kGenMask = ~kIdxMask;
constexpr std::uint64_t kGenOne = kIdxMask + 1; // +1 in the gen field

inline void
cpu_relax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

WorkerPool::WorkerPool(unsigned threads)
{
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? hw : 1;
    }
    n_threads_ = threads;
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
WorkerPool::runTasks()
{
    std::uint64_t v = cursor_.load(std::memory_order_acquire);
    const std::uint64_t gen = v & kGenMask;
    for (;;) {
        if ((v & kGenMask) != gen)
            return; // a later batch took over; our claims are done
        std::uint64_t idx = v & kIdxMask;
        if (idx >= n_.load(std::memory_order_acquire))
            return; // batch exhausted (n_ is stable while gen matches)
        // The CAS both claims the index and revalidates the
        // generation: a claimant holding a stale view fails here and
        // re-reads, so it can neither consume nor re-run an index of
        // a batch it didn't synchronize with.
        if (cursor_.compare_exchange_weak(v, v + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            (*fn_)(static_cast<std::size_t>(idx));
            left_.fetch_sub(1, std::memory_order_release);
            v = cursor_.load(std::memory_order_acquire);
        }
        // CAS failure reloaded v; loop re-checks gen and bound.
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = epoch_.load(std::memory_order_acquire);
    for (;;) {
        unsigned spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            if (++spins < kSpinIters) {
                if (spins % kYieldEvery == 0)
                    std::this_thread::yield();
                else
                    cpu_relax();
                continue;
            }
            std::unique_lock<std::mutex> lock(mtx_);
            cv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       epoch_.load(std::memory_order_acquire) != seen;
            });
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = epoch_.load(std::memory_order_acquire);
        runTasks();
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n_threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Publish in three steps: (1) close the cursor under the new
    // generation so no straggler from the previous batch can be
    // mid-claim while fields change, (2) write the batch fields,
    // (3) open the cursor at index 0 (release) and bump the wake
    // epoch. A worker that claims successfully has, via the CAS,
    // synchronized with the open store and therefore sees fn_/n_ of
    // exactly this batch.
    std::uint64_t gen =
        ((cursor_.load(std::memory_order_relaxed) & kGenMask) + kGenOne) &
        kGenMask;
    cursor_.store(gen | kIdxMask, std::memory_order_release);
    fn_ = &fn;
    n_.store(n, std::memory_order_relaxed);
    left_.store(n, std::memory_order_relaxed);
    cursor_.store(gen, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    {
        // The lock pairs with cv_.wait's predicate check: without it a
        // worker could test the predicate, lose the race with this
        // notify, and sleep through the batch.
        std::lock_guard<std::mutex> lock(mtx_);
    }
    cv_.notify_all();

    runTasks(); // the caller is a lane too

    // The join barrier: all tasks done, with their writes visible.
    unsigned spins = 0;
    while (left_.load(std::memory_order_acquire) != 0) {
        if (++spins % kYieldEvery == 0)
            std::this_thread::yield();
        else
            cpu_relax();
    }
}

} // namespace approxnoc
