/**
 * @file
 * Bit-granular serialization. The codecs account NR sizes in bits;
 * BitWriter/BitReader prove those NRs really pack into that many bits
 * (compression/wire.h serializes every scheme's encoded block through
 * these). LSB-first within a byte.
 */
#ifndef APPROXNOC_COMMON_BITSTREAM_H
#define APPROXNOC_COMMON_BITSTREAM_H

#include <cstdint>
#include <vector>

namespace approxnoc {

/** Appends fields of 1..64 bits to a growing byte buffer. */
class BitWriter
{
  public:
    /** Append the low @p n bits of @p value (n in [0, 64]). */
    void write(std::uint64_t value, unsigned n);

    /** Total bits written so far. */
    std::size_t bitCount() const { return bits_; }

    /** The backing bytes (last byte zero-padded). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t bits_ = 0;
};

/** Reads fields back in write order. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {}

    /** Read the next @p n bits (n in [0, 64]). Panics past the end. */
    std::uint64_t read(unsigned n);

    /** Bits consumed so far. */
    std::size_t bitPosition() const { return pos_; }

    /** True when fewer than @p n bits remain. */
    bool
    exhausted(unsigned n = 1) const
    {
        return pos_ + n > bytes_.size() * 8;
    }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t pos_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_BITSTREAM_H
