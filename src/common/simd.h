/**
 * @file
 * SIMD dispatch policy for the match-engine hot path (docs/perf.md,
 * "SIMD match kernels"). This header owns only the *request* side of
 * the dispatch matrix: what the user asked for, via the `ANOC_SIMD`
 * environment variable at process start or the `-DANOC_SIMD=` CMake
 * cache default baked in at build time. The *capability* side (was the
 * AVX2 kernel compiled, does the CPU report AVX2) and the final
 * kernel selection live next to the kernels in tcam/match_kernel.h,
 * so common/ stays free of ISA-specific code.
 *
 * Determinism contract: the selection only ever changes *which*
 * machine code computes the match bitmap, never the bitmap itself —
 * every kernel is bit-identical by construction and the differential
 * fuzzer (tests/test_simd_diff.cc) enforces that under both settings.
 * The environment is read once and cached, so a process cannot change
 * kernels mid-run.
 */
#ifndef APPROXNOC_COMMON_SIMD_H
#define APPROXNOC_COMMON_SIMD_H

namespace approxnoc::simd {

/** What the user asked for (env/CMake), before capability clamping. */
enum class SimdRequest {
    Auto,   ///< pick the fastest kernel the host supports (default)
    Scalar, ///< force the portable std::uint64_t x4 kernel
    Avx2,   ///< request AVX2; clamped to scalar (with a note) if absent
};

/** Resolved kernel level actually driving the match engines. */
enum class SimdLevel {
    Scalar,
    Avx2,
};

/**
 * Pure parsing step of the dispatch matrix, separated from the cached
 * process-wide lookup so the unit tests can drive every row without
 * mutating the environment: "scalar"/"avx2"/"auto" map to the enum,
 * anything else (including null/empty) falls back to @p fallback.
 */
SimdRequest parse_simd_request(const char *value, SimdRequest fallback);

/**
 * The process-wide request: `ANOC_SIMD` env var if set, else the CMake
 * default (`ANOC_SIMD_DEFAULT`, normally "auto"). Read once on first
 * use and cached — the kernel choice is fixed for the process lifetime.
 */
SimdRequest requested_simd_level();

/** True when the CPU reports AVX2 support at runtime. */
bool cpu_has_avx2();

const char *to_string(SimdRequest r);
const char *to_string(SimdLevel l);

} // namespace approxnoc::simd

#endif // APPROXNOC_COMMON_SIMD_H
