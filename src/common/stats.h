/**
 * @file
 * Lightweight statistics package: counters, running means and
 * fixed-bucket histograms, grouped into named registries so simulators
 * can dump everything at end of run.
 */
#ifndef APPROXNOC_COMMON_STATS_H
#define APPROXNOC_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/relaxed_counter.h"

namespace approxnoc {

/**
 * Monotonic event counter. Increments are relaxed-atomic so codecs
 * bound to one set of telemetry counters can record from concurrent
 * per-flow encode shards (harness/FlowShardedEncoder): addition
 * commutes, so the total is independent of thread interleaving and
 * the dumped stats stay byte-identical to a serial run.
 */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_.add(n); }
    std::uint64_t value() const { return value_.load(); }
    void reset() { value_ = 0; }

    /** Fold another counter in (parallel per-shard merge). */
    void merge(const Counter &o) { value_.add(o.value()); }

  private:
    RelaxedCounter value_;
};

/** Streaming mean / min / max / variance accumulator (Welford). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
        if (x < min_ || n_ == 1)
            min_ = x;
        if (x > max_ || n_ == 1)
            max_ = x;
        sum_ += x;
    }

    /**
     * Fold another accumulator in (Chan et al. parallel Welford
     * combine), exact up to floating-point rounding: merging per-shard
     * stats equals accumulating the concatenated stream. Lets each
     * worker thread keep a private accumulator and combine at the end,
     * instead of sharing one under a lock.
     */
    void
    merge(const RunningStat &o)
    {
        if (o.n_ == 0)
            return;
        if (n_ == 0) {
            *this = o;
            return;
        }
        std::uint64_t n = n_ + o.n_;
        double delta = o.mean_ - mean_;
        m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(o.n_) /
                           static_cast<double>(n);
        mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
        sum_ += o.sum_;
        n_ = n;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    void reset() { *this = RunningStat(); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over [0, bucket_width * n_buckets) with an overflow bucket
 * and an explicit underflow count for negative samples (they are never
 * lumped into bucket 0, which would skew percentile()).
 */
class Histogram
{
  public:
    explicit Histogram(double bucket_width = 1.0, std::size_t n_buckets = 64)
        : width_(bucket_width), buckets_(n_buckets + 1, 0)
    {}

    void add(double x);
    /** Fold another histogram in (must share width and bucket count). */
    void merge(const Histogram &o);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    /**
     * Value below which @p q (in [0,1]) of samples fall, at bucket
     * resolution. Underflow samples rank below every bucket, so a
     * target that falls inside them (q = 0 included) yields 0.0, the
     * histogram's lower bound.
     */
    double percentile(double q) const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    /** Samples below 0 (outside every bucket). */
    std::uint64_t underflow() const { return underflow_; }
    double bucketWidth() const { return width_; }
    void reset();

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    double sum_ = 0.0;
};

/**
 * Named collection of stats. Components hold references to entries;
 * the registry owns them and can print a report.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    RunningStat &stat(const std::string &name) { return stats_[name]; }

    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, RunningStat> &stats() const { return stats_; }

    /**
     * Fold another registry in, entry by entry (parallel per-shard
     * merge). Entries are keyed by name, so the dumped result is
     * independent of the order registries are merged in.
     */
    void merge(const StatRegistry &o);

    /** Dump every entry as "name value [mean min max]" lines. */
    void dump(std::ostream &os) const;
    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, RunningStat> stats_;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_STATS_H
