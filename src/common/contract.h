/**
 * @file
 * Machine-checked concurrency-contract annotations.
 *
 * The parallel stack rests on three documented isolation contracts:
 * the codec flow-isolation and destination-isolation contracts
 * (compression/codec.h, docs/perf.md) and the simulator component
 * isolation contract (sim/region_scheduler.h, docs/perf.md). The
 * macros here turn the "which shared state is this field?" part of
 * those comments into declarations that `tools/anoc_lint` parses and
 * enforces (rule C1, docs/static-analysis.md). Every macro expands to
 * nothing (or a vacuous static_assert), so annotated code compiles
 * identically with any toolchain — the linter is the only consumer.
 *
 * Categories:
 *
 *  - ANOC_SHARD_LOCAL — mutable state owned by exactly one shard of
 *    the relevant partition (one source endpoint on the encode side,
 *    one destination endpoint on the decode side, one region under
 *    region-parallel stepping). Only the owning shard may touch it
 *    during a parallel phase; per-endpoint vectors indexed by the
 *    shard key are the canonical shape.
 *
 *  - ANOC_CROSS_SHARD(RelaxedCounter) — state shared across shards
 *    inside a parallel phase. The only admissible kind is the
 *    commutative relaxed-atomic counter (common/relaxed_counter.h):
 *    sums are interleaving-independent, which is what keeps totals
 *    byte-identical at any job count. The argument is deliberately
 *    restricted; anoc-lint rejects anything else.
 *
 *  - ANOC_REGION_SHARED — state visible to every shard but mutated
 *    only in serial context (construction, bind-time wiring, the
 *    post-barrier epilogue — i.e. while `sim_current_region() < 0`
 *    and no sharded batch is in flight). Configuration, bound
 *    telemetry sinks and wiring pointers live here.
 *
 * A class opts into enforcement with ANOC_ISOLATION_CONTRACT(...),
 * naming the contract section(s) it implements; from then on anoc-lint
 * requires every non-static data member of that class to carry exactly
 * one of the three annotations above.
 */
#ifndef APPROXNOC_COMMON_CONTRACT_H
#define APPROXNOC_COMMON_CONTRACT_H

/**
 * Class-level marker: this type's mutable state is governed by the
 * named isolation contract(s). Conventional arguments:
 * `flow_isolation`, `destination_isolation`, `region_isolation`,
 * `probe_isolation` (the read-only concurrent match-engine probes).
 * Parsed by anoc-lint; expands to a vacuous assertion so a trailing
 * semicolon is well-formed at class scope.
 */
#define ANOC_ISOLATION_CONTRACT(...) \
    static_assert(true, "anoc-lint isolation contract marker")

/** Field annotation: owned by one shard of the contract's partition. */
#define ANOC_SHARD_LOCAL

/** Field annotation: shared across shards; @p kind must be
 *  RelaxedCounter (enforced by anoc-lint rule C1). */
#define ANOC_CROSS_SHARD(kind)

/** Field annotation: read anywhere, written only in serial context. */
#define ANOC_REGION_SHARED

#endif // APPROXNOC_COMMON_CONTRACT_H
