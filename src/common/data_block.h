/**
 * @file
 * DataBlock: a cache block as seen by the NI codec — a run of 32-bit
 * words plus the metadata the APPROX-NoC framework consumes (data type
 * and the compiler/programmer approximability annotation).
 */
#ifndef APPROXNOC_COMMON_DATA_BLOCK_H
#define APPROXNOC_COMMON_DATA_BLOCK_H

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.h"

namespace approxnoc {

/**
 * A cache block in flight. The paper transmits 64 B blocks (16 x 4 B
 * words); the example in Fig. 3 uses a 24 B block. Block size is a
 * construction parameter so both are expressible.
 *
 * A block is only ever approximated when *all* its words share the
 * annotated data type and the approximable flag is set (paper Sec. 5.1:
 * blocks are conservatively compressed only when homogeneous).
 */
class DataBlock
{
  public:
    DataBlock() = default;

    /** A zero-filled block of @p n_words words. */
    explicit DataBlock(std::size_t n_words, DataType type = DataType::Raw,
                       bool approximable = false)
        : words_(n_words, 0), type_(type), approximable_(approximable)
    {}

    /** A block with explicit word contents. */
    DataBlock(std::initializer_list<Word> ws, DataType type = DataType::Raw,
              bool approximable = false)
        : words_(ws), type_(type), approximable_(approximable)
    {}

    /** A block from a word vector. */
    DataBlock(std::vector<Word> ws, DataType type, bool approximable)
        : words_(std::move(ws)), type_(type), approximable_(approximable)
    {}

    /** Build a Float32 block from float values (bit-cast per word). */
    static DataBlock fromFloats(const std::vector<float> &vals,
                                bool approximable = true);

    /** Build an Int32 block from signed integers. */
    static DataBlock fromInts(const std::vector<std::int32_t> &vals,
                              bool approximable = true);

    std::size_t size() const { return words_.size(); }
    std::size_t sizeBytes() const { return words_.size() * sizeof(Word); }
    std::size_t sizeBits() const { return words_.size() * 32; }

    Word word(std::size_t i) const { return words_[i]; }
    void setWord(std::size_t i, Word w) { words_[i] = w; }
    const std::vector<Word> &words() const { return words_; }
    std::vector<Word> &words() { return words_; }

    DataType type() const { return type_; }
    void setType(DataType t) { type_ = t; }

    bool approximable() const { return approximable_; }
    void setApproximable(bool a) { approximable_ = a; }

    /** Word @p i reinterpreted as float (only meaningful for Float32). */
    float floatAt(std::size_t i) const;
    /** Store a float into word @p i. */
    void setFloat(std::size_t i, float v);

    /** Word @p i reinterpreted as a signed integer. */
    std::int32_t intAt(std::size_t i) const
    {
        return static_cast<std::int32_t>(words_[i]);
    }

    bool operator==(const DataBlock &o) const
    {
        return words_ == o.words_ && type_ == o.type_ &&
               approximable_ == o.approximable_;
    }

    /** Bitwise word equality ignoring metadata. */
    bool sameBits(const DataBlock &o) const { return words_ == o.words_; }

    /** Hex dump, for diagnostics and golden tests. */
    std::string toString() const;

  private:
    std::vector<Word> words_;
    DataType type_ = DataType::Raw;
    bool approximable_ = false;
};

/**
 * Relative per-word error between a precise and an approximated block,
 * averaged over words. This is the paper's "data value quality" metric:
 * quality = 1 - mean relative error. Non-finite or zero-valued precise
 * words contribute error only when bits differ.
 */
double block_relative_error(const DataBlock &precise, const DataBlock &approx);

} // namespace approxnoc

#endif // APPROXNOC_COMMON_DATA_BLOCK_H
