#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace approxnoc {

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
Table::addRow(std::vector<std::string> row)
{
    ANOC_ASSERT(row.size() == header_.size(),
                "table row width ", row.size(), " != header width ",
                header_.size());
    rows_.push_back(std::move(row));
}

Table::RowBuilder &
Table::RowBuilder::cell(const std::string &s)
{
    cells_.push_back(s);
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(double v, int precision)
{
    cells_.push_back(fmt(v, precision));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(long v)
{
    cells_.push_back(std::to_string(v));
    return *this;
}

Table::RowBuilder::~RowBuilder()
{
    table_.addRow(std::move(cells_));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        ANOC_WARN("cannot write CSV to ", path);
        return;
    }
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            f << row[c];
            if (c + 1 < row.size())
                f << ",";
        }
        f << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
Table::writeJson(const std::string &path, const std::string &name) const
{
    std::ofstream f(path);
    if (!f) {
        ANOC_WARN("cannot write JSON to ", path);
        return;
    }
    auto emit_row = [&](const std::vector<std::string> &row) {
        f << "[";
        for (std::size_t c = 0; c < row.size(); ++c) {
            f << "\"" << json_escape(row[c]) << "\"";
            if (c + 1 < row.size())
                f << ", ";
        }
        f << "]";
    };
    f << "{\n  \"name\": \"" << json_escape(name) << "\",\n  \"columns\": ";
    emit_row(header_);
    f << ",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        f << "    ";
        emit_row(rows_[r]);
        if (r + 1 < rows_.size())
            f << ",";
        f << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace approxnoc
