/**
 * @file
 * Console table printer used by the bench harnesses to emit the rows /
 * series of each paper figure in a uniform, diffable format. Also
 * writes CSV alongside for plotting.
 */
#ifndef APPROXNOC_COMMON_TABLE_H
#define APPROXNOC_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace approxnoc {

/** A rectangular table of strings with column-aligned printing. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Row builder accepting heterogeneous cells. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(Table &t) : table_(t) {}
        RowBuilder &cell(const std::string &s);
        RowBuilder &cell(double v, int precision = 3);
        RowBuilder &cell(long v);
        ~RowBuilder();

        RowBuilder(const RowBuilder &) = delete;
        RowBuilder &operator=(const RowBuilder &) = delete;

      private:
        Table &table_;
        std::vector<std::string> cells_;
    };

    RowBuilder row() { return RowBuilder(*this); }

    /** Pretty-print with padded columns. */
    void print(std::ostream &os) const;

    /** Write as CSV to @p path (best effort; warns on failure). */
    void writeCsv(const std::string &path) const;

    /**
     * Write as JSON to @p path (best effort; warns on failure):
     * `{"name": ..., "columns": [...], "rows": [[cell, ...], ...]}`
     * with every cell a string, exactly as the CSV renders it.
     */
    void writeJson(const std::string &path, const std::string &name) const;

    std::size_t rows() const { return rows_.size(); }
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &data() const { return rows_; }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Escape @p s for embedding in a JSON string literal. */
std::string json_escape(const std::string &s);

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 3);

} // namespace approxnoc

#endif // APPROXNOC_COMMON_TABLE_H
