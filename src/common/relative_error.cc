#include "common/relative_error.h"

#include <cmath>
#include <cstring>

#include "common/bits.h"

namespace approxnoc {

double
signed_relative_error(Word w, Word candidate, DataType t)
{
    if (w == candidate)
        return 0.0;
    switch (t) {
      case DataType::Int32: {
        double p = static_cast<double>(static_cast<std::int32_t>(w));
        double a = static_cast<double>(static_cast<std::int32_t>(candidate));
        if (p == 0.0)
            return a > 0.0 ? 1.0 : -1.0;
        return (a - p) / std::fabs(p);
      }
      case DataType::Float32: {
        if (Float32Fields::isSpecial(w))
            return 1.0; // specials must never be substituted
        double sig = static_cast<double>(
            (1ull << Float32Fields::kMantissaBits) |
            Float32Fields::mantissa(w));
        double sig_c = static_cast<double>(
            (1ull << Float32Fields::kMantissaBits) |
            Float32Fields::mantissa(candidate));
        if (Float32Fields::exponent(w) != Float32Fields::exponent(candidate) ||
            Float32Fields::sign(w) != Float32Fields::sign(candidate)) {
            // Exponent/sign changed: compute on the actual values.
            float fw, fc;
            static_assert(sizeof(fw) == sizeof(w));
            std::memcpy(&fw, &w, sizeof(fw));
            std::memcpy(&fc, &candidate, sizeof(fc));
            if (fw == 0.0f)
                return fc > 0.0f ? 1.0 : -1.0;
            return (static_cast<double>(fc) - static_cast<double>(fw)) /
                   std::fabs(static_cast<double>(fw));
        }
        // Same exponent and sign: the scaled-significand delta. The
        // significand comparison is magnitude-space, so flip the sign
        // for negative floats to keep "candidate overshoots" positive.
        double e = (sig_c - sig) / sig;
        return Float32Fields::sign(w) ? -e : e;
      }
      case DataType::Raw:
        return 1.0;
    }
    return 1.0;
}

} // namespace approxnoc
