#include "common/log.h"

#include <cstdio>
#include <stdexcept>

namespace approxnoc {

namespace {
bool g_verbose = true;
} // namespace

void
set_verbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail {

void
panic_impl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatal_impl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warn_impl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform_impl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace approxnoc
