#include "common/simd.h"

#include <cstdlib>
#include <cstring>

namespace approxnoc::simd {

SimdRequest
parse_simd_request(const char *value, SimdRequest fallback)
{
    if (!value)
        return fallback;
    if (std::strcmp(value, "scalar") == 0)
        return SimdRequest::Scalar;
    if (std::strcmp(value, "avx2") == 0)
        return SimdRequest::Avx2;
    if (std::strcmp(value, "auto") == 0)
        return SimdRequest::Auto;
    return fallback;
}

SimdRequest
requested_simd_level()
{
    // The env var is read exactly once: dispatch is decided at process
    // start and never changes, so two searches in one run can never see
    // different kernels (part of the determinism argument in
    // docs/perf.md). The build-time default comes from -DANOC_SIMD=.
#ifndef ANOC_SIMD_DEFAULT
#define ANOC_SIMD_DEFAULT "auto"
#endif
    static const SimdRequest cached = [] {
        const SimdRequest build_default =
            parse_simd_request(ANOC_SIMD_DEFAULT, SimdRequest::Auto);
        return parse_simd_request(std::getenv("ANOC_SIMD"), build_default);
    }();
    return cached;
}

bool
cpu_has_avx2()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const char *
to_string(SimdRequest r)
{
    switch (r) {
    case SimdRequest::Auto:
        return "auto";
    case SimdRequest::Scalar:
        return "scalar";
    case SimdRequest::Avx2:
        return "avx2";
    }
    return "?";
}

const char *
to_string(SimdLevel l)
{
    switch (l) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Avx2:
        return "avx2";
    }
    return "?";
}

} // namespace approxnoc::simd
