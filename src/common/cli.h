/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries:
 * "--name=value" for valued flags, bare "--flag" for booleans. A space
 * never separates a flag from its value (that form is ambiguous with
 * positional arguments).
 */
#ifndef APPROXNOC_COMMON_CLI_H
#define APPROXNOC_COMMON_CLI_H

#include <map>
#include <string>
#include <vector>

namespace approxnoc {

/** Parsed command line. Unknown flags are kept and can be rejected. */
class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    bool has(const std::string &name) const;

    /** String value of --name, or @p def when absent. */
    std::string getString(const std::string &name, const std::string &def) const;
    long getInt(const std::string &name, long def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace approxnoc

#endif // APPROXNOC_COMMON_CLI_H
