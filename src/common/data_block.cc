#include "common/data_block.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace approxnoc {

DataBlock
DataBlock::fromFloats(const std::vector<float> &vals, bool approximable)
{
    std::vector<Word> ws;
    ws.reserve(vals.size());
    for (float v : vals)
        ws.push_back(std::bit_cast<Word>(v));
    return DataBlock(std::move(ws), DataType::Float32, approximable);
}

DataBlock
DataBlock::fromInts(const std::vector<std::int32_t> &vals, bool approximable)
{
    std::vector<Word> ws;
    ws.reserve(vals.size());
    for (std::int32_t v : vals)
        ws.push_back(static_cast<Word>(v));
    return DataBlock(std::move(ws), DataType::Int32, approximable);
}

float
DataBlock::floatAt(std::size_t i) const
{
    return std::bit_cast<float>(words_[i]);
}

void
DataBlock::setFloat(std::size_t i, float v)
{
    words_[i] = std::bit_cast<Word>(v);
}

std::string
DataBlock::toString() const
{
    std::string s = "[";
    char buf[16];
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%08x", words_[i]);
        if (i)
            s += ' ';
        s += buf;
    }
    s += "]";
    return s;
}

double
block_relative_error(const DataBlock &precise, const DataBlock &approx)
{
    ANOC_ASSERT(precise.size() == approx.size(),
                "block size mismatch in error computation");
    if (precise.size() == 0)
        return 0.0;

    double total = 0.0;
    for (std::size_t i = 0; i < precise.size(); ++i) {
        if (precise.word(i) == approx.word(i))
            continue;
        double p, a;
        if (precise.type() == DataType::Float32) {
            p = precise.floatAt(i);
            a = approx.floatAt(i);
        } else {
            p = static_cast<double>(precise.intAt(i));
            a = static_cast<double>(approx.intAt(i));
        }
        if (!std::isfinite(p) || !std::isfinite(a)) {
            total += 1.0;
        } else if (p == 0.0) {
            total += (a == 0.0) ? 0.0 : 1.0;
        } else {
            total += std::fabs(a - p) / std::fabs(p);
        }
    }
    return total / static_cast<double>(precise.size());
}

std::string
to_string(DataType t)
{
    switch (t) {
      case DataType::Int32: return "int32";
      case DataType::Float32: return "float32";
      case DataType::Raw: return "raw";
    }
    return "?";
}

std::string
to_string(Scheme s)
{
    switch (s) {
      case Scheme::Baseline: return "Baseline";
      case Scheme::DiComp: return "DI-COMP";
      case Scheme::DiVaxx: return "DI-VAXX";
      case Scheme::FpComp: return "FP-COMP";
      case Scheme::FpVaxx: return "FP-VAXX";
    }
    return "?";
}

} // namespace approxnoc
