/**
 * @file
 * gem5-style status/error reporting: panic for simulator bugs, fatal for
 * user errors, warn/inform for status messages.
 */
#ifndef APPROXNOC_COMMON_LOG_H
#define APPROXNOC_COMMON_LOG_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace approxnoc {
namespace detail {

[[noreturn]] void panic_impl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatal_impl(const char *file, int line, const std::string &msg);
void warn_impl(const std::string &msg);
void inform_impl(const std::string &msg);

template <typename... Args>
std::string
format_args(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Set to false to silence inform() output (benches use compact tables). */
void set_verbose(bool verbose);
bool verbose();

} // namespace approxnoc

/** Unrecoverable internal error: something that should never happen. */
#define ANOC_PANIC(...) \
    ::approxnoc::detail::panic_impl(__FILE__, __LINE__, \
        ::approxnoc::detail::format_args(__VA_ARGS__))

/** Unrecoverable user/configuration error. */
#define ANOC_FATAL(...) \
    ::approxnoc::detail::fatal_impl(__FILE__, __LINE__, \
        ::approxnoc::detail::format_args(__VA_ARGS__))

/** Non-fatal warning. */
#define ANOC_WARN(...) \
    ::approxnoc::detail::warn_impl(::approxnoc::detail::format_args(__VA_ARGS__))

/** Informational status message (suppressed when verbosity is off). */
#define ANOC_INFORM(...) \
    ::approxnoc::detail::inform_impl(::approxnoc::detail::format_args(__VA_ARGS__))

/** Assertion that survives NDEBUG builds; panics with context on failure. */
#define ANOC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ANOC_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // APPROXNOC_COMMON_LOG_H
