/**
 * @file
 * Region-parallel stepping for the two-phase simulator loop.
 *
 * The registered Clocked components are partitioned into topology-aware
 * regions (the Network groups each router with its attached NIs and
 * stripes rows across regions — see Network::enableRegionParallel).
 * Each cycle then runs as
 *
 *     parallel evaluate over regions → barrier →
 *     parallel advance  over regions → barrier → serial epilogue
 *
 * on a persistent WorkerPool, where `parallelFor` itself is the
 * barrier. Determinism is by construction, not by luck: evaluate only
 * reads committed state, advance only writes state owned by the
 * component's own region (cross-region effects are deferred and
 * replayed serially in ascending region order, which reproduces the
 * serial sweep order exactly). metrics.json / qor.json / traces are
 * therefore byte-identical at any `--sim-jobs`.
 *
 * ## Component isolation contract (region-parallel stepping)
 *
 * A component stepped inside a region must obey, in addition to the
 * two-phase evaluate/advance discipline:
 *
 *  1. evaluate() reads only state committed at the previous barrier
 *     (its own and other components') and writes only its own state.
 *  2. advance() writes only state owned by its own region. Effects on
 *     another region (flit handoff, credit return, delivery
 *     callbacks) must be deferred to the post-advance serial phase or
 *     be commutative relaxed-atomic counters.
 *  3. Anything that mutates cross-region shared structures
 *     (codec encode, traffic injection, global stats with
 *     order-sensitive accumulation) runs only in serial context —
 *     i.e. when `sim_current_region() < 0`.
 *
 * Debug builds enforce (2) at the router/NI mutation points with
 * cross-region write-hazard asserts keyed on `sim_current_region()`.
 */
#ifndef APPROXNOC_SIM_REGION_SCHEDULER_H
#define APPROXNOC_SIM_REGION_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/contract.h"
#include "common/types.h"
#include "common/worker_pool.h"
#include "sim/clocked.h"

namespace approxnoc {

namespace telemetry {
class PhaseProfiler;
} // namespace telemetry

/**
 * Region id of the parallel phase running on this thread, or -1 in
 * serial context (the main loop, the post-advance epilogue, tests).
 * Components use this for write-hazard asserts and for routing
 * cross-region effects into deferral queues.
 */
int sim_current_region();

namespace detail {
/** Set by the scheduler around region tasks; not for component use. */
void set_sim_current_region(int region);
} // namespace detail

/**
 * A partition of the simulator's component prefix into regions, plus
 * an optional serial hook run after the parallel advance barrier
 * (flush deferred cross-region effects, replay delivery callbacks).
 */
struct RegionPlan {
    /** Per-region component lists, each in ascending registration
     *  order; together they must cover a prefix of the simulator's
     *  registration order exactly once (verified by setRegionPlan). */
    std::vector<std::vector<Clocked *>> regions;
    /** Serial epilogue after the advance barrier, before the serial
     *  tail components advance. */
    std::function<void(Cycle)> post_advance;
};

/**
 * Steps the regions of a RegionPlan in parallel on an owned
 * WorkerPool. One sweep() call is one phase (evaluate or advance)
 * including its barrier. With a profiler bound, each region records
 * `sim.region.r<k>.{evaluate,advance}` busy time plus
 * `.barrier_wait` (phase wall minus own busy — time spent waiting on
 * sibling regions), and the phase wall clock lands in
 * `sim.parallel.{evaluate,advance}`.
 */
class RegionScheduler
{
  public:
    ANOC_ISOLATION_CONTRACT(region_isolation);

    RegionScheduler(RegionPlan plan, unsigned threads);

    std::size_t regionCount() const { return plan_.regions.size(); }
    const RegionPlan &plan() const { return plan_; }
    unsigned threads() const { return pool_.threads(); }

    /** Define the per-region profiler phases (setup time only). */
    void bindProfiler(telemetry::PhaseProfiler *profiler);

    /** Run one parallel phase over all regions and barrier. */
    void sweep(bool advance, Cycle now);

  private:
    void runRegion(std::size_t r);

    ANOC_REGION_SHARED RegionPlan plan_;
    ANOC_REGION_SHARED WorkerPool pool_;
    ANOC_REGION_SHARED std::function<void(std::size_t)> task_;
    /** Batch parameters for task_ (set before each sweep, i.e. only in
     *  serial context between barriers; read-only inside a sweep). */
    ANOC_REGION_SHARED Cycle cur_now_ = 0;
    ANOC_REGION_SHARED bool cur_advance_ = false;

    ANOC_REGION_SHARED telemetry::PhaseProfiler *profiler_ = nullptr;
    ANOC_REGION_SHARED std::size_t ph_par_eval_ = 0;
    ANOC_REGION_SHARED std::size_t ph_par_adv_ = 0;
    ANOC_REGION_SHARED std::vector<std::size_t> ph_eval_;
    ANOC_REGION_SHARED std::vector<std::size_t> ph_adv_;
    ANOC_REGION_SHARED std::vector<std::size_t> ph_wait_;
    /** Per-region busy ns of the current sweep; slot r is written only
     *  by region r's task and read after the barrier. */
    ANOC_SHARD_LOCAL std::vector<std::uint64_t> busy_ns_;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_REGION_SCHEDULER_H
