/**
 * @file
 * A small discrete event queue for delayed callbacks (dictionary update
 * notifications, stat sampling). Runs alongside the per-cycle loop:
 * the Simulator fires all events scheduled at the current cycle before
 * stepping the clocked components.
 */
#ifndef APPROXNOC_SIM_EVENT_QUEUE_H
#define APPROXNOC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace approxnoc {

/** Time-ordered queue of callbacks. Ties fire in scheduling order. */
class EventQueue
{
  public:
    using Callback = std::function<void(Cycle)>;

    /** Schedule @p cb to run at absolute cycle @p when. */
    void schedule(Cycle when, Callback cb);

    /** Schedule @p cb to run @p delay cycles after @p now. */
    void
    scheduleAfter(Cycle now, Cycle delay, Callback cb)
    {
        schedule(now + delay, std::move(cb));
    }

    /** Fire every event scheduled at or before @p now. */
    void runUntil(Cycle now);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the next pending event; kNeverCycle when empty. */
    Cycle nextEventCycle() const;

  private:
    struct Event {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_EVENT_QUEUE_H
