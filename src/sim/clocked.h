/**
 * @file
 * Clocked: base class for components evaluated once per cycle by the
 * Simulator. NoC simulators conventionally use a two-phase update —
 * every component reads inputs (evaluate) before any component commits
 * outputs (advance) — which makes evaluation order-independent.
 */
#ifndef APPROXNOC_SIM_CLOCKED_H
#define APPROXNOC_SIM_CLOCKED_H

#include <string>

#include "common/types.h"

namespace approxnoc {

/** A component stepped by the Simulator each cycle. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /**
     * Phase 1: read current inputs, compute internal decisions.
     * Must not mutate state observable by other components this cycle.
     */
    virtual void evaluate(Cycle now) = 0;

    /** Phase 2: commit outputs computed in evaluate(). */
    virtual void advance(Cycle now) = 0;

    const std::string &name() const { return name_; }

    /**
     * Region tag for region-parallel stepping (see
     * sim/region_scheduler.h): components with the same tag step on
     * the same lane within a parallel phase. -1 (the default) means
     * untagged — the component steps serially, outside any region.
     */
    int regionTag() const { return region_; }
    void setRegionTag(int region) { region_ = region; }

  private:
    std::string name_;
    int region_ = -1;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_CLOCKED_H
