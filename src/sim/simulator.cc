#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "common/log.h"
#include "sim/region_scheduler.h"
#include "telemetry/phase_profiler.h"

namespace approxnoc {

namespace {

constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

} // namespace

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void
Simulator::add(Clocked *c)
{
    components_.push_back(c);
    // Explicit cache maintenance instead of the old lazy size-check:
    // the new component starts unclassified while every existing
    // classification survives, so registering mid-run can never
    // silently re-derive (and reshuffle) the phase table.
    phase_of_.push_back(kNoPhase);
}

void
Simulator::step()
{
    if (scheduler_) {
        stepRegions();
        return;
    }
    if (profiler_) {
        stepProfiled();
        return;
    }
    events_.runUntil(now_);
    for (Clocked *c : components_)
        c->evaluate(now_);
    for (Clocked *c : components_)
        c->advance(now_);
    ++now_;
}

void
Simulator::setRegionPlan(RegionPlan plan, unsigned threads)
{
    if (plan.regions.size() <= 1) {
        scheduler_.reset();
        serial_prefix_ = 0;
        return;
    }

    // Verify the plan is an exact partition of a registration-order
    // prefix, each region internally ascending. This is what makes
    // the post-advance serial replay (ascending region order)
    // reproduce the serial sweep order exactly.
    std::unordered_map<const Clocked *, std::size_t> index;
    for (std::size_t i = 0; i < components_.size(); ++i)
        index.emplace(components_[i], i);
    std::size_t covered = 0;
    std::vector<bool> seen(components_.size(), false);
    for (const auto &region : plan.regions) {
        std::size_t prev = kNoPhase;
        for (const Clocked *c : region) {
            auto it = index.find(c);
            ANOC_ASSERT(it != index.end(),
                        "region plan names an unregistered component");
            ANOC_ASSERT(!seen[it->second],
                        "region plan lists a component twice");
            ANOC_ASSERT(prev == kNoPhase || it->second > prev,
                        "region component order must follow "
                        "registration order");
            prev = it->second;
            seen[it->second] = true;
            ++covered;
        }
    }
    for (std::size_t i = 0; i < covered; ++i)
        ANOC_ASSERT(seen[i], "region plan must cover a registration-order "
                             "prefix with no gaps");

    serial_prefix_ = covered;
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? hw : 1;
    }
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(plan.regions.size()));
    scheduler_ = std::make_unique<RegionScheduler>(std::move(plan), threads);
    if (profiler_)
        scheduler_->bindProfiler(profiler_);
}

std::size_t
Simulator::regionCount() const
{
    return scheduler_ ? scheduler_->regionCount() : 0;
}

void
Simulator::stepRegions()
{
    if (profiler_) {
        telemetry::PhaseProfiler::Scope s(profiler_, ph_event_queue_);
        events_.runUntil(now_);
    } else {
        events_.runUntil(now_);
    }

    const std::size_t n = components_.size();
    scheduler_->sweep(/*advance=*/false, now_);
    if (profiler_)
        profiledSweep(/*advance=*/false, serial_prefix_, n);
    else
        plainSweep(/*advance=*/false, serial_prefix_, n);

    scheduler_->sweep(/*advance=*/true, now_);
    if (scheduler_->plan().post_advance) {
        telemetry::PhaseProfiler::Scope s(profiler_, ph_region_apply_);
        scheduler_->plan().post_advance(now_);
    }
    if (profiler_)
        profiledSweep(/*advance=*/true, serial_prefix_, n);
    else
        plainSweep(/*advance=*/true, serial_prefix_, n);
    ++now_;
}

void
Simulator::bindProfiler(telemetry::PhaseProfiler *profiler)
{
    profiler_ = profiler;
    phase_of_.assign(components_.size(), kNoPhase);
    if (profiler_) {
        ph_event_queue_ = profiler_->definePhase("sim.event_queue");
        ph_other_ = profiler_->definePhase("sim.other");
        ph_region_apply_ = profiler_->definePhase("sim.region.apply");
        // Pre-register the classification targets so phaseOf never
        // defines a phase mid-run (definePhase is setup-time only).
        profiler_->definePhase("sim.router");
        profiler_->definePhase("sim.ni");
        profiler_->definePhase("sim.network");
        profiler_->definePhase("sim.sampler");
    }
    if (scheduler_)
        scheduler_->bindProfiler(profiler_);
}

std::size_t
Simulator::phaseOf(std::size_t i)
{
    ANOC_ASSERT(phase_of_.size() == components_.size(),
                "phase cache out of sync with component registry");
    std::size_t &ph = phase_of_[i];
    if (ph == kNoPhase) {
        const std::string &n = components_[i]->name();
        if (n.rfind("router", 0) == 0)
            ph = profiler_->definePhase("sim.router");
        else if (n.rfind("ni", 0) == 0)
            ph = profiler_->definePhase("sim.ni");
        else if (n.rfind("network", 0) == 0)
            ph = profiler_->definePhase("sim.network");
        else if (n.rfind("sampler", 0) == 0)
            ph = profiler_->definePhase("sim.sampler");
        else
            ph = ph_other_;
    }
    return ph;
}

void
Simulator::plainSweep(bool advance, std::size_t begin, std::size_t end)
{
    if (advance)
        for (std::size_t i = begin; i < end; ++i)
            components_[i]->advance(now_);
    else
        for (std::size_t i = begin; i < end; ++i)
            components_[i]->evaluate(now_);
}

void
Simulator::profiledSweep(bool advance, std::size_t begin, std::size_t end)
{
    // Time contiguous same-phase runs, not individual components: the
    // network registers its routers and NIs in blocks, so one cycle
    // costs a handful of clock reads instead of one per component.
    // anoc-lint: allow(D1) -- profiled-sweep wall clock; feeds only the profile artifact, outside the byte-identical contract
    using clock = std::chrono::steady_clock;
    std::size_t i = begin;
    while (i < end) {
        const std::size_t ph = phaseOf(i);
        const auto t0 = clock::now();
        std::size_t j = i;
        while (j < end && phaseOf(j) == ph) {
            if (advance)
                components_[j]->advance(now_);
            else
                components_[j]->evaluate(now_);
            ++j;
        }
        const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - t0);
        profiler_->add(ph, static_cast<std::uint64_t>(dt.count()), j - i);
        i = j;
    }
}

void
Simulator::stepProfiled()
{
    {
        telemetry::PhaseProfiler::Scope s(profiler_, ph_event_queue_);
        events_.runUntil(now_);
    }
    profiledSweep(/*advance=*/false, 0, components_.size());
    profiledSweep(/*advance=*/true, 0, components_.size());
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    Cycle end = now_ + cycles;
    while (now_ < end)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles,
                    Cycle check_interval)
{
    if (check_interval < 1)
        check_interval = 1;
    Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done())
            return true;
        Cycle burst = std::min(check_interval, end - now_);
        while (burst--)
            step();
    }
    return done();
}

} // namespace approxnoc
