#include "sim/simulator.h"

namespace approxnoc {

void
Simulator::step()
{
    events_.runUntil(now_);
    for (Clocked *c : components_)
        c->evaluate(now_);
    for (Clocked *c : components_)
        c->advance(now_);
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    Cycle end = now_ + cycles;
    while (now_ < end)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done())
            return true;
        step();
    }
    return done();
}

} // namespace approxnoc
