#include "sim/simulator.h"

#include <chrono>

#include "telemetry/phase_profiler.h"

namespace approxnoc {

namespace {

constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

} // namespace

void
Simulator::step()
{
    if (profiler_) {
        stepProfiled();
        return;
    }
    events_.runUntil(now_);
    for (Clocked *c : components_)
        c->evaluate(now_);
    for (Clocked *c : components_)
        c->advance(now_);
    ++now_;
}

void
Simulator::bindProfiler(telemetry::PhaseProfiler *profiler)
{
    profiler_ = profiler;
    phase_of_.clear();
    if (profiler_) {
        ph_event_queue_ = profiler_->definePhase("sim.event_queue");
        ph_other_ = profiler_->definePhase("sim.other");
        // Pre-register the classification targets so phaseOf never
        // defines a phase mid-run (definePhase is setup-time only).
        profiler_->definePhase("sim.router");
        profiler_->definePhase("sim.ni");
        profiler_->definePhase("sim.network");
        profiler_->definePhase("sim.sampler");
    }
}

std::size_t
Simulator::phaseOf(std::size_t i)
{
    if (phase_of_.size() != components_.size())
        phase_of_.assign(components_.size(), kNoPhase);
    std::size_t &ph = phase_of_[i];
    if (ph == kNoPhase) {
        const std::string &n = components_[i]->name();
        if (n.rfind("router", 0) == 0)
            ph = profiler_->definePhase("sim.router");
        else if (n.rfind("ni", 0) == 0)
            ph = profiler_->definePhase("sim.ni");
        else if (n.rfind("network", 0) == 0)
            ph = profiler_->definePhase("sim.network");
        else if (n.rfind("sampler", 0) == 0)
            ph = profiler_->definePhase("sim.sampler");
        else
            ph = ph_other_;
    }
    return ph;
}

void
Simulator::profiledSweep(bool advance)
{
    // Time contiguous same-phase runs, not individual components: the
    // network registers its routers and NIs in blocks, so one cycle
    // costs a handful of clock reads instead of one per component.
    using clock = std::chrono::steady_clock;
    std::size_t i = 0;
    const std::size_t n = components_.size();
    while (i < n) {
        const std::size_t ph = phaseOf(i);
        const auto t0 = clock::now();
        std::size_t j = i;
        while (j < n && phaseOf(j) == ph) {
            if (advance)
                components_[j]->advance(now_);
            else
                components_[j]->evaluate(now_);
            ++j;
        }
        const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - t0);
        profiler_->add(ph, static_cast<std::uint64_t>(dt.count()), j - i);
        i = j;
    }
}

void
Simulator::stepProfiled()
{
    {
        telemetry::PhaseProfiler::Scope s(profiler_, ph_event_queue_);
        events_.runUntil(now_);
    }
    profiledSweep(/*advance=*/false);
    profiledSweep(/*advance=*/true);
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    Cycle end = now_ + cycles;
    while (now_ < end)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done())
            return true;
        step();
    }
    return done();
}

} // namespace approxnoc
