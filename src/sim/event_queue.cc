#include "sim/event_queue.h"

#include <utility>

namespace approxnoc {

void
EventQueue::schedule(Cycle when, Callback cb)
{
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void
EventQueue::runUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // priority_queue::top() is const; the event is moved out via a
        // const_cast-free copy of the callback before popping.
        Event ev = heap_.top();
        heap_.pop();
        ev.cb(now);
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNeverCycle : heap_.top().when;
}

} // namespace approxnoc
