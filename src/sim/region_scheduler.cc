#include "sim/region_scheduler.h"

#include <chrono>
#include <string>

#include "telemetry/phase_profiler.h"

namespace approxnoc {

namespace {

thread_local int tls_step_region = -1;

inline std::uint64_t
now_ns()
{
    // anoc-lint: allow(D1) -- region busy/wait self-profiling wall clock; feeds only the profile artifact, outside the byte-identical contract
    using clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

} // namespace

int
sim_current_region()
{
    return tls_step_region;
}

void
detail::set_sim_current_region(int region)
{
    tls_step_region = region;
}

RegionScheduler::RegionScheduler(RegionPlan plan, unsigned threads)
    : plan_(std::move(plan)), pool_(threads),
      busy_ns_(plan_.regions.size(), 0)
{
    // Capture only `this` so the std::function stays in its small
    // buffer — sweeps run twice per cycle and must not allocate.
    task_ = [this](std::size_t r) { runRegion(r); };
}

void
RegionScheduler::bindProfiler(telemetry::PhaseProfiler *profiler)
{
    profiler_ = profiler;
    ph_eval_.clear();
    ph_adv_.clear();
    ph_wait_.clear();
    if (!profiler_)
        return;
    ph_par_eval_ = profiler_->definePhase("sim.parallel.evaluate");
    ph_par_adv_ = profiler_->definePhase("sim.parallel.advance");
    for (std::size_t r = 0; r < plan_.regions.size(); ++r) {
        const std::string base = "sim.region.r" + std::to_string(r);
        ph_eval_.push_back(profiler_->definePhase(base + ".evaluate"));
        ph_adv_.push_back(profiler_->definePhase(base + ".advance"));
        ph_wait_.push_back(profiler_->definePhase(base + ".barrier_wait"));
    }
}

void
RegionScheduler::runRegion(std::size_t r)
{
    detail::set_sim_current_region(static_cast<int>(r));
    const auto &comps = plan_.regions[r];
    if (profiler_) {
        const std::uint64_t t0 = now_ns();
        if (cur_advance_)
            for (Clocked *c : comps)
                c->advance(cur_now_);
        else
            for (Clocked *c : comps)
                c->evaluate(cur_now_);
        const std::uint64_t busy = now_ns() - t0;
        busy_ns_[r] = busy;
        profiler_->add(cur_advance_ ? ph_adv_[r] : ph_eval_[r], busy,
                       comps.size());
    } else {
        if (cur_advance_)
            for (Clocked *c : comps)
                c->advance(cur_now_);
        else
            for (Clocked *c : comps)
                c->evaluate(cur_now_);
    }
    detail::set_sim_current_region(-1);
}

void
RegionScheduler::sweep(bool advance, Cycle now)
{
    cur_now_ = now;
    cur_advance_ = advance;
    if (!profiler_) {
        pool_.parallelFor(plan_.regions.size(), task_);
        return;
    }
    const std::uint64_t t0 = now_ns();
    pool_.parallelFor(plan_.regions.size(), task_);
    const std::uint64_t wall = now_ns() - t0;
    profiler_->add(advance ? ph_par_adv_ : ph_par_eval_, wall, 1);
    // A region's barrier wait is the phase wall minus its own busy
    // time: how long its lane sat at the barrier while the slowest
    // sibling finished. Large r-to-r spread = partition imbalance.
    for (std::size_t r = 0; r < plan_.regions.size(); ++r) {
        const std::uint64_t busy = busy_ns_[r];
        profiler_->add(ph_wait_[r], wall > busy ? wall - busy : 0, 1);
    }
}

} // namespace approxnoc
