/**
 * @file
 * The cycle-driven simulation loop: fires due events, then runs the
 * two-phase (evaluate/advance) update over all registered components.
 */
#ifndef APPROXNOC_SIM_SIMULATOR_H
#define APPROXNOC_SIM_SIMULATOR_H

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/clocked.h"
#include "sim/event_queue.h"

namespace approxnoc {

namespace telemetry {
class PhaseProfiler;
} // namespace telemetry

/**
 * Owns simulated time. Components are registered by raw pointer; the
 * caller keeps ownership (components typically live inside a Network
 * or testbench object that outlives the Simulator loop).
 */
class Simulator
{
  public:
    /** Register a component to be stepped every cycle. */
    void add(Clocked *c) { components_.push_back(c); }

    /** The shared event queue (delayed callbacks). */
    EventQueue &events() { return events_; }

    Cycle now() const { return now_; }

    /** Run exactly @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true or @p max_cycles elapse.
     * @return true when @p done fired, false on cycle-limit timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

    /** Advance a single cycle. */
    void step();

    /**
     * Attach a self-profiler. Subsequent cycles are stepped through a
     * phase-timed path: the event queue and each contiguous run of
     * same-kind components (routers, NIs, the network, the sampler)
     * are timed under `sim.*` phases. Components are classified once,
     * lazily, by their Clocked name prefix. Null (the default)
     * restores the untimed fast path — `step()` pays one pointer test.
     */
    void bindProfiler(telemetry::PhaseProfiler *profiler);

  private:
    /** One profiled cycle (profiler_ non-null). */
    void stepProfiled();
    /** One timed evaluate-or-advance sweep over the components. */
    void profiledSweep(bool advance);
    /** Phase id for component @p i, classified on first use. */
    std::size_t phaseOf(std::size_t i);

    Cycle now_ = 0;
    std::vector<Clocked *> components_;
    EventQueue events_;
    telemetry::PhaseProfiler *profiler_ = nullptr;
    std::size_t ph_event_queue_ = 0;
    std::size_t ph_other_ = 0;
    /** Cached phase per component index; kNoPhase = not classified. */
    std::vector<std::size_t> phase_of_;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_SIMULATOR_H
