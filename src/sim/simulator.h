/**
 * @file
 * The cycle-driven simulation loop: fires due events, then runs the
 * two-phase (evaluate/advance) update over all registered components.
 */
#ifndef APPROXNOC_SIM_SIMULATOR_H
#define APPROXNOC_SIM_SIMULATOR_H

#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/clocked.h"
#include "sim/event_queue.h"

namespace approxnoc {

/**
 * Owns simulated time. Components are registered by raw pointer; the
 * caller keeps ownership (components typically live inside a Network
 * or testbench object that outlives the Simulator loop).
 */
class Simulator
{
  public:
    /** Register a component to be stepped every cycle. */
    void add(Clocked *c) { components_.push_back(c); }

    /** The shared event queue (delayed callbacks). */
    EventQueue &events() { return events_; }

    Cycle now() const { return now_; }

    /** Run exactly @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true or @p max_cycles elapse.
     * @return true when @p done fired, false on cycle-limit timeout.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles);

    /** Advance a single cycle. */
    void step();

  private:
    Cycle now_ = 0;
    std::vector<Clocked *> components_;
    EventQueue events_;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_SIMULATOR_H
