/**
 * @file
 * The cycle-driven simulation loop: fires due events, then runs the
 * two-phase (evaluate/advance) update over all registered components.
 */
#ifndef APPROXNOC_SIM_SIMULATOR_H
#define APPROXNOC_SIM_SIMULATOR_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/contract.h"
#include "common/types.h"
#include "sim/clocked.h"
#include "sim/event_queue.h"

namespace approxnoc {

namespace telemetry {
class PhaseProfiler;
} // namespace telemetry

struct RegionPlan;
class RegionScheduler;

/**
 * Owns simulated time. Components are registered by raw pointer; the
 * caller keeps ownership (components typically live inside a Network
 * or testbench object that outlives the Simulator loop).
 */
class Simulator
{
  public:
    /** The loop driver itself runs only in serial context: every
     * field below is mutated between parallel phases, never inside
     * one, so region workers observe it read-only. */
    ANOC_ISOLATION_CONTRACT(region_isolation);

    Simulator();
    ~Simulator();

    /** Register a component to be stepped every cycle. */
    void add(Clocked *c);

    /** The shared event queue (delayed callbacks). */
    EventQueue &events() { return events_; }

    Cycle now() const { return now_; }

    /** Run exactly @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true or @p max_cycles elapse.
     * @return true when @p done fired, false on cycle-limit timeout.
     *
     * @p check_interval throttles the (potentially expensive) @p done
     * predicate: it is evaluated before every burst of that many
     * cycles rather than every cycle, so completion can overshoot by
     * up to `check_interval - 1` cycles of extra simulation — never
     * past @p max_cycles. 1 (the default) checks every cycle.
     */
    bool runUntil(const std::function<bool()> &done, Cycle max_cycles,
                  Cycle check_interval = 1);

    /** Advance a single cycle. */
    void step();

    /**
     * Install a region partition for parallel stepping (see
     * sim/region_scheduler.h for the plan shape and the component
     * isolation contract). The plan's regions must cover a prefix of
     * the registration order exactly once, each region's list in
     * ascending registration order; components past that prefix form
     * the serial tail, stepped on the calling thread each phase.
     * Registering further components after this call simply grows the
     * serial tail. @p threads caps pool parallelism (clamped to the
     * region count; 0 = hardware concurrency). An empty plan (or
     * a single region) restores plain serial stepping.
     */
    void setRegionPlan(RegionPlan plan, unsigned threads);

    /** Regions currently stepped in parallel (0 = serial stepping). */
    std::size_t regionCount() const;

    /**
     * Attach a self-profiler. Subsequent cycles are stepped through a
     * phase-timed path: the event queue and each contiguous run of
     * same-kind components (routers, NIs, the network, the sampler)
     * are timed under `sim.*` phases. Components are classified once,
     * lazily, by their Clocked name prefix. Null (the default)
     * restores the untimed fast path — `step()` pays one pointer test.
     */
    void bindProfiler(telemetry::PhaseProfiler *profiler);

  private:
    /** One profiled cycle (profiler_ non-null). */
    void stepProfiled();
    /** One region-parallel cycle (scheduler_ non-null). */
    void stepRegions();
    /** One timed evaluate-or-advance sweep over [begin, end). */
    void profiledSweep(bool advance, std::size_t begin, std::size_t end);
    /** Untimed evaluate-or-advance sweep over [begin, end). */
    void plainSweep(bool advance, std::size_t begin, std::size_t end);
    /** Phase id for component @p i, classified on first use. */
    std::size_t phaseOf(std::size_t i);

    ANOC_REGION_SHARED Cycle now_ = 0;
    ANOC_REGION_SHARED std::vector<Clocked *> components_;
    ANOC_REGION_SHARED EventQueue events_;
    ANOC_REGION_SHARED telemetry::PhaseProfiler *profiler_ = nullptr;
    ANOC_REGION_SHARED std::size_t ph_event_queue_ = 0;
    ANOC_REGION_SHARED std::size_t ph_other_ = 0;
    ANOC_REGION_SHARED std::size_t ph_region_apply_ = 0;
    /** Cached phase per component index; kNoPhase = not classified.
     *  Invariant: same length as components_ (add() appends a
     *  kNoPhase slot, so registration never reclassifies the rest). */
    ANOC_REGION_SHARED std::vector<std::size_t> phase_of_;

    ANOC_REGION_SHARED std::unique_ptr<RegionScheduler> scheduler_;
    /** Components [0, serial_prefix_) are covered by the region plan;
     *  the rest step serially after each parallel phase. */
    ANOC_REGION_SHARED std::size_t serial_prefix_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_SIM_SIMULATOR_H
