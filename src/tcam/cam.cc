#include "tcam/cam.h"

#include <limits>

#include "common/log.h"

namespace approxnoc {

namespace {

std::size_t
index_buckets_for(std::size_t capacity)
{
    std::size_t want = capacity * 2;
    std::size_t n = 8;
    while (n < want)
        n <<= 1;
    return n;
}

} // namespace

Cam::Cam(std::size_t n_entries, ReplacementPolicy policy)
    : entries_(n_entries), index_(index_buckets_for(n_entries), kEmpty),
      index_mask_(index_.size() - 1), policy_(policy)
{
    ANOC_ASSERT(n_entries > 0, "CAM must have at least one entry");
}

std::size_t
Cam::findSlot(Word key) const
{
    std::size_t b = hashKey(key) & index_mask_;
    while (true) {
        std::int32_t v = index_[b];
        if (v == kEmpty)
            return kNoSlot;
        if (v != kTombstone) {
            const Entry &e = entries_[static_cast<std::size_t>(v)];
            if (e.valid && e.key == key)
                return static_cast<std::size_t>(v);
        }
        b = (b + 1) & index_mask_;
    }
}

void
Cam::indexInsert(Word key, std::size_t slot)
{
    std::size_t b = hashKey(key) & index_mask_;
    while (index_[b] != kEmpty && index_[b] != kTombstone)
        b = (b + 1) & index_mask_;
    if (index_[b] == kTombstone)
        --tombstones_;
    index_[b] = static_cast<std::int32_t>(slot);
}

void
Cam::indexErase(Word key, std::size_t slot)
{
    std::size_t b = hashKey(key) & index_mask_;
    while (true) {
        std::int32_t v = index_[b];
        ANOC_ASSERT(v != kEmpty, "CAM index entry missing on erase");
        if (v == static_cast<std::int32_t>(slot)) {
            index_[b] = kTombstone;
            ++tombstones_;
            break;
        }
        b = (b + 1) & index_mask_;
    }
    // A quarter of the table dead is the classic rebuild point: probe
    // chains stay short and the rebuild cost amortizes to O(1).
    if (tombstones_ > index_.size() / 4)
        rebuildIndex();
}

void
Cam::rebuildIndex()
{
    std::fill(index_.begin(), index_.end(), kEmpty);
    tombstones_ = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].valid)
            indexInsert(entries_[i].key, i);
}

std::optional<std::size_t>
Cam::search(Word key)
{
    ++searches_;
    ++tick_;
    std::size_t slot = findSlot(key);
    if (slot == kNoSlot)
        return std::nullopt;
    Entry &e = entries_[slot];
    e.last_use = tick_;
    ++e.freq;
    return slot;
}

std::optional<std::size_t>
Cam::peek(Word key) const
{
    ++peeks_;
    std::size_t slot = findSlot(key);
    if (slot == kNoSlot)
        return std::nullopt;
    return slot;
}

std::size_t
Cam::pickVictim() const
{
    // Prefer the lowest-index invalid slot.
    if (valid_count_ < entries_.size())
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (!entries_[i].valid)
                return i;

    // All valid: minimum replacement score; strict '<' makes ties break
    // deterministically towards the lowest slot index.
    std::size_t victim = 0;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::uint64_t score = policy_ == ReplacementPolicy::Lru
                                  ? entries_[i].last_use
                                  : entries_[i].freq;
        if (score < best) {
            best = score;
            victim = i;
        }
    }
    return victim;
}

std::size_t
Cam::victimFor(Word key) const
{
    if (auto hit = peek(key))
        return *hit;
    return pickVictim();
}

std::size_t
Cam::insert(Word key)
{
    ++writes_;
    ++tick_;
    std::size_t slot = victimFor(key);
    Entry &e = entries_[slot];
    bool rehit = e.valid && e.key == key;
    if (!rehit) {
        if (e.valid)
            indexErase(e.key, slot);
        else
            ++valid_count_;
        indexInsert(key, slot);
    }
    e.valid = true;
    e.key = key;
    e.last_use = tick_;
    e.freq = rehit ? e.freq + 1 : 1;
    return slot;
}

void
Cam::erase(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
    if (entries_[slot].valid) {
        indexErase(entries_[slot].key, slot);
        --valid_count_;
    }
    entries_[slot] = Entry{};
}

void
Cam::clear()
{
    for (auto &e : entries_)
        e = Entry{};
    std::fill(index_.begin(), index_.end(), kEmpty);
    tombstones_ = 0;
    valid_count_ = 0;
}

void
Cam::touch(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
    ++tick_;
    entries_[slot].last_use = tick_;
    ++entries_[slot].freq;
}

} // namespace approxnoc
