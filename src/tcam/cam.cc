#include "tcam/cam.h"

#include <limits>

#include "common/log.h"

namespace approxnoc {

Cam::Cam(std::size_t n_entries, ReplacementPolicy policy)
    : entries_(n_entries), policy_(policy)
{
    ANOC_ASSERT(n_entries > 0, "CAM must have at least one entry");
}

std::optional<std::size_t>
Cam::search(Word key)
{
    ++searches_;
    ++tick_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.valid && e.key == key) {
            e.last_use = tick_;
            ++e.freq;
            return i;
        }
    }
    return std::nullopt;
}

std::optional<std::size_t>
Cam::peek(Word key) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (e.valid && e.key == key)
            return i;
    }
    return std::nullopt;
}

std::size_t
Cam::pickVictim() const
{
    // Prefer an invalid slot.
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (!entries_[i].valid)
            return i;

    std::size_t victim = 0;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::uint64_t score = policy_ == ReplacementPolicy::Lru
                                  ? entries_[i].last_use
                                  : entries_[i].freq;
        if (score < best) {
            best = score;
            victim = i;
        }
    }
    return victim;
}

std::size_t
Cam::victimFor(Word key) const
{
    if (auto hit = peek(key))
        return *hit;
    return pickVictim();
}

std::size_t
Cam::insert(Word key)
{
    ++writes_;
    ++tick_;
    std::size_t slot = victimFor(key);
    Entry &e = entries_[slot];
    bool rehit = e.valid && e.key == key;
    e.valid = true;
    e.key = key;
    e.last_use = tick_;
    e.freq = rehit ? e.freq + 1 : 1;
    return slot;
}

void
Cam::erase(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
    entries_[slot] = Entry{};
}

void
Cam::clear()
{
    for (auto &e : entries_)
        e = Entry{};
}

void
Cam::touch(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
    ++tick_;
    entries_[slot].last_use = tick_;
    ++entries_[slot].freq;
}

std::size_t
Cam::validCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace approxnoc
