#include "tcam/tcam.h"

#include <limits>
#include <string>

#include "common/log.h"

namespace approxnoc {

std::string
TernaryPattern::toString(unsigned width) const
{
    std::string s;
    for (unsigned b = width; b-- > 0;) {
        Word bit = 1u << b;
        if (mask & bit)
            s += 'x';
        else
            s += (value & bit) ? '1' : '0';
    }
    return s;
}

Tcam::Tcam(std::size_t n_entries, ReplacementPolicy policy)
    : entries_(n_entries), valids_(n_entries, false),
      last_use_(n_entries, 0), freq_(n_entries, 0), policy_(policy)
{
    ANOC_ASSERT(n_entries > 0, "TCAM must have at least one entry");
}

std::optional<std::size_t>
Tcam::search(Word key)
{
    ++searches_;
    ++tick_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (valids_[i] && entries_[i].matches(key)) {
            last_use_[i] = tick_;
            ++freq_[i];
            return i;
        }
    }
    return std::nullopt;
}

std::vector<std::size_t>
Tcam::searchAll(Word key) const
{
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (valids_[i] && entries_[i].matches(key))
            hits.push_back(i);
    return hits;
}

std::optional<std::size_t>
Tcam::peek(Word key) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (valids_[i] && entries_[i].matches(key))
            return i;
    return std::nullopt;
}

std::optional<std::size_t>
Tcam::findPattern(const TernaryPattern &p) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (valids_[i] && entries_[i] == p)
            return i;
    return std::nullopt;
}

std::size_t
Tcam::pickVictim() const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (!valids_[i])
            return i;

    std::size_t victim = 0;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::uint64_t score =
            policy_ == ReplacementPolicy::Lru ? last_use_[i] : freq_[i];
        if (score < best) {
            best = score;
            victim = i;
        }
    }
    return victim;
}

std::size_t
Tcam::victimFor(const TernaryPattern &p) const
{
    if (auto existing = findPattern(p))
        return *existing;
    return pickVictim();
}

std::size_t
Tcam::insert(const TernaryPattern &p)
{
    ++writes_;
    ++tick_;
    std::size_t slot;
    if (auto existing = findPattern(p)) {
        slot = *existing;
        ++freq_[slot];
    } else {
        slot = pickVictim();
        freq_[slot] = 1;
    }
    entries_[slot] = p.canonical();
    valids_[slot] = true;
    last_use_[slot] = tick_;
    return slot;
}

void
Tcam::erase(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "TCAM slot out of range");
    valids_[slot] = false;
    entries_[slot] = TernaryPattern{};
    last_use_[slot] = 0;
    freq_[slot] = 0;
}

void
Tcam::clear()
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        erase(i);
}

void
Tcam::touch(std::size_t slot)
{
    ANOC_ASSERT(slot < entries_.size(), "TCAM slot out of range");
    ++tick_;
    last_use_[slot] = tick_;
    ++freq_[slot];
}

std::size_t
Tcam::validCount() const
{
    std::size_t n = 0;
    for (bool v : valids_)
        n += v ? 1 : 0;
    return n;
}

} // namespace approxnoc
