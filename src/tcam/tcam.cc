#include "tcam/tcam.h"

#include <limits>
#include <string>

#include "common/log.h"

namespace approxnoc {

std::string
TernaryPattern::toString(unsigned width) const
{
    std::string s;
    for (unsigned b = width; b-- > 0;) {
        Word bit = 1u << b;
        if (mask & bit)
            s += 'x';
        else
            s += (value & bit) ? '1' : '0';
    }
    return s;
}

Tcam::Tcam(std::size_t n_entries, ReplacementPolicy policy)
    : capacity_(n_entries), chunks_((n_entries + 63) / 64),
      entries_(n_entries), planes_(64 * chunks_, 0),
      valid_bits_(chunks_, 0), last_use_(n_entries, 0), freq_(n_entries, 0),
      policy_(policy), match_fn_(simd::match64_kernel())
{
    ANOC_ASSERT(n_entries > 0, "TCAM must have at least one entry");
}

void
Tcam::writeSlotPlanes(std::size_t slot, const TernaryPattern *p)
{
    const std::size_t base = (slot >> 6) << 6; // this chunk's 64 planes
    const std::uint64_t bit = 1ull << (slot & 63);
    for (unsigned b = 0; b < 32; ++b) {
        std::uint64_t &p0 = planes_[base + b];
        std::uint64_t &p1 = planes_[base + 32 + b];
        p0 &= ~bit;
        p1 &= ~bit;
        if (!p)
            continue;
        const Word m = 1u << b;
        if (p->mask & m) { // don't care: matches either key bit
            p0 |= bit;
            p1 |= bit;
        } else if (p->value & m) {
            p1 |= bit;
        } else {
            p0 |= bit;
        }
    }
}

std::vector<std::size_t>
Tcam::searchAll(Word key) const
{
    ++peeks_;
    std::vector<std::size_t> hits;
    for (std::size_t c = 0; c < chunks_; ++c) {
        std::uint64_t m = matchChunk(key, c);
        while (m) {
            hits.push_back(c * 64 +
                           static_cast<std::size_t>(std::countr_zero(m)));
            m &= m - 1;
        }
    }
    return hits;
}

std::optional<std::size_t>
Tcam::peek(Word key) const
{
    ++peeks_;
    for (std::size_t c = 0; c < chunks_; ++c)
        if (std::uint64_t m = matchChunk(key, c))
            return c * 64 + static_cast<std::size_t>(std::countr_zero(m));
    return std::nullopt;
}

std::optional<std::size_t>
Tcam::findPattern(const TernaryPattern &p) const
{
    ++peeks_;
    for (std::size_t i = 0; i < capacity_; ++i)
        if (valid(i) && entries_[i] == p)
            return i;
    return std::nullopt;
}

std::size_t
Tcam::pickVictim() const
{
    // Prefer the lowest-index invalid slot.
    for (std::size_t c = 0; c < chunks_; ++c) {
        std::uint64_t tail = c + 1 < chunks_ || capacity_ % 64 == 0
                                 ? ~0ull
                                 : (1ull << (capacity_ % 64)) - 1;
        std::uint64_t free = ~valid_bits_[c] & tail;
        if (free)
            return c * 64 + static_cast<std::size_t>(std::countr_zero(free));
    }

    // All valid: minimum replacement score; strict '<' makes ties break
    // deterministically towards the lowest slot index.
    std::size_t victim = 0;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < capacity_; ++i) {
        std::uint64_t score =
            policy_ == ReplacementPolicy::Lru ? last_use_[i] : freq_[i];
        if (score < best) {
            best = score;
            victim = i;
        }
    }
    return victim;
}

std::size_t
Tcam::victimFor(const TernaryPattern &p) const
{
    if (auto existing = findPattern(p))
        return *existing;
    return pickVictim();
}

std::size_t
Tcam::insert(const TernaryPattern &p)
{
    ++writes_;
    ++tick_;
    std::size_t slot;
    if (auto existing = findPattern(p)) {
        slot = *existing;
        ++freq_[slot];
    } else {
        slot = pickVictim();
        freq_[slot] = 1;
    }
    if (!valid(slot)) {
        valid_bits_[slot >> 6] |= 1ull << (slot & 63);
        ++valid_count_;
    }
    entries_[slot] = p.canonical();
    writeSlotPlanes(slot, &entries_[slot]);
    last_use_[slot] = tick_;
    return slot;
}

void
Tcam::erase(std::size_t slot)
{
    ANOC_ASSERT(slot < capacity_, "TCAM slot out of range");
    if (valid(slot)) {
        valid_bits_[slot >> 6] &= ~(1ull << (slot & 63));
        --valid_count_;
        writeSlotPlanes(slot, nullptr);
    }
    entries_[slot] = TernaryPattern{};
    last_use_[slot] = 0;
    freq_[slot] = 0;
}

void
Tcam::clear()
{
    for (std::size_t i = 0; i < capacity_; ++i)
        erase(i);
}

void
Tcam::touch(std::size_t slot)
{
    ANOC_ASSERT(slot < capacity_, "TCAM slot out of range");
    ++tick_;
    last_use_[slot] = tick_;
    ++freq_[slot];
}

} // namespace approxnoc
