/**
 * @file
 * Naive reference implementations of the Tcam and Cam match engines:
 * the pre-optimization one-compare-per-entry code, kept as the
 * executable specification for the bit-sliced / hash-indexed engines.
 * The randomized differential tests drive both side by side and assert
 * identical hit slots, victim choices and activity counters.
 *
 * Counter semantics deliberately mirror tcam.h / cam.h: search() and
 * searchVisit() count searches; peek/searchAll/findPattern/victimFor
 * count peeks. Everything here is intentionally O(entries) per probe —
 * do not "fix" that; simplicity is the point.
 */
#ifndef APPROXNOC_TCAM_REFERENCE_H
#define APPROXNOC_TCAM_REFERENCE_H

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/log.h"
#include "common/types.h"

#include "tcam/tcam.h"

namespace approxnoc {

/** Reference TCAM: linear scan over every entry on each probe. */
class RefTcam
{
  public:
    explicit RefTcam(std::size_t n_entries,
                     ReplacementPolicy policy = ReplacementPolicy::Lfu)
        : entries_(n_entries), valids_(n_entries, false),
          last_use_(n_entries, 0), freq_(n_entries, 0), policy_(policy)
    {
        ANOC_ASSERT(n_entries > 0, "TCAM must have at least one entry");
    }

    std::size_t capacity() const { return entries_.size(); }

    std::optional<std::size_t>
    search(Word key)
    {
        return searchVisit(key, [](std::size_t) { return true; });
    }

    template <typename Fn>
    std::optional<std::size_t>
    searchVisit(Word key, Fn &&visit)
    {
        ++searches_;
        ++tick_;
        std::optional<std::size_t> hit;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (!valids_[i] || !entries_[i].matches(key))
                continue;
            if (!hit) {
                last_use_[i] = tick_;
                ++freq_[i];
                hit = i;
            }
            if (visit(i))
                return hit;
        }
        return hit;
    }

    std::vector<std::size_t>
    searchAll(Word key) const
    {
        ++peeks_;
        std::vector<std::size_t> hits;
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (valids_[i] && entries_[i].matches(key))
                hits.push_back(i);
        return hits;
    }

    std::optional<std::size_t>
    peek(Word key) const
    {
        ++peeks_;
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (valids_[i] && entries_[i].matches(key))
                return i;
        return std::nullopt;
    }

    std::optional<std::size_t>
    findPattern(const TernaryPattern &p) const
    {
        ++peeks_;
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (valids_[i] && entries_[i] == p)
                return i;
        return std::nullopt;
    }

    std::size_t
    insert(const TernaryPattern &p)
    {
        ++writes_;
        ++tick_;
        std::size_t slot;
        if (auto existing = findPattern(p)) {
            slot = *existing;
            ++freq_[slot];
        } else {
            slot = pickVictim();
            freq_[slot] = 1;
        }
        if (!valids_[slot]) {
            valids_[slot] = true;
            ++valid_count_;
        }
        entries_[slot] = p.canonical();
        last_use_[slot] = tick_;
        return slot;
    }

    std::size_t
    victimFor(const TernaryPattern &p) const
    {
        if (auto existing = findPattern(p))
            return *existing;
        return pickVictim();
    }

    void
    erase(std::size_t slot)
    {
        ANOC_ASSERT(slot < entries_.size(), "TCAM slot out of range");
        if (valids_[slot]) {
            valids_[slot] = false;
            --valid_count_;
        }
        entries_[slot] = TernaryPattern{};
        last_use_[slot] = 0;
        freq_[slot] = 0;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < entries_.size(); ++i)
            erase(i);
    }

    void
    touch(std::size_t slot)
    {
        ANOC_ASSERT(slot < entries_.size(), "TCAM slot out of range");
        ++tick_;
        last_use_[slot] = tick_;
        ++freq_[slot];
    }

    bool valid(std::size_t slot) const { return valids_[slot]; }
    const TernaryPattern &pattern(std::size_t slot) const { return entries_[slot]; }
    std::size_t validCount() const { return valid_count_; }
    std::uint64_t searches() const { return searches_; }
    std::uint64_t peeks() const { return peeks_; }
    std::uint64_t writes() const { return writes_; }

  private:
    std::size_t
    pickVictim() const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (!valids_[i])
                return i;
        std::size_t victim = 0;
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::uint64_t score =
                policy_ == ReplacementPolicy::Lru ? last_use_[i] : freq_[i];
            if (score < best) {
                best = score;
                victim = i;
            }
        }
        return victim;
    }

    std::vector<TernaryPattern> entries_;
    std::vector<bool> valids_;
    std::vector<std::uint64_t> last_use_;
    std::vector<std::uint64_t> freq_;
    ReplacementPolicy policy_;
    std::size_t valid_count_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t searches_ = 0;
    /** Relaxed-atomic, mirroring the optimized engines: concurrent
     * read-only probes race only on this count. */
    mutable RelaxedCounter peeks_;
    std::uint64_t writes_ = 0;
};

/** Reference CAM: linear scan over every entry on each probe. */
class RefCam
{
  public:
    explicit RefCam(std::size_t n_entries,
                    ReplacementPolicy policy = ReplacementPolicy::Lfu)
        : entries_(n_entries), policy_(policy)
    {
        ANOC_ASSERT(n_entries > 0, "CAM must have at least one entry");
    }

    std::size_t capacity() const { return entries_.size(); }

    std::optional<std::size_t>
    search(Word key)
    {
        ++searches_;
        ++tick_;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            Entry &e = entries_[i];
            if (e.valid && e.key == key) {
                e.last_use = tick_;
                ++e.freq;
                return i;
            }
        }
        return std::nullopt;
    }

    std::optional<std::size_t>
    peek(Word key) const
    {
        ++peeks_;
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (entries_[i].valid && entries_[i].key == key)
                return i;
        return std::nullopt;
    }

    std::size_t
    victimFor(Word key) const
    {
        if (auto hit = peek(key))
            return *hit;
        return pickVictim();
    }

    std::size_t
    insert(Word key)
    {
        ++writes_;
        ++tick_;
        std::size_t slot = victimFor(key);
        Entry &e = entries_[slot];
        bool rehit = e.valid && e.key == key;
        if (!rehit && !e.valid)
            ++valid_count_;
        e.valid = true;
        e.key = key;
        e.last_use = tick_;
        e.freq = rehit ? e.freq + 1 : 1;
        return slot;
    }

    void
    erase(std::size_t slot)
    {
        ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
        if (entries_[slot].valid)
            --valid_count_;
        entries_[slot] = Entry{};
    }

    void
    clear()
    {
        for (auto &e : entries_)
            e = Entry{};
        valid_count_ = 0;
    }

    void
    touch(std::size_t slot)
    {
        ANOC_ASSERT(slot < entries_.size(), "CAM slot out of range");
        ++tick_;
        entries_[slot].last_use = tick_;
        ++entries_[slot].freq;
    }

    bool valid(std::size_t slot) const { return entries_[slot].valid; }
    Word key(std::size_t slot) const { return entries_[slot].key; }
    std::uint64_t frequency(std::size_t slot) const { return entries_[slot].freq; }
    std::size_t validCount() const { return valid_count_; }
    std::uint64_t searches() const { return searches_; }
    std::uint64_t peeks() const { return peeks_; }
    std::uint64_t writes() const { return writes_; }

  private:
    struct Entry {
        bool valid = false;
        Word key = 0;
        std::uint64_t last_use = 0;
        std::uint64_t freq = 0;
    };

    std::size_t
    pickVictim() const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (!entries_[i].valid)
                return i;
        std::size_t victim = 0;
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::uint64_t score = policy_ == ReplacementPolicy::Lru
                                      ? entries_[i].last_use
                                      : entries_[i].freq;
            if (score < best) {
                best = score;
                victim = i;
            }
        }
        return victim;
    }

    std::vector<Entry> entries_;
    ReplacementPolicy policy_;
    std::size_t valid_count_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t searches_ = 0;
    /** Relaxed-atomic, mirroring the optimized engines: concurrent
     * read-only probes race only on this count. */
    mutable RelaxedCounter peeks_;
    std::uint64_t writes_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TCAM_REFERENCE_H
