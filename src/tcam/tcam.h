/**
 * @file
 * Behavioural model of a ternary CAM: each entry stores a value and a
 * don't-care mask; a search key matches when it agrees with the value
 * on every *care* bit. The DI-VAXX encoder PMT stores approximate
 * patterns here (paper Sec. 4.2.1, after the Agrawal & Sherwood TCAM
 * model [1]).
 *
 * The match engine is bit-sliced, the standard software-TCAM technique
 * from the packet-classification literature: for every one of the 32
 * key-bit positions it keeps two occupancy bitmaps ("entries that match
 * a key whose bit is 0" / "... is 1"; a don't-care entry appears in
 * both). A search is then 32 ANDs over 64-entry bitmap chunks plus a
 * count-trailing-zeros, instead of one masked compare per entry, while
 * the per-slot LRU/LFU metadata is only touched on the hit slot. The
 * bitmaps are maintained incrementally on insert/erase/clear.
 *
 * The pre-bit-slicing naive implementation is retained as RefTcam
 * (tcam/reference.h) and serves as the executable specification in the
 * randomized differential tests.
 */
#ifndef APPROXNOC_TCAM_TCAM_H
#define APPROXNOC_TCAM_TCAM_H

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/contract.h"
#include "common/types.h"

#include "tcam/cam.h"
#include "tcam/match_kernel.h"

namespace approxnoc {

/** A ternary pattern: @c mask bits set are "x" (don't care). */
struct TernaryPattern {
    Word value = 0;
    Word mask = 0;

    /** True when @p key matches this pattern on all care bits. */
    bool
    matches(Word key) const
    {
        return ((key ^ value) & ~mask) == 0;
    }

    /** Canonical form: value bits under the mask forced to zero. */
    TernaryPattern
    canonical() const
    {
        return TernaryPattern{static_cast<Word>(value & ~mask), mask};
    }

    bool
    operator==(const TernaryPattern &o) const
    {
        return (value & ~mask) == (o.value & ~o.mask) && mask == o.mask;
    }

    /** Render as a bit string with 'x' for don't-care bits. */
    std::string toString(unsigned width = 32) const;
};

/**
 * Fixed-size TCAM with LRU/LFU replacement and activity counters.
 * Slot indices are stable so callers can keep parallel payload arrays.
 *
 * Counter semantics: search()/searchVisit() count towards searches()
 * (the power model's probe count); the side-effect-free probes — peek,
 * searchAll, findPattern, and the findPattern that victimFor/insert
 * perform internally — count towards peeks() instead, so read-only
 * diagnostics no longer inflate (or vanish from) the energy accounting.
 */
class Tcam
{
  public:
    /** A Tcam instance is embedded in exactly one shard's state (a
     * DI-VAXX encoder node's PMT), so its mutable match state inherits
     * that shard's isolation; only the peek count may be probed
     * concurrently across shards. */
    ANOC_ISOLATION_CONTRACT(flow_isolation);

    Tcam(std::size_t n_entries, ReplacementPolicy policy = ReplacementPolicy::Lfu);

    std::size_t capacity() const { return capacity_; }

    /**
     * Search for the highest-priority (lowest-index) entry matching
     * @p key. Counts one search; touches only the hit slot's metadata.
     */
    std::optional<std::size_t>
    search(Word key)
    {
        return searchVisit(key, [](std::size_t) { return true; });
    }

    /**
     * Counted search that additionally visits *every* matching slot in
     * priority (ascending index) order: @p visit returns true to stop
     * early. The match bitmap is computed once, so a caller that needs
     * the full match set (DI-VAXX scanning for a per-destination
     * mapping) pays one probe, not two.
     *
     * Stats and LRU/LFU effects are identical to search(): one search
     * is counted and the lowest matching slot is touched, regardless of
     * where @p visit stops.
     *
     * @return the highest-priority matching slot, or nullopt on miss.
     */
    template <typename Fn>
    std::optional<std::size_t>
    searchVisit(Word key, Fn &&visit)
    {
        ++searches_;
        ++tick_;
        std::optional<std::size_t> hit;
        for (std::size_t c = 0; c < chunks_; ++c) {
            std::uint64_t m = matchChunk(key, c);
            if (!m)
                continue;
            if (!hit) {
                std::size_t first =
                    c * 64 + static_cast<std::size_t>(std::countr_zero(m));
                last_use_[first] = tick_;
                ++freq_[first];
                hit = first;
            }
            while (m) {
                std::size_t s =
                    c * 64 + static_cast<std::size_t>(std::countr_zero(m));
                m &= m - 1;
                if (visit(s))
                    return hit;
            }
        }
        return hit;
    }

    /** All matching slots, lowest index first (multi-match diagnostics).
     * Counts one peek. */
    std::vector<std::size_t> searchAll(Word key) const;

    /** Search without side effects. Counts one peek. */
    std::optional<std::size_t> peek(Word key) const;

    /** Find a slot storing exactly this ternary pattern. Counts one peek. */
    std::optional<std::size_t> findPattern(const TernaryPattern &p) const;

    /**
     * Insert @p p, reusing a slot holding the identical pattern or
     * replacing a victim. Counts one write (plus the internal
     * findPattern peek).
     */
    std::size_t insert(const TernaryPattern &p);

    /** Slot insert() would (re)use for @p p, without writing. */
    std::size_t victimFor(const TernaryPattern &p) const;

    void erase(std::size_t slot);
    void clear();

    bool
    valid(std::size_t slot) const
    {
        return (valid_bits_[slot >> 6] >> (slot & 63)) & 1u;
    }
    const TernaryPattern &pattern(std::size_t slot) const { return entries_[slot]; }
    void touch(std::size_t slot);

    /** Number of valid entries; O(1), maintained by insert/erase/clear. */
    std::size_t validCount() const { return valid_count_; }

    std::uint64_t searches() const { return searches_; }
    /** Read-only probes (peek/searchAll/findPattern), counted apart
     * from searches() so diagnostics don't skew power accounting. */
    std::uint64_t peeks() const { return peeks_; }
    std::uint64_t writes() const { return writes_; }

  private:
    /**
     * Victim when no invalid slot is free: the minimum-score entry
     * (LRU: oldest use tick; LFU: lowest frequency). Ties break
     * deterministically towards the lowest slot index.
     */
    std::size_t pickVictim() const;

    /** 64-entry match bitmap for chunk @p c: AND of the 32 key-bit
     * planes over the valid mask, zero as soon as no entry survives.
     * The chunk's planes are contiguous (see planes_), so the kernel
     * gets one base pointer and does no per-bit stride arithmetic;
     * which kernel runs (scalar x4 / AVX2) was resolved once in the
     * constructor and is bit-identical either way. */
    std::uint64_t
    matchChunk(Word key, std::size_t c) const
    {
        return match_fn_(planes_.data() + (c << 6), valid_bits_[c], key);
    }

    /** Rewrite slot @p slot's bits in all 64 planes; null @p p clears. */
    void writeSlotPlanes(std::size_t slot, const TernaryPattern *p);

    ANOC_SHARD_LOCAL std::size_t capacity_;
    ANOC_SHARD_LOCAL std::size_t chunks_; ///< ceil(capacity / 64) bitmap words
    ANOC_SHARD_LOCAL std::vector<TernaryPattern> entries_;
    /** Bit-slice planes: plane (b, v) holds, for every slot, whether the
     * entry matches a key whose bit b equals v. Chunk-major so one
     * chunk's 64 planes are contiguous for the match kernels:
     * planes_[(chunk << 6) + (v << 5) + b] — a chunk's 32 zero-planes
     * first, then its 32 one-planes. */
    ANOC_SHARD_LOCAL std::vector<std::uint64_t> planes_;
    ANOC_SHARD_LOCAL std::vector<std::uint64_t> valid_bits_;
    ANOC_SHARD_LOCAL std::vector<std::uint64_t> last_use_;
    ANOC_SHARD_LOCAL std::vector<std::uint64_t> freq_;
    ANOC_SHARD_LOCAL ReplacementPolicy policy_;
    ANOC_SHARD_LOCAL std::size_t valid_count_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t tick_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t searches_ = 0;
    /** Relaxed-atomic: peek()/searchAll()/findPattern() are const and
     * thread-safe against each other, so concurrent read-only probes
     * race only on this count, never on match state. */
    ANOC_CROSS_SHARD(RelaxedCounter) mutable RelaxedCounter peeks_;
    ANOC_SHARD_LOCAL std::uint64_t writes_ = 0;
    /** Match kernel resolved once at construction (common/simd.h
     * request clamped by host capability); cached per instance so the
     * hot loop is one indirect call with no dispatch re-check. */
    ANOC_SHARD_LOCAL simd::MatchFn match_fn_;
};

} // namespace approxnoc

#endif // APPROXNOC_TCAM_TCAM_H
