/**
 * @file
 * Behavioural model of a ternary CAM: each entry stores a value and a
 * don't-care mask; a search key matches when it agrees with the value
 * on every *care* bit. The DI-VAXX encoder PMT stores approximate
 * patterns here (paper Sec. 4.2.1, after the Agrawal & Sherwood TCAM
 * model [1]).
 */
#ifndef APPROXNOC_TCAM_TCAM_H
#define APPROXNOC_TCAM_TCAM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

#include "tcam/cam.h"

namespace approxnoc {

/** A ternary pattern: @c mask bits set are "x" (don't care). */
struct TernaryPattern {
    Word value = 0;
    Word mask = 0;

    /** True when @p key matches this pattern on all care bits. */
    bool
    matches(Word key) const
    {
        return ((key ^ value) & ~mask) == 0;
    }

    /** Canonical form: value bits under the mask forced to zero. */
    TernaryPattern
    canonical() const
    {
        return TernaryPattern{static_cast<Word>(value & ~mask), mask};
    }

    bool
    operator==(const TernaryPattern &o) const
    {
        return (value & ~mask) == (o.value & ~o.mask) && mask == o.mask;
    }

    /** Render as a bit string with 'x' for don't-care bits. */
    std::string toString(unsigned width = 32) const;
};

/**
 * Fixed-size TCAM with LRU/LFU replacement and activity counters.
 * Slot indices are stable so callers can keep parallel payload arrays.
 */
class Tcam
{
  public:
    Tcam(std::size_t n_entries, ReplacementPolicy policy = ReplacementPolicy::Lfu);

    std::size_t capacity() const { return entries_.size(); }

    /**
     * Search for the highest-priority (lowest-index) entry matching
     * @p key. Counts one search.
     */
    std::optional<std::size_t> search(Word key);

    /** All matching slots, lowest index first (multi-match diagnostics). */
    std::vector<std::size_t> searchAll(Word key) const;

    /** Search without side effects. */
    std::optional<std::size_t> peek(Word key) const;

    /** Find a slot storing exactly this ternary pattern. */
    std::optional<std::size_t> findPattern(const TernaryPattern &p) const;

    /**
     * Insert @p p, reusing a slot holding the identical pattern or
     * replacing a victim. Counts one write.
     */
    std::size_t insert(const TernaryPattern &p);

    /** Slot insert() would (re)use for @p p, without writing. */
    std::size_t victimFor(const TernaryPattern &p) const;

    void erase(std::size_t slot);
    void clear();

    bool valid(std::size_t slot) const { return valids_[slot]; }
    const TernaryPattern &pattern(std::size_t slot) const { return entries_[slot]; }
    void touch(std::size_t slot);

    std::size_t validCount() const;

    std::uint64_t searches() const { return searches_; }
    std::uint64_t writes() const { return writes_; }

  private:
    std::size_t pickVictim() const;

    std::vector<TernaryPattern> entries_;
    std::vector<bool> valids_;
    std::vector<std::uint64_t> last_use_;
    std::vector<std::uint64_t> freq_;
    ReplacementPolicy policy_;
    std::uint64_t tick_ = 0;
    std::uint64_t searches_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TCAM_TCAM_H
