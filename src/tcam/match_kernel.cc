#include "tcam/match_kernel.h"

#include <cstdio>

// The AVX2 kernel compiles whenever the toolchain can *target* AVX2
// (any x86-64 gcc/clang, via the function-level target attribute, so
// the rest of the object keeps the build's default codegen) — not only
// when the whole build runs with -mavx2. The scalar twin below is the
// mandatory fallback the S1 lint rule pins to a named differential
// test; on non-x86 builds match64_avx2 degenerates to it.
#if defined(__AVX2__) || \
    (defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)))
// anoc-simd-test: SimdDiff.KernelsBitIdenticalOnRandomPlanes
#define ANOC_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define ANOC_HAVE_AVX2_KERNEL 0
#endif

namespace approxnoc::simd {

std::uint64_t
match64_scalar(const std::uint64_t *planes, std::uint64_t valid,
               std::uint32_t key)
{
    std::uint64_t m = valid;
    for (unsigned b = 0; b < 32 && m; b += 4) {
        const std::uint64_t p0 = planes[b + 0 + (((key >> (b + 0)) & 1u) << 5)];
        const std::uint64_t p1 = planes[b + 1 + (((key >> (b + 1)) & 1u) << 5)];
        const std::uint64_t p2 = planes[b + 2 + (((key >> (b + 2)) & 1u) << 5)];
        const std::uint64_t p3 = planes[b + 3 + (((key >> (b + 3)) & 1u) << 5)];
        m &= p0 & p1 & p2 & p3;
    }
    return m;
}

#if ANOC_HAVE_AVX2_KERNEL
// anoc-simd-test: SimdDiff.KernelsBitIdenticalOnRandomPlanes

bool
avx2_kernel_compiled()
{
    return true;
}

[[gnu::target("avx2")]] std::uint64_t
match64_avx2(const std::uint64_t *planes, std::uint64_t valid,
             std::uint32_t key)
{
    if (!valid)
        return 0;
    const __m256i kvec = _mm256_set1_epi64x(static_cast<long long>(key));
    const __m256i ones = _mm256_set1_epi64x(1);
    const __m256i four = _mm256_set1_epi64x(4);
    __m256i shifts = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i acc = _mm256_set1_epi64x(-1);
    for (unsigned b = 0; b < 32; b += 4) {
        const __m256i z = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(planes + b));
        const __m256i o = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(planes + b + 32));
        // Lane l holds key bit b+l; compare against 1 to get an
        // all-ones select mask, then blend o over z by masked xor.
        const __m256i kb =
            _mm256_and_si256(_mm256_srlv_epi64(kvec, shifts), ones);
        const __m256i take_one = _mm256_cmpeq_epi64(kb, ones);
        const __m256i sel = _mm256_xor_si256(
            z, _mm256_and_si256(_mm256_xor_si256(z, o), take_one));
        acc = _mm256_and_si256(acc, sel);
        if (_mm256_testz_si256(acc, acc))
            return 0;
        shifts = _mm256_add_epi64(shifts, four);
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i both = _mm_and_si128(lo, hi);
    const std::uint64_t m =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(both)) &
        static_cast<std::uint64_t>(_mm_extract_epi64(both, 1));
    return m & valid;
}

#else // scalar twin: toolchain cannot target AVX2 on this arch

bool
avx2_kernel_compiled()
{
    return false;
}

std::uint64_t
match64_avx2(const std::uint64_t *planes, std::uint64_t valid,
             std::uint32_t key)
{
    return match64_scalar(planes, valid, key);
}

#endif

SimdLevel
resolve_simd_level(SimdRequest request, bool avx2_available)
{
    switch (request) {
    case SimdRequest::Scalar:
        return SimdLevel::Scalar;
    case SimdRequest::Avx2:
    case SimdRequest::Auto:
        return avx2_available ? SimdLevel::Avx2 : SimdLevel::Scalar;
    }
    return SimdLevel::Scalar;
}

SimdLevel
active_simd_level()
{
    static const SimdLevel cached = [] {
        const SimdRequest req = requested_simd_level();
        const bool available = avx2_kernel_compiled() && cpu_has_avx2();
        const SimdLevel level = resolve_simd_level(req, available);
        if (req == SimdRequest::Avx2 && level != SimdLevel::Avx2)
            std::fprintf(stderr,
                         "approxnoc: ANOC_SIMD=avx2 requested but AVX2 is "
                         "unavailable on this host/build; using the scalar "
                         "match kernel\n");
        return level;
    }();
    return cached;
}

MatchFn
match64_kernel()
{
    return active_simd_level() == SimdLevel::Avx2 ? match64_avx2
                                                  : match64_scalar;
}

} // namespace approxnoc::simd
