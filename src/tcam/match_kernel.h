/**
 * @file
 * Plane-intersection kernels for the bit-sliced TCAM match engine.
 *
 * A kernel computes one 64-entry chunk's match bitmap: the AND, over
 * all 32 key-bit positions b, of the occupancy plane selected by key
 * bit b, intersected with the chunk's valid mask. The planes for one
 * chunk are contiguous (Tcam's chunk-major layout): @p planes[0..31]
 * are the "key bit b is 0" planes and @p planes[32..63] the "key bit
 * b is 1" planes, so plane selection is `planes[b + (bit(key,b) << 5)]`
 * with no per-bit stride multiply.
 *
 * Every kernel is bit-identical by construction — same bitmap for the
 * same (planes, valid, key) — which is what keeps the simulator's
 * results and stats independent of the dispatch choice; the randomized
 * differential fuzzer (tests/test_simd_diff.cc) enforces it. Kernels
 * may differ only in how often their internal early-exit fires, which
 * is unobservable (probe counters count probes, not plane loads).
 *
 * Dispatch: match64_kernel() resolves once per process from the
 * request (common/simd.h: `ANOC_SIMD` env / CMake default) clamped by
 * capability (AVX2 compiled in and reported by the CPU). Requesting
 * avx2 on a host without it falls back to scalar with a one-time
 * stderr note instead of failing, so test suites stay portable.
 */
#ifndef APPROXNOC_TCAM_MATCH_KERNEL_H
#define APPROXNOC_TCAM_MATCH_KERNEL_H

#include <cstdint>

#include "common/simd.h"

namespace approxnoc::simd {

/** One 64-entry chunk match: planes = 64 contiguous chunk planes
 * (zero-planes then one-planes), valid = chunk valid mask. */
using MatchFn = std::uint64_t (*)(const std::uint64_t *planes,
                                  std::uint64_t valid, std::uint32_t key);

/** Portable reference kernel: four plane ANDs per iteration with an
 * early exit between groups. This is the executable spec the SIMD
 * kernels must agree with bit-for-bit. */
std::uint64_t match64_scalar(const std::uint64_t *planes,
                             std::uint64_t valid, std::uint32_t key);

/**
 * AVX2 kernel: four plane-pairs per vector step (srlv key-bit extract,
 * cmpeq select mask, blend-by-xor, testz early exit), cross-lane AND
 * reduce at the end. When the AVX2 path is compiled out this symbol
 * still exists and forwards to match64_scalar, so differential tests
 * link everywhere and degenerate to scalar-vs-scalar.
 */
std::uint64_t match64_avx2(const std::uint64_t *planes,
                           std::uint64_t valid, std::uint32_t key);

/** True when the AVX2 kernel was compiled into this binary. */
bool avx2_kernel_compiled();

/**
 * Pure resolution step of the dispatch matrix (docs/perf.md):
 * scalar request → Scalar; avx2 request → Avx2 when available, else
 * Scalar (the cached resolver notes the clamp on stderr once); auto →
 * Avx2 iff available. Exposed separately so tests can table-drive all
 * rows without touching the environment.
 */
SimdLevel resolve_simd_level(SimdRequest request, bool avx2_available);

/** The process-wide resolved level (cached; clamp note printed here). */
SimdLevel active_simd_level();

/** The kernel for active_simd_level(), resolved once per process. */
MatchFn match64_kernel();

} // namespace approxnoc::simd

#endif // APPROXNOC_TCAM_MATCH_KERNEL_H
