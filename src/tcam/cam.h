/**
 * @file
 * Behavioural model of a content-addressable memory: fixed entry count,
 * exact-match search, LRU/LFU replacement, activity counters for the
 * power model. Decoder PMTs and the FP-COMP pattern table use this.
 */
#ifndef APPROXNOC_TCAM_CAM_H
#define APPROXNOC_TCAM_CAM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace approxnoc {

/** Victim selection policy for a full CAM/TCAM. */
enum class ReplacementPolicy : std::uint8_t {
    Lru, ///< least recently used
    Lfu, ///< least frequently used (paper's frequency counters)
};

/**
 * Exact-match CAM over 32-bit keys. Slots are stable: payloads are kept
 * by the caller in arrays parallel to the slot index.
 */
class Cam
{
  public:
    Cam(std::size_t n_entries, ReplacementPolicy policy = ReplacementPolicy::Lfu);

    std::size_t capacity() const { return entries_.size(); }

    /**
     * Search for @p key. Counts one search access.
     * @return matching slot, or nullopt on miss.
     */
    std::optional<std::size_t> search(Word key);

    /** Search without touching recency/frequency or counters. */
    std::optional<std::size_t> peek(Word key) const;

    /**
     * Insert @p key, reusing an existing matching slot or replacing a
     * victim. Counts one write access.
     * @return the slot now holding @p key.
     */
    std::size_t insert(Word key);

    /** Pick the slot insert() would (re)use for @p key without writing. */
    std::size_t victimFor(Word key) const;

    /** Invalidate one slot. */
    void erase(std::size_t slot);
    /** Invalidate everything. */
    void clear();

    bool valid(std::size_t slot) const { return entries_[slot].valid; }
    Word key(std::size_t slot) const { return entries_[slot].key; }
    std::uint64_t frequency(std::size_t slot) const { return entries_[slot].freq; }

    /** Bump the frequency counter of a slot (dictionary training). */
    void touch(std::size_t slot);

    std::size_t validCount() const;

    /** Activity counters for the energy model. */
    std::uint64_t searches() const { return searches_; }
    std::uint64_t writes() const { return writes_; }

  private:
    struct Entry {
        bool valid = false;
        Word key = 0;
        std::uint64_t last_use = 0;
        std::uint64_t freq = 0;
    };

    std::size_t pickVictim() const;

    std::vector<Entry> entries_;
    ReplacementPolicy policy_;
    std::uint64_t tick_ = 0;
    std::uint64_t searches_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TCAM_CAM_H
