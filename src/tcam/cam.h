/**
 * @file
 * Behavioural model of a content-addressable memory: fixed entry count,
 * exact-match search, LRU/LFU replacement, activity counters for the
 * power model. Decoder PMTs and the FP-COMP pattern table use this.
 *
 * The match engine is hash-indexed: an open-addressed key -> slot map
 * shadows the entry array, so exact-match search is O(1) expected
 * instead of one compare per entry. The map is maintained incrementally
 * on insert/erase/clear and never influences replacement decisions —
 * victim selection stays a deterministic scan over slot order.
 *
 * The pre-hashing naive implementation is retained as RefCam
 * (tcam/reference.h) and serves as the executable specification in the
 * randomized differential tests.
 */
#ifndef APPROXNOC_TCAM_CAM_H
#define APPROXNOC_TCAM_CAM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/contract.h"
#include "common/relaxed_counter.h"
#include "common/types.h"

namespace approxnoc {

/** Victim selection policy for a full CAM/TCAM. */
enum class ReplacementPolicy : std::uint8_t {
    Lru, ///< least recently used
    Lfu, ///< least frequently used (paper's frequency counters)
};

/**
 * Exact-match CAM over 32-bit keys. Slots are stable: payloads are kept
 * by the caller in arrays parallel to the slot index.
 *
 * Counter semantics: search() counts towards searches() (the power
 * model's probe count); the side-effect-free probes — peek and the peek
 * that victimFor performs internally — count towards peeks() instead,
 * so read-only diagnostics neither inflate nor vanish from the energy
 * accounting.
 */
class Cam
{
  public:
    /** A Cam instance is embedded in exactly one shard's state (an
     * encoder node's table or a decoder node's PMT), so its mutable
     * match state inherits that shard's isolation; only the peek
     * count may be probed concurrently across shards. */
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    Cam(std::size_t n_entries, ReplacementPolicy policy = ReplacementPolicy::Lfu);

    std::size_t capacity() const { return entries_.size(); }

    /**
     * Search for @p key. Counts one search access; touches only the
     * hit slot's recency/frequency metadata.
     * @return matching slot, or nullopt on miss.
     */
    std::optional<std::size_t> search(Word key);

    /** Search without touching recency/frequency. Counts one peek. */
    std::optional<std::size_t> peek(Word key) const;

    /**
     * Insert @p key, reusing an existing matching slot or replacing a
     * victim. Counts one write access (plus the internal lookup peek).
     * @return the slot now holding @p key.
     */
    std::size_t insert(Word key);

    /** Pick the slot insert() would (re)use for @p key without writing.
     * Counts one peek. */
    std::size_t victimFor(Word key) const;

    /** Invalidate one slot. */
    void erase(std::size_t slot);
    /** Invalidate everything. */
    void clear();

    bool valid(std::size_t slot) const { return entries_[slot].valid; }
    Word key(std::size_t slot) const { return entries_[slot].key; }
    std::uint64_t frequency(std::size_t slot) const { return entries_[slot].freq; }

    /** Bump the frequency counter of a slot (dictionary training). */
    void touch(std::size_t slot);

    /** Number of valid entries; O(1), maintained by insert/erase/clear. */
    std::size_t validCount() const { return valid_count_; }

    /** Activity counters for the energy model. */
    std::uint64_t searches() const { return searches_; }
    /** Read-only probes (peek/victimFor), counted apart from searches()
     * so diagnostics don't skew power accounting. */
    std::uint64_t peeks() const { return peeks_; }
    std::uint64_t writes() const { return writes_; }

  private:
    struct Entry {
        bool valid = false;
        Word key = 0;
        std::uint64_t last_use = 0;
        std::uint64_t freq = 0;
    };

    static constexpr std::int32_t kEmpty = -1;
    static constexpr std::int32_t kTombstone = -2;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    /**
     * Victim when no invalid slot is free: the minimum-score entry
     * (LRU: oldest use tick; LFU: lowest frequency). Ties break
     * deterministically towards the lowest slot index.
     */
    std::size_t pickVictim() const;

    /** Fibonacci-style 32-bit mix so clustered keys probe uniformly. */
    static std::uint32_t
    hashKey(Word k)
    {
        k ^= k >> 16;
        k *= 0x7feb352du;
        k ^= k >> 15;
        k *= 0x846ca68bu;
        k ^= k >> 16;
        return k;
    }

    /** Hash-probe for @p key; kNoSlot on miss. */
    std::size_t findSlot(Word key) const;
    /** Add key -> slot to the index (key must not be present). */
    void indexInsert(Word key, std::size_t slot);
    /** Drop key -> slot from the index (must be present). */
    void indexErase(Word key, std::size_t slot);
    /** Rebuild the index from the entry array (tombstone pressure). */
    void rebuildIndex();

    ANOC_SHARD_LOCAL std::vector<Entry> entries_;
    /** Open-addressed buckets holding a slot index, kEmpty or
     * kTombstone; sized to a power of two >= 2x capacity. */
    ANOC_SHARD_LOCAL std::vector<std::int32_t> index_;
    ANOC_SHARD_LOCAL std::size_t index_mask_;
    ANOC_SHARD_LOCAL std::size_t tombstones_ = 0;
    ANOC_SHARD_LOCAL std::size_t valid_count_ = 0;
    ANOC_SHARD_LOCAL ReplacementPolicy policy_;
    ANOC_SHARD_LOCAL std::uint64_t tick_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t searches_ = 0;
    /** Relaxed-atomic: peek() is const and thread-safe, so concurrent
     * read-only probes (diagnostics, parallel stats dumps) may race
     * only on this count, never on match state. */
    ANOC_CROSS_SHARD(RelaxedCounter) mutable RelaxedCounter peeks_;
    ANOC_SHARD_LOCAL std::uint64_t writes_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_TCAM_CAM_H
