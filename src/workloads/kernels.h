/**
 * @file
 * The eight benchmark kernels (see workload.h for the contract).
 * Substitution notes per kernel live in DESIGN.md Sec. 4.
 */
#ifndef APPROXNOC_WORKLOADS_KERNELS_H
#define APPROXNOC_WORKLOADS_KERNELS_H

#include "workloads/workload.h"

namespace approxnoc {

/** Black-Scholes closed-form option pricing (PARSEC blackscholes). */
class BlackscholesWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "blackscholes"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
};

/**
 * Blob tracking over synthetic frames (PARSEC bodytrack substitute):
 * a bright body moves across noisy frames; per frame the tracker finds
 * the weighted centroid inside a search window. renderOutput() draws
 * the tracked model for the paper's Fig. 17 comparison.
 */
class BodytrackWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "bodytrack"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;

    unsigned imageWidth() const;
    unsigned imageHeight() const;
    unsigned frames() const;

    /** Render the tracked model trajectory as an 8-bit image. */
    std::vector<std::uint8_t> renderOutput(const WorkloadResult &r) const;

  private:
    /** Ground-truth blob centre in frame f. */
    void truth(unsigned f, double &x, double &y) const;
};

/** Simulated-annealing placement (PARSEC canneal substitute). */
class CannealWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "canneal"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
};

/** 2D SPH particle simulation (PARSEC fluidanimate substitute). */
class FluidanimateWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "fluidanimate"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
};

/**
 * Lloyd-style k-median clustering (PARSEC streamcluster substitute).
 * The paper notes this benchmark's output error exceeds the data error
 * budget: approximated coordinates shift point-to-center costs and the
 * chosen centers diverge.
 */
class StreamclusterWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "streamcluster"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
    double outputError(const WorkloadResult &precise,
                       const WorkloadResult &approx) const override;
};

/** Monte-Carlo swaption pricing (PARSEC swaptions substitute). */
class SwaptionsWorkload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "swaptions"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
};

/** Full-search block motion estimation (x264 kernel substitute). */
class X264Workload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "x264"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
    double outputError(const WorkloadResult &precise,
                       const WorkloadResult &approx) const override;
};

/**
 * SSCA2 betweenness centrality: R-MAT small-world graph + Brandes'
 * algorithm; the floating-point pair-wise dependencies (delta) and the
 * centrality scores are approximable, the graph structure is precise
 * (paper Sec. 5.1/5.4).
 */
class Ssca2Workload : public Workload
{
  public:
    using Workload::Workload;
    std::string name() const override { return "ssca2"; }
    WorkloadResult run(ApproxCacheSystem &mem) override;
};

} // namespace approxnoc

#endif // APPROXNOC_WORKLOADS_KERNELS_H
