/**
 * @file
 * Simulated-annealing placement of netlist elements on a grid. The
 * element coordinate arrays are the approximable Int32 regions (the
 * netlist topology stays precise); the kernel anneals with a
 * deterministic schedule and reports the final total wirelength.
 */
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

WorkloadResult
CannealWorkload::run(ApproxCacheSystem &mem)
{
    const std::size_t n = 1024 * scale_;
    const std::size_t fanin = 4;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t locx = mem.alloc(n, "loc_x");
    std::size_t locy = mem.alloc(n, "loc_y");
    std::size_t nets = mem.alloc(n * fanin, "nets");
    mem.annotate(locx, n, DataType::Int32);
    mem.annotate(locy, n, DataType::Int32);
    // The netlist itself is structural and must stay precise.

    const std::int32_t grid_w = 256, grid_h = 256;
    for (std::size_t i = 0; i < n; ++i) {
        mem.initInt(locx + i, static_cast<std::int32_t>(rng.next(grid_w)));
        mem.initInt(locy + i, static_cast<std::int32_t>(rng.next(grid_h)));
        for (std::size_t f = 0; f < fanin; ++f) {
            // Real netlists are local: most nets connect to nearby
            // logic, with occasional long wires.
            std::size_t o;
            if (rng.chance(0.85)) {
                o = (i + n + static_cast<std::size_t>(rng.range(-24, 24))) %
                    n;
            } else {
                o = rng.next(n);
            }
            mem.initInt(nets + i * fanin + f,
                        static_cast<std::int32_t>(o));
        }
    }

    // Total wirelength per element, from the precise memory image.
    auto total_cost = [&] {
        double total = 0.0;
        for (std::size_t e = 0; e < n; ++e) {
            std::int32_t ex = mem.peekInt(locx + e);
            std::int32_t ey = mem.peekInt(locy + e);
            for (std::size_t f = 0; f < fanin; ++f) {
                auto o = static_cast<std::size_t>(
                    mem.peekInt(nets + e * fanin + f));
                total += std::abs(ex - mem.peekInt(locx + o)) +
                         std::abs(ey - mem.peekInt(locy + o));
            }
        }
        return total / static_cast<double>(n);
    };
    const double initial_cost = total_cost();

    // Wirelength of element e against its fanin, from core's view.
    auto elem_cost = [&](unsigned core, std::size_t e) {
        std::int64_t c = 0;
        std::int32_t ex = mem.loadInt(core, locx + e);
        std::int32_t ey = mem.loadInt(core, locy + e);
        for (std::size_t f = 0; f < fanin; ++f) {
            auto o = static_cast<std::size_t>(
                mem.loadInt(core, nets + e * fanin + f));
            std::int32_t ox = mem.loadInt(core, locx + o);
            std::int32_t oy = mem.loadInt(core, locy + o);
            c += std::abs(ex - ox) + std::abs(ey - oy);
        }
        return c;
    };

    double temperature = 200.0;
    std::size_t step = 0;
    while (temperature > 0.05) {
        for (std::size_t s = 0; s < n; ++s, ++step) {
            unsigned core = static_cast<unsigned>(step % cores);
            std::size_t a = rng.next(n);
            std::size_t b = rng.next(n);
            if (a == b)
                continue;
            std::int64_t before = elem_cost(core, a) + elem_cost(core, b);
            // Swap locations.
            std::int32_t ax = mem.loadInt(core, locx + a);
            std::int32_t ay = mem.loadInt(core, locy + a);
            std::int32_t bx = mem.loadInt(core, locx + b);
            std::int32_t by = mem.loadInt(core, locy + b);
            mem.storeInt(core, locx + a, bx);
            mem.storeInt(core, locy + a, by);
            mem.storeInt(core, locx + b, ax);
            mem.storeInt(core, locy + b, ay);
            std::int64_t after = elem_cost(core, a) + elem_cost(core, b);
            std::int64_t delta = after - before;
            bool accept =
                delta < 0 ||
                rng.uniform() < std::exp(-static_cast<double>(delta) /
                                         temperature);
            if (!accept) {
                mem.storeInt(core, locx + a, ax);
                mem.storeInt(core, locy + a, ay);
                mem.storeInt(core, locx + b, bx);
                mem.storeInt(core, locy + b, by);
            }
        }
        mem.barrier();
        temperature *= 0.8;
    }

    WorkloadResult res;
    res.output.push_back(total_cost()); // final wirelength (post-flush)
    res.output.push_back(initial_cost);
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

} // namespace approxnoc
