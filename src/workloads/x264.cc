/**
 * @file
 * x264 motion-estimation kernel: full-search SAD block matching of a
 * frame against its predecessor over procedurally generated video
 * (textured background with moving objects). Pixel data is the
 * approximable Int32 region; the output is the motion field plus
 * per-block SAD residuals.
 */
#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

namespace {
constexpr unsigned kW = 96, kH = 96, kMb = 16;
constexpr int kRange = 4;
} // namespace

WorkloadResult
X264Workload::run(ApproxCacheSystem &mem)
{
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t f0 = mem.alloc(kW * kH, "frame0");
    std::size_t f1 = mem.alloc(kW * kH, "frame1");
    mem.annotate(f0, kW * kH, DataType::Int32);
    mem.annotate(f1, kW * kH, DataType::Int32);

    // Textured background + two moving bright squares (dx,dy = 3,2).
    auto pixel = [&](int x, int y, int shift_x, int shift_y) {
        double v = 60.0 + 40.0 * std::sin(0.23 * x) * std::cos(0.19 * y);
        auto in_square = [&](int sx, int sy, int size) {
            return x >= sx + shift_x && x < sx + shift_x + size &&
                   y >= sy + shift_y && y < sy + shift_y + size;
        };
        if (in_square(20, 30, 14))
            v = 220.0;
        if (in_square(60, 55, 10))
            v = 180.0;
        return static_cast<int>(std::clamp(v, 0.0, 255.0));
    };
    for (unsigned y = 0; y < kH; ++y)
        for (unsigned x = 0; x < kW; ++x) {
            mem.initInt(f0 + y * kW + x, pixel(x, y, 0, 0));
            mem.initInt(f1 + y * kW + x, pixel(x, y, 3, 2));
        }

    const unsigned mbs_x = kW / kMb, mbs_y = kH / kMb;
    WorkloadResult res;
    for (unsigned my = 0; my < mbs_y; ++my) {
        for (unsigned mx = 0; mx < mbs_x; ++mx) {
            unsigned core = static_cast<unsigned>((my * mbs_x + mx) % cores);
            long best_sad = -1;
            int best_dx = 0, best_dy = 0;
            for (int dy = -kRange; dy <= kRange; ++dy) {
                for (int dx = -kRange; dx <= kRange; ++dx) {
                    long sad = 0;
                    bool valid = true;
                    for (unsigned py = 0; py < kMb && valid; ++py) {
                        for (unsigned px = 0; px < kMb; ++px) {
                            int x1 = static_cast<int>(mx * kMb + px);
                            int y1 = static_cast<int>(my * kMb + py);
                            int x0 = x1 + dx, y0 = y1 + dy;
                            if (x0 < 0 || y0 < 0 ||
                                x0 >= static_cast<int>(kW) ||
                                y0 >= static_cast<int>(kH)) {
                                valid = false;
                                break;
                            }
                            int a = mem.loadInt(core, f1 + y1 * kW + x1);
                            int b = mem.loadInt(core, f0 + y0 * kW + x0);
                            sad += std::abs(a - b);
                        }
                    }
                    if (valid && (best_sad < 0 || sad < best_sad)) {
                        best_sad = sad;
                        best_dx = dx;
                        best_dy = dy;
                    }
                }
            }
            res.output.push_back(best_dx);
            res.output.push_back(best_dy);
            res.output.push_back(static_cast<double>(best_sad));
        }
    }
    mem.barrier();
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

double
X264Workload::outputError(const WorkloadResult &precise,
                          const WorkloadResult &approx) const
{
    // Motion-field quality: normalized motion-vector displacement and
    // relative residual (SAD) change, averaged over macroblocks.
    const std::size_t n_mb = precise.output.size() / 3;
    double err = 0.0;
    for (std::size_t i = 0; i < n_mb; ++i) {
        double dvx = approx.output[3 * i] - precise.output[3 * i];
        double dvy = approx.output[3 * i + 1] - precise.output[3 * i + 1];
        double mv_err =
            std::min(1.0, std::hypot(dvx, dvy) / (2.0 * kRange));
        double sp = precise.output[3 * i + 2];
        double sa = approx.output[3 * i + 2];
        // Residual change relative to the block's full dynamic range
        // (a PSNR-like normalization; dividing by the residual itself
        // explodes for near-perfect matches).
        double sad_err = std::fabs(sa - sp) / (kMb * kMb * 255.0);
        err += 0.5 * mv_err + 0.5 * std::min(1.0, sad_err);
    }
    return n_mb ? err / static_cast<double>(n_mb) : 0.0;
}

} // namespace approxnoc
