/**
 * @file
 * Black-Scholes European option pricing over a portfolio of synthetic
 * options. All five input arrays and the price output array are
 * approximable Float32 regions; the option-type array is precise.
 */
#include <array>
#include <cmath>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

namespace {

/** Cumulative normal distribution (as in the PARSEC kernel). */
double
cndf(double x)
{
    return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

} // namespace

WorkloadResult
BlackscholesWorkload::run(ApproxCacheSystem &mem)
{
    const std::size_t n = 4096 * scale_;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t sptprice = mem.alloc(n, "sptprice");
    std::size_t strike = mem.alloc(n, "strike");
    std::size_t rate = mem.alloc(n, "rate");
    std::size_t vol = mem.alloc(n, "volatility");
    std::size_t otime = mem.alloc(n, "otime");
    std::size_t otype = mem.alloc(n, "otype");
    std::size_t prices = mem.alloc(n, "prices");

    for (std::size_t off : {sptprice, strike, rate, vol, otime, prices})
        mem.annotate(off, n, DataType::Float32);
    // Option type stays precise: flipping call/put is not noise.

    // PARSEC's blackscholes input replicates a small option template
    // to reach simlarge size, so the real data stream is dominated by
    // exact repeats plus near values — reproduce that structure.
    const std::size_t n_template = 64;
    std::vector<std::array<float, 5>> tmpl(n_template);
    for (auto &o : tmpl) {
        o[0] = static_cast<float>(rng.uniform(20, 120));
        o[1] = static_cast<float>(rng.uniform(20, 120));
        o[2] = static_cast<float>(rng.uniform(0.01, 0.08));
        o[3] = static_cast<float>(rng.uniform(0.10, 0.60));
        o[4] = static_cast<float>(rng.uniform(0.25, 2.0));
    }
    for (std::size_t i = 0; i < n; ++i) {
        // Zipf-like template popularity: a handful of option profiles
        // dominate, as value distributions in real inputs do.
        double u = rng.uniform();
        auto ti = static_cast<std::size_t>(
            static_cast<double>(n_template) * u * u * u);
        const auto &o = tmpl[std::min(ti, n_template - 1)];
        float j = rng.chance(0.5)
                      ? 1.0f
                      : static_cast<float>(1.0 + rng.uniform(-0.03, 0.03));
        mem.initFloat(sptprice + i, o[0] * j);
        mem.initFloat(strike + i, o[1] * j);
        mem.initFloat(rate + i, o[2] * j);
        mem.initFloat(vol + i, o[3] * j);
        mem.initFloat(otime + i, o[4] * j);
        mem.initInt(otype + i, rng.chance(0.5) ? 1 : 0);
    }

    for (std::size_t i = 0; i < n; ++i) {
        unsigned core = static_cast<unsigned>(i % cores);
        double s = mem.loadFloat(core, sptprice + i);
        double k = mem.loadFloat(core, strike + i);
        double r = mem.loadFloat(core, rate + i);
        double v = mem.loadFloat(core, vol + i);
        double t = mem.loadFloat(core, otime + i);
        bool call = mem.loadInt(core, otype + i) != 0;

        double sqrt_t = std::sqrt(t);
        double d1 = (std::log(s / k) + (r + v * v / 2.0) * t) / (v * sqrt_t);
        double d2 = d1 - v * sqrt_t;
        double price;
        if (call)
            price = s * cndf(d1) - k * std::exp(-r * t) * cndf(d2);
        else
            price = k * std::exp(-r * t) * cndf(-d2) - s * cndf(-d1);
        mem.storeFloat(core, prices + i, static_cast<float>(price));
    }
    mem.barrier();

    WorkloadResult res;
    res.output.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        res.output.push_back(mem.peekFloat(prices + i));
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

} // namespace approxnoc
