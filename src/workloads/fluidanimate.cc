/**
 * @file
 * 2D smoothed-particle-hydrodynamics mini-simulation. Particle
 * positions and velocities are approximable Float32; the kernel runs
 * a few density/force/integrate timesteps with all-pairs interactions
 * inside a smoothing radius.
 */
#include <cmath>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

WorkloadResult
FluidanimateWorkload::run(ApproxCacheSystem &mem)
{
    const std::size_t n = 256 * scale_;
    const unsigned steps = 4;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t px = mem.alloc(n, "pos_x");
    std::size_t py = mem.alloc(n, "pos_y");
    std::size_t vx = mem.alloc(n, "vel_x");
    std::size_t vy = mem.alloc(n, "vel_y");
    std::size_t rho = mem.alloc(n, "density");
    for (std::size_t off : {px, py, vx, vy, rho})
        mem.annotate(off, n, DataType::Float32);

    const double box = 10.0, h = 1.2, dt = 0.02;
    for (std::size_t i = 0; i < n; ++i) {
        mem.initFloat(px + i, static_cast<float>(rng.uniform(1.0, box - 1.0)));
        mem.initFloat(py + i, static_cast<float>(rng.uniform(1.0, box - 1.0)));
        mem.initFloat(vx + i, static_cast<float>(rng.gaussian(0.0, 0.3)));
        mem.initFloat(vy + i, static_cast<float>(rng.gaussian(0.0, 0.3)));
        mem.initFloat(rho + i, 0.0f);
    }

    for (unsigned s = 0; s < steps; ++s) {
        // Density pass.
        for (std::size_t i = 0; i < n; ++i) {
            unsigned core = static_cast<unsigned>(i % cores);
            double xi = mem.loadFloat(core, px + i);
            double yi = mem.loadFloat(core, py + i);
            double d = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                double dx = xi - mem.loadFloat(core, px + j);
                double dy = yi - mem.loadFloat(core, py + j);
                double r2 = dx * dx + dy * dy;
                if (r2 < h * h) {
                    double q = 1.0 - std::sqrt(r2) / h;
                    d += q * q * q;
                }
            }
            mem.storeFloat(core, rho + i, static_cast<float>(d));
        }
        mem.barrier();

        // Force + integrate pass.
        for (std::size_t i = 0; i < n; ++i) {
            unsigned core = static_cast<unsigned>(i % cores);
            double xi = mem.loadFloat(core, px + i);
            double yi = mem.loadFloat(core, py + i);
            double di = mem.loadFloat(core, rho + i);
            double fx = 0.0, fy = -0.5; // gravity
            for (std::size_t j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                double dx = xi - mem.loadFloat(core, px + j);
                double dy = yi - mem.loadFloat(core, py + j);
                double r2 = dx * dx + dy * dy;
                if (r2 < h * h && r2 > 1e-9) {
                    double r = std::sqrt(r2);
                    double dj = mem.loadFloat(core, rho + j);
                    double press = 0.15 * (di + dj);
                    fx += press * (dx / r) * (1.0 - r / h);
                    fy += press * (dy / r) * (1.0 - r / h);
                }
            }
            double nvx = mem.loadFloat(core, vx + i) + dt * fx;
            double nvy = mem.loadFloat(core, vy + i) + dt * fy;
            double nx = xi + dt * nvx;
            double ny = yi + dt * nvy;
            // Reflecting walls.
            if (nx < 0.0) { nx = -nx; nvx = -nvx; }
            if (nx > box) { nx = 2 * box - nx; nvx = -nvx; }
            if (ny < 0.0) { ny = -ny; nvy = -nvy; }
            if (ny > box) { ny = 2 * box - ny; nvy = -nvy; }
            mem.storeFloat(core, vx + i, static_cast<float>(nvx));
            mem.storeFloat(core, vy + i, static_cast<float>(nvy));
            mem.storeFloat(core, px + i, static_cast<float>(nx));
            mem.storeFloat(core, py + i, static_cast<float>(ny));
        }
        mem.barrier();
    }

    WorkloadResult res;
    res.output.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        res.output.push_back(mem.peekFloat(px + i));
        res.output.push_back(mem.peekFloat(py + i));
    }
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

} // namespace approxnoc
