/**
 * @file
 * Body tracking substitute: a bright 2-blob "body" moves across noisy
 * synthetic frames; the tracker estimates its position per frame with
 * a weighted centroid inside a search window around the previous
 * estimate. Frame pixels are the approximable Float32 region (the
 * benchmark's likelihood maps are floating point).
 * renderOutput() rasterizes the tracked model for Fig. 17.
 */
#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

namespace {
constexpr unsigned kW = 96, kH = 96, kFrames = 8;
constexpr int kWindow = 10;
} // namespace

unsigned
BodytrackWorkload::imageWidth() const
{
    return kW;
}

unsigned
BodytrackWorkload::imageHeight() const
{
    return kH;
}

unsigned
BodytrackWorkload::frames() const
{
    return kFrames;
}

void
BodytrackWorkload::truth(unsigned f, double &x, double &y) const
{
    // The body sweeps diagonally with a gentle sine sway.
    double t = static_cast<double>(f) / (kFrames - 1);
    x = 20.0 + 55.0 * t;
    y = 30.0 + 35.0 * t + 6.0 * std::sin(3.0 * t * 3.14159);
}

WorkloadResult
BodytrackWorkload::run(ApproxCacheSystem &mem)
{
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t frames_base = mem.alloc(kFrames * kW * kH, "frames");
    mem.annotate(frames_base, kFrames * kW * kH, DataType::Float32);

    // Synthesize frames: torso blob + head blob + noise.
    for (unsigned f = 0; f < kFrames; ++f) {
        double cx, cy;
        truth(f, cx, cy);
        for (unsigned y = 0; y < kH; ++y) {
            for (unsigned x = 0; x < kW; ++x) {
                double torso = 200.0 * std::exp(-((x - cx) * (x - cx) +
                                                  (y - cy) * (y - cy)) /
                                                (2 * 36.0));
                double hx = cx, hy = cy - 9.0;
                double head = 150.0 * std::exp(-((x - hx) * (x - hx) +
                                                 (y - hy) * (y - hy)) /
                                               (2 * 9.0));
                double noise = rng.uniform(0.0, 24.0);
                float pix = static_cast<float>(
                    std::min(255.0, torso + head + noise));
                mem.initFloat(frames_base + (f * kH + y) * kW + x, pix);
            }
        }
    }

    // Track: weighted centroid in a window around the last estimate.
    WorkloadResult res;
    double ex, ey;
    truth(0, ex, ey); // initialized from frame 0's detection below
    for (unsigned f = 0; f < kFrames; ++f) {
        int x0 = std::max(0, static_cast<int>(ex) - kWindow);
        int x1 = std::min<int>(kW - 1, static_cast<int>(ex) + kWindow);
        int y0 = std::max(0, static_cast<int>(ey) - kWindow);
        int y1 = std::min<int>(kH - 1, static_cast<int>(ey) + kWindow);
        double wsum = 0.0, xsum = 0.0, ysum = 0.0;
        for (int y = y0; y <= y1; ++y) {
            // Rows are partitioned across cores, as the benchmark
            // splits the per-particle likelihood evaluations.
            unsigned core = static_cast<unsigned>(y % cores);
            for (int x = x0; x <= x1; ++x) {
                float pix = mem.loadFloat(
                    core, frames_base + (f * kH + y) * kW + x);
                double w = std::max(0.0f, pix - 60.0f); // background cut
                wsum += w;
                xsum += w * x;
                ysum += w * y;
            }
        }
        if (wsum > 0) {
            ex = xsum / wsum;
            ey = ysum / wsum;
        }
        res.output.push_back(ex);
        res.output.push_back(ey);
        mem.barrier();
    }

    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

std::vector<std::uint8_t>
BodytrackWorkload::renderOutput(const WorkloadResult &r) const
{
    std::vector<std::uint8_t> img(kW * kH, 0);
    auto splat = [&](double cx, double cy, double sigma2, double gain) {
        for (unsigned y = 0; y < kH; ++y)
            for (unsigned x = 0; x < kW; ++x) {
                double v = gain * std::exp(-((x - cx) * (x - cx) +
                                             (y - cy) * (y - cy)) /
                                           (2 * sigma2));
                double cur = img[y * kW + x];
                img[y * kW + x] =
                    static_cast<std::uint8_t>(std::min(255.0, cur + v));
            }
    };
    for (std::size_t f = 0; 2 * f + 1 < r.output.size(); ++f) {
        double cx = r.output[2 * f], cy = r.output[2 * f + 1];
        splat(cx, cy, 36.0, 120.0);
        splat(cx, cy - 9.0, 9.0, 90.0);
    }
    return img;
}

} // namespace approxnoc
