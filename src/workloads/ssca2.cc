/**
 * @file
 * SSCA2 betweenness centrality: an R-MAT small-world graph (the
 * benchmark's own generator family, also behind the SNAP graphs the
 * paper samples) and weight-scaled Brandes' dependency accumulation
 * over every source. Graph structure (CSR arrays) stays precise; the
 * floating-point pair-wise dependencies (delta), the edge weights (the
 * "weights in graphs" data segment the paper calls out) and the
 * centrality scores are approximable (Sec. 5.1).
 */
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

WorkloadResult
Ssca2Workload::run(ApproxCacheSystem &mem)
{
    const std::size_t n = 256 * scale_;
    const std::size_t m_target = n * 8;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    // R-MAT edge generation (a=0.57, b=0.19, c=0.19, d=0.05).
    std::vector<std::vector<std::size_t>> adj_list(n);
    unsigned levels = 0;
    while ((1ull << levels) < n)
        ++levels;
    for (std::size_t e = 0; e < m_target; ++e) {
        std::size_t u = 0, v = 0;
        for (unsigned l = 0; l < levels; ++l) {
            double r = rng.uniform();
            unsigned quad = r < 0.57 ? 0 : r < 0.76 ? 1 : r < 0.95 ? 2 : 3;
            u = (u << 1) | (quad >> 1);
            v = (v << 1) | (quad & 1);
        }
        if (u == v || u >= n || v >= n)
            continue;
        adj_list[u].push_back(v);
        adj_list[v].push_back(u);
    }

    // CSR arrays in simulated memory (precise).
    std::size_t m_total = 0;
    for (const auto &a : adj_list)
        m_total += a.size();
    std::size_t xadj = mem.alloc(n + 1, "xadj");
    std::size_t adjn = mem.alloc(m_total, "adj");
    std::size_t wgt = mem.alloc(m_total, "weights");
    std::size_t bc = mem.alloc(n, "bc");
    mem.annotate(wgt, m_total, DataType::Float32);
    // Per-core scratch: sigma / dist (precise), delta (approximable).
    std::size_t sigma = mem.alloc(cores * n, "sigma");
    std::size_t dist = mem.alloc(cores * n, "dist");
    std::size_t delta = mem.alloc(cores * n, "delta");
    std::size_t bc_part = mem.alloc(cores * n, "bc_partial");
    mem.annotate(delta, cores * n, DataType::Float32);
    mem.annotate(bc, n, DataType::Float32);
    mem.annotate(bc_part, cores * n, DataType::Float32);

    std::size_t off = 0;
    for (std::size_t u = 0; u < n; ++u) {
        mem.initInt(xadj + u, static_cast<std::int32_t>(off));
        for (std::size_t v : adj_list[u]) {
            // Quantized edge weights: the "weights in graphs" data
            // segment the paper singles out as approximable.
            double w = 0.25 * static_cast<double>(1 + rng.next(16));
            mem.initFloat(wgt + off, static_cast<float>(w));
            mem.initInt(adjn + off++, static_cast<std::int32_t>(v));
        }
    }
    mem.initInt(xadj + n, static_cast<std::int32_t>(off));
    for (std::size_t i = 0; i < cores * n; ++i)
        mem.initFloat(bc_part + i, 0.0f);
    for (std::size_t v = 0; v < n; ++v)
        mem.initFloat(bc + v, 0.0f);

    // Brandes: sources partitioned across cores.
    for (std::size_t s = 0; s < n; ++s) {
        unsigned core = static_cast<unsigned>(s % cores);
        std::size_t base = static_cast<std::size_t>(core) * n;

        for (std::size_t v = 0; v < n; ++v) {
            mem.storeInt(core, sigma + base + v, 0);
            mem.storeInt(core, dist + base + v, -1);
            mem.storeFloat(core, delta + base + v, 0.0f);
        }
        mem.storeInt(core, sigma + base + s, 1);
        mem.storeInt(core, dist + base + s, 0);

        // BFS (the traversal stack lives in core-local storage).
        std::vector<std::size_t> order;
        std::vector<std::size_t> queue = {s};
        order.reserve(n);
        while (!queue.empty()) {
            std::vector<std::size_t> next;
            for (std::size_t u : queue) {
                order.push_back(u);
                auto beg = static_cast<std::size_t>(
                    mem.loadInt(core, xadj + u));
                auto end = static_cast<std::size_t>(
                    mem.loadInt(core, xadj + u + 1));
                std::int32_t du = mem.loadInt(core, dist + base + u);
                std::int32_t su = mem.loadInt(core, sigma + base + u);
                for (std::size_t p = beg; p < end; ++p) {
                    auto v = static_cast<std::size_t>(
                        mem.loadInt(core, adjn + p));
                    std::int32_t dv = mem.loadInt(core, dist + base + v);
                    if (dv < 0) {
                        mem.storeInt(core, dist + base + v, du + 1);
                        next.push_back(v);
                        dv = du + 1;
                    }
                    if (dv == du + 1) {
                        mem.storeInt(core, sigma + base + v,
                                     mem.loadInt(core, sigma + base + v) +
                                         su);
                    }
                }
            }
            queue = std::move(next);
        }

        // Dependency accumulation in reverse BFS order.
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            std::size_t u = *it;
            auto beg = static_cast<std::size_t>(mem.loadInt(core, xadj + u));
            auto end =
                static_cast<std::size_t>(mem.loadInt(core, xadj + u + 1));
            std::int32_t du = mem.loadInt(core, dist + base + u);
            double su = mem.loadInt(core, sigma + base + u);
            double del_u = mem.loadFloat(core, delta + base + u);
            for (std::size_t p = beg; p < end; ++p) {
                auto v =
                    static_cast<std::size_t>(mem.loadInt(core, adjn + p));
                if (mem.loadInt(core, dist + base + v) == du + 1) {
                    double sv = mem.loadInt(core, sigma + base + v);
                    if (sv > 0) {
                        double dv = mem.loadFloat(core, delta + base + v);
                        double w = mem.loadFloat(core, wgt + p);
                        del_u += w * (su / sv) * (1.0 + dv);
                    }
                }
            }
            mem.storeFloat(core, delta + base + u,
                           static_cast<float>(del_u));
            if (u != s) {
                float cur = mem.loadFloat(core, bc_part + base + u);
                mem.storeFloat(core, bc_part + base + u,
                               static_cast<float>(cur + del_u));
            }
        }
    }
    mem.barrier();

    // Reduce per-core partials (core 0).
    for (std::size_t v = 0; v < n; ++v) {
        double sum = 0.0;
        for (unsigned c = 0; c < cores; ++c)
            sum += mem.loadFloat(0, bc_part + static_cast<std::size_t>(c) * n + v);
        mem.storeFloat(0, bc + v, static_cast<float>(sum));
    }
    mem.barrier();

    WorkloadResult res;
    res.output.reserve(n);
    for (std::size_t v = 0; v < n; ++v)
        res.output.push_back(mem.peekFloat(bc + v));
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

} // namespace approxnoc
