/**
 * @file
 * Lloyd-style k-median clustering over a synthetic point stream. The
 * point coordinates and center coordinates are approximable Float32;
 * assignments are recomputed from (possibly approximated) coordinates
 * each iteration, which is exactly how approximation shifts centers in
 * the paper's discussion of streamcluster's output error.
 */
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

WorkloadResult
StreamclusterWorkload::run(ApproxCacheSystem &mem)
{
    const std::size_t n = 1024 * scale_;
    const std::size_t dim = 8;
    const std::size_t k = 8;
    const unsigned iters = 4;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    std::size_t pts = mem.alloc(n * dim, "points");
    std::size_t ctr = mem.alloc(k * dim, "centers");
    std::size_t asn = mem.alloc(n, "assignment");
    mem.annotate(pts, n * dim, DataType::Float32);
    mem.annotate(ctr, k * dim, DataType::Float32);

    // Gaussian blobs around k true centers.
    std::vector<std::vector<double>> true_ctr(k, std::vector<double>(dim));
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dim; ++d)
            true_ctr[c][d] = rng.uniform(-50, 50);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t c = rng.next(k);
        for (std::size_t d = 0; d < dim; ++d) {
            // Sensor-style quantization (0.25 steps): real streaming
            // point data repeats coordinate values heavily.
            double v = true_ctr[c][d] + rng.gaussian(0.0, 4.0);
            mem.initFloat(pts + i * dim + d,
                          static_cast<float>(std::round(v * 4.0) / 4.0));
        }
    }
    // Initial centers: the first k points.
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dim; ++d)
            mem.initFloat(ctr + c * dim + d,
                          mem.peekFloat(pts + c * dim + d));

    double cost = 0.0;
    for (unsigned it = 0; it < iters; ++it) {
        // Assign phase (parallel over points).
        cost = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            unsigned core = static_cast<unsigned>(i % cores);
            double best = 0.0;
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                double d2 = 0.0;
                for (std::size_t d = 0; d < dim; ++d) {
                    double diff = mem.loadFloat(core, pts + i * dim + d) -
                                  mem.loadFloat(core, ctr + c * dim + d);
                    d2 += diff * diff;
                }
                if (c == 0 || d2 < best) {
                    best = d2;
                    best_c = c;
                }
            }
            mem.storeInt(core, asn + i, static_cast<std::int32_t>(best_c));
            cost += std::sqrt(best);
        }
        mem.barrier();

        // Update phase (core 0 gathers; the paper's kernel does a
        // similar serial consolidation between parallel passes).
        std::vector<std::vector<double>> sum(k, std::vector<double>(dim, 0));
        std::vector<std::size_t> cnt(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            auto c = static_cast<std::size_t>(mem.loadInt(0, asn + i));
            if (c >= k)
                c = 0; // safety under approximation (should not happen)
            ++cnt[c];
            for (std::size_t d = 0; d < dim; ++d)
                sum[c][d] += mem.loadFloat(0, pts + i * dim + d);
        }
        for (std::size_t c = 0; c < k; ++c)
            if (cnt[c] > 0)
                for (std::size_t d = 0; d < dim; ++d)
                    mem.storeFloat(0, ctr + c * dim + d,
                                   static_cast<float>(
                                       sum[c][d] /
                                       static_cast<double>(cnt[c])));
        mem.barrier();
    }

    WorkloadResult res;
    res.output.push_back(cost / static_cast<double>(n));
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dim; ++d)
            res.output.push_back(mem.peekFloat(ctr + c * dim + d));
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

double
StreamclusterWorkload::outputError(const WorkloadResult &precise,
                                   const WorkloadResult &approx) const
{
    // Clustering quality: relative cost difference plus the mean
    // center displacement normalized by the data spread (centers can
    // swap labels, so match each precise center to its nearest).
    double cost_err =
        precise.output[0] != 0.0
            ? std::min(1.0, std::fabs(approx.output[0] - precise.output[0]) /
                                precise.output[0])
            : 0.0;

    const std::size_t dim = 8, k = 8;
    double disp = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        double best = -1.0;
        for (std::size_t c2 = 0; c2 < k; ++c2) {
            double d2 = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                double diff = precise.output[1 + c * dim + d] -
                              approx.output[1 + c2 * dim + d];
                d2 += diff * diff;
            }
            if (best < 0 || d2 < best)
                best = d2;
        }
        disp += std::sqrt(best);
    }
    disp /= static_cast<double>(k) * 100.0; // spread of the data is ~100
    return std::min(1.0, 0.5 * cost_err + 0.5 * disp);
}

} // namespace approxnoc
