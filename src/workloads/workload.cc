#include "workloads/workload.h"

#include <cmath>

#include "common/log.h"
#include "workloads/kernels.h"

namespace approxnoc {

double
mean_relative_output_error(const std::vector<double> &precise,
                           const std::vector<double> &approx)
{
    ANOC_ASSERT(precise.size() == approx.size(),
                "output vector size mismatch");
    if (precise.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < precise.size(); ++i) {
        double p = precise[i], a = approx[i];
        double err;
        if (!std::isfinite(p) || !std::isfinite(a))
            err = (std::isfinite(p) == std::isfinite(a)) ? 0.0 : 1.0;
        else if (p == 0.0)
            err = a == 0.0 ? 0.0 : 1.0;
        else
            err = std::min(1.0, std::fabs(a - p) / std::fabs(p));
        sum += err;
    }
    return sum / static_cast<double>(precise.size());
}

double
Workload::outputError(const WorkloadResult &precise,
                      const WorkloadResult &approx) const
{
    return mean_relative_output_error(precise.output, approx.output);
}

std::unique_ptr<Workload>
make_workload(const std::string &name, unsigned scale, std::uint64_t seed)
{
    if (name == "blackscholes")
        return std::make_unique<BlackscholesWorkload>(scale, seed);
    if (name == "bodytrack")
        return std::make_unique<BodytrackWorkload>(scale, seed);
    if (name == "canneal")
        return std::make_unique<CannealWorkload>(scale, seed);
    if (name == "fluidanimate")
        return std::make_unique<FluidanimateWorkload>(scale, seed);
    if (name == "streamcluster")
        return std::make_unique<StreamclusterWorkload>(scale, seed);
    if (name == "swaptions")
        return std::make_unique<SwaptionsWorkload>(scale, seed);
    if (name == "x264")
        return std::make_unique<X264Workload>(scale, seed);
    if (name == "ssca2")
        return std::make_unique<Ssca2Workload>(scale, seed);
    ANOC_FATAL("unknown workload '", name, "'");
}

const std::vector<std::string> &
workload_names()
{
    static const std::vector<std::string> names = {
        "blackscholes", "bodytrack",     "canneal",   "fluidanimate",
        "streamcluster", "swaptions",    "x264",      "ssca2",
    };
    return names;
}

} // namespace approxnoc
