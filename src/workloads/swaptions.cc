/**
 * @file
 * Monte-Carlo swaption pricing. The real PARSEC benchmark simulates
 * HJM forward-rate paths; this substitute prices payer swaptions under
 * a one-factor mean-reverting short-rate model driven by a precomputed
 * table of Gaussian shocks. The shock table and the price outputs are
 * the approximable float regions — they dominate the data traffic just
 * as the HJM path state does in the original.
 */
#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workloads/kernels.h"

namespace approxnoc {

WorkloadResult
SwaptionsWorkload::run(ApproxCacheSystem &mem)
{
    const std::size_t n_swaptions = 16 * scale_;
    const std::size_t n_paths = 128;
    const std::size_t n_steps = 8;
    const unsigned cores = mem.config().n_cores;
    Rng rng(seed_);

    const std::size_t shocks_n = n_swaptions * n_paths * n_steps;
    std::size_t shocks = mem.alloc(shocks_n, "shocks");
    std::size_t params = mem.alloc(n_swaptions * 4, "params");
    std::size_t out = mem.alloc(n_swaptions, "prices");
    mem.annotate(shocks, shocks_n, DataType::Float32);
    mem.annotate(params, n_swaptions * 4, DataType::Float32);
    mem.annotate(out, n_swaptions, DataType::Float32);

    // Quantized Gaussian shocks (as a table-driven RNG would produce):
    // discrete values repeat across paths, giving the value locality
    // real HJM path state exhibits. 1/256 steps keep mantissas short
    // but not so short that everything compresses exactly.
    for (std::size_t i = 0; i < shocks_n; ++i) {
        double z = rng.gaussian(0.0, 1.0);
        mem.initFloat(shocks + i,
                      static_cast<float>(std::round(z * 256.0) / 256.0));
    }
    for (std::size_t s = 0; s < n_swaptions; ++s) {
        mem.initFloat(params + s * 4 + 0,
                      static_cast<float>(rng.uniform(0.02, 0.06))); // r0
        mem.initFloat(params + s * 4 + 1,
                      static_cast<float>(rng.uniform(0.02, 0.06))); // strike
        mem.initFloat(params + s * 4 + 2,
                      static_cast<float>(rng.uniform(0.1, 0.5))); // kappa
        mem.initFloat(params + s * 4 + 3,
                      static_cast<float>(rng.uniform(0.005, 0.02))); // sigma
    }

    const double dt = 0.25;
    for (std::size_t s = 0; s < n_swaptions; ++s) {
        unsigned core = static_cast<unsigned>(s % cores);
        double r0 = mem.loadFloat(core, params + s * 4 + 0);
        double strike = mem.loadFloat(core, params + s * 4 + 1);
        double kappa = mem.loadFloat(core, params + s * 4 + 2);
        double sigma = mem.loadFloat(core, params + s * 4 + 3);
        const double theta = 0.045;

        double sum = 0.0;
        for (std::size_t p = 0; p < n_paths; ++p) {
            double r = r0;
            double discount = 1.0;
            for (std::size_t t = 0; t < n_steps; ++t) {
                double z = mem.loadFloat(
                    core, shocks + (s * n_paths + p) * n_steps + t);
                r += kappa * (theta - r) * dt +
                     sigma * std::sqrt(dt) * z;
                discount *= std::exp(-std::max(r, 0.0) * dt);
            }
            sum += discount * std::max(r - strike, 0.0);
        }
        mem.storeFloat(core, out + s,
                       static_cast<float>(sum / static_cast<double>(n_paths)));
    }
    mem.barrier();

    WorkloadResult res;
    for (std::size_t s = 0; s < n_swaptions; ++s)
        res.output.push_back(mem.peekFloat(out + s));
    res.exec_cycles = mem.executionCycles();
    res.miss_rate = mem.missRate();
    return res;
}

} // namespace approxnoc
