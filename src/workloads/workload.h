/**
 * @file
 * Workload kernels standing in for the paper's PARSEC (simlarge) and
 * SSCA2 benchmarks (Sec. 5.1/5.4). Each kernel implements the same
 * algorithm the benchmark's region of interest runs, at reduced scale,
 * reading and writing its main data through an ApproxCacheSystem so
 * approximated NoC response data is actually consumed by the
 * computation. Approximable regions are annotated programmatically —
 * the role hand annotation plays in the paper — and each workload
 * defines the application-specific output-accuracy metric the paper's
 * Fig. 16 reports.
 */
#ifndef APPROXNOC_WORKLOADS_WORKLOAD_H
#define APPROXNOC_WORKLOADS_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "cache/approx_cache.h"
#include "common/types.h"

namespace approxnoc {

/** Outcome of one workload run. */
struct WorkloadResult {
    /** The application output vector (metric-specific meaning). */
    std::vector<double> output;
    /** Execution time estimate from the cache system. */
    Cycle exec_cycles = 0;
    /** L1 miss rate observed. */
    double miss_rate = 0.0;
};

/** A benchmark kernel. Deterministic for a fixed (name, scale, seed). */
class Workload
{
  public:
    explicit Workload(unsigned scale = 1, std::uint64_t seed = 12345)
        : scale_(scale), seed_(seed)
    {}
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Benchmark name as the paper spells it. */
    virtual std::string name() const = 0;

    /** Run the kernel on @p mem (allocates, annotates, computes). */
    virtual WorkloadResult run(ApproxCacheSystem &mem) = 0;

    /**
     * Application output error of @p approx against @p precise in
     * [0, 1]. Default: mean relative difference over the output
     * vector, the paper's generic accuracy metric.
     */
    virtual double outputError(const WorkloadResult &precise,
                               const WorkloadResult &approx) const;

  protected:
    unsigned scale_;
    std::uint64_t seed_;
};

/** Mean relative elementwise difference, clamped to [0, 1]. */
double mean_relative_output_error(const std::vector<double> &precise,
                                  const std::vector<double> &approx);

/**
 * Build a workload by paper name: blackscholes, bodytrack, canneal,
 * fluidanimate, streamcluster, swaptions, x264, ssca2.
 * @param scale >= 1 multiplies the problem size.
 */
std::unique_ptr<Workload> make_workload(const std::string &name,
                                        unsigned scale = 1,
                                        std::uint64_t seed = 12345);

/** All eight benchmark names in the paper's plotting order. */
const std::vector<std::string> &workload_names();

} // namespace approxnoc

#endif // APPROXNOC_WORKLOADS_WORKLOAD_H
