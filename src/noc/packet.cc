#include "noc/packet.h"

namespace approxnoc {

unsigned
payload_flits(std::size_t bits, unsigned flit_bits)
{
    if (bits == 0)
        return 0;
    return static_cast<unsigned>((bits + flit_bits - 1) / flit_bits);
}

} // namespace approxnoc
