/**
 * @file
 * Input-buffered virtual-channel wormhole router with a three-stage
 * pipeline (paper Table 1). Flits become eligible for switch traversal
 * (router_stages - 1) cycles after buffer write, modelling BW/RC and
 * VA/SA; ST+LT moves them to the next hop in one cycle, so the
 * zero-load per-hop latency is router_stages cycles.
 *
 * Credit-based flow control: the upstream side of every link owns the
 * credit counters and the VC allocation state of the downstream input
 * buffer, which is the conventional arrangement.
 */
#ifndef APPROXNOC_NOC_ROUTER_H
#define APPROXNOC_NOC_ROUTER_H

#include <deque>
#include <functional>
#include <vector>

#include "common/contract.h"
#include "common/types.h"
#include "noc/noc_config.h"
#include "noc/packet.h"
#include "sim/clocked.h"
#include "telemetry/packet_tracer.h"

namespace approxnoc {

class NetworkInterface;

/** Anything that owns an output link and its credits (router or NI). */
class FlitSource
{
  public:
    virtual ~FlitSource() = default;
    /** Downstream returns one credit for (our output port, vc). */
    virtual void creditReturn(unsigned out_port, unsigned vc) = 0;
    /** Region tag of this source under region-parallel stepping
     *  (-1 = untagged / serial). Routers and NIs forward their
     *  Clocked::regionTag so a downstream router can tell whether a
     *  credit return would cross a region boundary. */
    virtual int sourceRegion() const { return -1; }
};

/** The router proper. */
class Router : public Clocked, public FlitSource
{
  public:
    ANOC_ISOLATION_CONTRACT(region_isolation);

    /**
     * Computes the allowed output ports for a packet at this router,
     * in preference order. Deterministic algorithms return one entry;
     * partially adaptive ones return several and the router picks the
     * least congested (most downstream credits) at route-compute time.
     */
    using RouteFn =
        std::function<std::vector<unsigned>(RouterId, const Packet &)>;

    Router(RouterId id, const NocConfig &cfg, RouteFn route);

    RouterId id() const { return id_; }
    unsigned numPorts() const { return n_ports_; }

    /** @name Wiring (done once by the Network builder) */
    ///@{
    /** Connect output @p out_port to @p peer's input @p peer_in_port. */
    void connectOutput(unsigned out_port, Router *peer, unsigned peer_in_port);
    /** Make output @p out_port an ejection port into @p ni. */
    void connectEjection(unsigned out_port, NetworkInterface *ni);
    /** Record who feeds input @p in_port (for credit returns). */
    void connectInput(unsigned in_port, FlitSource *up, unsigned up_port);

    /**
     * Tag a link for dateline VC management (torus): @p out_port
     * travels dimension @p dim (0 = X, 1 = Y) and @p wrap marks the
     * wrap-around link; the matching downstream input is tagged too.
     * Enables class-aware VC allocation on this router.
     */
    void setLinkInfo(unsigned out_port, unsigned dim, bool wrap);
    ///@}

    /** @name Link interface (called by the upstream's advance phase) */
    ///@{
    /** Deposit a flit into input buffer (in_port, vc). Must have space. */
    void acceptFlit(unsigned in_port, unsigned vc, Flit f);
    void creditReturn(unsigned out_port, unsigned vc) override;
    ///@}

    int sourceRegion() const override { return regionTag(); }

    /**
     * Apply flit handoffs and credit returns this router's advance()
     * deferred because they targeted another region. Called serially
     * (post-advance barrier) in ascending router order, which
     * reproduces the serial sweep's effect exactly: per-queue pushes
     * are at most one per cycle and credit increments commute.
     */
    void flushDeferred();

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** Total buffered flits (drain detection). */
    std::size_t occupancy() const;

    /** @name Activity counters (power model / watchdog) */
    ///@{
    std::uint64_t flitsForwarded() const { return flits_forwarded_; }
    std::uint64_t bufferWrites() const { return buffer_writes_; }
    std::uint64_t vcAllocations() const { return vc_allocs_; }
    std::uint64_t linkTraversals() const { return link_traversals_; }
    /** Cycles a head flit wanted a downstream VC and none was free. */
    std::uint64_t vcStalls() const { return vc_stalls_; }
    ///@}

    /**
     * Attach a lifecycle tracer (null detaches). The router emits
     * per-head-flit "vc_alloc" and "hop" instants on its own track;
     * when detached the hooks cost one null check each.
     */
    void bindTracer(telemetry::PacketTracer *t) { tracer_ = t; }

  private:
    struct VcBuf {
        std::deque<Flit> q;
        int route = -1;  ///< output port of the packet at the head
        int out_vc = -1; ///< downstream VC allocated to that packet
    };
    /** Dimension tag for local/injection ports. */
    static constexpr unsigned kDimLocal = 0xFF;

    struct InPort {
        std::vector<VcBuf> vcs;
        FlitSource *up = nullptr;
        unsigned up_port = 0;
        unsigned dim = kDimLocal;
    };
    struct OutPort {
        Router *peer = nullptr;
        unsigned peer_port = 0;
        NetworkInterface *ni = nullptr;
        std::vector<bool> vc_busy;
        std::vector<unsigned> credits;
        unsigned dim = kDimLocal;
        bool wrap = false;

        bool isEjection() const { return ni != nullptr; }
        bool connected() const { return peer != nullptr || ni != nullptr; }
    };
    struct Grant {
        int in_port = -1;
        int vc = -1;
        bool valid() const { return in_port >= 0; }
    };

    ANOC_REGION_SHARED RouterId id_;
    ANOC_REGION_SHARED NocConfig cfg_;
    ANOC_REGION_SHARED RouteFn route_;
    ANOC_REGION_SHARED unsigned n_ports_;

    /** Pipeline state is written only by this router's own
     * evaluate/advance, i.e. only by the region that owns it; peers
     * deposit flits/credits via acceptFlit/creditReturn, which the
     * upstream router calls in-region or defers (flushDeferred). */
    ANOC_SHARD_LOCAL std::vector<InPort> in_;
    ANOC_SHARD_LOCAL std::vector<OutPort> out_;
    ANOC_SHARD_LOCAL std::vector<Grant> grants_; ///< per output port, recomputed each cycle

    /** Downstream VC class a flit may allocate (dateline discipline). */
    int allowedVcClass(const InPort &in, unsigned in_vc,
                       const OutPort &out) const;

    /** Resolve the route candidates to one output port (adaptive). */
    unsigned selectRoute(const Packet &pkt) const;

    ANOC_SHARD_LOCAL unsigned rr_in_ = 0; ///< round-robin pointer over input ports
    ANOC_SHARD_LOCAL std::vector<unsigned> rr_vc_; ///< per-input round-robin over VCs
    ANOC_REGION_SHARED bool class_aware_ = false; ///< any link tagged => dateline VCs on

    /** Cross-region outboxes (see flushDeferred). The vectors keep
     *  their capacity across cycles, so steady state never allocates. */
    struct DeferredFlit {
        Router *peer;
        unsigned port;
        unsigned vc;
        Flit f;
    };
    struct DeferredCredit {
        FlitSource *up;
        unsigned port;
        unsigned vc;
    };
    ANOC_SHARD_LOCAL std::vector<DeferredFlit> defer_flits_;
    ANOC_SHARD_LOCAL std::vector<DeferredCredit> defer_credits_;

    ANOC_SHARD_LOCAL std::uint64_t flits_forwarded_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t buffer_writes_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t vc_allocs_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t link_traversals_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t vc_stalls_ = 0;

    ANOC_REGION_SHARED telemetry::PacketTracer *tracer_ = nullptr;
};

} // namespace approxnoc

#endif // APPROXNOC_NOC_ROUTER_H
