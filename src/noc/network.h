/**
 * @file
 * The assembled NoC: a (concentrated) 2D mesh of routers with one NI
 * per endpoint, XY routing, the codec plugged into every NI, and
 * network-wide statistics (latency breakdown, flit counts, quality).
 */
#ifndef APPROXNOC_NOC_NETWORK_H
#define APPROXNOC_NOC_NETWORK_H

#include <memory>
#include <ostream>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "compression/codec.h"
#include "core/quality.h"
#include "noc/network_interface.h"
#include "noc/noc_config.h"
#include "noc/packet.h"
#include "noc/router.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace approxnoc {

/** Aggregated end-to-end statistics for one simulation. */
struct NetworkStats {
    RunningStat queue_lat;  ///< NI enqueue -> head injection
    RunningStat net_lat;    ///< head injection -> tail ejection
    RunningStat decode_lat; ///< ejection -> decompression done
    RunningStat total_lat;  ///< the paper's average packet latency
    RunningStat data_total_lat; ///< data packets only
    RunningStat hops;       ///< routers traversed per packet
    Histogram total_lat_hist{4.0, 128}; ///< 4-cycle buckets to 512+
    Counter packets_delivered;
    Counter data_packets_delivered;
    Counter notification_packets;
    QualityTracker quality;

    /** Latency below which 99% of packets completed. */
    double p99Latency() const { return total_lat_hist.percentile(0.99); }

    /** Clear every series/counter: starts a fresh measurement window
     * (BookSim-style warmup/measure methodology). */
    void reset();
};

/** The network. Owns routers and NIs; the codec is borrowed. */
class Network : public Clocked
{
  public:
    /**
     * @param cfg topology and router parameters.
     * @param codec the compression/approximation system all NIs share.
     * @param model_notifications inject a 1-flit control packet per
     *        dictionary update notification (charges their cost).
     */
    Network(const NocConfig &cfg, CodecSystem *codec,
            bool model_notifications = true);

    /** Register every component with @p sim. Call once. */
    void attach(Simulator &sim);

    /**
     * Partition this network's routers and NIs into topology-aware
     * regions and install the plan on @p sim for region-parallel
     * stepping (see sim/region_scheduler.h for the phase structure
     * and the component isolation contract).
     *
     * Rows are striped across `min(sim_jobs, rows)` regions (row
     * `row` lands in region `row * R / rows`), each NI grouped with
     * its router, so only north/south links (and torus column wraps)
     * ever cross a region boundary. Cross-region flit handoffs and
     * credit returns are deferred by the routers and flushed serially
     * after the advance barrier in ascending router order; delivery
     * callbacks are buffered per region and replayed in ascending
     * region order — both replays reproduce the serial sweep order
     * exactly, so metrics.json / qor.json / traces stay
     * byte-identical at any job count.
     *
     * Call after attach(sim) and after the codec/telemetry setup;
     * components registered later simply join the serial tail.
     * `sim_jobs == 0` resolves to the hardware concurrency.
     *
     * Determinism caveat (traces): PacketTracer output is a canonical
     * sort of the recorded event multiset, so it is byte-identical
     * across job counts while the tracer stays below its max_events
     * cap; at the cap, *which* events were dropped may differ.
     *
     * Codec requirement: dictionary-style codecs must use
     * `notify_delay >= 1` (the default is 20) so no decoder-issued
     * update is applied in the same cycle it was produced — the
     * parallel schedule moves serial-context encodes after the
     * cycle's decodes.
     *
     * @return the region count actually installed; 1 means serial
     *         fallback (no plan installed, nothing changes).
     */
    unsigned enableRegionParallel(Simulator &sim, unsigned sim_jobs);

    const NocConfig &config() const { return cfg_; }
    CodecSystem &codec() { return *codec_; }
    const CodecSystem &codec() const { return *codec_; }

    /** The codec's hardware activity counters (power model input). */
    CodecActivity codecActivity() const { return codec_->activity(); }

    NetworkInterface &ni(NodeId n) { return *nis_[n]; }
    Router &router(RouterId r) { return *routers_[r]; }

    /** Build a 1-flit control packet. */
    PacketPtr makeControlPacket(NodeId src, NodeId dst);
    /** Build a data packet carrying @p block (encoded at enqueue). */
    PacketPtr makeDataPacket(NodeId src, NodeId dst, DataBlock block);

    /** Enqueue at the source NI (convenience). */
    void inject(const PacketPtr &pkt, Cycle now);

    /**
     * Additional per-delivery hook for traffic layers (stats are
     * recorded regardless).
     */
    void setDeliveryCallback(NetworkInterface::DeliveryFn fn);

    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }

    /** Total flits injected by all NIs. */
    std::uint64_t flitsInjected() const;
    /** Data-packet flits injected by all NIs (Fig. 11 metric). */
    std::uint64_t dataFlitsInjected() const;
    /** Sum of router buffered flits. */
    std::size_t routerOccupancy() const;
    /** Aggregate router activity, for the power model. */
    std::uint64_t routerBufferWrites() const;
    std::uint64_t routerLinkTraversals() const;
    std::uint64_t routerFlitsForwarded() const;

    /** True when no packet is queued, in flight or unreassembled. */
    bool drained() const;

    /**
     * Full simulation report: end-to-end latencies (with p50/p99),
     * per-router activity, per-NI injection counts, codec activity and
     * quality — the gem5-style end-of-run stats dump.
     */
    void dumpStats(std::ostream &os, Cycle elapsed) const;

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /**
     * Attach a telemetry bundle: routers and NIs get the tracer, the
     * codec gets its counters, the delivery path records the
     * approximation-error distribution, and (when sampling) the
     * network's occupancy/utilization/codec probes are registered.
     * Call before the run; everything stays null/off otherwise.
     */
    void bindTelemetry(telemetry::PointTelemetry &pt);

    /**
     * Attach the QoR error profile: forwarded to the codec, which
     * records one signed relative error per approximated word at
     * encode time. Call before bindTelemetry so the sampler (when
     * enabled) also gets live `qor.*` probes. Null detaches.
     */
    void bindErrorProfile(telemetry::ErrorProfile *qor);

    /**
     * Attach the self-profiler: forwarded to the codec
     * ("codec.apply_pending") and every NI ("ni.encode"/"ni.decode").
     * The Simulator's own bindProfiler covers the `sim.*` phases.
     */
    void bindProfiler(telemetry::PhaseProfiler *prof);

    /**
     * Export end-of-run state into @p reg: per-router and per-NI
     * activity counters, latency stats, codec activity and quality.
     * Pure pull — costs nothing during the run.
     */
    void collectTelemetry(telemetry::MetricRegistry &reg) const;

  private:
    std::vector<unsigned> routeFor(RouterId at, const Packet &pkt) const;
    void onDelivery(const PacketPtr &pkt, Cycle now);

    NocConfig cfg_;
    CodecSystem *codec_;
    bool model_notifications_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;

    NetworkStats stats_;
    NetworkInterface::DeliveryFn user_delivery_;

    /** Lifecycle tracer + error histogram, null unless bound. */
    telemetry::PacketTracer *tracer_ = nullptr;
    Histogram *err_hist_ = nullptr;
    /** QoR profile, null unless bound (see bindErrorProfile). */
    telemetry::ErrorProfile *qor_ = nullptr;

    std::uint64_t next_packet_id_ = 1;

    /** Deadlock watchdog. */
    std::uint64_t last_progress_count_ = 0;
    Cycle last_progress_cycle_ = 0;

    /** Region-parallel stepping state (see enableRegionParallel):
     *  deliveries completing inside a parallel advance are buffered
     *  per region and replayed serially after the barrier. */
    bool plan_active_ = false;
    std::vector<std::vector<std::pair<PacketPtr, Cycle>>>
        deferred_deliveries_;
};

} // namespace approxnoc

#endif // APPROXNOC_NOC_NETWORK_H
