#include "noc/network.h"

#include <algorithm>
#include <thread>

#include "common/log.h"
#include "sim/region_scheduler.h"
#include "telemetry/error_profile.h"
#include "telemetry/phase_profiler.h"

namespace approxnoc {

namespace {
/** Cycles without any flit movement (while loaded) before we panic. */
constexpr Cycle kDeadlockWindow = 50000;
} // namespace

void
NetworkStats::reset()
{
    queue_lat.reset();
    net_lat.reset();
    decode_lat.reset();
    total_lat.reset();
    data_total_lat.reset();
    hops.reset();
    total_lat_hist.reset();
    packets_delivered.reset();
    data_packets_delivered.reset();
    notification_packets.reset();
    quality.reset();
}

Network::Network(const NocConfig &cfg, CodecSystem *codec,
                 bool model_notifications)
    : Clocked("network"), cfg_(cfg), codec_(codec),
      model_notifications_(model_notifications)
{
    ANOC_ASSERT(codec != nullptr, "Network requires a codec");
    ANOC_ASSERT(cfg_.routing != RoutingAlgo::WestFirst ||
                    cfg_.topology == Topology::Mesh,
                "west-first turn-model routing is only valid on a mesh");

    auto route = [this](RouterId at, const Packet &p) {
        return routeFor(at, p);
    };

    routers_.reserve(cfg_.routers());
    for (RouterId r = 0; r < cfg_.routers(); ++r)
        routers_.push_back(std::make_unique<Router>(r, cfg_, route));

    // Mesh links: both directions of every edge.
    for (RouterId r = 0; r < cfg_.routers(); ++r) {
        unsigned row = cfg_.rowOf(r), col = cfg_.colOf(r);
        if (col + 1 < cfg_.cols) {
            RouterId e = r + 1;
            routers_[r]->connectOutput(kEast, routers_[e].get(), kWest);
            routers_[e]->connectOutput(kWest, routers_[r].get(), kEast);
        }
        if (row + 1 < cfg_.rows) {
            RouterId s = r + cfg_.cols;
            routers_[r]->connectOutput(kSouth, routers_[s].get(), kNorth);
            routers_[s]->connectOutput(kNorth, routers_[r].get(), kSouth);
        }
    }

    if (cfg_.topology == Topology::Torus) {
        ANOC_ASSERT(cfg_.vcs % 2 == 0,
                    "torus dateline VCs need an even VC count");
        // Wrap-around links closing every row and column ring.
        for (unsigned row = 0; row < cfg_.rows; ++row) {
            if (cfg_.cols < 2)
                break;
            RouterId first = row * cfg_.cols;
            RouterId last = first + cfg_.cols - 1;
            routers_[last]->connectOutput(kEast, routers_[first].get(),
                                          kWest);
            routers_[first]->connectOutput(kWest, routers_[last].get(),
                                           kEast);
        }
        for (unsigned col = 0; col < cfg_.cols; ++col) {
            if (cfg_.rows < 2)
                break;
            RouterId first = col;
            RouterId last = (cfg_.rows - 1) * cfg_.cols + col;
            routers_[last]->connectOutput(kSouth, routers_[first].get(),
                                          kNorth);
            routers_[first]->connectOutput(kNorth, routers_[last].get(),
                                           kSouth);
        }
        // Tag every link with its dimension; the wrap links are the
        // datelines of their rings.
        for (RouterId r = 0; r < cfg_.routers(); ++r) {
            unsigned row = cfg_.rowOf(r), col = cfg_.colOf(r);
            routers_[r]->setLinkInfo(kEast, 0, col + 1 == cfg_.cols);
            routers_[r]->setLinkInfo(kWest, 0, col == 0);
            routers_[r]->setLinkInfo(kSouth, 1, row + 1 == cfg_.rows);
            routers_[r]->setLinkInfo(kNorth, 1, row == 0);
        }
    }

    // NIs: one per endpoint, on its router's local port.
    nis_.reserve(cfg_.nodes());
    for (NodeId n = 0; n < cfg_.nodes(); ++n) {
        auto ni = std::make_unique<NetworkInterface>(n, cfg_, codec_);
        RouterId r = cfg_.routerOf(n);
        unsigned port = kLocalBase + cfg_.localPortOf(n);
        ni->connectInjection(routers_[r].get(), port);
        routers_[r]->connectEjection(port, ni.get());
        ni->setDeliveryCallback([this](const PacketPtr &p, Cycle now) {
            onDelivery(p, now);
        });
        nis_.push_back(std::move(ni));
    }
}

void
Network::attach(Simulator &sim)
{
    for (auto &ni : nis_)
        sim.add(ni.get());
    for (auto &r : routers_)
        sim.add(r.get());
    sim.add(this);
}

unsigned
Network::enableRegionParallel(Simulator &sim, unsigned sim_jobs)
{
    if (sim_jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        sim_jobs = hw ? hw : 1;
    }
    const unsigned rows = cfg_.rows;
    const unsigned regions = std::min(sim_jobs, rows);
    if (regions <= 1)
        return 1; // serial fallback: no plan, step() is unchanged

    // Row stripes: row -> region `row * regions / rows` gives
    // contiguous, near-equal stripes for any rows/regions ratio
    // (including the degenerate regions > rows case, clamped above).
    auto region_of_row = [&](unsigned row) {
        return static_cast<int>((row * regions) / rows);
    };

    RegionPlan plan;
    plan.regions.resize(regions);
    // NIs first, then routers, each ascending — the same relative
    // order they were registered in by attach(), which setRegionPlan
    // verifies and the serial replay relies on.
    for (auto &ni : nis_) {
        int reg = region_of_row(cfg_.rowOf(cfg_.routerOf(ni->nodeId())));
        ni->setRegionTag(reg);
        plan.regions[static_cast<std::size_t>(reg)].push_back(ni.get());
    }
    for (auto &r : routers_) {
        int reg = region_of_row(cfg_.rowOf(r->id()));
        r->setRegionTag(reg);
        plan.regions[static_cast<std::size_t>(reg)].push_back(r.get());
    }

    deferred_deliveries_.assign(regions, {});
    plan_active_ = true;
    plan.post_advance = [this](Cycle now) {
        // Cross-region flit handoffs and credit returns, ascending
        // router order (matches the serial sweep: per-queue pushes
        // are unique per cycle and credit increments commute).
        for (auto &r : routers_)
            r->flushDeferred();
        // Delivery replay in ascending region order. Regions are
        // ascending row stripes with routers ascending inside, and
        // deliveries only happen in router advances, so this
        // concatenation *is* the serial delivery order.
        for (auto &region : deferred_deliveries_) {
            for (auto &d : region)
                onDelivery(d.first, d.second);
            region.clear();
        }
        (void)now;
    };

    sim.setRegionPlan(std::move(plan), sim_jobs);
    return regions;
}

std::vector<unsigned>
Network::routeFor(RouterId at, const Packet &pkt) const
{
    RouterId dest = cfg_.routerOf(pkt.dst);
    if (at == dest)
        return {kLocalBase + cfg_.localPortOf(pkt.dst)};
    unsigned ac = cfg_.colOf(at), dc = cfg_.colOf(dest);
    unsigned ar = cfg_.rowOf(at), dr = cfg_.rowOf(dest);

    // Per-dimension direction choice: on the torus the shorter way
    // around the ring, on the mesh the only way.
    auto col_dir = [&]() -> unsigned {
        if (cfg_.topology == Topology::Torus) {
            unsigned fwd = (dc + cfg_.cols - ac) % cfg_.cols;
            return fwd <= cfg_.cols - fwd ? kEast : kWest;
        }
        return dc > ac ? kEast : kWest;
    };
    auto row_dir = [&]() -> unsigned {
        if (cfg_.topology == Topology::Torus) {
            unsigned fwd = (dr + cfg_.rows - ar) % cfg_.rows;
            return fwd <= cfg_.rows - fwd ? kSouth : kNorth;
        }
        return dr > ar ? kSouth : kNorth;
    };

    switch (cfg_.routing) {
      case RoutingAlgo::YX:
        if (dr != ar)
            return {row_dir()};
        return {col_dir()};
      case RoutingAlgo::WestFirst:
        // Turn model: any westward component is resolved first and
        // exclusively; afterwards east/north/south combine adaptively.
        if (dc < ac)
            return {kWest};
        if (dc > ac && dr != ar)
            return {kEast, dr > ar ? kSouth : kNorth};
        if (dc > ac)
            return {kEast};
        return {row_dir()};
      case RoutingAlgo::XY:
        break;
    }
    // XY (Table 1 default): resolve the column first.
    if (dc != ac)
        return {col_dir()};
    return {row_dir()};
}

PacketPtr
Network::makeControlPacket(NodeId src, NodeId dst)
{
    auto p = std::make_shared<Packet>();
    p->id = next_packet_id_++;
    p->src = src;
    p->dst = dst;
    p->cls = PacketClass::Control;
    return p;
}

PacketPtr
Network::makeDataPacket(NodeId src, NodeId dst, DataBlock block)
{
    auto p = std::make_shared<Packet>();
    p->id = next_packet_id_++;
    p->src = src;
    p->dst = dst;
    p->cls = PacketClass::Data;
    p->carries_block = true;
    p->precise = std::move(block);
    return p;
}

void
Network::inject(const PacketPtr &pkt, Cycle now)
{
    ANOC_ASSERT(pkt->src < cfg_.nodes() && pkt->dst < cfg_.nodes(),
                "packet endpoints out of range");
    ANOC_ASSERT(pkt->src != pkt->dst,
                "self-addressed packets never enter the network");
    nis_[pkt->src]->enqueue(pkt, now);
}

void
Network::setDeliveryCallback(NetworkInterface::DeliveryFn fn)
{
    user_delivery_ = std::move(fn);
}

void
Network::onDelivery(const PacketPtr &pkt, Cycle now)
{
    if (plan_active_) {
        // Inside a parallel advance, park the delivery in its
        // region's buffer: RunningStat accumulation is FP-order
        // sensitive and the user callback may inject. The
        // post-advance hook replays these serially in the exact
        // serial-sweep order (sim_current_region() < 0 then).
        int region = sim_current_region();
        if (region >= 0) {
            deferred_deliveries_[static_cast<std::size_t>(region)]
                .emplace_back(pkt, now);
            return;
        }
    }
    stats_.queue_lat.add(static_cast<double>(pkt->queueLatency()));
    stats_.net_lat.add(static_cast<double>(pkt->netLatency()));
    stats_.decode_lat.add(static_cast<double>(pkt->decodeLatency()));
    stats_.total_lat.add(static_cast<double>(pkt->totalLatency()));
    stats_.total_lat_hist.add(static_cast<double>(pkt->totalLatency()));
    {
        // Router hops on the dimension-ordered path, plus one for the
        // ejection router (torus: the shorter way around each ring).
        RouterId s = cfg_.routerOf(pkt->src), d = cfg_.routerOf(pkt->dst);
        unsigned dx = cfg_.colOf(s) > cfg_.colOf(d)
                          ? cfg_.colOf(s) - cfg_.colOf(d)
                          : cfg_.colOf(d) - cfg_.colOf(s);
        unsigned dy = cfg_.rowOf(s) > cfg_.rowOf(d)
                          ? cfg_.rowOf(s) - cfg_.rowOf(d)
                          : cfg_.rowOf(d) - cfg_.rowOf(s);
        if (cfg_.topology == Topology::Torus) {
            dx = std::min(dx, cfg_.cols - dx);
            dy = std::min(dy, cfg_.rows - dy);
        }
        stats_.hops.add(static_cast<double>(dx + dy + 1));
    }
    stats_.packets_delivered.inc();
    if (pkt->cls == PacketClass::Data) {
        stats_.data_packets_delivered.inc();
        stats_.data_total_lat.add(static_cast<double>(pkt->totalLatency()));
    }
    if (pkt->carries_block) {
        stats_.quality.record(pkt->precise, pkt->enc, pkt->delivered);
        if (err_hist_)
            err_hist_->add(block_relative_error(pkt->precise,
                                                pkt->delivered));
    }
    if (tracer_) {
        // Reconstruct the packet's lifecycle spans from its timestamps:
        // queue+encode at the source, decode at the destination. The
        // trace writer re-sorts per track, so recording at delivery
        // time still yields monotonic tracks.
        const std::string args = "{\"pkt\": " + std::to_string(pkt->id) +
                                 ", \"src\": " + std::to_string(pkt->src) +
                                 ", \"dst\": " + std::to_string(pkt->dst) +
                                 "}";
        using telemetry::PacketTracer;
        tracer_->span(PacketTracer::nodeTrack(pkt->src), "queue+encode",
                      pkt->created, pkt->queueLatency(), args);
        tracer_->span(PacketTracer::nodeTrack(pkt->dst), "network",
                      pkt->inject_start, pkt->netLatency(), args);
        if (pkt->decode_done > pkt->eject_done)
            tracer_->span(PacketTracer::nodeTrack(pkt->dst), "decode",
                          pkt->eject_done, pkt->decodeLatency(), args);
    }
    if (user_delivery_)
        user_delivery_(pkt, now);
}

void
Network::bindTelemetry(telemetry::PointTelemetry &pt)
{
    if (telemetry::PacketTracer *t = pt.tracer()) {
        tracer_ = t;
        for (auto &r : routers_) {
            r->bindTracer(t);
            t->setThreadName(telemetry::PacketTracer::routerTrack(r->id()),
                             "router " + std::to_string(r->id()));
        }
        for (auto &ni : nis_) {
            ni->bindTracer(t);
            t->setThreadName(
                telemetry::PacketTracer::nodeTrack(ni->nodeId()),
                "node " + std::to_string(ni->nodeId()));
        }
    }

    telemetry::MetricRegistry &reg = *pt.metrics();
    err_hist_ = &reg.histogram("net.approx_error", 0.001, 64);

    const std::string scheme =
        telemetry::sanitize_component(to_string(codec_->scheme()));
    CodecCounters cc;
    telemetry::MetricScope cs = reg.scope("codec." + scheme);
    cc.blocks_encoded = &cs.counter("blocks_encoded");
    cc.blocks_decoded = &cs.counter("blocks_decoded");
    cc.hit_exact = &cs.counter("hit_exact");
    cc.hit_approx = &cs.counter("hit_approx");
    cc.miss_raw = &cs.counter("miss_raw");
    cc.bits_out = &cs.counter("bits_out");
    codec_->bindCounters(cc);

    if (telemetry::Sampler *s = pt.sampler()) {
        s->addProbe("net.router_occupancy",
                    [this] { return static_cast<double>(routerOccupancy()); });
        s->addProbe("net.link_traversals", [this] {
            return static_cast<double>(routerLinkTraversals());
        });
        s->addProbe("net.flits_injected", [this] {
            return static_cast<double>(flitsInjected());
        });
        s->addProbe("net.packets_delivered", [this] {
            return static_cast<double>(stats_.packets_delivered.value());
        });
        s->addProbe("net.mean_total_latency",
                    [this] { return stats_.total_lat.mean(); });
        s->addProbe("codec.words_encoded", [this] {
            return static_cast<double>(codec_->activity().words_encoded);
        });
        s->addProbe("codec.hit_exact", [cc] {
            return static_cast<double>(cc.hit_exact->value());
        });
        s->addProbe("codec.hit_approx", [cc] {
            return static_cast<double>(cc.hit_approx->value());
        });
        s->addProbe("codec.miss_raw", [cc] {
            return static_cast<double>(cc.miss_raw->value());
        });
        s->addProbe("quality.mean_rel_error",
                    [this] { return stats_.quality.meanRelativeError(); });
        if (qor_) {
            telemetry::ErrorProfile *q = qor_;
            s->addProbe("qor.samples", [q] {
                return static_cast<double>(q->samples());
            });
            s->addProbe("qor.mean_abs_rel_err",
                        [q] { return q->meanAbs(); });
            s->addProbe("qor.max_abs_rel_err", [q] { return q->maxAbs(); });
        }
        if (tracer_) {
            s->bindTracer(tracer_,
                          telemetry::PacketTracer::counterTrack());
            tracer_->setThreadName(telemetry::PacketTracer::counterTrack(),
                                   "counters");
        }
    }
}

void
Network::bindErrorProfile(telemetry::ErrorProfile *qor)
{
    qor_ = qor;
    codec_->bindErrorProfile(qor);
}

void
Network::bindProfiler(telemetry::PhaseProfiler *prof)
{
    codec_->bindProfiler(prof);
    for (auto &ni : nis_)
        ni->bindProfiler(prof);
}

void
Network::collectTelemetry(telemetry::MetricRegistry &reg) const
{
    for (const auto &r : routers_) {
        telemetry::MetricScope rs =
            reg.scope("router." + std::to_string(r->id()));
        rs.counter("buffer_writes").inc(r->bufferWrites());
        rs.counter("vc_allocs").inc(r->vcAllocations());
        rs.counter("vc_stalls").inc(r->vcStalls());
        rs.counter("flits_forwarded").inc(r->flitsForwarded());
        rs.counter("link_traversals").inc(r->linkTraversals());
    }
    for (const auto &ni : nis_) {
        telemetry::MetricScope ns =
            reg.scope("ni." + std::to_string(ni->nodeId()));
        ns.counter("packets_injected").inc(ni->packetsInjected());
        ns.counter("packets_delivered").inc(ni->packetsDelivered());
        ns.counter("flits_injected").inc(ni->flitsInjected());
        ns.counter("data_flits_injected").inc(ni->dataFlitsInjected());
    }

    telemetry::MetricScope net = reg.scope("net");
    net.counter("packets_delivered").inc(stats_.packets_delivered.value());
    net.counter("data_packets_delivered")
        .inc(stats_.data_packets_delivered.value());
    net.counter("notification_packets")
        .inc(stats_.notification_packets.value());
    net.stat("total_latency").merge(stats_.total_lat);
    net.stat("queue_latency").merge(stats_.queue_lat);
    net.stat("net_latency").merge(stats_.net_lat);
    net.stat("decode_latency").merge(stats_.decode_lat);
    net.stat("hops").merge(stats_.hops);
    reg.histogram("net.total_latency_hist", 4.0, 128)
        .merge(stats_.total_lat_hist);

    const std::string scheme =
        telemetry::sanitize_component(to_string(codec_->scheme()));
    telemetry::MetricScope cs = reg.scope("codec." + scheme);
    const CodecActivity a = codec_->activity();
    cs.counter("words_encoded").inc(a.words_encoded);
    cs.counter("words_decoded").inc(a.words_decoded);
    cs.counter("cam_searches").inc(a.cam_searches);
    cs.counter("cam_writes").inc(a.cam_writes);
    cs.counter("tcam_searches").inc(a.tcam_searches);
    cs.counter("tcam_writes").inc(a.tcam_writes);
    cs.counter("avcl_ops").inc(a.avcl_ops);
    cs.counter("mismatches").inc(codec_->consistencyMismatches());

    telemetry::MetricScope qs = reg.scope("quality");
    qs.stat("data_quality").add(stats_.quality.dataQuality());
    qs.stat("compression_ratio").add(stats_.quality.compressionRatio());
    qs.stat("exact_fraction").add(stats_.quality.exactEncodedFraction());
    qs.stat("approx_fraction").add(stats_.quality.approxEncodedFraction());
}

std::uint64_t
Network::flitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->flitsInjected();
    return n;
}

std::uint64_t
Network::dataFlitsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &ni : nis_)
        n += ni->dataFlitsInjected();
    return n;
}

std::size_t
Network::routerOccupancy() const
{
    std::size_t n = 0;
    for (const auto &r : routers_)
        n += r->occupancy();
    return n;
}

std::uint64_t
Network::routerBufferWrites() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->bufferWrites();
    return n;
}

std::uint64_t
Network::routerLinkTraversals() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->linkTraversals();
    return n;
}

std::uint64_t
Network::routerFlitsForwarded() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->flitsForwarded();
    return n;
}

void
Network::dumpStats(std::ostream &os, Cycle elapsed) const
{
    const NetworkStats &s = stats_;
    os << "---------- network stats (" << elapsed << " cycles) ----------\n";
    os << "packets.delivered        " << s.packets_delivered.value() << "\n";
    os << "packets.data             " << s.data_packets_delivered.value()
       << "\n";
    os << "packets.notifications    " << s.notification_packets.value()
       << "\n";
    os << "latency.total.mean       " << s.total_lat.mean() << "\n";
    os << "latency.total.p50        " << s.total_lat_hist.percentile(0.5)
       << "\n";
    os << "latency.total.p99        " << s.p99Latency() << "\n";
    os << "latency.queue.mean       " << s.queue_lat.mean() << "\n";
    os << "latency.network.mean     " << s.net_lat.mean() << "\n";
    os << "latency.decode.mean      " << s.decode_lat.mean() << "\n";
    os << "hops.mean                " << s.hops.mean() << "\n";
    os << "flits.injected           " << flitsInjected() << "\n";
    os << "flits.data               " << dataFlitsInjected() << "\n";
    if (elapsed > 0) {
        os << "throughput.flits_per_cycle_node "
           << static_cast<double>(flitsInjected()) /
                  (static_cast<double>(elapsed) * cfg_.nodes())
           << "\n";
    }
    os << "quality.data             " << s.quality.dataQuality() << "\n";
    os << "quality.compr_ratio      " << s.quality.compressionRatio()
       << "\n";
    os << "quality.exact_fraction   " << s.quality.exactEncodedFraction()
       << "\n";
    os << "quality.approx_fraction  " << s.quality.approxEncodedFraction()
       << "\n";
    os << "codec.mismatches         " << codec_->consistencyMismatches()
       << "\n";

    const CodecActivity a = codec_->activity();
    os << "codec.words_encoded      " << a.words_encoded << "\n";
    os << "codec.cam_searches       " << a.cam_searches << "\n";
    os << "codec.tcam_searches      " << a.tcam_searches << "\n";
    os << "codec.avcl_ops           " << a.avcl_ops << "\n";

    os << "--- per router (buffer writes / switch traversals / links) ---\n";
    for (const auto &r : routers_) {
        os << "router" << r->id() << "  " << r->bufferWrites() << " / "
           << r->flitsForwarded() << " / " << r->linkTraversals() << "\n";
    }
    os << "--- per NI (packets injected / delivered / queue depth) ---\n";
    for (const auto &ni : nis_) {
        os << "ni" << ni->nodeId() << "  " << ni->packetsInjected() << " / "
           << ni->packetsDelivered() << " / " << ni->queueDepth() << "\n";
    }
}

bool
Network::drained() const
{
    if (routerOccupancy() != 0)
        return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    return true;
}

void
Network::evaluate(Cycle)
{
}

void
Network::advance(Cycle now)
{
    // Inject dictionary update notifications as control packets, one
    // decoder endpoint at a time (the per-destination drain API; each
    // stream arrives in seq order, so the injection order at any one
    // NI matches the order its decoder emitted).
    for (NodeId d = 0; d < static_cast<NodeId>(nis_.size()); ++d) {
        for (const auto &n : codec_->drainNotifications(d)) {
            if (!model_notifications_ || n.from == n.to)
                continue;
            auto p = makeControlPacket(n.from, n.to);
            stats_.notification_packets.inc();
            nis_[n.from]->enqueue(p, now);
        }
    }

    // Deadlock watchdog: flits buffered but nothing moved for a while.
    std::uint64_t progress = routerFlitsForwarded() + flitsInjected();
    if (progress != last_progress_count_) {
        last_progress_count_ = progress;
        last_progress_cycle_ = now;
    } else if (routerOccupancy() > 0 &&
               now - last_progress_cycle_ > kDeadlockWindow) {
        ANOC_PANIC("network deadlock: no flit movement for ",
                   kDeadlockWindow, " cycles with ", routerOccupancy(),
                   " flits buffered");
    }
}

} // namespace approxnoc
