/**
 * @file
 * Packets and flits. A packet is packetized into a head flit (header,
 * never compressed) plus enough 64-bit payload flits for the block's
 * network representation; control packets are a single flit.
 */
#ifndef APPROXNOC_NOC_PACKET_H
#define APPROXNOC_NOC_PACKET_H

#include <cstdint>
#include <memory>

#include "common/data_block.h"
#include "common/types.h"
#include "compression/encoded.h"

namespace approxnoc {

/** A packet in flight, shared by all of its flits. */
struct Packet {
    std::uint64_t id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    PacketClass cls = PacketClass::Control;

    /** Total flits including the head flit. */
    unsigned n_flits = 1;
    /** Reassembly progress at the destination NI. */
    unsigned ejected_flits = 0;

    /** True when this packet carries a cache block payload. */
    bool carries_block = false;
    /** The precise block handed to the NI (data packets). */
    DataBlock precise;
    /** The network representation produced by the encoder. */
    EncodedBlock enc;
    /** The block the decoder reconstructed (set at delivery). */
    DataBlock delivered;

    /** @name Timestamps (cycles) */
    ///@{
    Cycle created = 0;      ///< handed to the NI
    Cycle inject_start = kNeverCycle; ///< head flit entered the router
    Cycle eject_done = kNeverCycle;   ///< tail flit left the network
    Cycle decode_done = kNeverCycle;  ///< decompression finished
    ///@}

    /** Queue latency: NI arrival to head-flit injection. */
    Cycle queueLatency() const { return inject_start - created; }
    /** Network latency: injection to tail ejection. */
    Cycle netLatency() const { return eject_done - inject_start; }
    /** Decode latency charged at the ejection side. */
    Cycle decodeLatency() const { return decode_done - eject_done; }
    /** Total packet latency (the paper's Fig. 9 metric). */
    Cycle totalLatency() const { return decode_done - created; }
};

using PacketPtr = std::shared_ptr<Packet>;

/** One flit of a packet. */
struct Flit {
    PacketPtr pkt;
    unsigned seq = 0; ///< 0 = head
    bool is_tail = false;
    /** Cycle this flit entered the buffer it currently occupies. */
    Cycle arrival = 0;

    bool isHead() const { return seq == 0; }
};

/** Flits a payload of @p bits occupies at @p flit_bits per flit. */
unsigned payload_flits(std::size_t bits, unsigned flit_bits);

} // namespace approxnoc

#endif // APPROXNOC_NOC_PACKET_H
