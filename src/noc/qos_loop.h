/**
 * @file
 * The network side of online error control: every interval the loop
 * measures the data error incurred by blocks delivered in that window
 * (from the network's QualityTracker) and retunes the codec's error
 * threshold through a QosController.
 */
#ifndef APPROXNOC_NOC_QOS_LOOP_H
#define APPROXNOC_NOC_QOS_LOOP_H

#include "core/error_control.h"
#include "noc/network.h"
#include "sim/clocked.h"

namespace approxnoc {

/** Closed-loop threshold adaptation over a running Network. */
class ErrorControlLoop : public Clocked
{
  public:
    ErrorControlLoop(Network &net, QosController controller,
                     Cycle interval = 2000);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    const QosController &controller() const { return controller_; }
    /** Number of threshold changes applied to the codec. */
    std::uint64_t adjustments() const { return adjustments_; }
    /** Mean data error measured over all completed windows (%). */
    double meanWindowErrorPct() const;

  private:
    Network &net_;
    QosController controller_;
    Cycle interval_;
    Cycle next_;
    std::uint64_t last_blocks_ = 0;
    double last_error_sum_ = 0.0;
    std::uint64_t adjustments_ = 0;
    double window_error_accum_ = 0.0;
    std::uint64_t windows_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_NOC_QOS_LOOP_H
