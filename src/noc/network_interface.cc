#include "noc/network_interface.h"

#include "common/log.h"
#include "sim/region_scheduler.h"
#include "telemetry/phase_profiler.h"

namespace approxnoc {

NetworkInterface::NetworkInterface(NodeId id, const NocConfig &cfg,
                                   CodecSystem *codec)
    : Clocked("ni" + std::to_string(id)), id_(id), cfg_(cfg), codec_(codec),
      vc_busy_(cfg.vcs, false), credits_(cfg.vcs, cfg.vc_depth)
{
    ANOC_ASSERT(codec != nullptr, "NI requires a codec (use BaselineCodec)");
}

void
NetworkInterface::connectInjection(Router *r, unsigned router_in_port)
{
    router_ = r;
    router_port_ = router_in_port;
    r->connectInput(router_in_port, this, 0);
}

void
NetworkInterface::enqueue(const PacketPtr &pkt, Cycle now)
{
    pkt->created = now;
#ifndef NDEBUG
    // Isolation contract: encoder state is cross-region shared (an
    // encode at src touches per-(src,dst) channels whose dst is
    // anywhere), so injection must come from serial context — traffic
    // generators, notification injection, or the post-advance
    // delivery replay — never from inside a parallel phase.
    ANOC_ASSERT(sim_current_region() < 0,
                "NI enqueue from inside a parallel region phase at node ",
                id_);
#endif
    Cycle ready = now;
    if (pkt->carries_block) {
        // Flow-isolation contract (compression/codec.h): this NI is
        // the only writer of encoder state keyed by its own endpoint,
        // so every encode it issues stays inside one flow shard. The
        // assert keeps that true if packet routing ever changes —
        // encoding on behalf of another source would silently break
        // the per-src partitioning FlowShardedEncoder relies on.
        ANOC_ASSERT(pkt->src == id_,
                    "NI must encode only as its own source endpoint");
        telemetry::PhaseProfiler::Scope prof(profiler_, ph_encode_);
        pkt->enc = codec_->encodeBlock(pkt->precise, pkt->src, pkt->dst, now);
        pkt->n_flits =
            1 + payload_flits(pkt->enc.bits(), cfg_.flit_bits);
        ready = now + codec_->compressionLatency();
    } else {
        pkt->n_flits = 1;
    }
    inj_q_.push_back(QueuedPacket{pkt, ready});
}

void
NetworkInterface::creditReturn(unsigned, unsigned vc)
{
    ANOC_ASSERT(vc < cfg_.vcs, "credit return vc out of range");
    ANOC_ASSERT(credits_[vc] < cfg_.vc_depth, "NI credit overflow");
#ifndef NDEBUG
    ANOC_ASSERT(sim_current_region() < 0 ||
                    sim_current_region() == regionTag(),
                "cross-region creditReturn at NI ", id_);
#endif
    ++credits_[vc];
}

void
NetworkInterface::evaluate(Cycle now)
{
    send_this_cycle_ = false;
    if (!current_) {
        if (inj_q_.empty() || inj_q_.front().ready > now)
            return;
        current_ = inj_q_.front().pkt;
        inj_q_.pop_front();
        next_seq_ = 0;
        alloc_vc_ = -1;
    }
    if (next_seq_ == 0 && alloc_vc_ < 0) {
        for (unsigned vc = 0; vc < cfg_.vcs; ++vc) {
            if (!vc_busy_[vc] && credits_[vc] > 0) {
                alloc_vc_ = static_cast<int>(vc);
                vc_busy_[vc] = true;
                break;
            }
        }
    }
    if (alloc_vc_ >= 0 && credits_[static_cast<unsigned>(alloc_vc_)] > 0)
        send_this_cycle_ = true;
}

void
NetworkInterface::advance(Cycle now)
{
    if (!send_this_cycle_)
        return;
    ANOC_ASSERT(current_ && router_, "NI advance without packet or router");
    unsigned vc = static_cast<unsigned>(alloc_vc_);

    Flit f;
    f.pkt = current_;
    f.seq = next_seq_;
    f.is_tail = next_seq_ + 1 == current_->n_flits;
    f.arrival = now + 1;

    --credits_[vc];
    router_->acceptFlit(router_port_, vc, f);
    ++flits_injected_;
    if (current_->cls == PacketClass::Data)
        ++data_flits_injected_;

    if (next_seq_ == 0) {
        current_->inject_start = now;
        ++packets_injected_;
        if (tracer_)
            tracer_->instant(telemetry::PacketTracer::nodeTrack(id_),
                             "inject", now,
                             "{\"pkt\": " + std::to_string(current_->id) +
                                 ", \"dst\": " +
                                 std::to_string(current_->dst) + "}");
    }
    ++next_seq_;
    if (f.is_tail) {
        vc_busy_[vc] = false;
        current_.reset();
        next_seq_ = 0;
        alloc_vc_ = -1;
    }
}

void
NetworkInterface::acceptEjectedFlit(const Flit &f, Cycle now)
{
#ifndef NDEBUG
    ANOC_ASSERT(sim_current_region() < 0 ||
                    sim_current_region() == regionTag(),
                "cross-region ejection at NI ", id_);
#endif
    PacketPtr pkt = f.pkt;
    ++pkt->ejected_flits;
    if (pkt->ejected_flits < pkt->n_flits)
        return;

    ANOC_ASSERT(pkt->ejected_flits == pkt->n_flits,
                "packet over-ejected: duplicate flits");
    pkt->eject_done = now;
    if (tracer_)
        tracer_->instant(telemetry::PacketTracer::nodeTrack(id_), "eject",
                         now,
                         "{\"pkt\": " + std::to_string(pkt->id) +
                             ", \"src\": " + std::to_string(pkt->src) + "}");
    if (pkt->carries_block) {
        // This NI is the decode endpoint, so the batched decode runs
        // under the destination-isolation contract: only node id_'s
        // decoder state (plus commutative counters and id_'s pending
        // channels) is touched.
        ANOC_ASSERT(pkt->dst == id_,
                    "decode at a foreign NI violates destination isolation");
        telemetry::PhaseProfiler::Scope prof(profiler_, ph_decode_);
        pkt->delivered = codec_->decodeBlock(pkt->enc, pkt->src, pkt->dst, now);
        pkt->decode_done = now + codec_->decompressionLatency();
    } else {
        pkt->decode_done = now;
    }
    ++packets_delivered_;
    if (on_delivery_)
        on_delivery_(pkt, now);
}

void
NetworkInterface::bindProfiler(telemetry::PhaseProfiler *p)
{
    profiler_ = p;
    if (profiler_) {
        ph_encode_ = profiler_->definePhase("ni.encode");
        ph_decode_ = profiler_->definePhase("ni.decode");
    }
}

bool
NetworkInterface::idle() const
{
    return inj_q_.empty() && !current_;
}

} // namespace approxnoc
