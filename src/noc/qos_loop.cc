#include "noc/qos_loop.h"

namespace approxnoc {

ErrorControlLoop::ErrorControlLoop(Network &net, QosController controller,
                                   Cycle interval)
    : Clocked("qos-loop"), net_(net), controller_(std::move(controller)),
      interval_(interval), next_(interval)
{
    // Start from the controller's threshold so loop and codec agree.
    net_.codec().setErrorThreshold(controller_.threshold());
}

void
ErrorControlLoop::evaluate(Cycle)
{
}

void
ErrorControlLoop::advance(Cycle now)
{
    if (now < next_)
        return;
    next_ = now + interval_;

    const QualityTracker &q = net_.stats().quality;
    std::uint64_t blocks = q.blocks();
    double error_sum = q.errorSum();
    if (blocks == last_blocks_)
        return; // nothing delivered this window

    double window_error_pct = 100.0 * (error_sum - last_error_sum_) /
                              static_cast<double>(blocks - last_blocks_);
    last_blocks_ = blocks;
    last_error_sum_ = error_sum;
    window_error_accum_ += window_error_pct;
    ++windows_;

    double before = controller_.threshold();
    double after = controller_.update(window_error_pct);
    if (after != before && net_.codec().setErrorThreshold(after))
        ++adjustments_;
}

double
ErrorControlLoop::meanWindowErrorPct() const
{
    return windows_ ? window_error_accum_ / static_cast<double>(windows_)
                    : 0.0;
}

} // namespace approxnoc
