#include "noc/router.h"

#include "common/log.h"
#include "noc/network_interface.h"
#include "sim/region_scheduler.h"

namespace approxnoc {

Router::Router(RouterId id, const NocConfig &cfg, RouteFn route)
    : Clocked("router" + std::to_string(id)), id_(id), cfg_(cfg),
      route_(std::move(route)),
      n_ports_(kLocalBase + cfg.concentration)
{
    in_.resize(n_ports_);
    out_.resize(n_ports_);
    grants_.resize(n_ports_);
    rr_vc_.resize(n_ports_, 0);
    for (auto &ip : in_)
        ip.vcs.resize(cfg_.vcs);
    for (auto &op : out_) {
        op.vc_busy.assign(cfg_.vcs, false);
        op.credits.assign(cfg_.vcs, cfg_.vc_depth);
    }
}

void
Router::connectOutput(unsigned out_port, Router *peer, unsigned peer_in_port)
{
    ANOC_ASSERT(out_port < n_ports_, "output port out of range");
    out_[out_port].peer = peer;
    out_[out_port].peer_port = peer_in_port;
    peer->connectInput(peer_in_port, this, out_port);
}

void
Router::connectEjection(unsigned out_port, NetworkInterface *ni)
{
    ANOC_ASSERT(out_port < n_ports_, "output port out of range");
    out_[out_port].ni = ni;
}

void
Router::connectInput(unsigned in_port, FlitSource *up, unsigned up_port)
{
    ANOC_ASSERT(in_port < n_ports_, "input port out of range");
    in_[in_port].up = up;
    in_[in_port].up_port = up_port;
}

void
Router::setLinkInfo(unsigned out_port, unsigned dim, bool wrap)
{
    ANOC_ASSERT(out_port < n_ports_, "output port out of range");
    ANOC_ASSERT(cfg_.vcs % 2 == 0,
                "dateline VC classes need an even VC count");
    OutPort &op = out_[out_port];
    op.dim = dim;
    op.wrap = wrap;
    class_aware_ = true;
    if (op.peer) {
        op.peer->in_[op.peer_port].dim = dim;
        op.peer->class_aware_ = true;
    }
}

int
Router::allowedVcClass(const InPort &in, unsigned in_vc,
                       const OutPort &out) const
{
    if (!class_aware_ || out.isEjection())
        return -1; // unrestricted
    unsigned half = cfg_.vcs / 2;
    unsigned in_class = in_vc / half;
    if (out.wrap)
        return 1; // crossing the dateline
    if (out.dim != in.dim)
        return 0; // entering a new ring (or injected locally)
    return static_cast<int>(in_class);
}

unsigned
Router::selectRoute(const Packet &pkt) const
{
    std::vector<unsigned> cands = route_(id_, pkt);
    ANOC_ASSERT(!cands.empty(), "router ", id_, " has no route for packet");
    if (cands.size() == 1)
        return cands[0];
    // Congestion-aware selection: the candidate whose downstream
    // buffers have the most free credits wins; ties keep preference
    // order.
    unsigned best = cands[0];
    unsigned best_credits = 0;
    bool first = true;
    for (unsigned c : cands) {
        const OutPort &op = out_[c];
        unsigned credits = 0;
        for (unsigned v : op.credits)
            credits += v;
        if (first || credits > best_credits) {
            best = c;
            best_credits = credits;
            first = false;
        }
    }
    return best;
}

void
Router::acceptFlit(unsigned in_port, unsigned vc, Flit f)
{
    ANOC_ASSERT(in_port < n_ports_ && vc < cfg_.vcs,
                "acceptFlit port/vc out of range");
#ifndef NDEBUG
    // Cross-region write-hazard check: inside a parallel phase only
    // this router's own region may deposit flits (anything else must
    // go through the deferral outbox — see flushDeferred).
    ANOC_ASSERT(sim_current_region() < 0 ||
                    sim_current_region() == regionTag(),
                "cross-region acceptFlit at router ", id_,
                " from region ", sim_current_region());
#endif
    auto &q = in_[in_port].vcs[vc].q;
    ANOC_ASSERT(q.size() < cfg_.vc_depth,
                "buffer overflow at router ", id_, " port ", in_port,
                " vc ", vc, " — credit protocol violated");
    q.push_back(std::move(f));
    ++buffer_writes_;
}

void
Router::creditReturn(unsigned out_port, unsigned vc)
{
    ANOC_ASSERT(out_port < n_ports_ && vc < cfg_.vcs,
                "creditReturn port/vc out of range");
#ifndef NDEBUG
    ANOC_ASSERT(sim_current_region() < 0 ||
                    sim_current_region() == regionTag(),
                "cross-region creditReturn at router ", id_,
                " from region ", sim_current_region());
#endif
    auto &c = out_[out_port].credits[vc];
    ANOC_ASSERT(c < cfg_.vc_depth, "credit overflow at router ", id_,
                " port ", out_port, " vc ", vc);
    ++c;
}

void
Router::evaluate(Cycle now)
{
    for (auto &g : grants_)
        g = Grant{};

    const Cycle pipe = cfg_.router_stages - 1;

    for (unsigned ii = 0; ii < n_ports_; ++ii) {
        unsigned ip = (rr_in_ + ii) % n_ports_;
        InPort &port = in_[ip];
        for (unsigned vv = 0; vv < cfg_.vcs; ++vv) {
            unsigned vc = (rr_vc_[ip] + vv) % cfg_.vcs;
            VcBuf &buf = port.vcs[vc];
            if (buf.q.empty())
                continue;
            Flit &f = buf.q.front();
            if (f.arrival + pipe > now)
                continue; // still in BW/RC/VA stages

            if (f.isHead() && buf.route < 0)
                buf.route = static_cast<int>(selectRoute(*f.pkt));
            unsigned op_idx = static_cast<unsigned>(buf.route);
            OutPort &op = out_[op_idx];
            ANOC_ASSERT(op.connected(), "route to unconnected port ", op_idx,
                        " at router ", id_);
            if (grants_[op_idx].valid())
                continue; // output already claimed this cycle

            if (op.isEjection()) {
                grants_[op_idx] = Grant{static_cast<int>(ip),
                                        static_cast<int>(vc)};
                break; // one flit per input port per cycle
            }

            if (f.isHead() && buf.out_vc < 0) {
                // VC allocation: claim a free downstream VC within the
                // class the dateline discipline permits.
                unsigned lo = 0, hi = cfg_.vcs;
                int cls = allowedVcClass(port, vc, op);
                if (cls >= 0) {
                    unsigned half = cfg_.vcs / 2;
                    lo = static_cast<unsigned>(cls) * half;
                    hi = lo + half;
                }
                for (unsigned dvc = lo; dvc < hi; ++dvc) {
                    if (!op.vc_busy[dvc] && op.credits[dvc] > 0) {
                        op.vc_busy[dvc] = true;
                        buf.out_vc = static_cast<int>(dvc);
                        ++vc_allocs_;
                        if (tracer_)
                            tracer_->instant(
                                telemetry::PacketTracer::routerTrack(id_),
                                "vc_alloc", now,
                                "{\"pkt\": " + std::to_string(f.pkt->id) +
                                    ", \"vc\": " + std::to_string(dvc) + "}");
                        break;
                    }
                }
                if (buf.out_vc < 0) {
                    ++vc_stalls_;
                    continue; // no VC available; try another VC/input
                }
            }
            if (buf.out_vc >= 0 &&
                op.credits[static_cast<unsigned>(buf.out_vc)] > 0) {
                grants_[op_idx] = Grant{static_cast<int>(ip),
                                        static_cast<int>(vc)};
                break;
            }
        }
    }
}

void
Router::advance(Cycle now)
{
    // Under region-parallel stepping, effects on components of another
    // region are deferred to the serial post-advance flush; everything
    // touched directly below is own state or same-region (the local
    // NIs are always grouped with their router).
    const int my_region = regionTag();

    for (unsigned op_idx = 0; op_idx < n_ports_; ++op_idx) {
        Grant &g = grants_[op_idx];
        if (!g.valid())
            continue;
        InPort &port = in_[static_cast<unsigned>(g.in_port)];
        VcBuf &buf = port.vcs[static_cast<unsigned>(g.vc)];
        ANOC_ASSERT(!buf.q.empty(), "granted VC drained unexpectedly");
        Flit f = buf.q.front();
        buf.q.pop_front();
        ++flits_forwarded_;

        // Return the freed buffer slot upstream.
        if (port.up) {
            if (my_region >= 0 && port.up->sourceRegion() != my_region)
                defer_credits_.push_back(
                    {port.up, port.up_port, static_cast<unsigned>(g.vc)});
            else
                port.up->creditReturn(port.up_port,
                                      static_cast<unsigned>(g.vc));
        }

        OutPort &op = out_[op_idx];
        bool tail = f.is_tail;
        if (op.isEjection()) {
            op.ni->acceptEjectedFlit(f, now);
        } else {
            unsigned dvc = static_cast<unsigned>(buf.out_vc);
            ANOC_ASSERT(op.credits[dvc] > 0, "forwarding without credit");
            --op.credits[dvc];
            f.arrival = now + 1;
            bool head = f.isHead();
            std::uint64_t pkt_id = f.pkt->id;
            if (my_region >= 0 && op.peer->regionTag() != my_region)
                defer_flits_.push_back(
                    {op.peer, op.peer_port, dvc, std::move(f)});
            else
                op.peer->acceptFlit(op.peer_port, dvc, std::move(f));
            ++link_traversals_;
            if (tracer_ && head)
                tracer_->instant(telemetry::PacketTracer::routerTrack(id_),
                                 "hop", now,
                                 "{\"pkt\": " + std::to_string(pkt_id) +
                                     ", \"to\": " +
                                     std::to_string(op.peer->id()) + "}");
            if (tail)
                op.vc_busy[dvc] = false;
        }
        if (tail) {
            buf.route = -1;
            buf.out_vc = -1;
        }
        rr_vc_[static_cast<unsigned>(g.in_port)] =
            (static_cast<unsigned>(g.vc) + 1) % cfg_.vcs;
    }
    rr_in_ = (rr_in_ + 1) % n_ports_;
}

void
Router::flushDeferred()
{
    for (const DeferredCredit &d : defer_credits_)
        d.up->creditReturn(d.port, d.vc);
    defer_credits_.clear();
    for (DeferredFlit &d : defer_flits_)
        d.peer->acceptFlit(d.port, d.vc, std::move(d.f));
    defer_flits_.clear();
}

std::size_t
Router::occupancy() const
{
    std::size_t n = 0;
    for (const auto &ip : in_)
        for (const auto &vb : ip.vcs)
            n += vb.q.size();
    return n;
}

} // namespace approxnoc
