/**
 * @file
 * NoC configuration (paper Table 1 defaults): 4x4 2D concentrated
 * mesh, three-stage 2 GHz routers, 4 VCs x 4-flit buffers, 64-bit
 * flits, wormhole switching, XY routing.
 */
#ifndef APPROXNOC_NOC_NOC_CONFIG_H
#define APPROXNOC_NOC_NOC_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace approxnoc {

/**
 * Routing algorithms. XY/YX resolve one dimension completely before
 * the other; WestFirst is the turn-model partially adaptive scheme.
 * All are deadlock-free on a mesh without extra virtual channels.
 */
enum class RoutingAlgo : std::uint8_t {
    XY, ///< paper/Table 1 default: column first, then row
    YX, ///< row first, then column
    /**
     * West-first partially adaptive routing (turn model): all westward
     * hops happen first; afterwards the packet may choose adaptively
     * among east/north/south by congestion. Deadlock-free on a mesh
     * without extra VCs; not valid on the torus.
     */
    WestFirst,
};

/**
 * Network topology. The torus adds wrap-around links per row/column
 * and uses shortest-direction dimension-order routing; deadlock
 * freedom on the rings comes from dateline VC classes (the VC set is
 * split in half; crossing a wrap link forces a packet into the upper
 * class, entering a new dimension resets it to the lower class).
 * Requires an even number of VCs.
 */
enum class Topology : std::uint8_t {
    Mesh,  ///< paper/Table 1 default (with concentration: cmesh)
    Torus, ///< wrap-around links + dateline VCs
};

struct NocConfig {
    unsigned rows = 4;           ///< mesh rows
    unsigned cols = 4;           ///< mesh columns
    unsigned concentration = 2;  ///< endpoints per router (cmesh)
    unsigned vcs = 4;            ///< virtual channels per input port
    unsigned vc_depth = 4;       ///< flit buffer depth per VC
    unsigned flit_bits = 64;     ///< flit width
    unsigned router_stages = 3;  ///< pipeline depth (per-hop latency)
    RoutingAlgo routing = RoutingAlgo::XY;
    Topology topology = Topology::Mesh;

    unsigned routers() const { return rows * cols; }
    unsigned nodes() const { return routers() * concentration; }
    RouterId routerOf(NodeId n) const { return n / concentration; }
    unsigned localPortOf(NodeId n) const { return n % concentration; }
    unsigned rowOf(RouterId r) const { return r / cols; }
    unsigned colOf(RouterId r) const { return r % cols; }
};

/** Mesh port directions; local ports follow. */
enum Direction : unsigned {
    kNorth = 0,
    kEast = 1,
    kSouth = 2,
    kWest = 3,
    kLocalBase = 4,
};

} // namespace approxnoc

#endif // APPROXNOC_NOC_NOC_CONFIG_H
