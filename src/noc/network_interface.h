/**
 * @file
 * The network interface (paper Fig. 1): packetization, the VAXX +
 * compression encoder on the injection path, flit-by-flit injection
 * under credit flow control, and reassembly + decompression on the
 * ejection path.
 *
 * Compression latency overlaps NI queueing: a packet becomes eligible
 * for injection compressionLatency() cycles after enqueue, so the
 * overhead is hidden whenever packets are already waiting (paper
 * Sec. 4.3's optimization).
 */
#ifndef APPROXNOC_NOC_NETWORK_INTERFACE_H
#define APPROXNOC_NOC_NETWORK_INTERFACE_H

#include <deque>
#include <functional>

#include "common/contract.h"
#include "common/types.h"
#include "compression/codec.h"
#include "noc/noc_config.h"
#include "noc/packet.h"
#include "noc/router.h"
#include "sim/clocked.h"
#include "telemetry/packet_tracer.h"

namespace approxnoc {

/** One node's NI. */
class NetworkInterface : public Clocked, public FlitSource
{
  public:
    ANOC_ISOLATION_CONTRACT(region_isolation);

    using DeliveryFn = std::function<void(const PacketPtr &, Cycle)>;

    NetworkInterface(NodeId id, const NocConfig &cfg, CodecSystem *codec);

    NodeId nodeId() const { return id_; }

    /** Wire the injection link into @p r's input @p router_in_port. */
    void connectInjection(Router *r, unsigned router_in_port);

    /** Invoked (once per packet) when the tail ejects and decode ends. */
    void setDeliveryCallback(DeliveryFn fn) { on_delivery_ = std::move(fn); }

    /**
     * Hand a packet to the NI. Data packets are encoded immediately
     * (approximation + compression) which fixes their flit count; the
     * packet becomes injectable after the compression latency.
     */
    void enqueue(const PacketPtr &pkt, Cycle now);

    /** Ejection-side link interface, called by the router's advance. */
    void acceptEjectedFlit(const Flit &f, Cycle now);

    void creditReturn(unsigned out_port, unsigned vc) override;

    int sourceRegion() const override { return regionTag(); }

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** True when nothing is queued or in flight at this NI. */
    bool idle() const;

    /** Packets waiting in the injection queue. */
    std::size_t queueDepth() const { return inj_q_.size(); }

    /**
     * Attach a lifecycle tracer (null detaches). The NI emits "inject"
     * and "eject" instants on its endpoint track; when detached the
     * hooks cost one null check each.
     */
    void bindTracer(telemetry::PacketTracer *t) { tracer_ = t; }

    /**
     * Attach the self-profiler (null detaches): the codec calls on
     * the injection ("ni.encode") and ejection ("ni.decode") paths
     * are timed. Disabled, each site costs one null check.
     */
    void bindProfiler(telemetry::PhaseProfiler *p);

    /** @name Activity counters */
    ///@{
    std::uint64_t flitsInjected() const { return flits_injected_; }
    std::uint64_t dataFlitsInjected() const { return data_flits_injected_; }
    std::uint64_t packetsInjected() const { return packets_injected_; }
    std::uint64_t packetsDelivered() const { return packets_delivered_; }
    ///@}

  private:
    struct QueuedPacket {
        PacketPtr pkt;
        Cycle ready; ///< earliest injection cycle (compression done)
    };

    ANOC_REGION_SHARED NodeId id_;
    ANOC_REGION_SHARED NocConfig cfg_;
    /** The codec is genuinely shared across NIs; its own isolation
     * contract (flow/destination sharding) governs concurrent use. */
    ANOC_REGION_SHARED CodecSystem *codec_;
    ANOC_REGION_SHARED Router *router_ = nullptr;
    ANOC_REGION_SHARED unsigned router_port_ = 0;

    /** Injection/ejection state is written only by this NI's own
     * evaluate/advance and by its router's same-region ejection path. */
    ANOC_SHARD_LOCAL std::deque<QueuedPacket> inj_q_;
    ANOC_SHARD_LOCAL PacketPtr current_;       ///< packet mid-injection
    ANOC_SHARD_LOCAL unsigned next_seq_ = 0;   ///< next flit of current_
    ANOC_SHARD_LOCAL int alloc_vc_ = -1;       ///< VC allocated for current_
    ANOC_SHARD_LOCAL std::vector<bool> vc_busy_;
    ANOC_SHARD_LOCAL std::vector<unsigned> credits_;
    ANOC_SHARD_LOCAL bool send_this_cycle_ = false; ///< evaluate() decision

    ANOC_REGION_SHARED DeliveryFn on_delivery_;
    ANOC_REGION_SHARED telemetry::PacketTracer *tracer_ = nullptr;
    ANOC_REGION_SHARED telemetry::PhaseProfiler *profiler_ = nullptr;
    ANOC_REGION_SHARED std::size_t ph_encode_ = 0;
    ANOC_REGION_SHARED std::size_t ph_decode_ = 0;

    ANOC_SHARD_LOCAL std::uint64_t flits_injected_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t data_flits_injected_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t packets_injected_ = 0;
    ANOC_SHARD_LOCAL std::uint64_t packets_delivered_ = 0;
};

} // namespace approxnoc

#endif // APPROXNOC_NOC_NETWORK_INTERFACE_H
