#include "compression/adaptive.h"

#include "common/arena.h"
#include "common/log.h"

namespace approxnoc {

AdaptiveCodec::AdaptiveCodec(std::unique_ptr<CodecSystem> inner,
                             AdaptiveConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), senders_(cfg.n_nodes)
{
    ANOC_ASSERT(inner_ != nullptr, "adaptive wrapper needs an inner codec");
    ANOC_ASSERT(cfg.window_blocks > 0 && cfg.probe_blocks > 0,
                "adaptive windows must be non-empty");
}

void
AdaptiveCodec::evaluateWindow(SenderState &s)
{
    double ratio = s.window_enc_bits > 0
                       ? static_cast<double>(s.window_raw_bits) /
                             static_cast<double>(s.window_enc_bits)
                       : 1.0;
    bool effective = ratio >= cfg_.min_ratio;
    if (s.mode == Mode::On && !effective) {
        s.mode = Mode::Off;
        s.off_count = 0;
    } else if (s.mode == Mode::Probe) {
        s.mode = effective ? Mode::On : Mode::Off;
        s.off_count = 0;
    }
    s.window_raw_bits = 0;
    s.window_enc_bits = 0;
    s.window_count = 0;
}

EncodedBlock
AdaptiveCodec::encode(const DataBlock &block, NodeId src, NodeId dst,
                      Cycle now)
{
    return encodeImpl(block, src, dst, now, false);
}

EncodedBlock
AdaptiveCodec::encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                           Cycle now)
{
    return encodeImpl(block, src, dst, now, true);
}

EncodedBlock
AdaptiveCodec::encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                          Cycle now, Arena &arena)
{
    return encodeImpl(block, src, dst, now, true, &arena);
}

EncodedBlock
AdaptiveCodec::encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                          Cycle now, bool batched, Arena *arena)
{
    ANOC_ASSERT(src < senders_.size(), "sender out of range");
    SenderState &s = senders_[src];

    if (s.mode == Mode::Off) {
        if (++s.off_count >= cfg_.off_blocks) {
            s.mode = Mode::Probe;
            s.window_raw_bits = 0;
            s.window_enc_bits = 0;
            s.window_count = 0;
        } else {
            ++bypassed_;
            // Raw-block flag rides in the head flit, hence 32 bits/word.
            EncodedBlock raw =
                raw_encoded_block(block, inner_->rawKind(), 32, arena);
            noteBlockEncoded(raw);
            return raw;
        }
    }

    EncodedBlock enc = arena ? inner_->encodeSpan(block, src, dst, now, *arena)
                     : batched ? inner_->encodeBlock(block, src, dst, now)
                               : inner_->encode(block, src, dst, now);
    s.window_raw_bits += block.sizeBits();
    s.window_enc_bits += enc.bits();
    ++s.window_count;
    std::uint32_t window =
        s.mode == Mode::Probe ? cfg_.probe_blocks : cfg_.window_blocks;
    if (s.window_count >= window)
        evaluateWindow(s);
    return enc;
}

DataBlock
AdaptiveCodec::decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                      Cycle now)
{
    return inner_->decode(enc, src, dst, now);
}

void
AdaptiveCodec::bindProfiler(telemetry::PhaseProfiler *prof)
{
    CodecSystem::bindProfiler(prof);
    inner_->bindProfiler(prof);
}

bool
AdaptiveCodec::compressionEnabled(NodeId src) const
{
    return senders_[src].mode != Mode::Off;
}

} // namespace approxnoc
