#include "compression/adaptive.h"

#include "common/log.h"

namespace approxnoc {

AdaptiveCodec::AdaptiveCodec(std::unique_ptr<CodecSystem> inner,
                             AdaptiveConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), senders_(cfg.n_nodes)
{
    ANOC_ASSERT(inner_ != nullptr, "adaptive wrapper needs an inner codec");
    ANOC_ASSERT(cfg.window_blocks > 0 && cfg.probe_blocks > 0,
                "adaptive windows must be non-empty");
}

EncodedBlock
AdaptiveCodec::rawBlock(const DataBlock &block) const
{
    EncodedBlock raw;
    for (std::size_t i = 0; i < block.size(); ++i) {
        EncodedWord ew;
        ew.kind = inner_->rawKind();
        ew.bits = 32; // raw-block flag rides in the head flit
        ew.payload = block.word(i);
        ew.decoded = block.word(i);
        ew.uncompressed = true;
        raw.append(ew);
    }
    raw.setMeta(block.type(), block.approximable());
    return raw;
}

void
AdaptiveCodec::evaluateWindow(SenderState &s)
{
    double ratio = s.window_enc_bits > 0
                       ? static_cast<double>(s.window_raw_bits) /
                             static_cast<double>(s.window_enc_bits)
                       : 1.0;
    bool effective = ratio >= cfg_.min_ratio;
    if (s.mode == Mode::On && !effective) {
        s.mode = Mode::Off;
        s.off_count = 0;
    } else if (s.mode == Mode::Probe) {
        s.mode = effective ? Mode::On : Mode::Off;
        s.off_count = 0;
    }
    s.window_raw_bits = 0;
    s.window_enc_bits = 0;
    s.window_count = 0;
}

EncodedBlock
AdaptiveCodec::encode(const DataBlock &block, NodeId src, NodeId dst,
                      Cycle now)
{
    ANOC_ASSERT(src < senders_.size(), "sender out of range");
    SenderState &s = senders_[src];

    if (s.mode == Mode::Off) {
        if (++s.off_count >= cfg_.off_blocks) {
            s.mode = Mode::Probe;
            s.window_raw_bits = 0;
            s.window_enc_bits = 0;
            s.window_count = 0;
        } else {
            ++bypassed_;
            EncodedBlock raw = rawBlock(block);
            noteBlockEncoded(raw);
            return raw;
        }
    }

    EncodedBlock enc = inner_->encode(block, src, dst, now);
    s.window_raw_bits += block.sizeBits();
    s.window_enc_bits += enc.bits();
    ++s.window_count;
    std::uint32_t window =
        s.mode == Mode::Probe ? cfg_.probe_blocks : cfg_.window_blocks;
    if (s.window_count >= window)
        evaluateWindow(s);
    return enc;
}

DataBlock
AdaptiveCodec::decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                      Cycle now)
{
    return inner_->decode(enc, src, dst, now);
}

bool
AdaptiveCodec::compressionEnabled(NodeId src) const
{
    return senders_[src].mode != Mode::Off;
}

} // namespace approxnoc
