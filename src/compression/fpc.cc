#include "compression/fpc.h"

#include <algorithm>

#include "common/arena.h"
#include "common/bits.h"
#include "common/log.h"

namespace approxnoc {
namespace {

/**
 * Solve the sign-extension constraint inside a field of width @p W:
 * find a field value equal to @p f on all bits >= @p kf that
 * sign-extends from its low @p p bits. Keeps f's bits wherever the
 * pattern leaves them unconstrained.
 */
std::optional<std::uint32_t>
solve_sign_in_field(std::uint32_t f, unsigned kf, unsigned W, unsigned p)
{
    f &= low_mask32(W);
    if (kf < p) {
        // The sign bit and everything above it are fixed: exact or fail.
        std::uint32_t se = sign_extend32(f, p) & low_mask32(W);
        return se == f ? std::optional<std::uint32_t>(f) : std::nullopt;
    }
    // kf >= p: bits [p-1 .. kf-1] are ours to set; bits >= kf must
    // already be uniform.
    unsigned s;
    if (kf >= W) {
        s = (f >> (p - 1)) & 1u;
    } else {
        std::uint32_t fixed = f >> kf;
        std::uint32_t all_ones = low_mask32(W - kf);
        if (fixed == 0)
            s = 0;
        else if (fixed == all_ones)
            s = 1;
        else
            return std::nullopt;
    }
    std::uint32_t low_keep = f & low_mask32(p - 1);
    std::uint32_t c = s ? ((low_mask32(W) & ~low_mask32(p - 1)) | low_keep)
                        : low_keep;
    return c;
}

} // namespace

std::string
to_string(FpcPattern p)
{
    switch (p) {
      case FpcPattern::ZeroRun: return "zero-run";
      case FpcPattern::Sign4: return "4-bit sign-extended";
      case FpcPattern::Sign8: return "byte sign-extended";
      case FpcPattern::Sign16: return "halfword sign-extended";
      case FpcPattern::HalfPadded: return "halfword padded with zero halfword";
      case FpcPattern::TwoHalfSign8: return "two byte-sign-extended halfwords";
      case FpcPattern::Uncompressed: return "uncompressed";
    }
    return "?";
}

unsigned
fpc_data_bits(FpcPattern p)
{
    switch (p) {
      case FpcPattern::ZeroRun: return 3;
      case FpcPattern::Sign4: return 4;
      case FpcPattern::Sign8: return 8;
      case FpcPattern::Sign16: return 16;
      case FpcPattern::HalfPadded: return 16;
      case FpcPattern::TwoHalfSign8: return 16;
      case FpcPattern::Uncompressed: return 32;
    }
    ANOC_PANIC("unknown FPC pattern");
}

std::optional<FpcMatch>
fpc_try_pattern(FpcPattern p, Word w, unsigned k)
{
    if (k > 32)
        k = 32;
    switch (p) {
      case FpcPattern::ZeroRun: {
        std::uint32_t fixed = k >= 32 ? 0 : (w & ~low_mask32(k));
        if (fixed != 0)
            return std::nullopt;
        return FpcMatch{p, 0, 0};
      }
      case FpcPattern::Sign4:
      case FpcPattern::Sign8:
      case FpcPattern::Sign16: {
        unsigned bits = p == FpcPattern::Sign4 ? 4
                      : p == FpcPattern::Sign8 ? 8
                                               : 16;
        auto c = solve_sign_in_field(w, k, 32, bits);
        if (!c)
            return std::nullopt;
        return FpcMatch{p, *c, *c & low_mask32(bits)};
      }
      case FpcPattern::HalfPadded: {
        std::uint32_t low_fixed = (w & 0xFFFFu) & ~low_mask32(std::min(k, 16u));
        if (low_fixed != 0)
            return std::nullopt;
        Word c = w & 0xFFFF0000u;
        return FpcMatch{p, c, c >> 16};
      }
      case FpcPattern::TwoHalfSign8: {
        unsigned k_lo = std::min(k, 16u);
        unsigned k_hi = k > 16 ? k - 16 : 0;
        auto lo = solve_sign_in_field(w & 0xFFFFu, k_lo, 16, 8);
        if (!lo)
            return std::nullopt;
        auto hi = solve_sign_in_field(w >> 16, k_hi, 16, 8);
        if (!hi)
            return std::nullopt;
        Word c = (*hi << 16) | *lo;
        std::uint32_t payload = ((*hi & 0xFFu) << 8) | (*lo & 0xFFu);
        return FpcMatch{p, c, payload};
      }
      case FpcPattern::Uncompressed:
        return FpcMatch{p, w, w};
    }
    return std::nullopt;
}

std::optional<FpcMatch>
fpc_match_ref(Word w, unsigned k)
{
    static constexpr FpcPattern kPriority[] = {
        FpcPattern::ZeroRun, FpcPattern::Sign4, FpcPattern::Sign8,
        FpcPattern::Sign16, FpcPattern::HalfPadded, FpcPattern::TwoHalfSign8,
    };
    for (FpcPattern p : kPriority) {
        if (auto m = fpc_try_pattern(p, w, k))
            return m;
    }
    return std::nullopt;
}

std::optional<FpcMatch>
fpc_match(Word w, unsigned k)
{
    if (k == 0)
        return fpc_match_exact(w);
    return fpc_match_ref(w, k);
}

Word
fpc_decode(FpcPattern p, std::uint32_t payload)
{
    switch (p) {
      case FpcPattern::ZeroRun:
        return 0;
      case FpcPattern::Sign4:
        return sign_extend32(payload, 4);
      case FpcPattern::Sign8:
        return sign_extend32(payload, 8);
      case FpcPattern::Sign16:
        return sign_extend32(payload, 16);
      case FpcPattern::HalfPadded:
        return payload << 16;
      case FpcPattern::TwoHalfSign8: {
        std::uint32_t hi = sign_extend32((payload >> 8) & 0xFFu, 8) & 0xFFFFu;
        std::uint32_t lo = sign_extend32(payload & 0xFFu, 8) & 0xFFFFu;
        return (hi << 16) | lo;
      }
      case FpcPattern::Uncompressed:
        return payload;
    }
    ANOC_PANIC("unknown FPC pattern in decode");
}

EncodedBlock
FpcCodec::encode(const DataBlock &block, NodeId, NodeId, Cycle)
{
    noteEncoded(block.size());
    EncodedBlock enc = fpc_encode_block(block, [](std::size_t) { return 0u; });
    noteBlockEncoded(enc);
    return enc;
}

EncodedBlock
FpcCodec::encodeSpan(const DataBlock &block, NodeId, NodeId, Cycle,
                     Arena &arena)
{
    noteEncoded(block.size());
    EncodedBlock enc =
        fpc_encode_block(block, [](std::size_t) { return 0u; }, &arena);
    noteBlockEncoded(enc);
    return enc;
}

std::uint64_t
fpc_decode_block(const EncodedBlock &enc, Word *out)
{
    std::uint64_t mismatches = 0;
    for (const auto &w : enc.words()) {
        Word v = w.uncompressed
                     ? w.payload
                     : fpc_decode(static_cast<FpcPattern>(w.kind), w.payload);
        if (v != w.decoded)
            ++mismatches;
        for (unsigned r = 0; r < w.run; ++r)
            *out++ = v;
    }
    return mismatches;
}

DataBlock
FpcCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, ws.data()));
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

DecodedSpan
FpcCodec::decodeSpan(const EncodedBlock &enc, NodeId, NodeId, Cycle,
                     Arena &arena)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    Word *buf = arena.alloc<Word>(enc.wordCount());
    noteMismatches(fpc_decode_block(enc, buf));
    return DecodedSpan{buf, enc.wordCount(), enc.type(),
                       enc.approximable()};
}

} // namespace approxnoc
