/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood [5], as adapted to
 * NoCs by Das et al. [12]). Implements exactly the paper's Fig. 5
 * pattern table, plus a don't-care-aware solver: given a word and a
 * number of approximable low bits k, find the highest-priority pattern
 * some candidate value (differing from the word only in those k bits)
 * matches. k = 0 gives plain exact FPC; k > 0 is the FP-VAXX matching
 * rule (Fig. 6: the non-shaded bits must match the pattern exactly).
 */
#ifndef APPROXNOC_COMPRESSION_FPC_H
#define APPROXNOC_COMPRESSION_FPC_H

#include <bit>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bits.h"
#include "common/contract.h"
#include "common/types.h"

#include "compression/codec.h"
#include "compression/encoded.h"

namespace approxnoc {

/** The static frequent patterns, Fig. 5 (encoded index = enum value). */
enum class FpcPattern : std::uint8_t {
    ZeroRun = 0,       ///< run of 1..8 zero words, 3 data bits
    Sign4 = 1,         ///< 4-bit sign-extended, 4 data bits
    Sign8 = 2,         ///< one byte sign-extended, 8 data bits
    Sign16 = 3,        ///< halfword sign-extended, 16 data bits
    HalfPadded = 4,    ///< halfword padded with a zero halfword, 16 bits
    TwoHalfSign8 = 5,  ///< two halfwords, each a byte sign-extended, 16 bits
    Uncompressed = 7,  ///< raw word, 32 data bits
};

/** Human-readable pattern name. */
std::string to_string(FpcPattern p);

/** Number of payload data bits for @p p (excluding the 3-bit prefix). */
unsigned fpc_data_bits(FpcPattern p);

/** The 3-bit prefix plus payload size of one encoded unit. */
inline constexpr unsigned kFpcPrefixBits = 3;

/** Result of matching one word against one pattern. */
struct FpcMatch {
    FpcPattern pattern;
    /** The value the decoder will reconstruct. */
    Word candidate;
    /** Payload bits to transmit. */
    std::uint32_t payload;
};

/**
 * Try to match @p w against pattern @p p, allowing the low @p k bits of
 * the word to take any value (don't cares). Picks the candidate that
 * keeps as many of w's original bits as the pattern permits.
 *
 * @return the match, or nullopt when no assignment of the k free bits
 *         satisfies the pattern.
 */
std::optional<FpcMatch> fpc_try_pattern(FpcPattern p, Word w, unsigned k);

/**
 * Match @p w against the whole table in priority (table) order with
 * @p k don't-care bits. Never returns Uncompressed: a miss is nullopt.
 * k = 0 takes the branchless fast path (fpc_match_exact); k > 0 runs
 * the don't-care solver.
 */
std::optional<FpcMatch> fpc_match(Word w, unsigned k = 0);

/**
 * Reference matcher: always the pattern-by-pattern solver loop, even
 * for k = 0. This is the executable specification the branchless
 * fpc_match_exact is differentially fuzzed against
 * (tests/test_simd_diff.cc); production code should call fpc_match.
 */
std::optional<FpcMatch> fpc_match_ref(Word w, unsigned k = 0);

namespace detail {

/** Sign-extension class by significant-bit count (two's-complement
 * width): sb <= 4 -> Sign4, <= 8 -> Sign8, <= 16 -> Sign16, else no
 * sign pattern applies (bits = 0 sentinel). Index 0 is unused (sb of
 * any word is at least 1). */
struct FpcSignClass {
    FpcPattern pattern;
    std::uint8_t bits;
};

inline constexpr FpcSignClass kFpcSignClass[33] = {
    {FpcPattern::Uncompressed, 0}, // sb = 0 (unreachable)
    {FpcPattern::Sign4, 4},   {FpcPattern::Sign4, 4},
    {FpcPattern::Sign4, 4},   {FpcPattern::Sign4, 4},   // sb 1..4
    {FpcPattern::Sign8, 8},   {FpcPattern::Sign8, 8},
    {FpcPattern::Sign8, 8},   {FpcPattern::Sign8, 8},   // sb 5..8
    {FpcPattern::Sign16, 16}, {FpcPattern::Sign16, 16},
    {FpcPattern::Sign16, 16}, {FpcPattern::Sign16, 16},
    {FpcPattern::Sign16, 16}, {FpcPattern::Sign16, 16},
    {FpcPattern::Sign16, 16}, {FpcPattern::Sign16, 16}, // sb 9..16
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0},
    {FpcPattern::Uncompressed, 0}, {FpcPattern::Uncompressed, 0}, // 17..32
};

} // namespace detail

/**
 * Branchless-classified exact (k = 0) matcher, the per-word hot path
 * of fpc_encode_block. One significant-bit count (xor with the sign
 * smear, then countl_zero) indexes the class table and decides all
 * three sign-extension patterns at once, replacing the solver's
 * per-pattern constraint walk; the two halfword patterns reduce to a
 * zero test and two unsigned range checks. Bit-identical to
 * fpc_match_ref(w, 0) by the priority argument in docs/perf.md,
 * enforced exhaustively-at-the-boundaries plus randomized in
 * tests/test_simd_diff.cc.
 */
inline std::optional<FpcMatch>
fpc_match_exact(Word w)
{
    if (w == 0)
        return FpcMatch{FpcPattern::ZeroRun, 0, 0};
    // Two's-complement width of w: xor with the all-sign-bits smear
    // clears the redundant sign copies, so sb = 33 - clz covers the
    // value plus one sign bit. sb is in [1, 32].
    const Word smear =
        static_cast<Word>(static_cast<std::int32_t>(w) >> 31);
    const unsigned sb =
        33u - static_cast<unsigned>(std::countl_zero(w ^ smear));
    const detail::FpcSignClass cls = detail::kFpcSignClass[sb];
    if (cls.bits)
        return FpcMatch{cls.pattern, w, w & low_mask32(cls.bits)};
    if ((w & 0xFFFFu) == 0)
        return FpcMatch{FpcPattern::HalfPadded, w, w >> 16};
    const std::uint32_t lo = w & 0xFFFFu;
    const std::uint32_t hi = w >> 16;
    // A halfword is byte-sign-extended iff adding 0x80 lands in
    // [0, 0x100) mod 2^16 (bits [15:8] all equal to bit 7).
    if (static_cast<std::uint16_t>(lo + 0x80u) < 0x100u &&
        static_cast<std::uint16_t>(hi + 0x80u) < 0x100u)
        return FpcMatch{FpcPattern::TwoHalfSign8, w,
                        ((hi & 0xFFu) << 8) | (lo & 0xFFu)};
    return std::nullopt;
}

/** Reconstruct a word from a pattern + payload (the decoder datapath). */
Word fpc_decode(FpcPattern p, std::uint32_t payload);

/**
 * Stateless block-level FPC decode shared by FpcCodec, FpVaxxCodec and
 * WindowVaxxCodec (the paper: approximation is encoder-only, so their
 * NRs decode identically). Writes exactly enc.wordCount()
 * reconstructed words to @p out, expanding zero runs — a raw output
 * pointer so both the heap (DataBlock) and zero-copy (arena span)
 * decode paths share it. Returns the count of decoder-vs-encoder
 * expectation mismatches so the caller can record them once per block
 * (CodecSystem::noteMismatches) instead of per word.
 */
std::uint64_t fpc_decode_block(const EncodedBlock &enc, Word *out);

/**
 * The FP-COMP codec: stateless per-word FPC with block-level zero-run
 * merging. Shared by every node (the pattern table is static).
 */
class FpcCodec : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    FpcCodec() = default;

    Scheme scheme() const override { return Scheme::FpComp; }

    std::uint8_t
    rawKind() const override
    {
        return static_cast<std::uint8_t>(FpcPattern::Uncompressed);
    }

    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                           Cycle now, Arena &arena) override;
};

/**
 * Block-level FPC encoding helper used by both FpcCodec and FpVaxxCodec:
 * @p k_of_word yields the per-word don't-care count (0 when exact).
 * Merges consecutive zero words (exact or approximated-to-zero) into
 * zero-run units. @p mr backs the NR's word storage (null = heap);
 * the zero-copy encodeSpan paths pass their batch arena here.
 */
template <typename KFn>
EncodedBlock
fpc_encode_block(const DataBlock &block, KFn &&k_of_word,
                 std::pmr::memory_resource *mr = nullptr)
{
    EncodedBlock enc(mr);
    enc.reserve(block.size());
    std::size_t i = 0;
    const std::size_t n = block.size();
    while (i < n) {
        unsigned k = k_of_word(i);
        auto m = fpc_match(block.word(i), k);
        if (m && m->pattern == FpcPattern::ZeroRun) {
            // Greedily extend the zero run up to 8 words.
            std::uint8_t run = 1;
            std::uint8_t approx = block.word(i) != 0 ? 1 : 0;
            while (i + run < n && run < 8) {
                auto mr = fpc_match(block.word(i + run), k_of_word(i + run));
                if (!mr || mr->pattern != FpcPattern::ZeroRun)
                    break;
                approx += block.word(i + run) != 0 ? 1 : 0;
                ++run;
            }
            EncodedWord ew;
            ew.kind = static_cast<std::uint8_t>(FpcPattern::ZeroRun);
            ew.bits = kFpcPrefixBits + fpc_data_bits(FpcPattern::ZeroRun);
            ew.payload = run - 1u;
            ew.run = run;
            ew.approx_count = approx;
            ew.decoded = 0;
            ew.approximated = approx > 0;
            enc.append(ew);
            i += run;
            continue;
        }
        EncodedWord ew;
        if (m) {
            ew.kind = static_cast<std::uint8_t>(m->pattern);
            ew.bits = kFpcPrefixBits + fpc_data_bits(m->pattern);
            ew.payload = m->payload;
            ew.decoded = m->candidate;
            ew.approximated = m->candidate != block.word(i);
            ew.approx_count = ew.approximated ? 1 : 0;
        } else {
            ew.kind = static_cast<std::uint8_t>(FpcPattern::Uncompressed);
            ew.bits = kFpcPrefixBits + 32;
            ew.payload = block.word(i);
            ew.decoded = block.word(i);
            ew.uncompressed = true;
        }
        enc.append(ew);
        ++i;
    }
    enc.setMeta(block.type(), block.approximable());

    // Incompressible-block fallback (after Das et al. [12]): a block
    // the patterns cannot shrink travels raw; the compressed/raw flag
    // rides in the (uncompressed) head flit.
    if (enc.bits() > block.sizeBits() && block.size() > 0)
        return raw_encoded_block(
            block, static_cast<std::uint8_t>(FpcPattern::Uncompressed), 32,
            mr);
    return enc;
}

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_FPC_H
