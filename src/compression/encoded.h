/**
 * @file
 * The network representation (NR) of a cache block after encoding:
 * a sequence of per-word codes whose total bit count determines how
 * many flits the packet needs (paper Fig. 3).
 */
#ifndef APPROXNOC_COMPRESSION_ENCODED_H
#define APPROXNOC_COMPRESSION_ENCODED_H

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "common/data_block.h"
#include "common/types.h"

namespace approxnoc {

/**
 * One encoded word (or zero-run of words) in the NR.
 *
 * @c decoded records the value the *encoder* expects the decoder to
 * reconstruct; the real decoders recompute the value from their own
 * state, and the framework checks the two agree (dictionary-consistency
 * invariant).
 */
struct EncodedWord {
    /** Scheme-specific code (FPC 3-bit prefix / dictionary flag). */
    std::uint8_t kind = 0;
    /** Total bits this unit occupies in the NR, metadata included. */
    std::uint16_t bits = 0;
    /** Encoded payload bits (right-aligned). */
    std::uint32_t payload = 0;
    /** Number of source words covered (zero-runs cover up to 8). */
    std::uint8_t run = 1;
    /** How many covered words had their value changed by approximation. */
    std::uint8_t approx_count = 0;
    /** Value the encoder expects the decoder to produce (all run words). */
    Word decoded = 0;
    /** True when any covered word was matched approximately. */
    bool approximated = false;
    /** True when the word was emitted uncompressed. */
    bool uncompressed = false;
};

/** A whole encoded cache block: the NR plus bookkeeping.
 *
 * Storage is pmr-backed so the zero-copy encode path (encodeSpan) can
 * place the word vector directly in a per-batch Arena: moves keep the
 * arena backing (and its lifetime — valid until the arena resets),
 * copies land on the default heap resource, so an arena-backed block
 * that must outlive its batch is detached with a plain copy. */
class EncodedBlock
{
  public:
    EncodedBlock() = default;

    /** Arena-backed block: the word vector allocates from @p mr (null
     * means the default heap resource). */
    explicit EncodedBlock(std::pmr::memory_resource *mr)
        : words_(mr ? mr : std::pmr::get_default_resource())
    {
    }

    void
    reserve(std::size_t n_units)
    {
        words_.reserve(n_units);
    }

    void
    append(const EncodedWord &w)
    {
        words_.push_back(w);
        bits_ += w.bits;
        n_words_ += w.run;
    }

    /** Record the block metadata carried alongside the NR. */
    void
    setMeta(DataType type, bool approximable)
    {
        type_ = type;
        approximable_ = approximable;
    }

    DataType type() const { return type_; }
    bool approximable() const { return approximable_; }

    const std::pmr::vector<EncodedWord> &words() const { return words_; }

    /** Total NR payload size in bits. */
    std::size_t bits() const { return bits_; }

    /** Number of original 32-bit words covered. */
    std::size_t wordCount() const { return n_words_; }

    /** Count of words whose value was changed by approximation. */
    std::size_t approximatedWords() const;

    /** Words compressed exactly (zero-runs included, raw words excluded). */
    std::size_t exactCompressedWords() const;

    /** Count of words emitted raw. */
    std::size_t uncompressedWords() const;

    /** The block the encoder expects at the far end. */
    DataBlock expectedBlock() const;

  private:
    std::pmr::vector<EncodedWord> words_;
    std::size_t bits_ = 0;
    std::size_t n_words_ = 0;
    DataType type_ = DataType::Raw;
    bool approximable_ = false;
};

/**
 * Build the all-raw NR for @p block: every word uncompressed under the
 * scheme-specific raw @p kind, @p bits_per_word bits each (32 when the
 * compressed/raw flag rides in the head flit). Shared by the
 * incompressible-block fallbacks and the adaptive bypass path.
 */
EncodedBlock raw_encoded_block(const DataBlock &block, std::uint8_t kind,
                               std::uint16_t bits_per_word = 32,
                               std::pmr::memory_resource *mr = nullptr);

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_ENCODED_H
