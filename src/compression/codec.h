/**
 * @file
 * CodecSystem: the abstract encoder/decoder pair the APPROX-NoC
 * framework plugs into every network interface. A single CodecSystem
 * instance models the distributed state of *all* nodes' encoders and
 * decoders (dictionary schemes keep per-node tables inside).
 */
#ifndef APPROXNOC_COMPRESSION_CODEC_H
#define APPROXNOC_COMPRESSION_CODEC_H

#include <cstdint>
#include <vector>

#include "common/contract.h"
#include "common/data_block.h"
#include "common/relaxed_counter.h"
#include "common/stats.h"
#include "common/types.h"

#include "compression/encoded.h"

namespace approxnoc {

namespace telemetry {
class ErrorProfile;
class PhaseProfiler;
} // namespace telemetry

class Arena;
class EncodedBlock;

/**
 * Zero-copy view of a decoded block: the words live in the Arena the
 * caller passed to decodeSpan() and stay valid until that arena is
 * reset. Carries the same metadata as DataBlock without owning
 * storage; callers needing ownership copy into a DataBlock.
 */
struct DecodedSpan {
    const Word *data = nullptr;
    std::size_t size = 0;
    DataType type = DataType::Raw;
    bool approximable = false;

    Word
    word(std::size_t i) const
    {
        return data[i];
    }
};

/** Default codec pipeline latencies (paper Sec. 4.3, after [12]). */
inline constexpr Cycle kCompressionLatency = 3;   ///< 2 match + 1 encode
inline constexpr Cycle kDecompressionLatency = 2;

/** Aggregate codec hardware activity, input to the power model. */
struct CodecActivity {
    std::uint64_t words_encoded = 0;
    std::uint64_t words_decoded = 0;
    std::uint64_t cam_searches = 0;
    std::uint64_t cam_writes = 0;
    std::uint64_t tcam_searches = 0;
    std::uint64_t tcam_writes = 0;
    std::uint64_t avcl_ops = 0;
};

/**
 * Telemetry counter handles a codec records into, all null by default
 * (telemetry off). The pointed-to counters live in a per-point
 * MetricRegistry owned by the harness; the codec only increments.
 * Recording happens once per block off the aggregate EncodedBlock
 * accessors, so the per-word encode loop is never touched.
 */
struct CodecCounters {
    Counter *blocks_encoded = nullptr;
    Counter *blocks_decoded = nullptr;
    Counter *hit_exact = nullptr;  ///< words compressed exactly
    Counter *hit_approx = nullptr; ///< words changed by approximation
    Counter *miss_raw = nullptr;   ///< words emitted uncompressed
    Counter *bits_out = nullptr;   ///< total NR bits emitted

    bool bound() const { return blocks_encoded != nullptr; }
};

/**
 * Abstract compression system. encode() runs at the source NI for a
 * block headed src -> dst; decode() runs at the destination NI.
 * Dictionary schemes are stateful and time-aware (update notifications
 * apply after a delay), hence the @p now parameters.
 *
 * ## Flow-isolation contract (parallel encoding)
 *
 * Encoder-side mutable state is keyed by the *source* endpoint: the
 * dictionary schemes keep one PMT (CAM/TCAM plus replacement
 * metadata) and one pending-update FIFO per encoder node, the
 * adaptive wrapper one mode window per sender, and the stateless
 * schemes no per-call state at all. Blocks of flows with distinct
 * @p src therefore never share mutable encoder state, and
 * encode()/encodeBlock() calls for distinct @p src may run
 * concurrently. The remaining cross-source state is commutative
 * relaxed-atomic counters (word counts, AVCL activations, telemetry
 * CodecCounters), so totals are independent of thread interleaving.
 *
 * Callers must still serialize all encodes of any one source
 * endpoint, in submission order — same-src blocks contend on that
 * encoder's replacement state and update FIFO even when their @p dst
 * differ. harness/FlowShardedEncoder enforces exactly this
 * partitioning and is the supported way to encode a batch of
 * independent blocks in parallel.
 *
 * ## Destination-isolation contract (parallel decoding)
 *
 * Decoder-side mutable state is keyed by the *destination* endpoint,
 * mirroring the encoder contract above: the dictionary schemes keep
 * one decoder PMT, candidate tracker, stale-mapping table and
 * notification queue per destination node, and the stateless schemes
 * no per-call decode state at all. decode()/decodeBlock() calls for
 * distinct @p dst therefore never share mutable decoder state and may
 * run concurrently. The cross-destination state a decode touches is
 *  - commutative relaxed-atomic counters (word/mismatch totals,
 *    telemetry CodecCounters), interleaving-independent by
 *    construction, and
 *  - the per-(encoder, decoder) pending-update channels: a decode at
 *    @p dst appends only to channels owned by @p dst, and the encoder
 *    side merges channels in a deterministic order independent of the
 *    thread interleaving that filled them.
 *
 * Callers must (a) serialize all decodes of any one destination
 * endpoint, in submission order — same-dst blocks contend on that
 * decoder's learning state even when their @p src differ — and
 * (b) phase-separate encodes from decodes: an encode drains the
 * pending-update channels decodes append to, so the two sides may
 * each run sharded internally but must not overlap in time.
 * harness/FlowShardedDecoder enforces the decode partitioning;
 * harness/ShardedCodecPipeline enforces the phasing for a full
 * encode -> wire -> decode batch.
 *
 * Every notification a decoder emits carries a per-destination
 * monotonic sequence number, so drainNotifications(dst) streams are
 * reproducible at any decode job count.
 */
class CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    virtual ~CodecSystem() = default;

    CodecSystem() = default;
    CodecSystem(const CodecSystem &) = delete;
    CodecSystem &operator=(const CodecSystem &) = delete;

    /** Which paper scheme this system implements. */
    virtual Scheme scheme() const = 0;

    /**
     * Encode @p block at node @p src for destination @p dst, one word
     * at a time. Kept as the executable specification of the NR: the
     * batched encodeBlock() must produce a bit-identical stream.
     */
    virtual EncodedBlock encode(const DataBlock &block, NodeId src,
                                NodeId dst, Cycle now) = 0;

    /**
     * Block-batched encode: the fast path every consumer (NI, cache,
     * harness, benches) routes through. Semantically identical to
     * encode() — same NR bits, same hit/victim choices — but schemes
     * override it to hoist per-word virtual dispatch, telemetry checks
     * and AVCL mask computation out of the 16-word inner loop. The
     * default forwards to encode() for schemes whose encode is already
     * block-level.
     */
    virtual EncodedBlock
    encodeBlock(const DataBlock &block, NodeId src, NodeId dst, Cycle now)
    {
        return encode(block, src, dst, now);
    }

    /**
     * Zero-copy batched encode: identical NR bits and side effects to
     * encodeBlock(), but the returned block's word storage lives in
     * @p arena — no heap allocation on the hot path once the arena is
     * warm. The block is valid until the arena is reset; moving it
     * keeps the arena backing, copying it detaches onto the heap.
     * The default forwards to encodeBlock() (heap-backed, always
     * correct); schemes override it to actually place storage in the
     * arena. Same serialization obligations as encodeBlock().
     */
    virtual EncodedBlock
    encodeSpan(const DataBlock &block, NodeId src, NodeId dst, Cycle now,
               Arena &arena)
    {
        (void)arena;
        return encodeBlock(block, src, dst, now);
    }

    /**
     * Decode @p enc at node @p dst, received from @p src. Kept as the
     * executable specification of the decoder: the batched
     * decodeBlock() must reconstruct a bit-identical DataBlock.
     */
    virtual DataBlock decode(const EncodedBlock &enc, NodeId src,
                             NodeId dst, Cycle now) = 0;

    /**
     * Block-batched decode: the fast path every consumer (NI, cache,
     * harness, benches) routes through, mirroring encodeBlock().
     * Semantically identical to decode() — same words, same learning
     * and notification side effects — but schemes override it to
     * hoist decoder-state lookup and per-block bookkeeping out of the
     * word loop. The default forwards to decode() for schemes whose
     * decode is already block-level.
     */
    virtual DataBlock
    decodeBlock(const EncodedBlock &enc, NodeId src, NodeId dst, Cycle now)
    {
        return decode(enc, src, dst, now);
    }

    /**
     * Zero-copy batched decode: identical words and side effects to
     * decodeBlock(), but the reconstructed words are written into
     * exactly enc.wordCount() arena-resident Words and returned as a
     * view — valid until @p arena is reset. The default routes
     * through decodeBlock() and copies once; schemes override it to
     * decode straight into the arena. Same serialization obligations
     * as decodeBlock().
     */
    virtual DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src,
                                   NodeId dst, Cycle now, Arena &arena);

    /** Cycles the encoder adds before the first body flit is ready. */
    virtual Cycle compressionLatency() const { return kCompressionLatency; }

    /** Cycles the decoder adds at the ejection side. */
    virtual Cycle decompressionLatency() const { return kDecompressionLatency; }

    /**
     * A dictionary update/invalidate notification travelling from a
     * decoder back to an encoder. The NoC layer injects one control
     * packet per notification to charge its traffic cost.
     */
    struct Notification {
        NodeId from; ///< decoder node emitting the notification
        NodeId to;   ///< encoder node it updates
        /**
         * Per-destination monotonic sequence number: the n-th
         * notification decoder @c from ever emitted. Strictly
         * increasing within one drainNotifications(dst) stream (and
         * across successive drains of the same @c dst), independent
         * of the decode job count — the ordering witness of the
         * destination-isolation contract.
         */
        std::uint64_t seq = 0;
    };

    /**
     * Dictionary schemes: the update/invalidate notifications emitted
     * by decoder @p dst since the last drain of @p dst, in @c seq
     * order. Stateless schemes return an empty list. Safe to call
     * concurrently for distinct @p dst (it touches only that
     * decoder's queue), but not concurrently with decodes of @p dst.
     */
    virtual std::vector<Notification>
    drainNotifications(NodeId dst)
    {
        (void)dst;
        return {};
    }

    /**
     * Decoder-vs-encoder expectation mismatches observed so far.
     * Nonzero indicates a dictionary-consistency protocol violation.
     */
    virtual std::uint64_t consistencyMismatches() const { return mismatches_; }

    /** The scheme-specific kind value marking an uncompressed word. */
    virtual std::uint8_t rawKind() const { return 0; }

    /** Hardware activity accumulated so far (power model input). */
    virtual CodecActivity activity() const;

    /**
     * Retune the approximation threshold at run time (the paper: the
     * threshold "can be dynamically adjusted at run time"). Dictionary
     * schemes apply it to newly recorded patterns only — already
     * installed masks keep their recorded width, as the hardware would.
     * @return false when the scheme has no approximation engine.
     */
    virtual bool setErrorThreshold(double) { return false; }

    /**
     * Bind telemetry counter handles (harness, per experiment point).
     * Unbound (the default) recording costs one predicted branch per
     * block — nothing per word. Wrappers forward to their inner codec.
     */
    virtual void bindCounters(const CodecCounters &c) { counters_ = c; }

    /**
     * Bind the QoR error profile the encode path records per-word
     * signed relative errors into at approximation time. Null (the
     * default) costs one predicted branch per *approximated* block —
     * exact blocks never reach the recording walk. Wrappers forward
     * to their inner codec.
     */
    virtual void bindErrorProfile(telemetry::ErrorProfile *qor)
    {
        qor_ = qor;
    }

    /**
     * Bind the self-profiler. The base registers the shared
     * `codec.apply_pending` phase that the dictionary schemes time
     * their deferred-update merge under; wrappers forward.
     */
    virtual void bindProfiler(telemetry::PhaseProfiler *prof);

  protected:
    /** Bump the consistency-mismatch counter (decoders call this). */
    void noteMismatch() { ++mismatches_; }

    /** Batched mismatch record (the block-level decode helpers). */
    void noteMismatches(std::uint64_t n) { mismatches_ += n; }

    /** Word-count bookkeeping, called by every encode()/decode(). */
    void noteEncoded(std::uint64_t n) { words_encoded_ += n; }
    void noteDecoded(std::uint64_t n) { words_decoded_ += n; }

    /**
     * Per-block telemetry record, called once at the end of every
     * derived encode(). Derives hit/miss/approx splits from the block's
     * aggregate accessors; immediate no-op when counters are unbound.
     */
    void
    noteBlockEncoded(const EncodedBlock &enc)
    {
        if (!counters_.bound())
            return;
        counters_.blocks_encoded->inc();
        counters_.hit_exact->inc(enc.exactCompressedWords());
        counters_.hit_approx->inc(enc.approximatedWords());
        counters_.miss_raw->inc(enc.uncompressedWords());
        counters_.bits_out->inc(enc.bits());
    }

    /**
     * QoR-aware variant: the counter record above plus, when an error
     * profile is bound and the block was actually approximated, one
     * signed relative-error sample per changed word on flow
     * @p src -> @p dst. Approximating encode paths call this; exact
     * paths (baseline, FPC, raw fallbacks) keep the 1-arg form.
     */
    void
    noteBlockEncoded(const EncodedBlock &enc, const DataBlock &precise,
                     NodeId src, NodeId dst)
    {
        noteBlockEncoded(enc);
        if (qor_ && enc.approximatedWords() > 0)
            recordQoR(precise, enc, src, dst);
    }

    /** Decode-side telemetry record; no-op when counters are unbound. */
    void
    noteBlockDecoded()
    {
        if (!counters_.bound())
            return;
        counters_.blocks_decoded->inc();
    }

    std::uint64_t wordsEncoded() const { return words_encoded_; }
    std::uint64_t wordsDecoded() const { return words_decoded_; }

    /** The bound self-profiler (null when profiling is off). */
    telemetry::PhaseProfiler *profiler() const { return profiler_; }
    /** Phase id for the dictionary deferred-update merge. */
    std::size_t applyPendingPhase() const { return apply_pending_phase_; }

  private:
    /** Walk @p enc against the precise block and record every
     * approximation-changed word's signed relative error. */
    void recordQoR(const DataBlock &precise, const EncodedBlock &enc,
                   NodeId src, NodeId dst);

    /** Relaxed-atomic: bookkeeping shared by every source (encode
     * side) and every destination (decode side). Sums commute, so
     * parallel per-flow encode shards and per-destination decode
     * shards produce the same totals as a serial run (see the
     * isolation contracts above). */
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter mismatches_;
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter words_encoded_;
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter words_decoded_;
    /** Bind-time handles; the pointed-to Counters are themselves
     * relaxed-atomic (common/stats.h), so shard increments commute. */
    ANOC_REGION_SHARED CodecCounters counters_;
    ANOC_REGION_SHARED telemetry::ErrorProfile *qor_ = nullptr;
    ANOC_REGION_SHARED telemetry::PhaseProfiler *profiler_ = nullptr;
    ANOC_REGION_SHARED std::size_t apply_pending_phase_ = 0;
};

/**
 * The Baseline "codec": transmits every word raw with no metadata.
 * Zero compression/decompression latency.
 */
class BaselineCodec : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    Scheme scheme() const override { return Scheme::Baseline; }
    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                           Cycle now, Arena &arena) override;
    Cycle compressionLatency() const override { return 0; }
    Cycle decompressionLatency() const override { return 0; }
};

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_CODEC_H
