#include "compression/wire.h"

#include "common/log.h"
#include "compression/dictionary.h"
#include "compression/fpc.h"

namespace approxnoc {

namespace {

bool
is_raw_fallback(const EncodedBlock &enc)
{
    return enc.bits() == enc.wordCount() * 32 &&
           enc.uncompressedWords() == enc.wordCount();
}

} // namespace

namespace fpc_wire {

std::vector<std::uint8_t>
pack(const EncodedBlock &enc, bool &raw_flag)
{
    BitWriter w;
    raw_flag = is_raw_fallback(enc);
    if (raw_flag) {
        for (const auto &u : enc.words())
            w.write(u.payload, 32);
    } else {
        for (const auto &u : enc.words()) {
            if (u.uncompressed) {
                w.write(static_cast<std::uint8_t>(FpcPattern::Uncompressed),
                        kFpcPrefixBits);
                w.write(u.payload, 32);
            } else {
                auto p = static_cast<FpcPattern>(u.kind);
                w.write(u.kind, kFpcPrefixBits);
                w.write(u.payload, fpc_data_bits(p));
            }
        }
    }
    ANOC_ASSERT(w.bitCount() == enc.bits(),
                "FPC wire size ", w.bitCount(), " != accounted ",
                enc.bits());
    return w.bytes();
}

DataBlock
unpack(const std::vector<std::uint8_t> &bytes, bool raw_flag,
       std::size_t n_words, DataType type, bool approximable)
{
    BitReader r(bytes);
    std::vector<Word> ws;
    ws.reserve(n_words);
    if (raw_flag) {
        for (std::size_t i = 0; i < n_words; ++i)
            ws.push_back(static_cast<Word>(r.read(32)));
    } else {
        while (ws.size() < n_words) {
            auto p = static_cast<FpcPattern>(r.read(kFpcPrefixBits));
            std::uint32_t payload =
                static_cast<std::uint32_t>(r.read(fpc_data_bits(p)));
            if (p == FpcPattern::ZeroRun) {
                unsigned run = payload + 1;
                for (unsigned i = 0; i < run && ws.size() < n_words; ++i)
                    ws.push_back(0);
            } else {
                ws.push_back(fpc_decode(p, payload));
            }
        }
    }
    return DataBlock(std::move(ws), type, approximable);
}

} // namespace fpc_wire

namespace di_wire {

std::vector<std::uint8_t>
pack(const EncodedBlock &enc, bool &raw_flag)
{
    BitWriter w;
    raw_flag = is_raw_fallback(enc);
    if (raw_flag) {
        for (const auto &u : enc.words())
            w.write(u.payload, 32);
    } else {
        for (const auto &u : enc.words()) {
            bool compressed =
                u.kind == static_cast<std::uint8_t>(DiWordKind::Compressed);
            w.write(compressed ? 1u : 0u, 1);
            // Index width = unit bits minus the flag bit.
            w.write(u.payload, u.bits - 1);
        }
    }
    ANOC_ASSERT(w.bitCount() == enc.bits(),
                "dictionary wire size ", w.bitCount(), " != accounted ",
                enc.bits());
    return w.bytes();
}

std::vector<Unit>
unpack(const std::vector<std::uint8_t> &bytes, bool raw_flag,
       std::size_t n_words, unsigned index_bits)
{
    BitReader r(bytes);
    std::vector<Unit> units;
    units.reserve(n_words);
    for (std::size_t i = 0; i < n_words; ++i) {
        Unit u;
        if (raw_flag) {
            u.compressed = false;
            u.payload = static_cast<std::uint32_t>(r.read(32));
        } else {
            u.compressed = r.read(1) != 0;
            u.payload = static_cast<std::uint32_t>(
                r.read(u.compressed ? index_bits : 32));
        }
        units.push_back(u);
    }
    return units;
}

} // namespace di_wire

} // namespace approxnoc
