#include "compression/dictionary.h"

#include "common/arena.h"
#include "common/bits.h"
#include "common/log.h"
#include "telemetry/phase_profiler.h"

namespace approxnoc {

unsigned
DictionaryConfig::indexBits() const
{
    return log2_ceil(pmt_entries);
}

DictionaryCodecBase::DecoderState::DecoderState(const DictionaryConfig &cfg)
    : pmt(cfg.pmt_entries, cfg.policy),
      tracker(cfg.tracker_entries, ReplacementPolicy::Lfu),
      types(cfg.pmt_entries, DataType::Raw),
      known_by(cfg.pmt_entries, std::vector<bool>(cfg.n_nodes, false))
{}

DictionaryCodecBase::DictionaryCodecBase(const DictionaryConfig &cfg)
    : cfg_(cfg), index_bits_(cfg.indexBits())
{
    ANOC_ASSERT(cfg.n_nodes > 0, "dictionary codec needs at least one node");
    decoders_.reserve(cfg.n_nodes);
    for (std::size_t i = 0; i < cfg.n_nodes; ++i)
        decoders_.emplace_back(cfg);
    pending_.assign(cfg.n_nodes,
                    std::vector<std::deque<Update>>(cfg.n_nodes));
    pending_count_.assign(cfg.n_nodes, RelaxedCounter{});

    if (cfg_.preload_zero) {
        for (auto &d : decoders_) {
            std::size_t slot = d.pmt.insert(0);
            ANOC_ASSERT(slot == 0, "zero preload must land in slot 0");
            d.types[slot] = DataType::Raw;
            std::fill(d.known_by[slot].begin(), d.known_by[slot].end(),
                      true);
        }
    }
}

void
DictionaryCodecBase::preloadEncoders()
{
    if (!cfg_.preload_zero)
        return;
    for (NodeId e = 0; e < cfg_.n_nodes; ++e)
        for (NodeId d = 0; d < cfg_.n_nodes; ++d)
            applyUpdateAtEncoder(
                e, Update{0, false, 0, DataType::Raw, 0, d});
}

EncodedBlock
DictionaryCodecBase::finishEncoded(EncodedBlock enc, const DataBlock &block,
                                   NodeId src, NodeId dst,
                                   std::pmr::memory_resource *mr)
{
    enc.setMeta(block.type(), block.approximable());

    // Incompressible-block fallback (after Das et al. [12]): when the
    // per-word encoding would expand the block, send it raw; the
    // compressed/raw flag rides in the (uncompressed) head flit.
    if (enc.bits() > block.sizeBits() && block.size() > 0)
        enc = raw_encoded_block(
            block, static_cast<std::uint8_t>(DiWordKind::Raw), 32, mr);
    noteBlockEncoded(enc, block, src, dst);
    return enc;
}

EncodedBlock
DictionaryCodecBase::encode(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now)
{
    ANOC_ASSERT(src < cfg_.n_nodes && dst < cfg_.n_nodes,
                "node id out of range in dictionary encode");
    applyPending(src, now);
    noteEncoded(block.size());
    EncodedBlock enc;
    for (std::size_t i = 0; i < block.size(); ++i)
        enc.append(encodeWord(block.word(i), block, src, dst));
    return finishEncoded(std::move(enc), block, src, dst);
}

EncodedBlock
DictionaryCodecBase::encodeBlock(const DataBlock &block, NodeId src,
                                 NodeId dst, Cycle now)
{
    ANOC_ASSERT(src < cfg_.n_nodes && dst < cfg_.n_nodes,
                "node id out of range in dictionary encode");
    applyPending(src, now);
    noteEncoded(block.size());
    EncodedBlock enc;
    encodeSpan(block, src, dst, enc);
    return finishEncoded(std::move(enc), block, src, dst);
}

EncodedBlock
DictionaryCodecBase::encodeSpan(const DataBlock &block, NodeId src,
                                NodeId dst, Cycle now, Arena &arena)
{
    // Identical side effects and NR bits to encodeBlock(); only the
    // word vector's storage differs (arena vs heap).
    ANOC_ASSERT(src < cfg_.n_nodes && dst < cfg_.n_nodes,
                "node id out of range in dictionary encode");
    applyPending(src, now);
    noteEncoded(block.size());
    EncodedBlock enc(&arena);
    enc.reserve(block.size());
    encodeSpan(block, src, dst, enc);
    return finishEncoded(std::move(enc), block, src, dst, &arena);
}

void
DictionaryCodecBase::encodeSpan(const DataBlock &block, NodeId src,
                                NodeId dst, EncodedBlock &out)
{
    for (std::size_t i = 0; i < block.size(); ++i)
        out.append(encodeWord(block.word(i), block, src, dst));
}

DataBlock
DictionaryCodecBase::decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                            Cycle now)
{
    ANOC_ASSERT(src < cfg_.n_nodes && dst < cfg_.n_nodes,
                "node id out of range in dictionary decode");
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws(enc.wordCount());
    decodeSpan(enc, src, dst, now, ws.data());
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

DataBlock
DictionaryCodecBase::decodeBlock(const EncodedBlock &enc, NodeId src,
                                 NodeId dst, Cycle now)
{
    // decode() is already block-grained for the dictionary schemes;
    // both entry points share decodeSpan, so the batched path is the
    // spec path by construction (the decoder-side encodeOne pattern).
    return decode(enc, src, dst, now);
}

DecodedSpan
DictionaryCodecBase::decodeSpan(const EncodedBlock &enc, NodeId src,
                                NodeId dst, Cycle now, Arena &arena)
{
    // Identical words and learning side effects to decode(); the
    // reconstruction lands in arena storage and is returned by view.
    ANOC_ASSERT(src < cfg_.n_nodes && dst < cfg_.n_nodes,
                "node id out of range in dictionary decode");
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    Word *buf = arena.alloc<Word>(enc.wordCount());
    decodeSpan(enc, src, dst, now, buf);
    return DecodedSpan{buf, enc.wordCount(), enc.type(),
                       enc.approximable()};
}

void
DictionaryCodecBase::decodeSpan(const EncodedBlock &enc, NodeId src,
                                NodeId dst, Cycle now, Word *out)
{
    DecoderState &d = decoders_[dst];
    for (const auto &w : enc.words()) {
        Word v;
        if (w.kind == static_cast<std::uint8_t>(DiWordKind::Compressed)) {
            // The value the decoder produces is w.decoded (the pattern
            // the encoder's consistent view maps the index to). We then
            // verify the decoder's own tables agree — via either the
            // live PMT entry or a not-yet-expired stale mapping from an
            // in-flight eviction — and count any disagreement as a
            // protocol violation.
            std::size_t index = w.payload;
            bool consistent = false;

            if (index < d.pmt.capacity() && d.pmt.valid(index) &&
                d.pmt.key(index) == w.decoded) {
                d.pmt.touch(index);
                consistent = true;
            } else if (auto stale_it = d.stale.find({index, src});
                       stale_it != d.stale.end()) {
                auto &gens = stale_it->second;
                std::erase_if(gens, [now](const auto &g) {
                    return g.second <= now;
                });
                for (const auto &g : gens)
                    consistent = consistent || g.first == w.decoded;
                if (gens.empty())
                    d.stale.erase(stale_it);
            }
            if (!consistent)
                noteMismatch();
            v = w.decoded;
        } else {
            v = w.payload;
            learn(v, enc.type(), src, dst, now);
            if (v != w.decoded)
                noteMismatch();
        }
        for (unsigned r = 0; r < w.run; ++r)
            *out++ = v;
    }
}

void
DictionaryCodecBase::learn(Word w, DataType type, NodeId src, NodeId dst,
                           Cycle now)
{
    DecoderState &d = decoders_[dst];

    // Update-rate limiting: at most one notification per decoder per
    // notify_min_interval cycles; a skipped opportunity simply recurs
    // on a later sighting of the pattern.
    const bool may_notify =
        !d.ever_notified || now >= d.last_notify + cfg_.notify_min_interval;
    auto mark_notified = [&] {
        d.last_notify = now;
        d.ever_notified = true;
    };

    if (auto slot = d.pmt.peek(w)) {
        d.pmt.touch(*slot);
        if (!d.known_by[*slot][src] && may_notify) {
            d.known_by[*slot][src] = true;
            mark_notified();
            send(src, Update{now + cfg_.notify_delay, false, w, type,
                             static_cast<std::uint8_t>(*slot), dst},
                 now);
        }
        return;
    }

    std::size_t tslot = d.tracker.insert(w);
    if (d.tracker.frequency(tslot) < cfg_.promote_threshold || !may_notify)
        return;
    mark_notified();

    // Promote: allocate a decoder PMT slot, invalidating the victim at
    // every encoder that knew it.
    std::size_t victim = d.pmt.victimFor(w);
    if (d.pmt.valid(victim)) {
        Word old = d.pmt.key(victim);
        for (NodeId e = 0; e < cfg_.n_nodes; ++e) {
            if (d.known_by[victim][e]) {
                send(e, Update{now + cfg_.notify_delay, true, old,
                               d.types[victim],
                               static_cast<std::uint8_t>(victim), dst},
                     now);
                d.stale[{victim, e}].emplace_back(
                    old, now + cfg_.notify_delay + cfg_.zombie_grace);
            }
        }
    }
    std::size_t slot = d.pmt.insert(w);
    ANOC_ASSERT(slot == victim, "decoder PMT victim selection diverged");
    d.types[slot] = type;
    std::fill(d.known_by[slot].begin(), d.known_by[slot].end(), false);
    d.known_by[slot][src] = true;
    d.tracker.erase(tslot);
    send(src, Update{now + cfg_.notify_delay, false, w, type,
                     static_cast<std::uint8_t>(slot), dst},
         now);
}

void
DictionaryCodecBase::send(NodeId enc, Update u, Cycle now)
{
    (void)now;
    // Destination isolation: everything here is either owned by the
    // sending decoder (its channel towards enc, its notification
    // queue and sequence) or a commutative relaxed counter.
    DecoderState &d = decoders_[u.decoder];
    pending_[enc][u.decoder].push_back(u);
    pending_count_[enc].add(1);
    d.notify_queue.push_back(Notification{u.decoder, enc, d.next_seq++});
    ++notifications_sent_;
}

void
DictionaryCodecBase::applyPending(NodeId enc, Cycle now)
{
    if (pending_count_[enc].load() == 0)
        return;
    // Timed only once the occupancy gate has passed: the empty-FIFO
    // early-out above stays a single relaxed load per encode.
    telemetry::PhaseProfiler::Scope prof(profiler(), applyPendingPhase());
    auto &chans = pending_[enc];
    for (;;) {
        // Earliest due update across channels; ties on the apply
        // cycle break to the lowest decoder id. Each channel stays
        // FIFO, so a channel whose head is in the future contributes
        // nothing this round even if later entries are due — the
        // per-(decoder, encoder) ordering the consistency protocol
        // needs (an invalidation always precedes the reuse of its
        // index).
        std::size_t best = chans.size();
        for (std::size_t d = 0; d < chans.size(); ++d) {
            if (chans[d].empty() || chans[d].front().apply > now)
                continue;
            if (best == chans.size() ||
                chans[d].front().apply < chans[best].front().apply)
                best = d;
        }
        if (best == chans.size())
            break;
        Update u = chans[best].front();
        chans[best].pop_front();
        pending_count_[enc].sub(1);
        applyUpdateAtEncoder(enc, u);
    }
}

std::vector<CodecSystem::Notification>
DictionaryCodecBase::drainNotifications(NodeId dst)
{
    ANOC_ASSERT(dst < cfg_.n_nodes, "node id out of range in drain");
    std::vector<Notification> out;
    out.swap(decoders_[dst].notify_queue);
    return out;
}

std::size_t
DictionaryCodecBase::decoderPatternCount(NodeId node) const
{
    return decoders_[node].pmt.validCount();
}

std::uint64_t
DictionaryCodecBase::decoderSearches() const
{
    std::uint64_t n = 0;
    for (const auto &d : decoders_)
        n += d.pmt.searches() + d.tracker.searches();
    return n;
}

std::uint64_t
DictionaryCodecBase::decoderWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : decoders_)
        n += d.pmt.writes() + d.tracker.writes();
    return n;
}

DiCompCodec::EncoderState::EncoderState(const DictionaryConfig &cfg)
    : cam(cfg.pmt_entries, cfg.policy),
      index_for_dst(cfg.pmt_entries,
                    std::vector<std::int16_t>(cfg.n_nodes, kNoIndex)),
      slot_of_index(cfg.n_nodes,
                    std::vector<std::int16_t>(cfg.pmt_entries, kNoIndex))
{}

void
DiCompCodec::EncoderState::mapIndex(std::size_t slot, NodeId dst,
                                    std::uint8_t index)
{
    // The protocol guarantees at most one slot per (decoder, index):
    // an invalidation precedes any reuse of a decoder index. Drop a
    // stale inverse hit anyway so the two views can never diverge.
    std::int16_t old_slot = slot_of_index[dst][index];
    if (old_slot != kNoIndex)
        index_for_dst[static_cast<std::size_t>(old_slot)][dst] = kNoIndex;
    index_for_dst[slot][dst] = static_cast<std::int16_t>(index);
    slot_of_index[dst][index] = static_cast<std::int16_t>(slot);
}

void
DiCompCodec::EncoderState::unmapSlot(std::size_t slot)
{
    for (NodeId d = 0; d < index_for_dst[slot].size(); ++d) {
        std::int16_t idx = index_for_dst[slot][d];
        if (idx != kNoIndex) {
            slot_of_index[d][static_cast<std::size_t>(idx)] = kNoIndex;
            index_for_dst[slot][d] = kNoIndex;
        }
    }
}

DiCompCodec::DiCompCodec(const DictionaryConfig &cfg)
    : DictionaryCodecBase(cfg)
{
    encoders_.reserve(cfg.n_nodes);
    for (std::size_t i = 0; i < cfg.n_nodes; ++i)
        encoders_.emplace_back(cfg);
    preloadEncoders();
}

EncodedWord
DiCompCodec::encodeOne(EncoderState &e, Word w, NodeId dst)
{
    EncodedWord ew;
    auto slot = e.cam.search(w);
    if (slot && e.index_for_dst[*slot][dst] != kNoIndex) {
        ew.kind = static_cast<std::uint8_t>(DiWordKind::Compressed);
        ew.bits = compressedBits();
        ew.payload = static_cast<std::uint32_t>(e.index_for_dst[*slot][dst]);
        ew.decoded = w;
    } else {
        ew.kind = static_cast<std::uint8_t>(DiWordKind::Raw);
        ew.bits = rawBits();
        ew.payload = w;
        ew.decoded = w;
        ew.uncompressed = true;
    }
    return ew;
}

EncodedWord
DiCompCodec::encodeWord(Word w, const DataBlock &, NodeId src, NodeId dst)
{
    return encodeOne(encoders_[src], w, dst);
}

void
DiCompCodec::encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                        EncodedBlock &out)
{
    EncoderState &e = encoders_[src];
    for (std::size_t i = 0; i < block.size(); ++i)
        out.append(encodeOne(e, block.word(i), dst));
}

void
DiCompCodec::applyUpdateAtEncoder(NodeId enc, const Update &u)
{
    EncoderState &e = encoders_[enc];
    if (u.invalidate) {
        std::int16_t slot = e.slot_of_index[u.decoder][u.index];
        if (slot != kNoIndex) {
            e.index_for_dst[static_cast<std::size_t>(slot)][u.decoder] =
                kNoIndex;
            e.slot_of_index[u.decoder][u.index] = kNoIndex;
        }
        return;
    }
    std::size_t slot = e.cam.victimFor(u.pattern);
    bool evicting = e.cam.valid(slot) && e.cam.key(slot) != u.pattern;
    if (evicting)
        e.unmapSlot(slot);
    std::size_t got = e.cam.insert(u.pattern);
    ANOC_ASSERT(got == slot, "encoder PMT victim selection diverged");
    e.mapIndex(slot, u.decoder, u.index);
}

std::uint64_t
DiCompCodec::encoderSearches() const
{
    std::uint64_t n = 0;
    for (const auto &e : encoders_)
        n += e.cam.searches();
    return n;
}

std::uint64_t
DiCompCodec::encoderWrites() const
{
    std::uint64_t n = 0;
    for (const auto &e : encoders_)
        n += e.cam.writes();
    return n;
}

std::size_t
DiCompCodec::encoderPatternCount(NodeId node) const
{
    return encoders_[node].cam.validCount();
}

} // namespace approxnoc
