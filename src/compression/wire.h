/**
 * @file
 * Wire formats: serialize encoded blocks to an actual bitstream and
 * back, proving the bit counts the codecs account for are achievable
 * on real flits. The head flit carries the block-level raw flag and
 * the word count, so both are out-of-band here.
 */
#ifndef APPROXNOC_COMPRESSION_WIRE_H
#define APPROXNOC_COMPRESSION_WIRE_H

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/data_block.h"
#include "compression/encoded.h"

namespace approxnoc {

/** FPC / FP-VAXX wire format (3-bit prefix + pattern data bits). */
namespace fpc_wire {

/**
 * Pack @p enc into a bitstream.
 * @param[out] raw_flag set when the block is a raw fallback (no
 *             prefixes on the wire).
 * Panics if the packed size disagrees with enc.bits().
 */
std::vector<std::uint8_t> pack(const EncodedBlock &enc, bool &raw_flag);

/**
 * Decode @p bytes back into words. This is the *real* decoder datapath:
 * it reconstructs values purely from bits.
 */
DataBlock unpack(const std::vector<std::uint8_t> &bytes, bool raw_flag,
                 std::size_t n_words, DataType type, bool approximable);

} // namespace fpc_wire

/** Dictionary wire format (1 flag bit + index or raw word). */
namespace di_wire {

/** One deserialized unit. */
struct Unit {
    bool compressed = false;
    std::uint32_t payload = 0; ///< PMT index or raw word
};

std::vector<std::uint8_t> pack(const EncodedBlock &enc, bool &raw_flag);

/**
 * Deserialize the unit stream; mapping indices to values requires the
 * decoder PMT and is the codec's job.
 */
std::vector<Unit> unpack(const std::vector<std::uint8_t> &bytes,
                         bool raw_flag, std::size_t n_words,
                         unsigned index_bits);

} // namespace di_wire

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_WIRE_H
