/**
 * @file
 * Adaptive compression on/off, after Jin et al. [17]: a wrapper codec
 * that monitors per-sender compression efficacy over a sliding window
 * and bypasses the inner encoder (sending raw blocks, saving the
 * matching energy and latency) while compression is not paying off,
 * probing periodically to re-enable it when the data changes.
 */
#ifndef APPROXNOC_COMPRESSION_ADAPTIVE_H
#define APPROXNOC_COMPRESSION_ADAPTIVE_H

#include <memory>
#include <vector>

#include "common/contract.h"
#include "compression/codec.h"

namespace approxnoc {

/** Tunables for the adaptive wrapper. */
struct AdaptiveConfig {
    std::size_t n_nodes = 32;
    /** Blocks per efficacy-evaluation window. */
    std::uint32_t window_blocks = 32;
    /** Keep compressing only while raw/enc bit ratio >= this. */
    double min_ratio = 1.05;
    /** Blocks to stay off before probing again. */
    std::uint32_t off_blocks = 256;
    /** Blocks compressed during a probe. */
    std::uint32_t probe_blocks = 8;
};

/** The wrapper. Owns the inner codec. */
class AdaptiveCodec : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    AdaptiveCodec(std::unique_ptr<CodecSystem> inner, AdaptiveConfig cfg);

    Scheme scheme() const override { return inner_->scheme(); }
    std::uint8_t rawKind() const override { return inner_->rawKind(); }

    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    /** Batched path: same bypass/probe logic, delegating compressed
     * blocks to the inner codec's batched encodeBlock. */
    EncodedBlock encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                             Cycle now) override;
    /** Arena path: same bypass/probe logic; bypassed raw blocks and
     * delegated encodes both land their word storage in @p arena. */
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    /** The wrapper adds no decode-side state: forward to the inner
     * codec's arena path. */
    DecodedSpan
    decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst, Cycle now,
               Arena &arena) override
    {
        return inner_->decodeSpan(enc, src, dst, now, arena);
    }
    /** Batched path: the wrapper adds no decode-side state, so this
     * forwards straight to the inner codec's batched decodeBlock —
     * raw-bypassed blocks decode as all-uncompressed words there. */
    DataBlock
    decodeBlock(const EncodedBlock &enc, NodeId src, NodeId dst,
                Cycle now) override
    {
        return inner_->decodeBlock(enc, src, dst, now);
    }

    Cycle
    compressionLatency() const override
    {
        return inner_->compressionLatency();
    }
    Cycle
    decompressionLatency() const override
    {
        return inner_->decompressionLatency();
    }
    std::vector<Notification>
    drainNotifications(NodeId dst) override
    {
        return inner_->drainNotifications(dst);
    }
    CodecActivity activity() const override { return inner_->activity(); }
    std::uint64_t
    consistencyMismatches() const override
    {
        return inner_->consistencyMismatches();
    }
    bool
    setErrorThreshold(double pct) override
    {
        return inner_->setErrorThreshold(pct);
    }

    /** Bind both layers: bypassed raw blocks record here, the rest in
     * the inner codec. A delegated block is recorded exactly once. */
    void
    bindCounters(const CodecCounters &c) override
    {
        CodecSystem::bindCounters(c);
        inner_->bindCounters(c);
    }

    /** Inner codec only: bypassed blocks are bit-exact by definition,
     * so only delegated (possibly approximating) encodes record QoR. */
    void
    bindErrorProfile(telemetry::ErrorProfile *qor) override
    {
        inner_->bindErrorProfile(qor);
    }

    /** Both layers: the inner codec owns the apply-pending phase. */
    void bindProfiler(telemetry::PhaseProfiler *prof) override;

    CodecSystem &inner() { return *inner_; }

    /** True when sender @p src currently compresses (tests/stats). */
    bool compressionEnabled(NodeId src) const;

    /** Blocks that bypassed the inner encoder entirely. */
    std::uint64_t bypassedBlocks() const { return bypassed_; }

  private:
    enum class Mode : std::uint8_t { On, Off, Probe };

    struct SenderState {
        Mode mode = Mode::On;
        std::uint64_t window_raw_bits = 0;
        std::uint64_t window_enc_bits = 0;
        std::uint32_t window_count = 0;
        std::uint32_t off_count = 0;
    };

    EncodedBlock encodeImpl(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, bool batched, Arena *arena = nullptr);
    void evaluateWindow(SenderState &s);

    ANOC_REGION_SHARED std::unique_ptr<CodecSystem> inner_;
    ANOC_REGION_SHARED AdaptiveConfig cfg_;
    /** Mode windows are per sender, preserving the CodecSystem
     * flow-isolation contract: concurrent encodes for distinct src
     * touch disjoint SenderStates. */
    ANOC_SHARD_LOCAL std::vector<SenderState> senders_;
    /** Relaxed-atomic: the only cross-sender encode-side state. */
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter bypassed_;
};

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_ADAPTIVE_H
