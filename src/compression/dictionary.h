/**
 * @file
 * Dictionary-based NoC compression (DI-COMP) after Jin et al. [17] and
 * the paper's Fig. 7: decoders learn frequent patterns per sender and
 * send update notifications; encoder PMTs keep a per-destination vector
 * of encoded indices. The decoder-side learning, update channel and
 * consistency protocol live in DictionaryCodecBase so the DI-VAXX
 * variant (TCAM encoder, approx/di_vaxx.h) can reuse them.
 *
 * Consistency protocol: notifications apply at the encoder after
 * `notify_delay` cycles (FIFO per encoder, so ordering is preserved).
 * When the decoder evicts a PMT entry it keeps a per-(index, sender)
 * "stale" mapping alive until the matching invalidation has applied at
 * the sender plus a grace window, so indices compressed with the old
 * view still decode to the old pattern. Any residual disagreement is
 * counted by consistencyMismatches() (expected zero).
 */
#ifndef APPROXNOC_COMPRESSION_DICTIONARY_H
#define APPROXNOC_COMPRESSION_DICTIONARY_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory_resource>
#include <optional>
#include <vector>

#include "common/contract.h"
#include "common/types.h"

#include "compression/codec.h"
#include "tcam/cam.h"

namespace approxnoc {

/** Tunables for the dictionary schemes (paper Table 1: 8-entry PMTs). */
struct DictionaryConfig {
    std::size_t n_nodes = 16;          ///< endpoints in the network
    std::size_t pmt_entries = 8;       ///< encoder/decoder PMT size
    std::size_t tracker_entries = 64;  ///< decoder candidate tracker size
    std::uint32_t promote_threshold = 3; ///< sightings before promotion
    Cycle notify_delay = 20;           ///< decoder->encoder update latency
    /**
     * Minimum spacing between update notifications from one decoder.
     * Bounds the control-packet overhead of dictionary training on
     * churn-heavy data (a decoder simply retries on a later sighting).
     */
    Cycle notify_min_interval = 50;
    Cycle zombie_grace = 2000;         ///< stale decode window after eviction
    ReplacementPolicy policy = ReplacementPolicy::Lfu;
    /**
     * Hardwire the all-zero word into every PMT at reset (index 0),
     * as frequent-value compression does [37] — zero lines dominate
     * real cache traffic and need no training.
     */
    bool preload_zero = true;

    /** Bits of an encoded index (3 for the default 8-entry PMT). */
    unsigned indexBits() const;
};

/** Per-word NR layout for the dictionary schemes. */
enum class DiWordKind : std::uint8_t {
    Raw = 0,        ///< 1 flag bit + 32 raw bits
    Compressed = 1, ///< 1 flag bit + indexBits() bits
};

/**
 * Shared machinery: decoder PMTs + candidate trackers, the delayed
 * update channel, eviction/invalidation bookkeeping and the decode
 * path. Subclasses own the encoder-side structures.
 *
 * State isolation (the CodecSystem flow-isolation and
 * destination-isolation contracts, which the parallel paths in
 * harness/FlowShardedEncoder and harness/FlowShardedDecoder rely on):
 * encode()/encodeBlock() for source s touches only the subclass's
 * encoders_[s] (PMT, replacement metadata, per-destination index
 * views) and pending_[s] (the update channels applyPending merges)
 * plus relaxed-atomic counters — never decoders_ or another source's
 * tables. decode()/decodeBlock() for destination d touches only
 * decoders_[d] (PMT, tracker, stale mappings, notification queue and
 * sequence) and, via send(), the pending_[*][d] channels d alone
 * owns, plus relaxed-atomic counters — never another destination's
 * decoder state. Encodes and decodes must not overlap in time: the
 * encoder side drains the very channels the decoder side fills.
 */
class DictionaryCodecBase : public CodecSystem
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    explicit DictionaryCodecBase(const DictionaryConfig &cfg);

    EncodedBlock encode(const DataBlock &block, NodeId src, NodeId dst,
                        Cycle now) override;
    EncodedBlock encodeBlock(const DataBlock &block, NodeId src, NodeId dst,
                             Cycle now) override;
    EncodedBlock encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            Cycle now, Arena &arena) override;
    DataBlock decode(const EncodedBlock &enc, NodeId src, NodeId dst,
                     Cycle now) override;
    DataBlock decodeBlock(const EncodedBlock &enc, NodeId src, NodeId dst,
                          Cycle now) override;
    DecodedSpan decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                           Cycle now, Arena &arena) override;

    std::vector<Notification> drainNotifications(NodeId dst) override;

    std::uint8_t
    rawKind() const override
    {
        return static_cast<std::uint8_t>(DiWordKind::Raw);
    }

    const DictionaryConfig &config() const { return cfg_; }

    /** Decoder PMT occupancy at @p node (diagnostics / tests). */
    std::size_t decoderPatternCount(NodeId node) const;

    /** Total update + invalidate notifications ever sent. */
    std::uint64_t notificationsSent() const { return notifications_sent_; }

    /** Total CAM/TCAM search and write activity (power model input). */
    virtual std::uint64_t encoderSearches() const = 0;
    virtual std::uint64_t encoderWrites() const = 0;
    std::uint64_t decoderSearches() const;
    std::uint64_t decoderWrites() const;

    CodecActivity
    activity() const override
    {
        CodecActivity a = CodecSystem::activity();
        a.cam_searches = encoderSearches() + decoderSearches();
        a.cam_writes = encoderWrites() + decoderWrites();
        return a;
    }

  protected:
    /** An update or invalidation in flight towards an encoder. */
    struct Update {
        Cycle apply = 0;         ///< cycle at which the encoder sees it
        bool invalidate = false; ///< true: drop (decoder,index) mapping
        Word pattern = 0;        ///< pattern being installed (updates)
        DataType type = DataType::Raw; ///< data type the pattern was learned from
        std::uint8_t index = 0;  ///< decoder PMT index
        NodeId decoder = 0;      ///< decoder that owns the index
    };

    /** Encode a single word at @p src for @p dst (encoder tables). */
    virtual EncodedWord encodeWord(Word w, const DataBlock &block,
                                   NodeId src, NodeId dst) = 0;

    /**
     * Batched inner loop behind encodeBlock(): append the NR of every
     * word of @p block to @p out. The default issues one virtual
     * encodeWord call per word; subclasses override it with a loop
     * that hoists encoder-state lookup and per-block predicates, so
     * the whole 16-word block costs one virtual dispatch.
     */
    virtual void encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                            EncodedBlock &out);

    /**
     * Batched inner loop behind decodeBlock(): write the decoded
     * words of @p enc — exactly enc.wordCount() of them — to @p out,
     * with the destination's DecoderState and per-block predicates
     * hoisted. Takes a raw output pointer (the count is known upfront)
     * so decode() fills a heap vector and the zero-copy decodeSpan
     * overload fills arena storage through the very same code — the
     * spec and batched paths are trivially bit-identical (the
     * encodeOne pattern, decoder side).
     */
    virtual void decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                            Cycle now, Word *out);

    /** Apply one due notification to encoder @p enc's tables. */
    virtual void applyUpdateAtEncoder(NodeId enc, const Update &u) = 0;

    /**
     * Apply every notification due at @p now for encoder @p enc,
     * merging the per-(encoder, decoder) channels in a deterministic
     * order: ascending (apply cycle, decoder id), each channel
     * consumed in FIFO (= per-destination sequence) order, and a
     * channel whose head is not yet due blocks only itself. The merge
     * is a pure function of the channel contents, which are each
     * owned by one destination — so the encoder sees the same update
     * sequence at any decode job count.
     */
    void applyPending(NodeId enc, Cycle now);

    /**
     * Install the preloaded zero pattern into every encoder via
     * applyUpdateAtEncoder. Subclasses call this at the end of their
     * constructor (the decoder side is preloaded by the base).
     */
    void preloadEncoders();

    /** Word length of a compressed unit, in bits (flag + index). */
    std::uint16_t compressedBits() const { return 1 + index_bits_; }
    /** Word length of a raw unit, in bits (flag + word). */
    std::uint16_t rawBits() const { return 1 + 32; }

    ANOC_REGION_SHARED DictionaryConfig cfg_;
    ANOC_REGION_SHARED unsigned index_bits_;

  private:
    /** Shared encode tail: meta, incompressible-block fallback (after
     * Das et al. [12]), per-block telemetry + QoR error recording.
     * @p mr backs the raw fallback block (null = heap), so the arena
     * path stays arena-backed even when the fallback fires. */
    EncodedBlock finishEncoded(EncodedBlock enc, const DataBlock &block,
                               NodeId src, NodeId dst,
                               std::pmr::memory_resource *mr = nullptr);

    /** Decoder-side learning on an uncompressed word from @p src. */
    void learn(Word w, DataType type, NodeId src, NodeId dst, Cycle now);

    /** Queue an update/invalidate towards encoder @p enc. */
    void send(NodeId enc, Update u, Cycle now);

    struct DecoderState {
        Cam pmt;     ///< slot == encoded index
        Cam tracker; ///< candidate frequency tracking
        std::vector<DataType> types;            ///< per-slot learned type
        std::vector<std::vector<bool>> known_by; ///< [slot][encoder]
        /**
         * (index, sender) -> patterns still decodable after eviction.
         * Multiple generations can be in flight when a slot is evicted
         * repeatedly within the notification window.
         */
        std::map<std::pair<std::size_t, NodeId>,
                 std::vector<std::pair<Word, Cycle>>>
            stale;
        /** Last cycle this decoder sent an update (rate limiting). */
        Cycle last_notify = 0;
        bool ever_notified = false;
        /** Notifications queued since the last drain of this node. */
        std::vector<Notification> notify_queue;
        /** Next per-destination notification sequence number. */
        std::uint64_t next_seq = 0;

        DecoderState(const DictionaryConfig &cfg);
    };

    ANOC_SHARD_LOCAL std::vector<DecoderState> decoders_;
    /**
     * Pending update channels, [encoder][decoder]: the update FIFO
     * from one decoder towards one encoder. Splitting the historical
     * per-encoder FIFO by decoder is what makes parallel decode
     * deterministic — each channel is written by exactly one
     * destination shard, and applyPending merges them in a
     * deterministic order (see above).
     */
    /** Shard-local in both phases, under different keys: channel
     * [e][d] is written only by destination shard d (decode phase)
     * and drained only by source shard e (encode phase), and the two
     * phases never overlap (the pipeline's phasing obligation). */
    ANOC_SHARD_LOCAL std::vector<std::vector<std::deque<Update>>> pending_;
    /**
     * Relaxed-atomic occupancy gate per encoder: total updates queued
     * across that encoder's channels, so the per-block applyPending
     * call skips the channel scan when nothing is in flight.
     * Commutative (adds from decoder shards, subs from the encoder),
     * so the gate never diverges from the channel contents between
     * phases.
     */
    ANOC_CROSS_SHARD(RelaxedCounter) std::vector<RelaxedCounter> pending_count_;
    ANOC_CROSS_SHARD(RelaxedCounter) RelaxedCounter notifications_sent_;
};

/**
 * Exact dictionary compression (the paper's DI-COMP baseline).
 * Encoder PMT: an exact-match CAM plus, per slot, the per-destination
 * encoded index vector of Fig. 7(a).
 */
class DiCompCodec : public DictionaryCodecBase
{
  public:
    ANOC_ISOLATION_CONTRACT(flow_isolation, destination_isolation);

    explicit DiCompCodec(const DictionaryConfig &cfg);

    Scheme scheme() const override { return Scheme::DiComp; }

    std::uint64_t encoderSearches() const override;
    std::uint64_t encoderWrites() const override;

    /** Encoder PMT occupancy at @p node (tests). */
    std::size_t encoderPatternCount(NodeId node) const;

  protected:
    EncodedWord encodeWord(Word w, const DataBlock &block, NodeId src,
                           NodeId dst) override;
    void encodeSpan(const DataBlock &block, NodeId src, NodeId dst,
                    EncodedBlock &out) override;
    void applyUpdateAtEncoder(NodeId enc, const Update &u) override;

  private:
    static constexpr std::int16_t kNoIndex = -1;

    struct EncoderState {
        Cam cam;
        /** [slot][dst] -> decoder index or kNoIndex. */
        std::vector<std::vector<std::int16_t>> index_for_dst;
        /**
         * Inverse view, [dst][index] -> slot or kNoIndex, so an
         * invalidation notification drops its mapping in O(1) instead
         * of sweeping every CAM slot.
         */
        std::vector<std::vector<std::int16_t>> slot_of_index;

        EncoderState(const DictionaryConfig &cfg);

        /** Set slot/index/dst triple, dropping any stale inverse hit. */
        void mapIndex(std::size_t slot, NodeId dst, std::uint8_t index);
        /** Clear every per-destination mapping of @p slot (eviction). */
        void unmapSlot(std::size_t slot);
    };

    /** The per-word encode step both paths share: O(1) hashed CAM
     * lookup, then the per-destination index check. */
    EncodedWord encodeOne(EncoderState &e, Word w, NodeId dst);

    ANOC_SHARD_LOCAL std::vector<EncoderState> encoders_;
};

} // namespace approxnoc

#endif // APPROXNOC_COMPRESSION_DICTIONARY_H
