#include "compression/encoded.h"

namespace approxnoc {

std::size_t
EncodedBlock::approximatedWords() const
{
    std::size_t n = 0;
    for (const auto &w : words_)
        n += w.approx_count;
    return n;
}

std::size_t
EncodedBlock::exactCompressedWords() const
{
    std::size_t n = 0;
    for (const auto &w : words_)
        if (!w.uncompressed)
            n += w.run - w.approx_count;
    return n;
}

std::size_t
EncodedBlock::uncompressedWords() const
{
    std::size_t n = 0;
    for (const auto &w : words_)
        if (w.uncompressed)
            n += w.run;
    return n;
}

DataBlock
EncodedBlock::expectedBlock() const
{
    std::vector<Word> ws;
    ws.reserve(n_words_);
    for (const auto &w : words_)
        for (unsigned r = 0; r < w.run; ++r)
            ws.push_back(w.decoded);
    return DataBlock(std::move(ws), type_, approximable_);
}

EncodedBlock
raw_encoded_block(const DataBlock &block, std::uint8_t kind,
                  std::uint16_t bits_per_word, std::pmr::memory_resource *mr)
{
    EncodedBlock raw(mr);
    raw.reserve(block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
        EncodedWord ew;
        ew.kind = kind;
        ew.bits = bits_per_word;
        ew.payload = block.word(i);
        ew.decoded = block.word(i);
        ew.uncompressed = true;
        raw.append(ew);
    }
    raw.setMeta(block.type(), block.approximable());
    return raw;
}

} // namespace approxnoc
