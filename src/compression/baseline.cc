#include "compression/codec.h"

namespace approxnoc {

CodecActivity
CodecSystem::activity() const
{
    CodecActivity a;
    a.words_encoded = words_encoded_;
    a.words_decoded = words_decoded_;
    return a;
}

EncodedBlock
BaselineCodec::encode(const DataBlock &block, NodeId, NodeId, Cycle)
{
    EncodedBlock enc;
    noteEncoded(block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
        EncodedWord ew;
        ew.kind = 0;
        ew.bits = 32;
        ew.payload = block.word(i);
        ew.decoded = block.word(i);
        ew.uncompressed = true;
        enc.append(ew);
    }
    enc.setMeta(block.type(), block.approximable());
    noteBlockEncoded(enc);
    return enc;
}

DataBlock
BaselineCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws;
    ws.reserve(enc.wordCount());
    for (const auto &w : enc.words())
        ws.push_back(w.payload);
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

} // namespace approxnoc
