#include "common/arena.h"
#include "compression/codec.h"

namespace approxnoc {

CodecActivity
CodecSystem::activity() const
{
    CodecActivity a;
    a.words_encoded = words_encoded_;
    a.words_decoded = words_decoded_;
    return a;
}

EncodedBlock
BaselineCodec::encode(const DataBlock &block, NodeId, NodeId, Cycle)
{
    noteEncoded(block.size());
    EncodedBlock enc = raw_encoded_block(block, 0);
    noteBlockEncoded(enc);
    return enc;
}

EncodedBlock
BaselineCodec::encodeSpan(const DataBlock &block, NodeId, NodeId, Cycle,
                          Arena &arena)
{
    noteEncoded(block.size());
    EncodedBlock enc = raw_encoded_block(block, 0, 32, &arena);
    noteBlockEncoded(enc);
    return enc;
}

DataBlock
BaselineCodec::decode(const EncodedBlock &enc, NodeId, NodeId, Cycle)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    std::vector<Word> ws;
    ws.reserve(enc.wordCount());
    for (const auto &w : enc.words())
        ws.push_back(w.payload);
    return DataBlock(std::move(ws), enc.type(), enc.approximable());
}

DecodedSpan
BaselineCodec::decodeSpan(const EncodedBlock &enc, NodeId, NodeId, Cycle,
                          Arena &arena)
{
    noteDecoded(enc.wordCount());
    noteBlockDecoded();
    Word *buf = arena.alloc<Word>(enc.wordCount());
    Word *out = buf;
    for (const auto &w : enc.words())
        for (unsigned r = 0; r < w.run; ++r)
            *out++ = w.payload;
    return DecodedSpan{buf, enc.wordCount(), enc.type(),
                       enc.approximable()};
}

} // namespace approxnoc
