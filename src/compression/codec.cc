#include "compression/codec.h"

#include <algorithm>

#include "common/arena.h"
#include "common/relative_error.h"
#include "telemetry/error_profile.h"
#include "telemetry/phase_profiler.h"

namespace approxnoc {

DecodedSpan
CodecSystem::decodeSpan(const EncodedBlock &enc, NodeId src, NodeId dst,
                        Cycle now, Arena &arena)
{
    // Default: route through decodeBlock() (all side effects included)
    // and copy the result into the arena once. Schemes override this
    // to decode straight into arena storage.
    DataBlock b = decodeBlock(enc, src, dst, now);
    Word *buf = arena.alloc<Word>(b.size());
    std::copy(b.words().begin(), b.words().end(), buf);
    return DecodedSpan{buf, b.size(), b.type(), b.approximable()};
}

void
CodecSystem::bindProfiler(telemetry::PhaseProfiler *prof)
{
    profiler_ = prof;
    if (profiler_)
        apply_pending_phase_ = profiler_->definePhase("codec.apply_pending");
}

void
CodecSystem::recordQoR(const DataBlock &precise, const EncodedBlock &enc,
                       NodeId src, NodeId dst)
{
    // Each NR unit covers `run` source words; an approximated unit
    // reconstructs every covered word as `decoded`. Only words whose
    // bits actually changed carry error — a word that happened to
    // equal the substituted pattern is an exact hit.
    std::size_t i = 0;
    for (const EncodedWord &ew : enc.words()) {
        if (ew.approximated) {
            for (unsigned j = 0; j < ew.run && i + j < precise.size(); ++j) {
                const Word w = precise.word(i + j);
                if (w != ew.decoded)
                    qor_->record(src, dst,
                                 signed_relative_error(w, ew.decoded,
                                                       precise.type()));
            }
        }
        i += ew.run;
    }
}

} // namespace approxnoc
