file(REMOVE_RECURSE
  "../examples/graph_analytics"
  "../examples/graph_analytics.pdb"
  "CMakeFiles/graph_analytics.dir/graph_analytics.cpp.o"
  "CMakeFiles/graph_analytics.dir/graph_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
