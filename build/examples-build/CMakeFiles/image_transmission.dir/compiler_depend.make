# Empty compiler generated dependencies file for image_transmission.
# This may be replaced when dependencies are built.
