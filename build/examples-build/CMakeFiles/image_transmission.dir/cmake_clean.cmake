file(REMOVE_RECURSE
  "../examples/image_transmission"
  "../examples/image_transmission.pdb"
  "CMakeFiles/image_transmission.dir/image_transmission.cpp.o"
  "CMakeFiles/image_transmission.dir/image_transmission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
