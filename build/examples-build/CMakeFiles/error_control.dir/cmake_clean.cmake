file(REMOVE_RECURSE
  "../examples/error_control"
  "../examples/error_control.pdb"
  "CMakeFiles/error_control.dir/error_control.cpp.o"
  "CMakeFiles/error_control.dir/error_control.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
