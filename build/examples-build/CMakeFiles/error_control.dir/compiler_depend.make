# Empty compiler generated dependencies file for error_control.
# This may be replaced when dependencies are built.
