file(REMOVE_RECURSE
  "../examples/custom_compressor"
  "../examples/custom_compressor.pdb"
  "CMakeFiles/custom_compressor.dir/custom_compressor.cpp.o"
  "CMakeFiles/custom_compressor.dir/custom_compressor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
