file(REMOVE_RECURSE
  "../examples/noc_simulation"
  "../examples/noc_simulation.pdb"
  "CMakeFiles/noc_simulation.dir/noc_simulation.cpp.o"
  "CMakeFiles/noc_simulation.dir/noc_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
