# Empty dependencies file for noc_simulation.
# This may be replaced when dependencies are built.
