
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bits.cc" "tests/CMakeFiles/unit_tests.dir/test_bits.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_bits.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cam_tcam.cc" "tests/CMakeFiles/unit_tests.dir/test_cam_tcam.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cam_tcam.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/unit_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_di_vaxx.cc" "tests/CMakeFiles/unit_tests.dir/test_di_vaxx.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_di_vaxx.cc.o.d"
  "/root/repo/tests/test_dictionary.cc" "tests/CMakeFiles/unit_tests.dir/test_dictionary.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_dictionary.cc.o.d"
  "/root/repo/tests/test_error_model.cc" "tests/CMakeFiles/unit_tests.dir/test_error_model.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_error_model.cc.o.d"
  "/root/repo/tests/test_errors.cc" "tests/CMakeFiles/unit_tests.dir/test_errors.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_errors.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault_injection.cc" "tests/CMakeFiles/unit_tests.dir/test_fault_injection.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_fault_injection.cc.o.d"
  "/root/repo/tests/test_fp_vaxx.cc" "tests/CMakeFiles/unit_tests.dir/test_fp_vaxx.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_fp_vaxx.cc.o.d"
  "/root/repo/tests/test_fpc.cc" "tests/CMakeFiles/unit_tests.dir/test_fpc.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_fpc.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/unit_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/unit_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/unit_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_router.cc" "tests/CMakeFiles/unit_tests.dir/test_router.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_router.cc.o.d"
  "/root/repo/tests/test_scheme_properties.cc" "tests/CMakeFiles/unit_tests.dir/test_scheme_properties.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_scheme_properties.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/unit_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_torus.cc" "tests/CMakeFiles/unit_tests.dir/test_torus.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_torus.cc.o.d"
  "/root/repo/tests/test_traffic.cc" "tests/CMakeFiles/unit_tests.dir/test_traffic.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_traffic.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/unit_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/approxnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/approxnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/approxnoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/approxnoc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/approxnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
