file(REMOVE_RECURSE
  "../tools/approxnoc_sim"
  "../tools/approxnoc_sim.pdb"
  "CMakeFiles/approxnoc_sim_tool.dir/approxnoc_sim.cpp.o"
  "CMakeFiles/approxnoc_sim_tool.dir/approxnoc_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
