# Empty compiler generated dependencies file for approxnoc_sim_tool.
# This may be replaced when dependencies are built.
