# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_sim_mesh "/root/repo/build/tools/approxnoc_sim" "--cycles=3000" "--quiet")
set_tests_properties(tool_sim_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_torus "/root/repo/build/tools/approxnoc_sim" "--topology=torus" "--scheme=DI-VAXX" "--closed-loop" "--cycles=3000" "--quiet")
set_tests_properties(tool_sim_torus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_westfirst "/root/repo/build/tools/approxnoc_sim" "--routing=westfirst" "--traffic=transpose" "--rate=0.2" "--cycles=3000" "--quiet")
set_tests_properties(tool_sim_westfirst PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
