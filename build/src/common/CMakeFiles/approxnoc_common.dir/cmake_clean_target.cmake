file(REMOVE_RECURSE
  "libapproxnoc_common.a"
)
