file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_common.dir/bitstream.cc.o"
  "CMakeFiles/approxnoc_common.dir/bitstream.cc.o.d"
  "CMakeFiles/approxnoc_common.dir/cli.cc.o"
  "CMakeFiles/approxnoc_common.dir/cli.cc.o.d"
  "CMakeFiles/approxnoc_common.dir/data_block.cc.o"
  "CMakeFiles/approxnoc_common.dir/data_block.cc.o.d"
  "CMakeFiles/approxnoc_common.dir/log.cc.o"
  "CMakeFiles/approxnoc_common.dir/log.cc.o.d"
  "CMakeFiles/approxnoc_common.dir/stats.cc.o"
  "CMakeFiles/approxnoc_common.dir/stats.cc.o.d"
  "CMakeFiles/approxnoc_common.dir/table.cc.o"
  "CMakeFiles/approxnoc_common.dir/table.cc.o.d"
  "libapproxnoc_common.a"
  "libapproxnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
