# Empty dependencies file for approxnoc_common.
# This may be replaced when dependencies are built.
