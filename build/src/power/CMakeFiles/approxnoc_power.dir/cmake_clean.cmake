file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_power.dir/area_model.cc.o"
  "CMakeFiles/approxnoc_power.dir/area_model.cc.o.d"
  "CMakeFiles/approxnoc_power.dir/power_model.cc.o"
  "CMakeFiles/approxnoc_power.dir/power_model.cc.o.d"
  "libapproxnoc_power.a"
  "libapproxnoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
