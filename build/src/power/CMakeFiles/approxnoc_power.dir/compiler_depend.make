# Empty compiler generated dependencies file for approxnoc_power.
# This may be replaced when dependencies are built.
