file(REMOVE_RECURSE
  "libapproxnoc_power.a"
)
