# Empty dependencies file for approxnoc_sim.
# This may be replaced when dependencies are built.
