file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_sim.dir/event_queue.cc.o"
  "CMakeFiles/approxnoc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/approxnoc_sim.dir/simulator.cc.o"
  "CMakeFiles/approxnoc_sim.dir/simulator.cc.o.d"
  "libapproxnoc_sim.a"
  "libapproxnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
