file(REMOVE_RECURSE
  "libapproxnoc_sim.a"
)
