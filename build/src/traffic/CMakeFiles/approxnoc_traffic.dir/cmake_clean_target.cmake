file(REMOVE_RECURSE
  "libapproxnoc_traffic.a"
)
