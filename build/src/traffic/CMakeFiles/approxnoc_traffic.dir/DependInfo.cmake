
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/closed_loop.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/closed_loop.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/closed_loop.cc.o.d"
  "/root/repo/src/traffic/data_provider.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/data_provider.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/data_provider.cc.o.d"
  "/root/repo/src/traffic/patterns.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/patterns.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/patterns.cc.o.d"
  "/root/repo/src/traffic/replay.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/replay.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/replay.cc.o.d"
  "/root/repo/src/traffic/synthetic.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/synthetic.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/synthetic.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/trace.cc.o" "gcc" "src/traffic/CMakeFiles/approxnoc_traffic.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/approxnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
