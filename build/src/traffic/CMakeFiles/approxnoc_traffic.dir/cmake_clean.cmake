file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_traffic.dir/closed_loop.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/closed_loop.cc.o.d"
  "CMakeFiles/approxnoc_traffic.dir/data_provider.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/data_provider.cc.o.d"
  "CMakeFiles/approxnoc_traffic.dir/patterns.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/patterns.cc.o.d"
  "CMakeFiles/approxnoc_traffic.dir/replay.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/replay.cc.o.d"
  "CMakeFiles/approxnoc_traffic.dir/synthetic.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/synthetic.cc.o.d"
  "CMakeFiles/approxnoc_traffic.dir/trace.cc.o"
  "CMakeFiles/approxnoc_traffic.dir/trace.cc.o.d"
  "libapproxnoc_traffic.a"
  "libapproxnoc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
