# Empty dependencies file for approxnoc_traffic.
# This may be replaced when dependencies are built.
