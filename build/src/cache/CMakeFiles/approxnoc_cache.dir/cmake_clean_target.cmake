file(REMOVE_RECURSE
  "libapproxnoc_cache.a"
)
