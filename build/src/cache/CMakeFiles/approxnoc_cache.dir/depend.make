# Empty dependencies file for approxnoc_cache.
# This may be replaced when dependencies are built.
