file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_cache.dir/approx_cache.cc.o"
  "CMakeFiles/approxnoc_cache.dir/approx_cache.cc.o.d"
  "CMakeFiles/approxnoc_cache.dir/doppelganger.cc.o"
  "CMakeFiles/approxnoc_cache.dir/doppelganger.cc.o.d"
  "libapproxnoc_cache.a"
  "libapproxnoc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
