file(REMOVE_RECURSE
  "libapproxnoc_core.a"
)
