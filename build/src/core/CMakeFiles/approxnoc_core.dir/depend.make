# Empty dependencies file for approxnoc_core.
# This may be replaced when dependencies are built.
