
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec_factory.cc" "src/core/CMakeFiles/approxnoc_core.dir/codec_factory.cc.o" "gcc" "src/core/CMakeFiles/approxnoc_core.dir/codec_factory.cc.o.d"
  "/root/repo/src/core/error_control.cc" "src/core/CMakeFiles/approxnoc_core.dir/error_control.cc.o" "gcc" "src/core/CMakeFiles/approxnoc_core.dir/error_control.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/core/CMakeFiles/approxnoc_core.dir/quality.cc.o" "gcc" "src/core/CMakeFiles/approxnoc_core.dir/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
