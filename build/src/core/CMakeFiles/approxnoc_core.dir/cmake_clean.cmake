file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_core.dir/codec_factory.cc.o"
  "CMakeFiles/approxnoc_core.dir/codec_factory.cc.o.d"
  "CMakeFiles/approxnoc_core.dir/error_control.cc.o"
  "CMakeFiles/approxnoc_core.dir/error_control.cc.o.d"
  "CMakeFiles/approxnoc_core.dir/quality.cc.o"
  "CMakeFiles/approxnoc_core.dir/quality.cc.o.d"
  "libapproxnoc_core.a"
  "libapproxnoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
