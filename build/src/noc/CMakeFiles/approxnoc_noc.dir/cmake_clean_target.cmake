file(REMOVE_RECURSE
  "libapproxnoc_noc.a"
)
