# Empty compiler generated dependencies file for approxnoc_noc.
# This may be replaced when dependencies are built.
