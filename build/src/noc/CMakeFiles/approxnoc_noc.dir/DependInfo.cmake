
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cc" "src/noc/CMakeFiles/approxnoc_noc.dir/network.cc.o" "gcc" "src/noc/CMakeFiles/approxnoc_noc.dir/network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/noc/CMakeFiles/approxnoc_noc.dir/network_interface.cc.o" "gcc" "src/noc/CMakeFiles/approxnoc_noc.dir/network_interface.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/noc/CMakeFiles/approxnoc_noc.dir/packet.cc.o" "gcc" "src/noc/CMakeFiles/approxnoc_noc.dir/packet.cc.o.d"
  "/root/repo/src/noc/qos_loop.cc" "src/noc/CMakeFiles/approxnoc_noc.dir/qos_loop.cc.o" "gcc" "src/noc/CMakeFiles/approxnoc_noc.dir/qos_loop.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/approxnoc_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/approxnoc_noc.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
