file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_noc.dir/network.cc.o"
  "CMakeFiles/approxnoc_noc.dir/network.cc.o.d"
  "CMakeFiles/approxnoc_noc.dir/network_interface.cc.o"
  "CMakeFiles/approxnoc_noc.dir/network_interface.cc.o.d"
  "CMakeFiles/approxnoc_noc.dir/packet.cc.o"
  "CMakeFiles/approxnoc_noc.dir/packet.cc.o.d"
  "CMakeFiles/approxnoc_noc.dir/qos_loop.cc.o"
  "CMakeFiles/approxnoc_noc.dir/qos_loop.cc.o.d"
  "CMakeFiles/approxnoc_noc.dir/router.cc.o"
  "CMakeFiles/approxnoc_noc.dir/router.cc.o.d"
  "libapproxnoc_noc.a"
  "libapproxnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
