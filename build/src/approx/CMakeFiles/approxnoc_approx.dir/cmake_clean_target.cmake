file(REMOVE_RECURSE
  "libapproxnoc_approx.a"
)
