file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_approx.dir/avcl.cc.o"
  "CMakeFiles/approxnoc_approx.dir/avcl.cc.o.d"
  "CMakeFiles/approxnoc_approx.dir/di_vaxx.cc.o"
  "CMakeFiles/approxnoc_approx.dir/di_vaxx.cc.o.d"
  "CMakeFiles/approxnoc_approx.dir/error_model.cc.o"
  "CMakeFiles/approxnoc_approx.dir/error_model.cc.o.d"
  "CMakeFiles/approxnoc_approx.dir/fp_vaxx.cc.o"
  "CMakeFiles/approxnoc_approx.dir/fp_vaxx.cc.o.d"
  "CMakeFiles/approxnoc_approx.dir/window_vaxx.cc.o"
  "CMakeFiles/approxnoc_approx.dir/window_vaxx.cc.o.d"
  "libapproxnoc_approx.a"
  "libapproxnoc_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
