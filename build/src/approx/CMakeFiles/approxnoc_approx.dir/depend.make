# Empty dependencies file for approxnoc_approx.
# This may be replaced when dependencies are built.
