
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/avcl.cc" "src/approx/CMakeFiles/approxnoc_approx.dir/avcl.cc.o" "gcc" "src/approx/CMakeFiles/approxnoc_approx.dir/avcl.cc.o.d"
  "/root/repo/src/approx/di_vaxx.cc" "src/approx/CMakeFiles/approxnoc_approx.dir/di_vaxx.cc.o" "gcc" "src/approx/CMakeFiles/approxnoc_approx.dir/di_vaxx.cc.o.d"
  "/root/repo/src/approx/error_model.cc" "src/approx/CMakeFiles/approxnoc_approx.dir/error_model.cc.o" "gcc" "src/approx/CMakeFiles/approxnoc_approx.dir/error_model.cc.o.d"
  "/root/repo/src/approx/fp_vaxx.cc" "src/approx/CMakeFiles/approxnoc_approx.dir/fp_vaxx.cc.o" "gcc" "src/approx/CMakeFiles/approxnoc_approx.dir/fp_vaxx.cc.o.d"
  "/root/repo/src/approx/window_vaxx.cc" "src/approx/CMakeFiles/approxnoc_approx.dir/window_vaxx.cc.o" "gcc" "src/approx/CMakeFiles/approxnoc_approx.dir/window_vaxx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
