
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/adaptive.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/adaptive.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/adaptive.cc.o.d"
  "/root/repo/src/compression/baseline.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/baseline.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/baseline.cc.o.d"
  "/root/repo/src/compression/dictionary.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/dictionary.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/dictionary.cc.o.d"
  "/root/repo/src/compression/encoded.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/encoded.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/encoded.cc.o.d"
  "/root/repo/src/compression/fpc.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/fpc.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/fpc.cc.o.d"
  "/root/repo/src/compression/wire.cc" "src/compression/CMakeFiles/approxnoc_compression.dir/wire.cc.o" "gcc" "src/compression/CMakeFiles/approxnoc_compression.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
