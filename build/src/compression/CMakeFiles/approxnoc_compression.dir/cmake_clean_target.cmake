file(REMOVE_RECURSE
  "libapproxnoc_compression.a"
)
