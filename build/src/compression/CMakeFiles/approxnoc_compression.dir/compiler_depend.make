# Empty compiler generated dependencies file for approxnoc_compression.
# This may be replaced when dependencies are built.
