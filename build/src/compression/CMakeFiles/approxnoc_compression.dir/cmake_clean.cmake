file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_compression.dir/adaptive.cc.o"
  "CMakeFiles/approxnoc_compression.dir/adaptive.cc.o.d"
  "CMakeFiles/approxnoc_compression.dir/baseline.cc.o"
  "CMakeFiles/approxnoc_compression.dir/baseline.cc.o.d"
  "CMakeFiles/approxnoc_compression.dir/dictionary.cc.o"
  "CMakeFiles/approxnoc_compression.dir/dictionary.cc.o.d"
  "CMakeFiles/approxnoc_compression.dir/encoded.cc.o"
  "CMakeFiles/approxnoc_compression.dir/encoded.cc.o.d"
  "CMakeFiles/approxnoc_compression.dir/fpc.cc.o"
  "CMakeFiles/approxnoc_compression.dir/fpc.cc.o.d"
  "CMakeFiles/approxnoc_compression.dir/wire.cc.o"
  "CMakeFiles/approxnoc_compression.dir/wire.cc.o.d"
  "libapproxnoc_compression.a"
  "libapproxnoc_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
