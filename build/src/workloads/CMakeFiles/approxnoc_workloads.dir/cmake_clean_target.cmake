file(REMOVE_RECURSE
  "libapproxnoc_workloads.a"
)
