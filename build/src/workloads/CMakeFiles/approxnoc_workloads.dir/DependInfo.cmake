
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/blackscholes.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/blackscholes.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/blackscholes.cc.o.d"
  "/root/repo/src/workloads/bodytrack.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/bodytrack.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/bodytrack.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/canneal.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/canneal.cc.o.d"
  "/root/repo/src/workloads/fluidanimate.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/fluidanimate.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/fluidanimate.cc.o.d"
  "/root/repo/src/workloads/ssca2.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/ssca2.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/ssca2.cc.o.d"
  "/root/repo/src/workloads/streamcluster.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/streamcluster.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/streamcluster.cc.o.d"
  "/root/repo/src/workloads/swaptions.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/swaptions.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/swaptions.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/x264.cc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/x264.cc.o" "gcc" "src/workloads/CMakeFiles/approxnoc_workloads.dir/x264.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/approxnoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/approxnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/approxnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
