# Empty dependencies file for approxnoc_workloads.
# This may be replaced when dependencies are built.
