file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_workloads.dir/blackscholes.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/blackscholes.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/bodytrack.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/bodytrack.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/canneal.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/canneal.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/fluidanimate.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/fluidanimate.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/ssca2.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/ssca2.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/streamcluster.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/streamcluster.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/swaptions.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/swaptions.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/workload.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/workload.cc.o.d"
  "CMakeFiles/approxnoc_workloads.dir/x264.cc.o"
  "CMakeFiles/approxnoc_workloads.dir/x264.cc.o.d"
  "libapproxnoc_workloads.a"
  "libapproxnoc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
