# Empty dependencies file for approxnoc_tcam.
# This may be replaced when dependencies are built.
