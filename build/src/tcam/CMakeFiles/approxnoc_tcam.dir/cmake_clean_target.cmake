file(REMOVE_RECURSE
  "libapproxnoc_tcam.a"
)
