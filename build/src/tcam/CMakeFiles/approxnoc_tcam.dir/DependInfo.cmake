
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcam/cam.cc" "src/tcam/CMakeFiles/approxnoc_tcam.dir/cam.cc.o" "gcc" "src/tcam/CMakeFiles/approxnoc_tcam.dir/cam.cc.o.d"
  "/root/repo/src/tcam/tcam.cc" "src/tcam/CMakeFiles/approxnoc_tcam.dir/tcam.cc.o" "gcc" "src/tcam/CMakeFiles/approxnoc_tcam.dir/tcam.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
