file(REMOVE_RECURSE
  "CMakeFiles/approxnoc_tcam.dir/cam.cc.o"
  "CMakeFiles/approxnoc_tcam.dir/cam.cc.o.d"
  "CMakeFiles/approxnoc_tcam.dir/tcam.cc.o"
  "CMakeFiles/approxnoc_tcam.dir/tcam.cc.o.d"
  "libapproxnoc_tcam.a"
  "libapproxnoc_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxnoc_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
