file(REMOVE_RECURSE
  "../bench/fig16_app_output"
  "../bench/fig16_app_output.pdb"
  "CMakeFiles/fig16_app_output.dir/fig16_app_output.cc.o"
  "CMakeFiles/fig16_app_output.dir/fig16_app_output.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_app_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
