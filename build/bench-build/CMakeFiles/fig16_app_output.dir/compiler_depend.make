# Empty compiler generated dependencies file for fig16_app_output.
# This may be replaced when dependencies are built.
