file(REMOVE_RECURSE
  "../bench/ablation_flit_width"
  "../bench/ablation_flit_width.pdb"
  "CMakeFiles/ablation_flit_width.dir/ablation_flit_width.cc.o"
  "CMakeFiles/ablation_flit_width.dir/ablation_flit_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flit_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
