# Empty compiler generated dependencies file for ablation_flit_width.
# This may be replaced when dependencies are built.
