file(REMOVE_RECURSE
  "../bench/ablation_codec"
  "../bench/ablation_codec.pdb"
  "CMakeFiles/ablation_codec.dir/ablation_codec.cc.o"
  "CMakeFiles/ablation_codec.dir/ablation_codec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
