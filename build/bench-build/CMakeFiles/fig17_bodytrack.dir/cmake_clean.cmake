file(REMOVE_RECURSE
  "../bench/fig17_bodytrack"
  "../bench/fig17_bodytrack.pdb"
  "CMakeFiles/fig17_bodytrack.dir/fig17_bodytrack.cc.o"
  "CMakeFiles/fig17_bodytrack.dir/fig17_bodytrack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bodytrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
