# Empty compiler generated dependencies file for fig17_bodytrack.
# This may be replaced when dependencies are built.
