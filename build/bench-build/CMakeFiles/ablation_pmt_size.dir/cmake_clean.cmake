file(REMOVE_RECURSE
  "../bench/ablation_pmt_size"
  "../bench/ablation_pmt_size.pdb"
  "CMakeFiles/ablation_pmt_size.dir/ablation_pmt_size.cc.o"
  "CMakeFiles/ablation_pmt_size.dir/ablation_pmt_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pmt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
