# Empty compiler generated dependencies file for ablation_pmt_size.
# This may be replaced when dependencies are built.
