file(REMOVE_RECURSE
  "../bench/fig15_power"
  "../bench/fig15_power.pdb"
  "CMakeFiles/fig15_power.dir/fig15_power.cc.o"
  "CMakeFiles/fig15_power.dir/fig15_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
