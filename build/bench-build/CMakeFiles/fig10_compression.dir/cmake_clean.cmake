file(REMOVE_RECURSE
  "../bench/fig10_compression"
  "../bench/fig10_compression.pdb"
  "CMakeFiles/fig10_compression.dir/fig10_compression.cc.o"
  "CMakeFiles/fig10_compression.dir/fig10_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
