# Empty compiler generated dependencies file for closed_loop_latency.
# This may be replaced when dependencies are built.
