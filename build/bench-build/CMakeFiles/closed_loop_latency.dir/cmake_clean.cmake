file(REMOVE_RECURSE
  "../bench/closed_loop_latency"
  "../bench/closed_loop_latency.pdb"
  "CMakeFiles/closed_loop_latency.dir/closed_loop_latency.cc.o"
  "CMakeFiles/closed_loop_latency.dir/closed_loop_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_loop_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
