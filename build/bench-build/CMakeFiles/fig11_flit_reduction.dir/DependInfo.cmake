
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_flit_reduction.cc" "bench-build/CMakeFiles/fig11_flit_reduction.dir/fig11_flit_reduction.cc.o" "gcc" "bench-build/CMakeFiles/fig11_flit_reduction.dir/fig11_flit_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/approxnoc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/approxnoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/approxnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/approxnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/approxnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/approxnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/approxnoc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/approxnoc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/approxnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/approxnoc_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/approxnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
