# Empty dependencies file for fig11_flit_reduction.
# This may be replaced when dependencies are built.
