file(REMOVE_RECURSE
  "../bench/fig11_flit_reduction"
  "../bench/fig11_flit_reduction.pdb"
  "CMakeFiles/fig11_flit_reduction.dir/fig11_flit_reduction.cc.o"
  "CMakeFiles/fig11_flit_reduction.dir/fig11_flit_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flit_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
