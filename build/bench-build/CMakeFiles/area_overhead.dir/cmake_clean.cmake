file(REMOVE_RECURSE
  "../bench/area_overhead"
  "../bench/area_overhead.pdb"
  "CMakeFiles/area_overhead.dir/area_overhead.cc.o"
  "CMakeFiles/area_overhead.dir/area_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
