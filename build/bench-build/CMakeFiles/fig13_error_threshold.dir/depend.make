# Empty dependencies file for fig13_error_threshold.
# This may be replaced when dependencies are built.
