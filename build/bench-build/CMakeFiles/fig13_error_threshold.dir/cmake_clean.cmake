file(REMOVE_RECURSE
  "../bench/fig13_error_threshold"
  "../bench/fig13_error_threshold.pdb"
  "CMakeFiles/fig13_error_threshold.dir/fig13_error_threshold.cc.o"
  "CMakeFiles/fig13_error_threshold.dir/fig13_error_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_error_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
