file(REMOVE_RECURSE
  "../bench/fig14_approx_ratio"
  "../bench/fig14_approx_ratio.pdb"
  "CMakeFiles/fig14_approx_ratio.dir/fig14_approx_ratio.cc.o"
  "CMakeFiles/fig14_approx_ratio.dir/fig14_approx_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_approx_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
