# Empty dependencies file for fig14_approx_ratio.
# This may be replaced when dependencies are built.
