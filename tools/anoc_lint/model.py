"""Source model: files, the include graph, and contract-class fields.

The include graph exists for scope propagation: a header is covered by
the determinism rules not because of where it sits but because of who
includes it — common/worker_pool.h is deterministic-path code the
moment sim/region_scheduler.h pulls it in. Scope is therefore computed
as "lives in a scoped directory, or is (transitively) included by a
file that does".
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from . import lexer

CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^">]+)[">]', re.M)

ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")

CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")

CONTRACT_MARKER = "ANOC_ISOLATION_CONTRACT"
FIELD_ANNOTATIONS = ("ANOC_SHARD_LOCAL", "ANOC_CROSS_SHARD",
                     "ANOC_REGION_SHARED")

# Statement openers that can never be a data-member declaration.
NON_FIELD_KEYWORDS = (
    "using", "typedef", "friend", "template", "static", "enum",
    "class", "struct", "union", "public", "private", "protected",
    "static_assert", "explicit", "virtual", "operator",
    CONTRACT_MARKER,
)


@dataclass
class Include:
    line: int
    target: str      # include path as written
    system: bool     # <...> include


@dataclass
class Field:
    """One data-member declaration of a contract-marked class."""

    line: int            # 1-based line of the statement's first token
    col: int             # 0-based column of the statement's first token
    name: str
    decl: str            # normalized one-line declaration text
    annotation: str | None       # which ANOC_* macro, if any
    annotation_arg: str | None   # ANOC_CROSS_SHARD argument
    is_relaxed_counter: bool


@dataclass
class ContractClass:
    name: str
    line: int
    contracts: tuple[str, ...]   # ANOC_ISOLATION_CONTRACT arguments
    fields: list[Field] = field(default_factory=list)


@dataclass
class SourceFile:
    path: str        # repo-relative, forward slashes
    text: str
    sanitized: str = ""
    suppressions: list[lexer.Suppression] = field(default_factory=list)
    includes: list[Include] = field(default_factory=list)
    in_scope: bool = False   # determinism (D-rule) scope
    classes: list[ContractClass] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.sanitized = lexer.sanitize(self.text)
        self.suppressions = lexer.parse_suppressions(self.text)
        for m in INCLUDE_RE.finditer(self.sanitized):
            line = self.sanitized.count("\n", 0, m.start()) + 1
            self.includes.append(
                Include(line, m.group(2), m.group(1) == "<"))
        self.classes = _extract_contract_classes(self.sanitized)


class Tree:
    """Every C++ source under the repo root, plus the include graph."""

    def __init__(self, root: str, scoped_dirs: tuple[str, ...],
                 source_dirs: tuple[str, ...]):
        self.root = root
        self.files: dict[str, SourceFile] = {}
        for d in source_dirs:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _dirnames, filenames in os.walk(base):
                for fn in sorted(filenames):
                    if not fn.endswith(CPP_EXTS):
                        continue
                    full = os.path.join(dirpath, fn)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    with open(full, encoding="utf-8") as f:
                        self.files[rel] = SourceFile(rel, f.read())
        self._compute_scope(scoped_dirs)

    def resolve_include(self, target: str) -> str | None:
        """Repo includes are rooted at src/ (see CMake include dirs)."""
        for cand in ("src/" + target, target):
            if cand in self.files:
                return cand
        return None

    def _compute_scope(self, scoped_dirs: tuple[str, ...]) -> None:
        """Seed from scoped directories, then pull in every repo file a
        scoped file (transitively) includes."""
        work = [p for p in self.files
                if p.startswith(scoped_dirs)]
        for p in work:
            self.files[p].in_scope = True
        while work:
            cur = work.pop()
            for inc in self.files[cur].includes:
                if inc.system:
                    continue
                dep = self.resolve_include(inc.target)
                if dep is not None and not self.files[dep].in_scope:
                    self.files[dep].in_scope = True
                    work.append(dep)


def _extract_contract_classes(sanitized: str) -> list[ContractClass]:
    """Find ANOC_ISOLATION_CONTRACT-marked class bodies and their
    top-level data-member declarations."""
    classes: list[ContractClass] = []
    for m in CLASS_RE.finditer(sanitized):
        open_brace = _body_open(sanitized, m.end())
        if open_brace < 0:
            continue  # forward declaration or parse giveup
        close_brace = _match_brace(sanitized, open_brace)
        body = sanitized[open_brace + 1 : close_brace]
        marker = re.search(CONTRACT_MARKER + r"\s*\(([^)]*)\)", body)
        if not marker:
            continue
        contracts = tuple(a.strip() for a in marker.group(1).split(",")
                          if a.strip())
        line = sanitized.count("\n", 0, m.start()) + 1
        cls = ContractClass(m.group(2), line, contracts)
        cls.fields = _extract_fields(sanitized, open_brace + 1, close_brace)
        classes.append(cls)
    return classes


def _body_open(s: str, pos: int) -> int:
    """Index of the `{` opening the class body, or -1 when the
    construct turns out to be a forward declaration / variable."""
    depth = 0
    for i in range(pos, len(s)):
        c = s[i]
        if c == ";" and depth == 0:
            return -1
        if c in "(<":
            depth += 1
        elif c in ")>":
            depth = max(0, depth - 1)
        elif c == "{" and depth == 0:
            return i
    return -1


def _match_brace(s: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(s)):
        if s[i] == "{":
            depth += 1
        elif s[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(s) - 1


def _extract_fields(sanitized: str, start: int, end: int) -> list[Field]:
    """Split the class body into top-level statements and keep the ones
    that look like data members.

    A statement is everything up to a `;` at relative depth 0; a `{...}`
    block at depth 0 (method body, nested class) fast-forwards past its
    contents — nested members belong to the nested type's own contract,
    not this one.
    """
    fields: list[Field] = []
    i = start
    stmt_begin = start
    while i < end:
        c = sanitized[i]
        if c == "{":
            i = _match_brace(sanitized, i) + 1
            # In-class definitions end at `}` (optionally `};` for
            # nested types) — either way the statement is over.
            if i < end and sanitized[i] == ";":
                i += 1
            stmt_begin = i
            continue
        if c == ";":
            f = _classify_field(sanitized, stmt_begin, i)
            if f is not None:
                fields.append(f)
            i += 1
            stmt_begin = i
            continue
        i += 1
    return fields


def _classify_field(sanitized: str, begin: int, end: int) -> Field | None:
    stmt = sanitized[begin:end]
    # Access specifiers may share the statement span; cut after the
    # last one so `private: Foo bar_` classifies the declaration.
    last_access = None
    for am in ACCESS_RE.finditer(stmt):
        last_access = am
    if last_access is not None:
        begin += last_access.end()
        stmt = sanitized[begin:end]
    if not stmt.strip():
        return None

    first_tok = re.match(r"\s*([A-Za-z_]\w*)", stmt)
    if not first_tok:
        return None
    # `mutable` is a field-only qualifier; skip it before keyword test.
    lead = first_tok.group(1)
    rest_off = first_tok.end()
    if lead == "mutable":
        nxt = re.match(r"\s*([A-Za-z_]\w*)", stmt[rest_off:])
        lead_after = nxt.group(1) if nxt else ""
    else:
        lead_after = lead
    if lead_after in NON_FIELD_KEYWORDS:
        return None

    annotation = None
    annotation_arg = None
    for ann in FIELD_ANNOTATIONS:
        if re.search(r"\b" + ann + r"\b", stmt):
            annotation = ann
            if ann == "ANOC_CROSS_SHARD":
                argm = re.search(ann + r"\s*\(([^)]*)\)", stmt)
                annotation_arg = argm.group(1).strip() if argm else ""
            break

    # Decide field vs. function on the angle-stripped text: a paren at
    # top level means a signature (or a constructor-style initializer,
    # which this codebase does not use for members).
    flat = lexer.strip_angles(stmt)
    flat_wo_ann = flat
    for ann in FIELD_ANNOTATIONS:
        flat_wo_ann = re.sub(ann + r"\s*(\([^)]*\))?", " ", flat_wo_ann)
    if "(" in flat_wo_ann:
        return None
    # Name: last identifier before initializer/subscript/end.
    head = re.split(r"[={\[]", flat_wo_ann, maxsplit=1)[0]
    idents = re.findall(r"[A-Za-z_]\w*", head)
    if not idents:
        return None
    name = idents[-1]
    if name in ("const", "constexpr", "inline", "volatile"):
        return None

    # Position of the statement's first non-space character.
    tok_off = begin + len(stmt) - len(stmt.lstrip())
    line = sanitized.count("\n", 0, tok_off) + 1
    col = tok_off - (sanitized.rfind("\n", 0, tok_off) + 1)
    decl = " ".join(stmt.split())
    return Field(line, col, name, decl, annotation, annotation_arg,
                 "RelaxedCounter" in stmt)
