"""Lexical layer: comment/string blanking and suppression parsing.

Everything downstream (include graph, class model, rule scans) works on
*sanitized* text: the original file with every comment and string/char
literal replaced by spaces, byte for byte, so offsets and line numbers
in findings always refer to the real file. Suppression comments are the
one thing read from the raw text, before blanking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


# `// anoc-lint: allow(D1) -- reason`  (also accepts /* ... */ bodies).
SUPPRESS_RE = re.compile(
    r"anoc-lint:\s*allow\(\s*([A-Za-z0-9_,\s]*?)\s*\)"
    r"(?:\s*--\s*(.*?))?\s*(?:\*/.*)?$"
)


@dataclass
class Suppression:
    """One `anoc-lint: allow(...)` comment."""

    line: int                 # 1-based line the comment sits on
    rules: tuple[str, ...]    # rule ids it allows, upper-cased
    reason: str               # mandatory justification ("" = missing)
    own_line: bool            # comment-only line => applies to line+1
    used: bool = field(default=False, compare=False)

    def applies_to(self, rule: str, line: int) -> bool:
        if rule.upper() not in self.rules:
            return False
        if line == self.line:
            return True
        return self.own_line and line == self.line + 1


def sanitize(text: str) -> str:
    """Blank comments and string/char literals, preserving layout.

    Replaced characters become spaces; newlines inside block comments
    and raw strings survive so line numbers stay aligned.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            _blank(out, i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            _blank(out, i, j)
            i = j
        elif c == '"' and text[i - 1 : i + 2] == 'R"(':
            # Only the common R"( ... )" form appears in this codebase.
            j = text.find(')"', i + 2)
            j = n if j < 0 else j + 2
            _blank(out, i, j)
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            # Keep the quotes themselves; blank the contents — except
            # in `#include "..."`, whose target the include graph needs.
            if not _is_include_target(text, i):
                _blank(out, i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def _blank(out: list[str], start: int, end: int) -> None:
    for k in range(start, end):
        if out[k] != "\n":
            out[k] = " "


_INCLUDE_PREFIX_RE = re.compile(r"^\s*#\s*include\s*$")


def _is_include_target(text: str, quote_idx: int) -> bool:
    """True when the `"` at @p quote_idx opens an #include target."""
    line_start = text.rfind("\n", 0, quote_idx) + 1
    return bool(_INCLUDE_PREFIX_RE.match(text[line_start:quote_idx]))


def parse_suppressions(text: str) -> list[Suppression]:
    """Extract every allow() comment with its placement semantics."""
    sups: list[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rules = tuple(
            r.strip().upper() for r in m.group(1).split(",") if r.strip()
        )
        reason = (m.group(2) or "").strip()
        before = raw[: raw.find("anoc-lint:")]
        # Comment-only line: nothing but whitespace and the comment
        # opener precedes the directive.
        own_line = before.strip() in ("//", "/*", "")
        sups.append(Suppression(lineno, rules, reason, own_line))
    return sups


def strip_angles(s: str) -> str:
    """Blank balanced template-argument lists `<...>` in a statement.

    Heuristic: `<` opens a template list when immediately preceded by
    an identifier character or `>`; comparison operators in member
    declarations are rare enough not to matter (and mis-parses only
    make rule C1 more conservative).
    """
    out = list(s)
    depth = 0
    prev_ident = False
    for i, c in enumerate(s):
        if c == "<" and (prev_ident or depth > 0):
            depth += 1
            out[i] = " "
        elif c == ">" and depth > 0:
            depth -= 1
            out[i] = " "
        elif depth > 0 and c != "\n":
            out[i] = " "
        prev_ident = c.isalnum() or c in "_>"
    return "".join(out)
