"""anoc-lint: machine-checked determinism & isolation contracts.

A standalone static-analysis pass over the approxnoc C++ sources. No
libclang, no compile database — a small tokenizer and include-graph
core (lexer.py, model.py) feeds a codified rule set (rules.py) derived
from the repo's concurrency-contract comments. See
docs/static-analysis.md for the rule catalog and suppression policy.
"""

__version__ = "1.0"
