"""The codified rule set.

Each rule is derived from a documented-but-previously-unchecked
contract; docs/static-analysis.md carries the catalog with rationale
and links each rule to its contract section. Rules emit Finding
objects; the driver applies suppressions and renders reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field

from .model import SourceFile, Tree


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    fixable: bool = False
    # (line, col, text) insertion for --fix.
    fix: tuple[int, int, str] | None = None
    suppressed: bool = False
    reason: str = ""

    def to_json(self) -> dict:
        d = {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "fixable": self.fixable,
            "suppressed": self.suppressed,
        }
        if self.suppressed:
            d["reason"] = self.reason
        return d


RULES = {
    "D1": "no nondeterminism sources on deterministic paths",
    "D2": "no unordered-container iteration (order-dependent output)",
    "C1": "contract classes must annotate every shared-state field",
    "C2": "API hygiene (deprecated shims, double probes, notify_delay)",
    "S1": "AVX2 guards need a scalar twin and a named differential test",
    "SUP": "suppressions must carry a reason and name real rules",
}

# ---------------------------------------------------------------- D1 --

# Each entry: (compiled pattern, what to say). Scanned over sanitized
# text of in-scope files, line by line.
_D1_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
     "C rand()/srand() is nondeterministic across libcs and seeds "
     "globally; use common/rng.h (explicit seed) instead"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device draws entropy from the host; deterministic "
     "paths must seed from the experiment spec (common/rng.h)"),
    (re.compile(r"\b(?:system_clock|high_resolution_clock|steady_clock)\b"),
     "wall-clock reads are nondeterministic; simulated time comes from "
     "Cycle parameters, and profiling belongs behind the "
     "telemetry::PhaseProfiler wall-clock boundary"),
    (re.compile(r"\b(?:gettimeofday|localtime|strftime|mktime|ctime)\b"),
     "calendar/wall-clock call on a deterministic path"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the host clock on a deterministic path"),
    (re.compile(r"^\s*#\s*include\s*<random>"),
     "<random> on a deterministic path; engines must be explicitly "
     "seeded via common/rng.h so draws replay"),
    (re.compile(r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<[^<>,;]*\*"),
     "ordered container keyed by pointer: iteration order follows the "
     "allocator, not the program; key by a stable id instead"),
]


def check_d1(sf: SourceFile) -> list[Finding]:
    if not sf.in_scope:
        return []
    out = []
    for lineno, line in enumerate(sf.sanitized.splitlines(), start=1):
        for pat, why in _D1_PATTERNS:
            if pat.search(line):
                out.append(Finding("D1", sf.path, lineno, why))
    return out


# ---------------------------------------------------------------- D2 --

_UNORDERED_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")

_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(([^;{}]*?):([^;{})]*)\)")

_ITER_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\(")


def _unordered_names(sf: SourceFile, tree: Tree) -> set[str]:
    """Identifiers declared (here or in a directly-included repo
    header) with an unordered container type."""
    names = _scan_unordered_decls(sf.sanitized)
    for inc in sf.includes:
        dep = tree.resolve_include(inc.target) if not inc.system else None
        if dep is not None:
            names |= _scan_unordered_decls(tree.files[dep].sanitized)
    return names


def _scan_unordered_decls(sanitized: str) -> set[str]:
    names: set[str] = set()
    for m in _UNORDERED_RE.finditer(sanitized):
        i = m.end()  # just past '<'
        depth = 1
        while i < len(sanitized) and depth:
            if sanitized[i] == "<":
                depth += 1
            elif sanitized[i] == ">":
                depth -= 1
            i += 1
        tail = sanitized[i : i + 120]
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*(?:[;,={(\[)]|$)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def check_d2(sf: SourceFile, tree: Tree) -> list[Finding]:
    if not sf.in_scope:
        return []
    names = _unordered_names(sf, tree)
    if not names:
        return []
    out = []
    for lineno, line in enumerate(sf.sanitized.splitlines(), start=1):
        for m in _RANGE_FOR_RE.finditer(line):
            expr = m.group(2).strip()
            root = re.match(r"[(*&\s]*([A-Za-z_]\w*)", expr)
            if root and root.group(1) in names:
                out.append(Finding(
                    "D2", sf.path, lineno,
                    f"iteration over unordered container "
                    f"'{root.group(1)}': order is hash-seed dependent "
                    f"and must not reach artifacts, merges or traces; "
                    f"use an ordered container or sort explicitly"))
        for m in _ITER_CALL_RE.finditer(line):
            if m.group(1) in names:
                out.append(Finding(
                    "D2", sf.path, lineno,
                    f"iterator walk over unordered container "
                    f"'{m.group(1)}': order is hash-seed dependent; "
                    f"use an ordered container or sort explicitly"))
    return out


# ---------------------------------------------------------------- C1 --

def check_c1(sf: SourceFile) -> list[Finding]:
    out = []
    for cls in sf.classes:
        for f in cls.fields:
            if f.annotation is None:
                ann = ("ANOC_CROSS_SHARD(RelaxedCounter) "
                       if f.is_relaxed_counter else "ANOC_SHARD_LOCAL ")
                out.append(Finding(
                    "C1", sf.path, f.line,
                    f"field '{f.name}' of contract class '{cls.name}' "
                    f"({', '.join(cls.contracts)}) has no isolation "
                    f"annotation; declare ANOC_SHARD_LOCAL, "
                    f"ANOC_CROSS_SHARD(RelaxedCounter) or "
                    f"ANOC_REGION_SHARED",
                    fixable=True, fix=(f.line, f.col, ann)))
            elif f.annotation == "ANOC_CROSS_SHARD":
                if f.annotation_arg != "RelaxedCounter":
                    out.append(Finding(
                        "C1", sf.path, f.line,
                        f"field '{f.name}': ANOC_CROSS_SHARD admits "
                        f"only RelaxedCounter (commutative relaxed-"
                        f"atomic) state, got "
                        f"'{f.annotation_arg or '<empty>'}'"))
                elif not f.is_relaxed_counter:
                    out.append(Finding(
                        "C1", sf.path, f.line,
                        f"field '{f.name}' is declared "
                        f"ANOC_CROSS_SHARD(RelaxedCounter) but its type "
                        f"is not a RelaxedCounter; non-commutative "
                        f"cross-shard state breaks the determinism "
                        f"contract"))
    return out


# ---------------------------------------------------------------- C2 --

_DEPRECATED_INCLUDES = {
    "harness/flow_sharded_encoder.h":
        "removed compat shim; include harness/sharded_codec_pipeline.h",
}

_SEARCH_RE = re.compile(
    r"([A-Za-z_][\w.\->]*?)\s*(?:\.|->)\s*search(?:Visit)?\s*\(")
_REPROBE_RE_TMPL = r"{recv}\s*(?:\.|->)\s*(?:peek|searchAll|findPattern)\s*\("

_HOT_PATH_DIRS = ("src/compression/", "src/approx/", "src/tcam/")
_DOUBLE_PROBE_WINDOW = 12  # lines

_NOTIFY_DELAY_RE = re.compile(r"\bnotify_delay\s*(?:=|\{)\s*0\b")


def check_c2(sf: SourceFile, tree: Tree) -> list[Finding]:
    out = []
    if sf.path.endswith("flow_sharded_encoder.h"):
        out.append(Finding(
            "C2", sf.path, 1,
            "harness/flow_sharded_encoder.h was removed (PR 6 compat "
            "shim); FlowShardedEncoder lives in "
            "harness/sharded_codec_pipeline.h"))
    for inc in sf.includes:
        hint = _DEPRECATED_INCLUDES.get(inc.target)
        if hint:
            out.append(Finding(
                "C2", sf.path, inc.line,
                f"include of deprecated shim '{inc.target}': {hint}"))

    lines = sf.sanitized.splitlines()
    if sf.path.startswith(_HOT_PATH_DIRS):
        out.extend(_check_double_probe(sf, lines))

    for lineno, line in enumerate(lines, start=1):
        if _NOTIFY_DELAY_RE.search(line):
            out.append(Finding(
                "C2", sf.path, lineno,
                "notify_delay = 0 constructs a dictionary whose "
                "update notifications apply within the issuing cycle, "
                "which the NoC consistency protocol forbids "
                "(noc/network.h requires notify_delay >= 1)"))
    return out


def _check_double_probe(sf: SourceFile, lines: list[str]) -> list[Finding]:
    """A counted search() immediately re-probed with peek()/searchAll()
    on the same receiver pays two match-engine probes for one lookup;
    Tcam::searchVisit visits the full match set in one probe."""
    out = []
    for lineno, line in enumerate(lines, start=1):
        for m in _SEARCH_RE.finditer(line):
            recv = m.group(1)
            reprobe = re.compile(
                _REPROBE_RE_TMPL.format(recv=re.escape(recv)))
            upper = min(len(lines), lineno + _DOUBLE_PROBE_WINDOW)
            for nxt in range(lineno, upper):
                if reprobe.search(lines[nxt]):
                    out.append(Finding(
                        "C2", sf.path, nxt + 1,
                        f"double probe: '{recv}' is re-probed after a "
                        f"counted search() at line {lineno}; use "
                        f"searchVisit() to walk the match set in one "
                        f"probe (see docs/perf.md, bit-sliced TCAM)"))
                    break
    return out


# ---------------------------------------------------------------- S1 --

# Any preprocessor conditional whose condition mentions AVX2 — the
# literal __AVX2__ feature macro or a derived guard like
# ANOC_HAVE_AVX2_KERNEL. Matched against the *logical* directive line
# (backslash continuations joined).
_S1_GUARD_RE = re.compile(r"^\s*#\s*(el)?if(?:n?def)?\b.*AVX2")
_S1_IF_RE = re.compile(r"^\s*#\s*if(?:n?def)?\b")
_S1_ELSE_RE = re.compile(r"^\s*#\s*(?:else\b|elif\b)")
_S1_ENDIF_RE = re.compile(r"^\s*#\s*endif\b")

# `// anoc-simd-test: Suite.Name` — names the differential test that
# exercises both sides of the guard. Read from raw text (it is a
# comment, which sanitization blanks).
_S1_MARKER_RE = re.compile(
    r"anoc-simd-test:\s*([A-Za-z_]\w*)\s*\.\s*([A-Za-z_]\w*)")

# How many raw lines above the #if the marker may sit.
_S1_MARKER_LOOKBACK = 3


def _logical_lines(text: str) -> list[tuple[int, str]]:
    """(first_lineno, joined_text) pairs with backslash continuations
    folded, so a wrapped #if condition is matched as one line."""
    out: list[tuple[int, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        start = i
        cur = lines[i]
        while cur.rstrip().endswith("\\") and i + 1 < len(lines):
            i += 1
            cur = cur.rstrip()[:-1] + " " + lines[i]
        out.append((start + 1, cur))
        i += 1
    return out


def _s1_test_exists(tree: Tree, suite: str, name: str) -> bool:
    """Does TEST/TEST_F/TEST_P(suite, name) exist under tests/?"""
    pat = re.compile(
        r"TEST(?:_F|_P)?\s*\(\s*" + re.escape(suite)
        + r"\s*,\s*" + re.escape(name) + r"\s*[,)]")
    for path, dep in tree.files.items():
        if path.startswith("tests/") and pat.search(dep.sanitized):
            return True
    return False


def check_s1(sf: SourceFile, tree: Tree) -> list[Finding]:
    """Every AVX2-conditional compilation site must carry (a) a scalar
    `#else`/`#elif` twin at the guard's own nesting depth, so non-AVX2
    builds get a real fallback rather than a hole, and (b) an
    `anoc-simd-test: Suite.Name` marker naming an existing differential
    test in tests/, so the twin pair is provably exercised
    bit-identically (see docs/perf.md, SIMD match kernels)."""
    logical = _logical_lines(sf.text)
    raw_lines = sf.text.splitlines()
    out = []
    for idx, (lineno, text) in enumerate(logical):
        if not _S1_GUARD_RE.match(text):
            continue
        # Walk to the guard's matching #endif, noting a same-depth
        # #else/#elif. A flagged #elif starts inside its #if, which
        # the same depth-1 bookkeeping handles.
        depth = 1
        has_twin = False
        end_lineno = logical[-1][0]
        for nxt_lineno, nxt in logical[idx + 1:]:
            if _S1_IF_RE.match(nxt):
                depth += 1
            elif _S1_ENDIF_RE.match(nxt):
                depth -= 1
                if depth == 0:
                    end_lineno = nxt_lineno
                    break
            elif depth == 1 and _S1_ELSE_RE.match(nxt):
                has_twin = True
        if not has_twin:
            out.append(Finding(
                "S1", sf.path, lineno,
                "AVX2-guarded block has no scalar #else/#elif twin; "
                "every SIMD site needs a portable fallback compiled on "
                "non-AVX2 builds"))
        # Marker: inside the guarded span, or just above the #if.
        lo = max(0, lineno - 1 - _S1_MARKER_LOOKBACK)
        window = "\n".join(raw_lines[lo:end_lineno])
        markers = _S1_MARKER_RE.findall(window)
        if not markers:
            out.append(Finding(
                "S1", sf.path, lineno,
                "AVX2-guarded block has no 'anoc-simd-test: Suite.Name' "
                "marker naming the differential test that locks the "
                "SIMD/scalar pair together"))
            continue
        for suite, name in markers:
            if not _s1_test_exists(tree, suite, name):
                out.append(Finding(
                    "S1", sf.path, lineno,
                    f"anoc-simd-test marker names '{suite}.{name}', "
                    f"but no TEST/TEST_F/TEST_P({suite}, {name}) exists "
                    f"under tests/"))
    return out


# --------------------------------------------------------------- SUP --

def check_sup(sf: SourceFile) -> list[Finding]:
    out = []
    for sup in sf.suppressions:
        if not sup.reason:
            out.append(Finding(
                "SUP", sf.path, sup.line,
                "suppression without a reason: write "
                "'// anoc-lint: allow(<rule>) -- <why this is safe>'"))
        for r in sup.rules:
            if r not in RULES or r == "SUP":
                out.append(Finding(
                    "SUP", sf.path, sup.line,
                    f"suppression names unknown rule '{r}' "
                    f"(known: {', '.join(k for k in RULES if k != 'SUP')})"))
    return out


# ------------------------------------------------------------ driver --

def run_all(tree: Tree, paths: list[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(tree.files):
        if paths and not any(path == p or path.startswith(p.rstrip("/") + "/")
                             for p in paths):
            continue
        sf = tree.files[path]
        file_findings = (check_d1(sf) + check_d2(sf, tree) + check_c1(sf)
                         + check_c2(sf, tree) + check_s1(sf, tree)
                         + check_sup(sf))
        _apply_suppressions(sf, file_findings)
        findings.extend(file_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _apply_suppressions(sf: SourceFile, findings: list[Finding]) -> None:
    for f in findings:
        if f.rule == "SUP":
            continue  # suppression hygiene itself cannot be waived
        for sup in sf.suppressions:
            if sup.applies_to(f.rule, f.line):
                sup.used = True
                if sup.reason:
                    f.suppressed = True
                    f.reason = sup.reason
                break
