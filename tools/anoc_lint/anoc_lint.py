#!/usr/bin/env python3
"""anoc-lint driver.

Usage:
    python3 tools/anoc_lint/anoc_lint.py [--root DIR] [--json OUT]
                                         [--fix] [--list-rules] [paths...]

Exit codes: 0 clean (suppressed-with-reason findings are clean),
1 unsuppressed findings, 2 internal/usage error — mirroring the
bench_compare.py gate contract so CI treats them uniformly.

Run from anywhere; --root defaults to the repository this file lives
in. `paths` restricts the scan to repo-relative files or directories.
See docs/static-analysis.md for the rule catalog.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):
    # Allow `python3 tools/anoc_lint/anoc_lint.py` without -m.
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from anoc_lint import model, rules  # type: ignore
else:
    from . import model, rules

# Directories holding C++ sources worth scanning at all.
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")

# Determinism (D-rule) scope seeds: the paths whose artifacts must be
# byte-identical at any job count. Scope propagates to every repo
# header these files (transitively) include — see model.Tree.
SCOPED_DIRS = (
    "src/sim/", "src/noc/", "src/compression/", "src/approx/",
    "src/tcam/", "src/cache/", "src/core/", "src/telemetry/",
    "src/harness/",
)


def default_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def apply_fixes(root: str, findings: list[rules.Finding]) -> int:
    """Insert missing C1 annotations. Returns the edit count."""
    by_file: dict[str, list[rules.Finding]] = {}
    for f in findings:
        if f.fixable and f.fix and not f.suppressed:
            by_file.setdefault(f.path, []).append(f)
    edits = 0
    for path, fs in by_file.items():
        full = os.path.join(root, path)
        with open(full, encoding="utf-8") as fh:
            lines = fh.read().splitlines(keepends=True)
        # Apply bottom-up so earlier insertions don't shift later ones.
        for f in sorted(fs, key=lambda x: (-x.fix[0], -x.fix[1])):
            line, col, text = f.fix
            lines[line - 1] = (lines[line - 1][:col] + text
                               + lines[line - 1][col:])
            edits += 1
        with open(full, "w", encoding="utf-8") as fh:
            fh.write("".join(lines))
    return edits


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="anoc-lint",
        description="machine-checked determinism & isolation contracts")
    ap.add_argument("--root", default=default_root(),
                    help="repository root (default: this checkout)")
    ap.add_argument("--json", dest="json_out", metavar="OUT",
                    help="write a machine-readable findings report")
    ap.add_argument("--fix", action="store_true",
                    help="insert missing C1 annotations mechanically")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="summary line only")
    ap.add_argument("paths", nargs="*",
                    help="repo-relative files/dirs to restrict the scan")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in rules.RULES.items():
            print(f"{rid:4} {desc}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"anoc-lint: error: no src/ under root {root}",
              file=sys.stderr)
        return 2

    try:
        tree = model.Tree(root, SCOPED_DIRS, SOURCE_DIRS)
        findings = rules.run_all(tree, args.paths or None)
        if args.fix:
            n = apply_fixes(root, findings)
            if not args.quiet:
                print(f"anoc-lint: applied {n} fix(es)")
            # Re-lint so the report reflects the fixed tree.
            tree = model.Tree(root, SCOPED_DIRS, SOURCE_DIRS)
            findings = rules.run_all(tree, args.paths or None)
    except OSError as e:
        print(f"anoc-lint: error: {e}", file=sys.stderr)
        return 2

    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.json_out:
        report = {
            "schema": "anoc-lint-v1",
            "root": root,
            "rules": rules.RULES,
            "findings": [f.to_json() for f in findings],
            "counts": {
                "active": len(active),
                "suppressed": len(suppressed),
                "files_scanned": len(tree.files),
            },
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    if not args.quiet:
        for f in active:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    print(f"anoc-lint: {len(active)} finding(s), "
          f"{len(suppressed)} suppressed, "
          f"{len(tree.files)} files scanned")
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
