/**
 * @file
 * approxnoc_sim — the standalone network simulator binary (in the
 * spirit of BookSim's main or gem5's Garnet standalone mode), exposing
 * the full configuration space on the command line:
 *
 *   topology/routing : --rows --cols --concentration --topology=mesh|torus
 *                      --routing=xy|yx|westfirst
 *   router           : --vcs --vc-depth --flit-bits --stages
 *   scheme           : --scheme=Baseline|DI-COMP|DI-VAXX|FP-COMP|FP-VAXX
 *                      --threshold --approx-ratio
 *   traffic          : --traffic=uniform|transpose|bitcomp|hotspot|neighbor
 *                      --rate --data-ratio --type=int|float
 *                      or --trace=<file> [--load]
 *                      or --closed-loop [--window --think]
 *   run              : --cycles --warmup --seed --qos-target
 *   compare          : --compare=<all|scheme,scheme,...> [--jobs=N]
 *                      one simulation per scheme, run in parallel,
 *                      reported as one table
 *   encode bench     : --encode-bench[=all|scheme,...] [--encode-jobs=N]
 *                      [--flows --blocks --reps] — no network; batch
 *                      block encoding through FlowShardedEncoder,
 *                      jobs=1 vs jobs=N cross-checked and timed
 *   decode bench     : --decode-bench[=all|scheme,...] [--decode-jobs=N]
 *                      [--flows --blocks --reps] — the decode twin:
 *                      batch decoding through ShardedCodecPipeline,
 *                      jobs=1 vs jobs=N cross-checked and timed
 *
 * Single-scheme runs end with the gem5-style stats dump.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <optional>

#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "harness/experiment.h"
#include "harness/sharded_codec_pipeline.h"
#include "telemetry/error_profile.h"
#include "telemetry/phase_profiler.h"
#include "noc/network.h"
#include "noc/qos_loop.h"
#include "sim/simulator.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"
#include "traffic/replay.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

void
usage()
{
    std::printf(
        "approxnoc_sim — APPROX-NoC network simulator\n\n"
        "  --rows=4 --cols=4 --concentration=2\n"
        "  --topology=mesh|torus --routing=xy|yx|westfirst\n"
        "  --vcs=4 --vc-depth=4 --flit-bits=64 --stages=3\n"
        "  --scheme=FP-VAXX --threshold=10 --approx-ratio=0.75\n"
        "  --traffic=uniform --rate=0.1 --data-ratio=0.25 --type=float\n"
        "  --trace=<file> [--load=0.04]   (replaces synthetic traffic)\n"
        "  --closed-loop [--window=4 --think=4]\n"
        "  --cycles=100000 --warmup=0 --seed=42\n"
        "  --sim-jobs=<n>       (region-parallel stepping threads, 0=auto,\n"
        "                        1=serial; results byte-identical)\n"
        "  --qos-target=<pct>   (enable the online error-control loop)\n"
        "  --compare=<all|s,s>  (one sim per scheme, parallel with --jobs)\n"
        "  --jobs=<n>           (worker threads for --compare, 0=auto)\n"
        "  --encode-bench[=all|s,s]  (batch block-encode benchmark; no\n"
        "                        network — flow-sharded parallel encode,\n"
        "                        jobs=1 vs jobs=N cross-checked)\n"
        "  --encode-jobs=<n>    (encoder shard workers, 0=auto; default 0)\n"
        "  --decode-bench[=all|s,s]  (batch block-decode benchmark; no\n"
        "                        network — destination-sharded parallel\n"
        "                        decode, jobs=1 vs jobs=N cross-checked)\n"
        "  --decode-jobs=<n>    (decoder shard workers, 0=auto; default 0)\n"
        "  --flows=8 --blocks=4096 --reps=3   (codec-bench workload)\n"
        "  --metrics-out=<dir>  (hierarchical metrics JSON per run)\n"
        "  --trace-out=<dir>    (Chrome trace-event JSON per run; open in\n"
        "                        Perfetto or chrome://tracing)\n"
        "  --sample-interval=<cycles>  (time-series sampling epoch, 0=off)\n"
        "  --profile            (simulator self-profiling: phase timings to\n"
        "                        profile.json in the metrics dir, or '.')\n"
        "  --quiet              (suppress the stats dump; print summary)\n");
}

NocConfig
parse_noc_config(const CliArgs &args)
{
    NocConfig ncfg;
    ncfg.rows = static_cast<unsigned>(args.getInt("rows", 4));
    ncfg.cols = static_cast<unsigned>(args.getInt("cols", 4));
    ncfg.concentration =
        static_cast<unsigned>(args.getInt("concentration", 2));
    ncfg.vcs = static_cast<unsigned>(args.getInt("vcs", 4));
    ncfg.vc_depth = static_cast<unsigned>(args.getInt("vc-depth", 4));
    ncfg.flit_bits = static_cast<unsigned>(args.getInt("flit-bits", 64));
    ncfg.router_stages = static_cast<unsigned>(args.getInt("stages", 3));

    std::string topo = args.getString("topology", "mesh");
    if (topo == "torus")
        ncfg.topology = Topology::Torus;
    else if (topo != "mesh")
        ANOC_FATAL("unknown topology '", topo, "'");

    std::string routing = args.getString("routing", "xy");
    if (routing == "yx")
        ncfg.routing = RoutingAlgo::YX;
    else if (routing == "westfirst")
        ncfg.routing = RoutingAlgo::WestFirst;
    else if (routing != "xy")
        ANOC_FATAL("unknown routing '", routing, "'");
    return ncfg;
}

struct SimSummary {
    double latency = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t data_flits = 0;
    double quality = 1.0;
    bool drained = false;
};

/**
 * One fully isolated simulation of @p scheme under the CLI-selected
 * traffic. When @p dump is set, ends with the gem5-style stats dump on
 * stdout (single-scheme mode only — compare mode keeps workers quiet).
 */
/**
 * @param labeled prefix the qor.json/profile.json artifacts with the
 *        scheme label (compare mode — keeps workers from clobbering
 *        each other); single-scheme runs use the plain names the CI
 *        smoke checks for.
 */
SimSummary
run_sim(const CliArgs &args, Scheme scheme, bool dump, bool labeled = false)
{
    NocConfig ncfg = parse_noc_config(args);
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = args.getDouble("threshold", 10.0);
    auto codec = CodecFactory::create(scheme, cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    // Telemetry (off unless requested). Per-scheme labels keep compare
    // runs from clobbering each other's artifacts.
    telemetry::TelemetryOptions topts;
    topts.metrics_dir = args.getString("metrics-out", "");
    topts.trace_dir = args.getString("trace-out", "");
    topts.sample_interval =
        static_cast<Cycle>(args.getInt("sample-interval", 0));
    topts.label = telemetry::sanitize_component(to_string(scheme));
    topts.pid = static_cast<std::uint32_t>(scheme);
    // QoR error telemetry is always on (encode-time recording is one
    // uncontended lock per approximated block); the self-profiler only
    // under --profile. Bind before bindTelemetry so the sampler also
    // carries live qor.* probes.
    telemetry::ErrorProfile qor;
    if (cc.error_threshold_pct > 0)
        qor.setDebugLimit(cc.error_threshold_pct / 100.0 *
                          telemetry::ErrorProfile::kDebugSlack);
    net.bindErrorProfile(&qor);

    const bool profile = args.getBool("profile", false);
    std::unique_ptr<telemetry::PhaseProfiler> prof;
    if (profile) {
        prof = std::make_unique<telemetry::PhaseProfiler>();
        sim.bindProfiler(prof.get());
        net.bindProfiler(prof.get());
    }

    std::optional<telemetry::PointTelemetry> pt;
    if (topts.enabled()) {
        pt.emplace(topts);
        net.bindTelemetry(*pt);
        if (pt->tracer())
            pt->tracer()->setProcessName(to_string(scheme));
        if (pt->sampler())
            sim.add(pt->sampler());
    }

    auto cycles = static_cast<Cycle>(args.getInt("cycles", 100000));
    auto warmup = static_cast<Cycle>(args.getInt("warmup", 0));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));

    // Traffic source (exactly one).
    std::unique_ptr<SyntheticDataProvider> provider;
    std::unique_ptr<SyntheticTraffic> synth;
    std::unique_ptr<ClosedLoopTraffic> closed;
    std::unique_ptr<CommTrace> trace;
    std::unique_ptr<TraceReplay> replay;

    DataType type = args.getString("type", "float") == "int"
                        ? DataType::Int32
                        : DataType::Float32;
    provider = std::make_unique<SyntheticDataProvider>(type, 16, 0.9, 3.0,
                                                       seed, 0.7, 8);

    if (args.has("trace")) {
        trace = std::make_unique<CommTrace>(
            CommTrace::load(args.getString("trace", "")));
        std::uint64_t flits = 0;
        for (const auto &r : trace->records())
            flits += r.cls == PacketClass::Data ? 9 : 1;
        double natural =
            trace->duration()
                ? static_cast<double>(flits) /
                      (static_cast<double>(trace->duration()) * ncfg.nodes())
                : 0.0;
        double load = args.getDouble("load", 0.04);
        replay = std::make_unique<TraceReplay>(
            net, *trace, natural > 0 ? natural / load : 1.0,
            args.getDouble("approx-ratio", 0.75));
        sim.add(replay.get());
    } else if (args.getBool("closed-loop", false)) {
        ClosedLoopConfig lc;
        lc.window = static_cast<unsigned>(args.getInt("window", 4));
        lc.think_time = static_cast<Cycle>(args.getInt("think", 4));
        lc.approx_ratio = args.getDouble("approx-ratio", 0.75);
        lc.seed = seed;
        closed = std::make_unique<ClosedLoopTraffic>(net, lc, *provider);
        sim.add(closed.get());
    } else {
        SyntheticConfig tc;
        tc.injection_rate = args.getDouble("rate", 0.1);
        tc.data_packet_ratio = args.getDouble("data-ratio", 0.25);
        tc.pattern = pattern_from_string(
            args.getString("traffic", "uniform"));
        tc.approx_ratio = args.getDouble("approx-ratio", 0.75);
        tc.seed = seed;
        synth = std::make_unique<SyntheticTraffic>(net, tc, *provider);
        sim.add(synth.get());
    }

    std::unique_ptr<ErrorControlLoop> qos;
    if (args.has("qos-target")) {
        qos = std::make_unique<ErrorControlLoop>(
            net,
            QosController(args.getDouble("qos-target", 0.2),
                          cc.error_threshold_pct),
            2000);
        sim.add(qos.get());
    }

    // Region-parallel stepping, enabled after every component joined
    // the simulator so the traffic/QoS sources land in the serial tail.
    unsigned sim_jobs = static_cast<unsigned>(args.getInt("sim-jobs", 1));
    if (sim_jobs != 1)
        net.enableRegionParallel(sim, sim_jobs);

    if (warmup > 0) {
        sim.run(warmup);
        net.stats().reset();
    }
    sim.run(cycles);

    // Stop offering and drain.
    if (synth)
        synth->setEnabled(false);
    if (closed)
        closed->setEnabled(false);
    bool drained = sim.runUntil(
        [&] {
            return net.drained() &&
                   (!replay || replay->done()) &&
                   (!closed || closed->quiesced());
        },
        static_cast<Cycle>(5e6));

    if (dump) {
        net.dumpStats(std::cout, sim.now());
        if (closed)
            std::printf("closed_loop.round_trip    %.2f\n",
                        closed->roundTrip().mean());
        if (qos)
            std::printf("qos.threshold            %.2f (violations %llu)\n",
                        qos->controller().threshold(),
                        static_cast<unsigned long long>(
                            qos->controller().violations()));
    }

    if (pt) {
        if (telemetry::Sampler *smp = pt->sampler()) {
            if (smp->sampleCycles().empty() ||
                smp->sampleCycles().back() != sim.now())
                smp->sample(sim.now());
        }
        net.collectTelemetry(*pt->metrics());
        pt->metrics()->counter("sim.elapsed_cycles").inc(sim.now());
        qor.exportTo(*pt->metrics(),
                     "qor." + telemetry::sanitize_component(
                                  to_string(scheme)));
        pt->write();
    }

    // qor.json always accompanies the metrics; profile.json needs
    // --profile and falls back to the working directory so `--profile`
    // alone still leaves an artifact behind.
    const std::string stem = labeled ? topts.label + "." : std::string();
    if (topts.metricsEnabled())
        telemetry::write_json_artifact(
            topts.metrics_dir, stem + "qor.json",
            [&](std::ostream &os) { qor.writeJson(os); });
    if (prof) {
        const std::string dir =
            topts.metricsEnabled() ? topts.metrics_dir : std::string(".");
        telemetry::write_json_artifact(
            dir, stem + "profile.json",
            [&](std::ostream &os) { prof->writeJson(os); });
        if (!topts.metricsEnabled())
            telemetry::write_json_artifact(
                dir, stem + "qor.json",
                [&](std::ostream &os) { qor.writeJson(os); });
    }

    SimSummary s;
    s.latency = net.stats().total_lat.mean();
    s.delivered = net.stats().packets_delivered.value();
    s.data_flits = net.dataFlitsInjected();
    s.quality = net.stats().quality.dataQuality();
    s.drained = drained;
    return s;
}

/** `--compare` mode: one simulation per scheme on the worker pool. */
int
run_compare(const CliArgs &args)
{
    std::vector<Scheme> schemes =
        harness::parse_scheme_list(args.getString("compare", "all"));

    harness::ExperimentRunner runner(
        static_cast<unsigned>(args.getInt("jobs", 1)));
    auto out = runner.map(schemes.size(), [&](std::size_t i) {
        return run_sim(args, schemes[i], /*dump=*/false, /*labeled=*/true);
    });

    Table t({"scheme", "latency", "delivered", "data_flits", "quality",
             "status"});
    bool all_ok = true;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        auto row = t.row();
        row.cell(to_string(schemes[i]));
        if (!out[i].ok) {
            row.cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"))
                .cell("FAILED: " + out[i].error);
            all_ok = false;
            continue;
        }
        const SimSummary &s = out[i].value;
        row.cell(s.latency, 2)
            .cell(static_cast<long>(s.delivered))
            .cell(static_cast<long>(s.data_flits))
            .cell(s.quality, 4)
            .cell(std::string(s.drained ? "drained" : "TIMEOUT"));
        all_ok = all_ok && s.drained;
    }
    t.print(std::cout);
    return all_ok ? 0 : 1;
}

/**
 * `--encode-bench` mode: no network, just batch block encoding through
 * FlowShardedEncoder. The workload spreads --blocks synthetic blocks
 * round-robin over --flows disjoint (src, dst) flows, trains the
 * dictionaries with serial encode+decode passes, then times
 * encodeAll() at jobs=1 and jobs=--encode-jobs. The two runs' total
 * NR-bit counts must match exactly (the jobs-equivalence guarantee of
 * the flow-isolation contract); a mismatch fails the run.
 */
int
run_encode_bench(const CliArgs &args)
{
    std::string list = args.getString("encode-bench", "");
    std::vector<Scheme> schemes =
        list.empty()
            ? std::vector<Scheme>{scheme_from_string(
                  args.getString("scheme", "FP-VAXX"))}
            : harness::parse_scheme_list(list);

    auto flows = static_cast<unsigned>(args.getInt("flows", 8));
    auto n_blocks = static_cast<std::size_t>(args.getInt("blocks", 4096));
    unsigned encode_jobs =
        static_cast<unsigned>(args.getInt("encode-jobs", 0));
    int reps = static_cast<int>(args.getInt("reps", 3));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    constexpr std::size_t kWordsPerBlock = 16;

    DataType type = args.getString("type", "float") == "int"
                        ? DataType::Int32
                        : DataType::Float32;
    SyntheticDataProvider provider(type, kWordsPerBlock, 0.9, 3.0, seed,
                                   0.7, 8);
    auto flow_src = [&](std::size_t b) {
        return static_cast<NodeId>(b % flows);
    };
    auto flow_dst = [&](std::size_t b) {
        return static_cast<NodeId>(flows + b % flows);
    };
    std::vector<DataBlock> blocks;
    blocks.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b)
        blocks.push_back(provider.next(flow_src(b)));

    Table t({"scheme", "jobs", "shards", "j1 Mw/s", "jN Mw/s", "speedup",
             "status"});
    bool all_ok = true;
    unsigned resolved_jobs = 0;
    for (Scheme scheme : schemes) {
        CodecConfig cc;
        cc.n_nodes = 2 * flows;
        cc.error_threshold_pct = args.getDouble("threshold", 10.0);
        auto codec = CodecFactory::create(scheme, cc);

        // Serial training passes so both timed runs start from the same
        // steady-state tables; the long gap flushes in-flight updates.
        Cycle now = 0;
        for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t b = 0; b < blocks.size(); ++b) {
                EncodedBlock enc = codec->encodeBlock(
                    blocks[b], flow_src(b), flow_dst(b), now);
                codec->decodeBlock(enc, flow_src(b), flow_dst(b), now);
                now += 51;
            }
        }
        now += 100000;

        std::vector<harness::EncodeRequest> reqs;
        reqs.reserve(blocks.size());
        for (std::size_t b = 0; b < blocks.size(); ++b)
            reqs.push_back({&blocks[b], flow_src(b), flow_dst(b), now});

        const double words =
            static_cast<double>(blocks.size() * kWordsPerBlock);
        std::size_t shards = 0;
        auto measure = [&](unsigned jobs, std::uint64_t &sink) {
            harness::FlowShardedEncoder enc(*codec, jobs);
            resolved_jobs = jobs == 1 ? resolved_jobs : enc.jobs();
            std::vector<double> rep_wps;
            for (int rep = 0; rep < reps; ++rep) {
                std::uint64_t rep_sink = 0;
                auto t0 = std::chrono::steady_clock::now();
                auto out = enc.encodeAll(reqs);
                auto t1 = std::chrono::steady_clock::now();
                for (const auto &e : out)
                    rep_sink += e.bits();
                double secs =
                    std::chrono::duration<double>(t1 - t0).count();
                rep_wps.push_back(words / secs);
                sink = rep_sink;
            }
            shards = enc.lastShardCount();
            std::sort(rep_wps.begin(), rep_wps.end());
            return rep_wps[rep_wps.size() / 2];
        };

        std::uint64_t sink1 = 0, sinkN = 0;
        double j1 = measure(1, sink1);
        double jn = measure(encode_jobs, sinkN);
        bool ok = sink1 == sinkN;
        all_ok = all_ok && ok;

        auto row = t.row();
        row.cell(to_string(scheme))
            .cell(static_cast<long>(resolved_jobs))
            .cell(static_cast<long>(shards))
            .cell(j1 / 1e6, 2)
            .cell(jn / 1e6, 2)
            .cell(jn / j1, 2)
            .cell(std::string(ok ? "ok" : "BIT MISMATCH"));
    }
    t.print(std::cout);
    return all_ok ? 0 : 1;
}

/**
 * `--decode-bench` mode: the decode-side twin of --encode-bench,
 * exercising harness::ShardedCodecPipeline. Dictionaries are trained
 * per codec instance with serial encode+decode passes; because decode
 * mutates the learning state, the jobs=1 and jobs=N runs each get
 * their own identically trained twin. The batch is encoded serially
 * (the pipeline's encode phase), then decodeAll() is timed at jobs=1
 * and jobs=--decode-jobs. Word sums, consistency mismatches and
 * per-destination notification streams must match exactly (the
 * jobs-equivalence guarantee of the destination-isolation contract);
 * a divergence fails the run.
 */
int
run_decode_bench(const CliArgs &args)
{
    std::string list = args.getString("decode-bench", "");
    std::vector<Scheme> schemes =
        list.empty()
            ? std::vector<Scheme>{scheme_from_string(
                  args.getString("scheme", "FP-VAXX"))}
            : harness::parse_scheme_list(list);

    auto flows = static_cast<unsigned>(args.getInt("flows", 8));
    auto n_blocks = static_cast<std::size_t>(args.getInt("blocks", 4096));
    unsigned decode_jobs =
        static_cast<unsigned>(args.getInt("decode-jobs", 0));
    int reps = static_cast<int>(args.getInt("reps", 3));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    constexpr std::size_t kWordsPerBlock = 16;

    DataType type = args.getString("type", "float") == "int"
                        ? DataType::Int32
                        : DataType::Float32;
    SyntheticDataProvider provider(type, kWordsPerBlock, 0.9, 3.0, seed,
                                   0.7, 8);
    auto flow_src = [&](std::size_t b) {
        return static_cast<NodeId>(b % flows);
    };
    auto flow_dst = [&](std::size_t b) {
        return static_cast<NodeId>(flows + b % flows);
    };
    std::vector<DataBlock> blocks;
    blocks.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b)
        blocks.push_back(provider.next(flow_src(b)));

    Table t({"scheme", "jobs", "shards", "j1 Mw/s", "jN Mw/s", "speedup",
             "status"});
    bool all_ok = true;
    for (Scheme scheme : schemes) {
        CodecConfig cc;
        cc.n_nodes = 2 * flows;
        cc.error_threshold_pct = args.getDouble("threshold", 10.0);

        Cycle measure_at = 0;
        auto make_trained = [&]() {
            auto codec = CodecFactory::create(scheme, cc);
            Cycle now = 0;
            for (int pass = 0; pass < 2; ++pass) {
                for (std::size_t b = 0; b < blocks.size(); ++b) {
                    EncodedBlock enc = codec->encodeBlock(
                        blocks[b], flow_src(b), flow_dst(b), now);
                    codec->decodeBlock(enc, flow_src(b), flow_dst(b), now);
                    now += 51;
                }
            }
            for (NodeId d = 0; d < static_cast<NodeId>(cc.n_nodes); ++d)
                codec->drainNotifications(d);
            measure_at = now + 100000;
            return codec;
        };
        auto codec1 = make_trained();
        auto codecN = make_trained();

        std::vector<harness::EncodeRequest> ereqs;
        ereqs.reserve(blocks.size());
        for (std::size_t b = 0; b < blocks.size(); ++b)
            ereqs.push_back(
                {&blocks[b], flow_src(b), flow_dst(b), measure_at});

        const double words =
            static_cast<double>(blocks.size() * kWordsPerBlock);
        std::size_t shards = 0;
        unsigned resolved_jobs = 0;
        auto measure = [&](CodecSystem &codec, unsigned jobs,
                           std::uint64_t &sink) {
            harness::ShardedCodecPipeline pipe(codec, /*encode_jobs=*/1,
                                               jobs);
            if (jobs != 1)
                resolved_jobs = pipe.decodeJobs();
            auto encs = pipe.encodeAll(ereqs); // serial encode phase
            std::vector<harness::DecodeRequest> dreqs;
            dreqs.reserve(encs.size());
            for (std::size_t b = 0; b < encs.size(); ++b)
                dreqs.push_back(
                    {&encs[b], flow_src(b), flow_dst(b), measure_at});
            std::vector<double> rep_wps;
            for (int rep = 0; rep < reps; ++rep) {
                std::uint64_t rep_sink = 0;
                auto t0 = std::chrono::steady_clock::now();
                auto out = pipe.decodeAll(dreqs);
                auto t1 = std::chrono::steady_clock::now();
                for (const auto &db : out)
                    for (std::size_t w = 0; w < db.size(); ++w)
                        rep_sink += db.word(w);
                double secs =
                    std::chrono::duration<double>(t1 - t0).count();
                rep_wps.push_back(words / secs);
                sink = rep_sink;
            }
            shards = pipe.lastDecodeShardCount();
            std::sort(rep_wps.begin(), rep_wps.end());
            return rep_wps[rep_wps.size() / 2];
        };

        std::uint64_t sink1 = 0, sinkN = 0;
        double j1 = measure(*codec1, 1, sink1);
        double jn = measure(*codecN, decode_jobs, sinkN);

        bool ok = sink1 == sinkN &&
                  codec1->consistencyMismatches() ==
                      codecN->consistencyMismatches();
        for (NodeId d = 0; ok && d < static_cast<NodeId>(cc.n_nodes); ++d) {
            auto n1 = codec1->drainNotifications(d);
            auto nN = codecN->drainNotifications(d);
            ok = n1.size() == nN.size();
            for (std::size_t i = 0; ok && i < n1.size(); ++i)
                ok = n1[i].from == nN[i].from && n1[i].to == nN[i].to &&
                     n1[i].seq == nN[i].seq;
        }
        all_ok = all_ok && ok;

        auto row = t.row();
        row.cell(to_string(scheme))
            .cell(static_cast<long>(resolved_jobs))
            .cell(static_cast<long>(shards))
            .cell(j1 / 1e6, 2)
            .cell(jn / 1e6, 2)
            .cell(jn / j1, 2)
            .cell(std::string(ok ? "ok" : "STREAM MISMATCH"));
    }
    t.print(std::cout);
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("help")) {
        usage();
        return 0;
    }

    if (args.has("compare"))
        return run_compare(args);
    if (args.has("encode-bench"))
        return run_encode_bench(args);
    if (args.has("decode-bench"))
        return run_decode_bench(args);

    Scheme scheme =
        scheme_from_string(args.getString("scheme", "FP-VAXX"));
    bool quiet = args.getBool("quiet", false);
    SimSummary s = run_sim(args, scheme, /*dump=*/!quiet);
    if (quiet)
        std::printf("%s: latency %.2f, delivered %llu, data flits %llu, "
                    "quality %.4f (%s)\n",
                    to_string(scheme).c_str(), s.latency,
                    static_cast<unsigned long long>(s.delivered),
                    static_cast<unsigned long long>(s.data_flits),
                    s.quality, s.drained ? "drained" : "TIMEOUT");
    return s.drained ? 0 : 1;
}
