/**
 * @file
 * approxnoc_sim — the standalone network simulator binary (in the
 * spirit of BookSim's main or gem5's Garnet standalone mode), exposing
 * the full configuration space on the command line:
 *
 *   topology/routing : --rows --cols --concentration --topology=mesh|torus
 *                      --routing=xy|yx|westfirst
 *   router           : --vcs --vc-depth --flit-bits --stages
 *   scheme           : --scheme=Baseline|DI-COMP|DI-VAXX|FP-COMP|FP-VAXX
 *                      --threshold --approx-ratio
 *   traffic          : --traffic=uniform|transpose|bitcomp|hotspot|neighbor
 *                      --rate --data-ratio --type=int|float
 *                      or --trace=<file> [--load]
 *                      or --closed-loop [--window --think]
 *   run              : --cycles --warmup --seed --qos-target
 *
 * Ends with the gem5-style stats dump.
 */
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/log.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "noc/qos_loop.h"
#include "sim/simulator.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"
#include "traffic/replay.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

void
usage()
{
    std::printf(
        "approxnoc_sim — APPROX-NoC network simulator\n\n"
        "  --rows=4 --cols=4 --concentration=2\n"
        "  --topology=mesh|torus --routing=xy|yx|westfirst\n"
        "  --vcs=4 --vc-depth=4 --flit-bits=64 --stages=3\n"
        "  --scheme=FP-VAXX --threshold=10 --approx-ratio=0.75\n"
        "  --traffic=uniform --rate=0.1 --data-ratio=0.25 --type=float\n"
        "  --trace=<file> [--load=0.04]   (replaces synthetic traffic)\n"
        "  --closed-loop [--window=4 --think=4]\n"
        "  --cycles=100000 --warmup=0 --seed=42\n"
        "  --qos-target=<pct>   (enable the online error-control loop)\n"
        "  --quiet              (suppress the stats dump; print summary)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("help")) {
        usage();
        return 0;
    }

    NocConfig ncfg;
    ncfg.rows = static_cast<unsigned>(args.getInt("rows", 4));
    ncfg.cols = static_cast<unsigned>(args.getInt("cols", 4));
    ncfg.concentration =
        static_cast<unsigned>(args.getInt("concentration", 2));
    ncfg.vcs = static_cast<unsigned>(args.getInt("vcs", 4));
    ncfg.vc_depth = static_cast<unsigned>(args.getInt("vc-depth", 4));
    ncfg.flit_bits = static_cast<unsigned>(args.getInt("flit-bits", 64));
    ncfg.router_stages = static_cast<unsigned>(args.getInt("stages", 3));

    std::string topo = args.getString("topology", "mesh");
    if (topo == "torus")
        ncfg.topology = Topology::Torus;
    else if (topo != "mesh")
        ANOC_FATAL("unknown topology '", topo, "'");

    std::string routing = args.getString("routing", "xy");
    if (routing == "yx")
        ncfg.routing = RoutingAlgo::YX;
    else if (routing == "westfirst")
        ncfg.routing = RoutingAlgo::WestFirst;
    else if (routing != "xy")
        ANOC_FATAL("unknown routing '", routing, "'");

    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = args.getDouble("threshold", 10.0);
    auto codec =
        make_codec(scheme_from_string(args.getString("scheme", "FP-VAXX")),
                   cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    auto cycles = static_cast<Cycle>(args.getInt("cycles", 100000));
    auto warmup = static_cast<Cycle>(args.getInt("warmup", 0));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));

    // Traffic source (exactly one).
    std::unique_ptr<SyntheticDataProvider> provider;
    std::unique_ptr<SyntheticTraffic> synth;
    std::unique_ptr<ClosedLoopTraffic> closed;
    std::unique_ptr<CommTrace> trace;
    std::unique_ptr<TraceReplay> replay;

    DataType type = args.getString("type", "float") == "int"
                        ? DataType::Int32
                        : DataType::Float32;
    provider = std::make_unique<SyntheticDataProvider>(type, 16, 0.9, 3.0,
                                                       seed, 0.7, 8);

    if (args.has("trace")) {
        trace = std::make_unique<CommTrace>(
            CommTrace::load(args.getString("trace", "")));
        std::uint64_t flits = 0;
        for (const auto &r : trace->records())
            flits += r.cls == PacketClass::Data ? 9 : 1;
        double natural =
            trace->duration()
                ? static_cast<double>(flits) /
                      (static_cast<double>(trace->duration()) * ncfg.nodes())
                : 0.0;
        double load = args.getDouble("load", 0.04);
        replay = std::make_unique<TraceReplay>(
            net, *trace, natural > 0 ? natural / load : 1.0,
            args.getDouble("approx-ratio", 0.75));
        sim.add(replay.get());
    } else if (args.getBool("closed-loop", false)) {
        ClosedLoopConfig lc;
        lc.window = static_cast<unsigned>(args.getInt("window", 4));
        lc.think_time = static_cast<Cycle>(args.getInt("think", 4));
        lc.approx_ratio = args.getDouble("approx-ratio", 0.75);
        lc.seed = seed;
        closed = std::make_unique<ClosedLoopTraffic>(net, lc, *provider);
        sim.add(closed.get());
    } else {
        SyntheticConfig tc;
        tc.injection_rate = args.getDouble("rate", 0.1);
        tc.data_packet_ratio = args.getDouble("data-ratio", 0.25);
        tc.pattern = pattern_from_string(
            args.getString("traffic", "uniform"));
        tc.approx_ratio = args.getDouble("approx-ratio", 0.75);
        tc.seed = seed;
        synth = std::make_unique<SyntheticTraffic>(net, tc, *provider);
        sim.add(synth.get());
    }

    std::unique_ptr<ErrorControlLoop> qos;
    if (args.has("qos-target")) {
        qos = std::make_unique<ErrorControlLoop>(
            net,
            QosController(args.getDouble("qos-target", 0.2),
                          cc.error_threshold_pct),
            2000);
        sim.add(qos.get());
    }

    if (warmup > 0) {
        sim.run(warmup);
        net.stats().reset();
    }
    sim.run(cycles);

    // Stop offering and drain.
    if (synth)
        synth->setEnabled(false);
    if (closed)
        closed->setEnabled(false);
    bool drained = sim.runUntil(
        [&] {
            return net.drained() &&
                   (!replay || replay->done()) &&
                   (!closed || closed->quiesced());
        },
        static_cast<Cycle>(5e6));

    if (args.getBool("quiet", false)) {
        std::printf("%s: latency %.2f, delivered %llu, data flits %llu, "
                    "quality %.4f (%s)\n",
                    to_string(net.codec().scheme()).c_str(),
                    net.stats().total_lat.mean(),
                    static_cast<unsigned long long>(
                        net.stats().packets_delivered.value()),
                    static_cast<unsigned long long>(net.dataFlitsInjected()),
                    net.stats().quality.dataQuality(),
                    drained ? "drained" : "TIMEOUT");
    } else {
        net.dumpStats(std::cout, sim.now());
        if (closed)
            std::printf("closed_loop.round_trip    %.2f\n",
                        closed->roundTrip().mean());
        if (qos)
            std::printf("qos.threshold            %.2f (violations %llu)\n",
                        qos->controller().threshold(),
                        static_cast<unsigned long long>(
                            qos->controller().violations()));
    }
    return drained ? 0 : 1;
}
