/**
 * @file
 * The whole paper grid in one parallel invocation: every benchmark x
 * every scheme at the Table 1 operating point, replayed once on the
 * worker pool, then sliced into the Figure 10 (compression), Figure 11
 * (flit reduction), Figure 9 (latency breakdown) and Figure 15 (power)
 * views from the same shared results — plus the raw per-point grid.
 * With `--jobs=N` the sweep parallelizes across all points while
 * producing tables bit-identical to `--jobs=1`.
 */
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

void
fail_row(Table &t, const std::string &bm, Scheme s, std::size_t metrics)
{
    auto row = t.row();
    row.cell(bm).cell(to_string(s)).cell(std::string("FAILED"));
    for (std::size_t i = 1; i < metrics; ++i)
        row.cell(std::string("-"));
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec::Builder builder;
    builder.fromCli(argc, argv,
                    "Full paper sweep: every benchmark x scheme point, "
                    "all figure tables from one parallel run");
    Experiment ex(builder.build());
    const ExperimentSpec &spec = ex.spec();
    print_banner("Full paper sweep (fig09/10/11/15 from one grid)", spec);
    ex.run();

    // ------------------------------------------------------- raw grid
    emit(ex.results().toTable(spec), spec, "sweep_points");

    // ----------------------------------------- Figure 9 view: latency
    Table lat({"benchmark", "scheme", "queue", "network", "decode",
               "total"});
    for (const auto &bm : spec.benchmarks()) {
        for (Scheme s : spec.schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                fail_row(lat, bm, s, 4);
                continue;
            }
            lat.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(pr.replay.queue_lat, 2)
                .cell(pr.replay.net_lat, 2)
                .cell(pr.replay.decode_lat, 2)
                .cell(pr.replay.total_lat, 2);
        }
    }
    emit(lat, spec, "sweep_latency");

    // ------------------------------------- Figure 10 view: compression
    Table comp({"benchmark", "scheme", "exact_frac", "approx_frac",
                "compr_ratio"});
    std::map<Scheme, double> gmean_log;
    std::map<Scheme, std::size_t> gmean_n;
    for (const auto &bm : spec.benchmarks()) {
        for (Scheme s : spec.schemes()) {
            if (s == Scheme::Baseline)
                continue;
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                fail_row(comp, bm, s, 3);
                continue;
            }
            comp.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(pr.replay.exact_fraction, 3)
                .cell(pr.replay.approx_fraction, 3)
                .cell(pr.replay.compression_ratio, 3);
            gmean_log[s] +=
                std::log(std::max(1e-6, pr.replay.compression_ratio));
            ++gmean_n[s];
        }
    }
    for (Scheme s : spec.schemes()) {
        if (!gmean_n[s])
            continue;
        comp.row()
            .cell(std::string("GMEAN"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(std::string("-"))
            .cell(std::exp(gmean_log[s] /
                           static_cast<double>(gmean_n[s])),
                  3);
    }
    emit(comp, spec, "sweep_compression");

    // --------------------------- Figure 11 + 15 view: flits and power
    Table eff({"benchmark", "scheme", "data_flits", "flits_norm",
               "dyn_power_mw", "power_norm"});
    for (const auto &bm : spec.benchmarks()) {
        std::uint64_t base_flits = 0;
        double base_mw = 0.0;
        for (Scheme s : spec.schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                fail_row(eff, bm, s, 4);
                continue;
            }
            const ReplayResult &r = pr.replay;
            if (s == Scheme::Baseline) {
                base_flits = r.data_flits;
                base_mw = r.dynamic_power_mw;
            }
            eff.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(static_cast<long>(r.data_flits))
                .cell(base_flits
                          ? static_cast<double>(r.data_flits) /
                                static_cast<double>(base_flits)
                          : 1.0,
                      3)
                .cell(r.dynamic_power_mw, 3)
                .cell(base_mw > 0 ? r.dynamic_power_mw / base_mw : 1.0, 3);
        }
    }
    emit(eff, spec, "sweep_efficiency");

    const RunningStat &summary = ex.results().latencySummary();
    std::printf("\n%zu points, %zu failed; per-point mean latency "
                "min/mean/max = %.2f / %.2f / %.2f cycles\n",
                spec.size(), ex.results().failures(), summary.min(),
                summary.mean(), summary.max());
    return ex.results().failures() ? 1 : 0;
}
