/**
 * @file
 * micro_sim — the simulator-stepping throughput benchmark behind the
 * region-parallel perf gate. One fixed, seeded workload: an 8x8
 * concentrated mesh (128 endpoints) under saturating uniform synthetic
 * traffic with the Baseline codec, so almost all per-cycle work is
 * router/NI stepping — the part region-parallel stepping spreads over
 * threads — rather than codec arithmetic.
 *
 * The run measures cycles/second serially and at --sim-jobs, each as a
 * median of --bench-reps timed reps over a fresh simulator (after a
 * warmup run), and cross-checks that the two configurations delivered
 * byte-identical results (packets delivered, data flits injected,
 * mean latency) — the determinism guarantee of the region-parallel
 * contract, measured rather than assumed. A divergence fails the run;
 * the speedup itself is recorded, never gated (CI machines with fewer
 * cores than --sim-jobs legitimately measure ~1x).
 *
 * Invoked with --bench-out=FILE it writes machine-readable JSON
 * (schema approxnoc-micro-sim-bench-v1) with the same results/parallel
 * section shape micro_codec emits, so scripts/bench_compare.py diffs
 * two such files; CI compares against the checked-in seed baseline
 * (bench/baselines/BENCH_micro_sim.seed.json). See docs/perf.md.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

/** Determinism sinks plus the median throughput of one configuration. */
struct RunResult {
    double cycles_per_sec = 0.0;
    std::vector<double> rep_cps;
    unsigned regions = 0;
    std::uint64_t delivered = 0;
    std::uint64_t data_flits = 0;
    double total_lat = 0.0;
};

struct Workload {
    unsigned rows = 8;
    unsigned cols = 8;
    Cycle warmup = 2000;
    Cycle cycles = 20000;
    double rate = 0.30;
    double data_ratio = 0.5;
    std::uint64_t seed = 42;
    int reps = 5;
};

/**
 * One fresh, fully isolated simulation of the fixed workload at
 * @p sim_jobs stepping threads, timed over the post-warmup run.
 */
RunResult
run_config(const Workload &w, unsigned sim_jobs, int reps)
{
    RunResult out;
    for (int rep = 0; rep < reps; ++rep) {
        NocConfig ncfg;
        ncfg.rows = w.rows;
        ncfg.cols = w.cols;
        ncfg.concentration = 2;
        CodecConfig cc;
        cc.n_nodes = ncfg.nodes();
        auto codec = CodecFactory::create(Scheme::Baseline, cc);

        Network net(ncfg, codec.get());
        Simulator sim;
        net.attach(sim);

        SyntheticConfig tc;
        tc.injection_rate = w.rate;
        tc.data_packet_ratio = w.data_ratio;
        tc.pattern = TrafficPattern::UniformRandom;
        tc.seed = w.seed;
        SyntheticDataProvider provider(DataType::Float32, 16, 0.9, 3.0,
                                       w.seed, 0.7, 8);
        SyntheticTraffic gen(net, tc, provider);
        sim.add(&gen);

        if (sim_jobs != 1)
            out.regions = net.enableRegionParallel(sim, sim_jobs);
        else
            out.regions = 1;

        sim.run(w.warmup);
        auto t0 = std::chrono::steady_clock::now();
        sim.run(w.cycles);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        out.rep_cps.push_back(static_cast<double>(w.cycles) / secs);

        // Identical seeded workload => identical counters every rep;
        // the last rep's values stand for the configuration.
        out.delivered = net.stats().packets_delivered.value();
        out.data_flits = net.dataFlitsInjected();
        out.total_lat = net.stats().total_lat.mean();
    }
    std::vector<double> sorted = out.rep_cps;
    std::sort(sorted.begin(), sorted.end());
    out.cycles_per_sec = sorted[sorted.size() / 2];
    return out;
}

int
write_json(const std::string &path, const Workload &w, unsigned sim_jobs,
           const RunResult &serial, const RunResult &par)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "micro_sim: cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"approxnoc-micro-sim-bench-v1\",\n");
    std::fprintf(f,
                 "  \"config\": {\n"
                 "    \"rows\": %u,\n"
                 "    \"cols\": %u,\n"
                 "    \"concentration\": 2,\n"
                 "    \"scheme\": \"baseline\",\n"
                 "    \"rate\": %.3g,\n"
                 "    \"data_ratio\": %.3g,\n"
                 "    \"warmup\": %llu,\n"
                 "    \"cycles\": %llu,\n"
                 "    \"reps\": %d,\n"
                 "    \"seed\": %llu\n"
                 "  },\n",
                 w.rows, w.cols, w.rate, w.data_ratio,
                 static_cast<unsigned long long>(w.warmup),
                 static_cast<unsigned long long>(w.cycles), w.reps,
                 static_cast<unsigned long long>(w.seed));
    std::fprintf(f, "  \"results\": {\n    \"mesh_%ux%u\": {\n",
                 w.rows, w.cols);
    std::fprintf(f, "      \"cycles_per_sec\": %.6g,\n",
                 serial.cycles_per_sec);
    std::fprintf(f, "      \"reps_cycles_per_sec\": [");
    for (std::size_t i = 0; i < serial.rep_cps.size(); ++i)
        std::fprintf(f, "%s%.6g", i ? ", " : "", serial.rep_cps[i]);
    std::fprintf(f,
                 "],\n"
                 "      \"packets_delivered\": %llu,\n"
                 "      \"data_flits\": %llu\n    }\n  },\n",
                 static_cast<unsigned long long>(serial.delivered),
                 static_cast<unsigned long long>(serial.data_flits));
    std::fprintf(f,
                 "  \"parallel\": {\n"
                 "    \"sim_jobs\": %u,\n"
                 "    \"regions\": %u,\n"
                 "    \"results\": {\n"
                 "      \"mesh_%ux%u\": {\n"
                 "        \"cycles_per_sec_jobs1\": %.6g,\n"
                 "        \"cycles_per_sec_jobsN\": %.6g,\n"
                 "        \"speedup\": %.4g,\n"
                 "        \"packets_delivered\": %llu\n"
                 "      }\n    }\n  }\n}\n",
                 sim_jobs, par.regions, w.rows, w.cols,
                 serial.cycles_per_sec, par.cycles_per_sec,
                 par.cycles_per_sec / serial.cycles_per_sec,
                 static_cast<unsigned long long>(par.delivered));
    std::fclose(f);
    std::fprintf(stderr, "micro_sim: wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("help")) {
        std::printf(
            "micro_sim — region-parallel simulator stepping benchmark\n\n"
            "  --sim-jobs=<n>    parallel config to measure (default 4)\n"
            "  --bench-reps=<n>  timed reps per config, median kept (5)\n"
            "  --rows=8 --cols=8 --cycles=20000 --warmup=2000\n"
            "  --rate=0.30 --data-ratio=0.5 --seed=42\n"
            "  --bench-out=<file>  machine-readable JSON for\n"
            "                      scripts/bench_compare.py\n");
        return 0;
    }

    Workload w;
    w.rows = static_cast<unsigned>(args.getInt("rows", 8));
    w.cols = static_cast<unsigned>(args.getInt("cols", 8));
    w.cycles = static_cast<Cycle>(args.getInt("cycles", 20000));
    w.warmup = static_cast<Cycle>(args.getInt("warmup", 2000));
    w.rate = args.getDouble("rate", 0.30);
    w.data_ratio = args.getDouble("data-ratio", 0.5);
    w.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    w.reps = static_cast<int>(args.getInt("bench-reps", 5));
    unsigned sim_jobs =
        static_cast<unsigned>(args.getInt("sim-jobs", 4));

    RunResult serial = run_config(w, 1, w.reps);
    std::fprintf(stderr, "mesh_%ux%u  jobs=1  %12.0f cycles/sec\n",
                 w.rows, w.cols, serial.cycles_per_sec);
    RunResult par = run_config(w, sim_jobs, w.reps);
    std::fprintf(stderr,
                 "mesh_%ux%u  jobs=%u (%u regions)  %12.0f cycles/sec  "
                 "%.2fx\n",
                 w.rows, w.cols, sim_jobs, par.regions,
                 par.cycles_per_sec,
                 par.cycles_per_sec / serial.cycles_per_sec);

    // The determinism gate: region-parallel stepping must reproduce
    // the serial run exactly, down to the FP latency accumulators.
    if (serial.delivered != par.delivered ||
        serial.data_flits != par.data_flits ||
        serial.total_lat != par.total_lat) {
        std::fprintf(stderr,
                     "micro_sim: DETERMINISM MISMATCH jobs=1 vs jobs=%u: "
                     "delivered %llu/%llu, data flits %llu/%llu, "
                     "latency %.17g/%.17g\n",
                     sim_jobs,
                     static_cast<unsigned long long>(serial.delivered),
                     static_cast<unsigned long long>(par.delivered),
                     static_cast<unsigned long long>(serial.data_flits),
                     static_cast<unsigned long long>(par.data_flits),
                     serial.total_lat, par.total_lat);
        return 1;
    }
    std::fprintf(stderr, "micro_sim: determinism cross-check ok "
                         "(%llu packets delivered)\n",
                 static_cast<unsigned long long>(serial.delivered));

    std::string out = args.getString("bench-out", "");
    if (!out.empty())
        return write_json(out, w, sim_jobs, serial, par);
    return 0;
}
