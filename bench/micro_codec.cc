/**
 * @file
 * google-benchmark microbenchmarks for the codec datapath primitives:
 * AVCL analysis, FPC matching/decoding, TCAM search and block-level
 * encode for each scheme.
 *
 * Invoked with --bench-out=FILE the binary instead runs the
 * perf-regression harness: a fixed, seeded encode workload per scheme
 * (64-entry PMTs, trained dictionaries), median-of-N timing with
 * warmup, written as machine-readable JSON. scripts/bench_compare.py
 * diffs two such files; CI runs it against the checked-in seed
 * baseline (bench/baselines/). See docs/perf.md.
 *
 * --encode-jobs=N adds the flow-sharded parallel axis to --bench-out:
 * a multi-flow workload (one flow per source endpoint) encoded through
 * harness::FlowShardedEncoder at jobs=1 and jobs=N, per scheme, with
 * the two streams' bit sinks cross-checked — the jobs=1/jobs=N
 * equivalence guarantee, measured rather than assumed.
 *
 * --decode-jobs=N adds the decode-side twin: the encoded multi-flow
 * batch decoded through harness::FlowShardedDecoder at jobs=1 and
 * jobs=N on two identically trained codec instances (decode mutates
 * learning state, so one instance cannot serve both job counts), with
 * word sums, consistency mismatches and per-destination notification
 * streams cross-checked.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "approx/avcl.h"
#include "common/bits.h"
#include "approx/di_vaxx.h"
#include "approx/fp_vaxx.h"
#include "approx/window_vaxx.h"
#include "compression/wire.h"
#include "common/rng.h"
#include "common/simd.h"
#include "compression/dictionary.h"
#include "tcam/match_kernel.h"
#include "compression/fpc.h"
#include "core/codec_factory.h"
#include "harness/sharded_codec_pipeline.h"
#include "tcam/tcam.h"

// The same source builds against the pre-optimization tree (no
// encodeBlock) to produce baseline numbers for bench_compare.
#if defined(ANOC_BENCH_WORD_AT_A_TIME)
#define ANOC_BENCH_ENCODE(codec, block, now) (codec)->encode((block), 0, 1, (now))
#else
#define ANOC_BENCH_ENCODE(codec, block, now) \
    (codec)->encodeBlock((block), 0, 1, (now))
#endif

using namespace approxnoc;

namespace {

std::vector<Word>
random_words(std::size_t n, std::uint64_t seed, bool small_values)
{
    Rng rng(seed);
    std::vector<Word> ws(n);
    for (auto &w : ws) {
        w = static_cast<Word>(rng.bits());
        if (small_values)
            w = sign_extend32(w & 0xFFFF, 16);
    }
    return ws;
}

void
BM_AvclAnalyzeInt(benchmark::State &state)
{
    Avcl avcl{ErrorModel(10.0)};
    auto ws = random_words(4096, 1, false);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            avcl.analyze(ws[i++ & 4095], DataType::Int32));
    }
}
BENCHMARK(BM_AvclAnalyzeInt);

void
BM_AvclAnalyzeFloat(benchmark::State &state)
{
    Avcl avcl{ErrorModel(10.0)};
    auto ws = random_words(4096, 2, false);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            avcl.analyze(ws[i++ & 4095], DataType::Float32));
    }
}
BENCHMARK(BM_AvclAnalyzeFloat);

void
BM_FpcMatchExact(benchmark::State &state)
{
    auto ws = random_words(4096, 3, true);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fpc_match(ws[i++ & 4095], 0));
}
BENCHMARK(BM_FpcMatchExact);

void
BM_FpcMatchApprox(benchmark::State &state)
{
    auto ws = random_words(4096, 4, true);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fpc_match(ws[i++ & 4095], 8));
}
BENCHMARK(BM_FpcMatchApprox);

void
BM_TcamSearch(benchmark::State &state)
{
    Tcam tcam(static_cast<std::size_t>(state.range(0)));
    Rng rng(5);
    for (std::size_t e = 0; e < tcam.capacity(); ++e)
        tcam.insert(TernaryPattern{static_cast<Word>(rng.bits()),
                                   low_mask32(6)});
    auto ws = random_words(4096, 6, false);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tcam.search(ws[i++ & 4095]));
}
BENCHMARK(BM_TcamSearch)->Arg(8)->Arg(32)->Arg(128);

void
BM_EncodeBlock(benchmark::State &state)
{
    // One 64 B block of value-local int data per iteration.
    Rng rng(7);
    std::vector<DataBlock> blocks;
    for (int i = 0; i < 256; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = rng.chance(0.7) ? 1000u + static_cast<Word>(rng.next(8))
                                : static_cast<Word>(rng.bits());
        blocks.emplace_back(ws, DataType::Int32, true);
    }

    DictionaryConfig dict;
    dict.n_nodes = 4;
    std::unique_ptr<CodecSystem> codec;
    switch (state.range(0)) {
      case 0: codec = std::make_unique<BaselineCodec>(); break;
      case 1: codec = std::make_unique<DiCompCodec>(dict); break;
      case 2:
        codec = std::make_unique<DiVaxxCodec>(dict, ErrorModel(10.0));
        break;
      case 3: codec = std::make_unique<FpcCodec>(); break;
      default:
        codec = std::make_unique<FpVaxxCodec>(ErrorModel(10.0));
        break;
    }
    Cycle t = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        EncodedBlock enc =
            codec->encode(blocks[i & 255], 0, 1, t);
        benchmark::DoNotOptimize(codec->decode(enc, 0, 1, t));
        ++i;
        t += 3;
    }
    state.SetLabel(to_string(static_cast<Scheme>(state.range(0))));
}
BENCHMARK(BM_EncodeBlock)->DenseRange(0, 4);

void
BM_WindowVaxxEncode(benchmark::State &state)
{
    WindowVaxxCodec codec{ErrorModel(10.0)};
    Rng rng(8);
    std::vector<DataBlock> blocks;
    for (int i = 0; i < 256; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = static_cast<Word>(rng.range(-100000, 100000));
        blocks.emplace_back(ws, DataType::Int32, true);
    }
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encode(blocks[i++ & 255], 0, 1, 0));
}
BENCHMARK(BM_WindowVaxxEncode);

void
BM_WirePackFpc(benchmark::State &state)
{
    FpcCodec codec;
    Rng rng(9);
    std::vector<EncodedBlock> encs;
    for (int i = 0; i < 64; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = sign_extend32(static_cast<Word>(rng.bits()) & 0xFFF, 12);
        encs.push_back(codec.encode(DataBlock(ws, DataType::Int32, false),
                                    0, 1, 0));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        bool raw;
        benchmark::DoNotOptimize(fpc_wire::pack(encs[i++ & 63], raw));
    }
}
BENCHMARK(BM_WirePackFpc);

/**
 * The --bench-out perf-regression harness. Deterministic by
 * construction: seeded workload, fixed scheme order, fixed training
 * schedule; only the wall-clock measurements vary run to run.
 */
namespace bench_out {

constexpr std::size_t kBlocks = 2048;
constexpr std::size_t kWordsPerBlock = 16;
constexpr std::size_t kInnerIters = 4; ///< workload passes per timed rep
constexpr int kWarmupPasses = 2;
constexpr std::size_t kPmtEntries = 64;
constexpr std::size_t kHotValues = 96;
constexpr double kErrorThresholdPct = 10.0;

std::vector<DataBlock>
make_workload()
{
    Rng rng(0xB35Cu);
    std::vector<Word> hot(kHotValues);
    for (auto &h : hot) // large enough that a 10% threshold frees low bits
        h = (static_cast<Word>(rng.bits()) | 0x00400000u) & 0x7FFFFFFFu;

    std::vector<DataBlock> blocks;
    blocks.reserve(kBlocks);
    for (std::size_t b = 0; b < kBlocks; ++b) {
        std::vector<Word> ws(kWordsPerBlock);
        for (auto &w : ws) {
            double r = rng.uniform();
            if (r < 0.10)
                w = 0;
            else if (r < 0.65)
                w = hot[rng.next(kHotValues)];
            else if (r < 0.80)
                w = hot[rng.next(kHotValues)] ^
                    static_cast<Word>(rng.next(256));
            else
                w = static_cast<Word>(rng.bits());
        }
        blocks.emplace_back(std::move(ws), DataType::Int32, true);
    }
    return blocks;
}

struct SchemeResult {
    std::string key;
    double words_per_sec = 0;
    double ns_per_word = 0;
    std::vector<double> rep_words_per_sec;
    std::uint64_t sink = 0; ///< keeps the encode loop observable
};

SchemeResult
run_scheme(Scheme scheme, const std::string &key,
           const std::vector<DataBlock> &blocks, int reps)
{
    CodecConfig cfg;
    cfg.n_nodes = 2;
    cfg.error_threshold_pct = kErrorThresholdPct;
    cfg.dict.pmt_entries = kPmtEntries;
    cfg.dict.tracker_entries = 64;
    auto codec = CodecFactory::create(scheme, cfg);

    // Train the dictionary schemes: decode-side learning + the delayed
    // update channel need encode/decode round trips with advancing
    // time. Stateless schemes just warm the caches.
    Cycle now = 0;
    for (int pass = 0; pass < kWarmupPasses; ++pass) {
        for (const auto &b : blocks) {
            EncodedBlock enc = ANOC_BENCH_ENCODE(codec, b, now);
            codec->decode(enc, 0, 1, now);
            now += 51; // > notify_min_interval: no rate-limit artifacts
        }
    }
    // Flush in-flight updates, then measure a steady-state encoder.
    now += 100000;

    SchemeResult res;
    res.key = key;
    const double words =
        static_cast<double>(blocks.size() * kWordsPerBlock * kInnerIters);
    for (int rep = 0; rep < reps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t it = 0; it < kInnerIters; ++it)
            for (const auto &b : blocks)
                res.sink += ANOC_BENCH_ENCODE(codec, b, now).bits();
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        res.rep_words_per_sec.push_back(words / secs);
    }
    std::vector<double> sorted = res.rep_words_per_sec;
    std::sort(sorted.begin(), sorted.end());
    res.words_per_sec = sorted[sorted.size() / 2];
    res.ns_per_word = 1e9 / res.words_per_sec;
    return res;
}

/**
 * The flow-sharded parallel encode axis: the same block mix spread
 * round-robin over kParFlows disjoint (src, dst) flows, one flow per
 * source endpoint, encoded through FlowShardedEncoder. Reported per
 * scheme as words/sec at jobs=1 and jobs=N, cross-checked for the
 * jobs-equivalence guarantee (identical total NR bits).
 */
constexpr std::size_t kParFlows = 8;

struct ParallelResult {
    std::string key;
    double j1_words_per_sec = 0;
    double jn_words_per_sec = 0;
    double speedup = 0;
    std::uint64_t sink = 0;
    /** Per-shard self-profiling (populated only under --profile-out;
     * profiling stays off for gated timings, so the perf numbers the
     * regression gate compares never carry instrumentation cost). */
    harness::ShardStats stats1, statsN;
};

ParallelResult
run_parallel_scheme(Scheme scheme, const std::string &key,
                    const std::vector<DataBlock> &blocks, int reps,
                    unsigned encode_jobs, bool profile)
{
    CodecConfig cfg;
    cfg.n_nodes = 2 * kParFlows;
    cfg.error_threshold_pct = kErrorThresholdPct;
    cfg.dict.pmt_entries = kPmtEntries;
    cfg.dict.tracker_entries = 64;
    auto codec = CodecFactory::create(scheme, cfg);

    // Train every flow's dictionary pair serially, exactly as the
    // single-flow harness does.
    Cycle now = 0;
    auto flow_src = [](std::size_t b) {
        return static_cast<NodeId>(b % kParFlows);
    };
    auto flow_dst = [](std::size_t b) {
        return static_cast<NodeId>(kParFlows + b % kParFlows);
    };
    for (int pass = 0; pass < kWarmupPasses; ++pass) {
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            EncodedBlock enc = codec->encodeBlock(blocks[b], flow_src(b),
                                                  flow_dst(b), now);
            codec->decode(enc, flow_src(b), flow_dst(b), now);
            now += 51;
        }
    }
    now += 100000; // flush in-flight updates; steady-state encoder

    std::vector<harness::EncodeRequest> reqs;
    reqs.reserve(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b)
        reqs.push_back({&blocks[b], flow_src(b), flow_dst(b), now});

    const double words =
        static_cast<double>(blocks.size() * kWordsPerBlock * kInnerIters);
    auto measure = [&](unsigned jobs, std::uint64_t &sink,
                       harness::ShardStats *stats) {
        harness::FlowShardedEncoder enc(*codec, jobs);
        enc.setProfiling(profile);
        std::vector<double> rep_wps;
        for (int rep = 0; rep < reps; ++rep) {
            std::uint64_t rep_sink = 0;
            auto t0 = std::chrono::steady_clock::now();
            for (std::size_t it = 0; it < kInnerIters; ++it) {
                auto out = enc.encodeAll(reqs);
                for (const auto &e : out)
                    rep_sink += e.bits();
            }
            auto t1 = std::chrono::steady_clock::now();
            double secs = std::chrono::duration<double>(t1 - t0).count();
            rep_wps.push_back(words / secs);
            sink = rep_sink;
        }
        if (stats)
            *stats = enc.stats();
        std::sort(rep_wps.begin(), rep_wps.end());
        return rep_wps[rep_wps.size() / 2];
    };

    ParallelResult res;
    res.key = key;
    std::uint64_t sink1 = 0, sinkN = 0;
    res.j1_words_per_sec = measure(1, sink1, profile ? &res.stats1 : nullptr);
    res.jn_words_per_sec =
        measure(encode_jobs, sinkN, profile ? &res.statsN : nullptr);
    if (sink1 != sinkN) {
        std::fprintf(stderr,
                     "micro_codec: PARALLEL ENCODE MISMATCH for %s: "
                     "jobs=1 bits %llu != jobs=%u bits %llu\n",
                     key.c_str(), static_cast<unsigned long long>(sink1),
                     encode_jobs, static_cast<unsigned long long>(sinkN));
        std::exit(1);
    }
    res.sink = sink1;
    res.speedup = res.jn_words_per_sec / res.j1_words_per_sec;
    return res;
}

/**
 * The flow-sharded parallel decode axis. Decode mutates decoder-side
 * learning state, so measuring jobs=1 and then jobs=N on one codec
 * would hand the second measurement different dictionaries — instead
 * two instances are trained through the identical serial schedule,
 * each serves one job count, and twin-hood is verified afterwards
 * (equal word sums, consistency mismatches, and per-destination
 * notification streams including sequence numbers).
 */
ParallelResult
run_parallel_decode_scheme(Scheme scheme, const std::string &key,
                           const std::vector<DataBlock> &blocks, int reps,
                           unsigned decode_jobs, bool profile)
{
    CodecConfig cfg;
    cfg.n_nodes = 2 * kParFlows;
    cfg.error_threshold_pct = kErrorThresholdPct;
    cfg.dict.pmt_entries = kPmtEntries;
    cfg.dict.tracker_entries = 64;

    auto flow_src = [](std::size_t b) {
        return static_cast<NodeId>(b % kParFlows);
    };
    auto flow_dst = [](std::size_t b) {
        return static_cast<NodeId>(kParFlows + b % kParFlows);
    };

    Cycle measure_at = 0;
    auto make_trained = [&]() {
        auto codec = CodecFactory::create(scheme, cfg);
        Cycle now = 0;
        for (int pass = 0; pass < kWarmupPasses; ++pass) {
            for (std::size_t b = 0; b < blocks.size(); ++b) {
                EncodedBlock enc = codec->encodeBlock(blocks[b], flow_src(b),
                                                      flow_dst(b), now);
                codec->decodeBlock(enc, flow_src(b), flow_dst(b), now);
                now += 51;
            }
        }
        // Discard the training-time notifications so the post-measure
        // stream comparison sees only what the measured decodes emit.
        for (NodeId d = 0; d < static_cast<NodeId>(cfg.n_nodes); ++d)
            codec->drainNotifications(d);
        measure_at = now + 100000;
        return codec;
    };
    auto codec1 = make_trained();
    auto codecN = make_trained();

    // Encode the measured batch once per twin (encoding also evolves
    // state, so each twin must encode its own copy).
    auto encode_batch = [&](CodecSystem &c) {
        std::vector<EncodedBlock> encs;
        encs.reserve(blocks.size());
        for (std::size_t b = 0; b < blocks.size(); ++b)
            encs.push_back(c.encodeBlock(blocks[b], flow_src(b), flow_dst(b),
                                         measure_at));
        return encs;
    };
    auto encs1 = encode_batch(*codec1);
    auto encsN = encode_batch(*codecN);

    const double words =
        static_cast<double>(blocks.size() * kWordsPerBlock * kInnerIters);
    auto measure = [&](CodecSystem &c, const std::vector<EncodedBlock> &encs,
                       unsigned jobs, std::uint64_t &sink,
                       harness::ShardStats *stats) {
        std::vector<harness::DecodeRequest> reqs;
        reqs.reserve(encs.size());
        for (std::size_t b = 0; b < encs.size(); ++b)
            reqs.push_back({&encs[b], flow_src(b), flow_dst(b), measure_at});
        harness::FlowShardedDecoder dec(c, jobs);
        dec.setProfiling(profile);
        std::vector<double> rep_wps;
        for (int rep = 0; rep < reps; ++rep) {
            std::uint64_t rep_sink = 0;
            auto t0 = std::chrono::steady_clock::now();
            for (std::size_t it = 0; it < kInnerIters; ++it) {
                auto out = dec.decodeAll(reqs);
                for (const auto &db : out)
                    for (std::size_t w = 0; w < db.size(); ++w)
                        rep_sink += db.word(w);
            }
            auto t1 = std::chrono::steady_clock::now();
            double secs = std::chrono::duration<double>(t1 - t0).count();
            rep_wps.push_back(words / secs);
            sink = rep_sink;
        }
        if (stats)
            *stats = dec.stats();
        std::sort(rep_wps.begin(), rep_wps.end());
        return rep_wps[rep_wps.size() / 2];
    };

    ParallelResult res;
    res.key = key;
    std::uint64_t sink1 = 0, sinkN = 0;
    res.j1_words_per_sec =
        measure(*codec1, encs1, 1, sink1, profile ? &res.stats1 : nullptr);
    res.jn_words_per_sec = measure(*codecN, encsN, decode_jobs, sinkN,
                                   profile ? &res.statsN : nullptr);

    bool notes_equal = true;
    for (NodeId d = 0; d < static_cast<NodeId>(cfg.n_nodes); ++d) {
        auto n1 = codec1->drainNotifications(d);
        auto nN = codecN->drainNotifications(d);
        if (n1.size() != nN.size()) {
            notes_equal = false;
            break;
        }
        for (std::size_t i = 0; i < n1.size(); ++i)
            if (n1[i].from != nN[i].from || n1[i].to != nN[i].to ||
                n1[i].seq != nN[i].seq)
                notes_equal = false;
    }
    if (sink1 != sinkN ||
        codec1->consistencyMismatches() != codecN->consistencyMismatches() ||
        !notes_equal) {
        std::fprintf(stderr,
                     "micro_codec: PARALLEL DECODE MISMATCH for %s: "
                     "jobs=1 sum %llu != jobs=%u sum %llu (or notification/"
                     "mismatch streams diverged)\n",
                     key.c_str(), static_cast<unsigned long long>(sink1),
                     decode_jobs, static_cast<unsigned long long>(sinkN));
        std::exit(1);
    }
    res.sink = sink1;
    res.speedup = res.jn_words_per_sec / res.j1_words_per_sec;
    return res;
}

/** `{"batches": ..., "imbalance": ...}` for one ShardStats bundle. */
void
write_shard_stats(std::FILE *f, const harness::ShardStats &s)
{
    std::fprintf(f,
                 "{\"batches\": %llu, \"blocks\": %llu, "
                 "\"shard_slots\": %llu, \"busy_ns\": %llu, "
                 "\"max_busy_ns\": %llu, \"wall_ns\": %llu, "
                 "\"merge_wait_ns\": %llu, \"mean_batch_size\": %.6g, "
                 "\"imbalance\": %.4g}",
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.blocks),
                 static_cast<unsigned long long>(s.shard_slots),
                 static_cast<unsigned long long>(s.busy_ns),
                 static_cast<unsigned long long>(s.max_busy_ns),
                 static_cast<unsigned long long>(s.wall_ns),
                 static_cast<unsigned long long>(s.merge_wait_ns),
                 s.meanBatchSize(), s.imbalance());
}

/** The --profile-out pipeline self-profile (encode + decode shard
 * timing per scheme). Wall-clock derived, never part of the gated
 * comparison. */
int
write_profile(const std::string &path,
              const std::vector<ParallelResult> &par,
              const std::vector<ParallelResult> &pardec,
              unsigned encode_jobs, unsigned decode_jobs)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "micro_codec: cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"schema\": \"approxnoc-micro-codec-profile-v1\",\n");
    auto section = [&](const char *name,
                       const std::vector<ParallelResult> &rows,
                       unsigned jobs, bool last) {
        std::fprintf(f, "  \"%s\": {\n    \"jobs\": %u,\n    \"schemes\": {",
                     name, jobs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(f, "%s\n      \"%s\": {\"jobs1\": ",
                         i ? "," : "", rows[i].key.c_str());
            write_shard_stats(f, rows[i].stats1);
            std::fprintf(f, ", \"jobsN\": ");
            write_shard_stats(f, rows[i].statsN);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "%s}\n  }%s\n", rows.empty() ? "" : "\n    ",
                     last ? "" : ",");
    };
    section("encode", par, encode_jobs, false);
    section("decode", pardec, decode_jobs, true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "micro_codec: wrote %s\n", path.c_str());
    return 0;
}

int
run(const std::string &path, int reps, unsigned encode_jobs,
    unsigned decode_jobs, const std::string &profile_path)
{
    const bool profile = !profile_path.empty();
    // Provenance: which match kernel produced these numbers. Scalar and
    // SIMD runs are bit-identical in output but not in words/sec, so
    // baselines record the dispatch they were captured under.
    const char *simd = simd::to_string(simd::active_simd_level());
    std::fprintf(stderr, "micro_codec: simd dispatch: %s\n", simd);
    const auto blocks = make_workload();
    const std::pair<Scheme, const char *> schemes[] = {
        {Scheme::Baseline, "baseline"}, {Scheme::DiComp, "di_comp"},
        {Scheme::DiVaxx, "di_vaxx"},    {Scheme::FpComp, "fp_comp"},
        {Scheme::FpVaxx, "fp_vaxx"},
    };

    std::vector<SchemeResult> results;
    for (const auto &[scheme, key] : schemes) {
        results.push_back(run_scheme(scheme, key, blocks, reps));
        std::fprintf(stderr, "%-10s %12.0f words/sec  %8.2f ns/word\n",
                     key, results.back().words_per_sec,
                     results.back().ns_per_word);
    }

    std::vector<ParallelResult> par;
    if (encode_jobs > 1) {
        for (const auto &[scheme, key] : schemes) {
            if (scheme == Scheme::Baseline)
                continue; // memcpy-bound; sharding overhead only
            par.push_back(run_parallel_scheme(scheme, key, blocks, reps,
                                              encode_jobs, profile));
            std::fprintf(stderr,
                         "%-10s parallel %8u flows  j1 %12.0f  j%u %12.0f "
                         "words/sec  %.2fx\n",
                         key, static_cast<unsigned>(kParFlows),
                         par.back().j1_words_per_sec, encode_jobs,
                         par.back().jn_words_per_sec, par.back().speedup);
        }
    }

    std::vector<ParallelResult> pardec;
    if (decode_jobs > 1) {
        for (const auto &[scheme, key] : schemes) {
            if (scheme == Scheme::Baseline)
                continue; // memcpy-bound; sharding overhead only
            pardec.push_back(run_parallel_decode_scheme(
                scheme, key, blocks, reps, decode_jobs, profile));
            std::fprintf(stderr,
                         "%-10s par-decode %6u flows  j1 %12.0f  j%u %12.0f "
                         "words/sec  %.2fx\n",
                         key, static_cast<unsigned>(kParFlows),
                         pardec.back().j1_words_per_sec, decode_jobs,
                         pardec.back().jn_words_per_sec,
                         pardec.back().speedup);
        }
    }

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "micro_codec: cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"approxnoc-micro-codec-bench-v1\",\n");
    std::fprintf(f,
                 "  \"config\": {\n"
                 "    \"blocks\": %zu,\n"
                 "    \"words_per_block\": %zu,\n"
                 "    \"inner_iters\": %zu,\n"
                 "    \"reps\": %d,\n"
                 "    \"warmup_passes\": %d,\n"
                 "    \"pmt_entries\": %zu,\n"
                 "    \"error_threshold_pct\": %.1f,\n"
                 "    \"simd\": \"%s\",\n"
#if defined(ANOC_BENCH_WORD_AT_A_TIME)
                 "    \"word_at_a_time\": true\n"
#else
                 "    \"word_at_a_time\": false\n"
#endif
                 "  },\n",
                 kBlocks, kWordsPerBlock, kInnerIters, reps, kWarmupPasses,
                 kPmtEntries, kErrorThresholdPct, simd);
    std::fprintf(f, "  \"results\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"words_per_sec\": %.6g,\n"
                     "      \"ns_per_word\": %.6g,\n"
                     "      \"reps_words_per_sec\": [",
                     r.key.c_str(), r.words_per_sec, r.ns_per_word);
        for (std::size_t j = 0; j < r.rep_words_per_sec.size(); ++j)
            std::fprintf(f, "%s%.6g", j ? ", " : "", r.rep_words_per_sec[j]);
        std::fprintf(f, "],\n      \"enc_bits_sink\": %llu\n    }%s\n",
                     static_cast<unsigned long long>(r.sink),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }%s\n",
                 par.empty() && pardec.empty() ? "" : ",");
    if (!par.empty()) {
        std::fprintf(f,
                     "  \"parallel\": {\n"
                     "    \"encode_jobs\": %u,\n"
                     "    \"flows\": %zu,\n"
                     "    \"results\": {\n",
                     encode_jobs, kParFlows);
        for (std::size_t i = 0; i < par.size(); ++i) {
            const ParallelResult &r = par[i];
            std::fprintf(f,
                         "      \"%s\": {\n"
                         "        \"words_per_sec_jobs1\": %.6g,\n"
                         "        \"words_per_sec_jobsN\": %.6g,\n"
                         "        \"speedup\": %.4g,\n"
                         "        \"enc_bits_sink\": %llu\n      }%s\n",
                         r.key.c_str(), r.j1_words_per_sec,
                         r.jn_words_per_sec, r.speedup,
                         static_cast<unsigned long long>(r.sink),
                         i + 1 < par.size() ? "," : "");
        }
        std::fprintf(f, "    }\n  }%s\n", pardec.empty() ? "" : ",");
    }
    if (!pardec.empty()) {
        std::fprintf(f,
                     "  \"parallel_decode\": {\n"
                     "    \"decode_jobs\": %u,\n"
                     "    \"flows\": %zu,\n"
                     "    \"results\": {\n",
                     decode_jobs, kParFlows);
        for (std::size_t i = 0; i < pardec.size(); ++i) {
            const ParallelResult &r = pardec[i];
            std::fprintf(f,
                         "      \"%s\": {\n"
                         "        \"words_per_sec_jobs1\": %.6g,\n"
                         "        \"words_per_sec_jobsN\": %.6g,\n"
                         "        \"speedup\": %.4g,\n"
                         "        \"dec_word_sum_sink\": %llu\n      }%s\n",
                         r.key.c_str(), r.j1_words_per_sec,
                         r.jn_words_per_sec, r.speedup,
                         static_cast<unsigned long long>(r.sink),
                         i + 1 < pardec.size() ? "," : "");
        }
        std::fprintf(f, "    }\n  }\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "micro_codec: wrote %s\n", path.c_str());
    if (profile)
        return write_profile(profile_path, par, pardec, encode_jobs,
                             decode_jobs);
    return 0;
}

} // namespace bench_out

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_path;
    std::string profile_path;
    int reps = 5;
    unsigned encode_jobs = 1;
    unsigned decode_jobs = 1;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--bench-out=", 0) == 0)
            bench_path = a.substr(12);
        else if (a == "--bench-out" && i + 1 < argc)
            bench_path = argv[++i];
        else if (a.rfind("--profile-out=", 0) == 0)
            profile_path = a.substr(14);
        else if (a == "--profile")
            profile_path = "micro_codec.profile.json";
        else if (a.rfind("--bench-reps=", 0) == 0)
            reps = std::max(1, std::atoi(a.c_str() + 13));
        else if (a.rfind("--encode-jobs=", 0) == 0)
            encode_jobs = static_cast<unsigned>(
                std::max(1, std::atoi(a.c_str() + 14)));
        else if (a.rfind("--decode-jobs=", 0) == 0)
            decode_jobs = static_cast<unsigned>(
                std::max(1, std::atoi(a.c_str() + 14)));
        else
            rest.push_back(argv[i]);
    }
    if (!bench_path.empty())
        return bench_out::run(bench_path, reps, encode_jobs, decode_jobs,
                              profile_path);

    int rest_argc = static_cast<int>(rest.size());
    benchmark::Initialize(&rest_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
