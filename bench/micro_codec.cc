/**
 * @file
 * google-benchmark microbenchmarks for the codec datapath primitives:
 * AVCL analysis, FPC matching/decoding, TCAM search and block-level
 * encode for each scheme.
 */
#include <benchmark/benchmark.h>

#include <memory>

#include "approx/avcl.h"
#include "common/bits.h"
#include "approx/di_vaxx.h"
#include "approx/fp_vaxx.h"
#include "approx/window_vaxx.h"
#include "compression/wire.h"
#include "common/rng.h"
#include "compression/dictionary.h"
#include "compression/fpc.h"
#include "tcam/tcam.h"

using namespace approxnoc;

namespace {

std::vector<Word>
random_words(std::size_t n, std::uint64_t seed, bool small_values)
{
    Rng rng(seed);
    std::vector<Word> ws(n);
    for (auto &w : ws) {
        w = static_cast<Word>(rng.bits());
        if (small_values)
            w = sign_extend32(w & 0xFFFF, 16);
    }
    return ws;
}

void
BM_AvclAnalyzeInt(benchmark::State &state)
{
    Avcl avcl{ErrorModel(10.0)};
    auto ws = random_words(4096, 1, false);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            avcl.analyze(ws[i++ & 4095], DataType::Int32));
    }
}
BENCHMARK(BM_AvclAnalyzeInt);

void
BM_AvclAnalyzeFloat(benchmark::State &state)
{
    Avcl avcl{ErrorModel(10.0)};
    auto ws = random_words(4096, 2, false);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            avcl.analyze(ws[i++ & 4095], DataType::Float32));
    }
}
BENCHMARK(BM_AvclAnalyzeFloat);

void
BM_FpcMatchExact(benchmark::State &state)
{
    auto ws = random_words(4096, 3, true);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fpc_match(ws[i++ & 4095], 0));
}
BENCHMARK(BM_FpcMatchExact);

void
BM_FpcMatchApprox(benchmark::State &state)
{
    auto ws = random_words(4096, 4, true);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fpc_match(ws[i++ & 4095], 8));
}
BENCHMARK(BM_FpcMatchApprox);

void
BM_TcamSearch(benchmark::State &state)
{
    Tcam tcam(static_cast<std::size_t>(state.range(0)));
    Rng rng(5);
    for (std::size_t e = 0; e < tcam.capacity(); ++e)
        tcam.insert(TernaryPattern{static_cast<Word>(rng.bits()),
                                   low_mask32(6)});
    auto ws = random_words(4096, 6, false);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tcam.search(ws[i++ & 4095]));
}
BENCHMARK(BM_TcamSearch)->Arg(8)->Arg(32)->Arg(128);

void
BM_EncodeBlock(benchmark::State &state)
{
    // One 64 B block of value-local int data per iteration.
    Rng rng(7);
    std::vector<DataBlock> blocks;
    for (int i = 0; i < 256; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = rng.chance(0.7) ? 1000u + static_cast<Word>(rng.next(8))
                                : static_cast<Word>(rng.bits());
        blocks.emplace_back(ws, DataType::Int32, true);
    }

    DictionaryConfig dict;
    dict.n_nodes = 4;
    std::unique_ptr<CodecSystem> codec;
    switch (state.range(0)) {
      case 0: codec = std::make_unique<BaselineCodec>(); break;
      case 1: codec = std::make_unique<DiCompCodec>(dict); break;
      case 2:
        codec = std::make_unique<DiVaxxCodec>(dict, ErrorModel(10.0));
        break;
      case 3: codec = std::make_unique<FpcCodec>(); break;
      default:
        codec = std::make_unique<FpVaxxCodec>(ErrorModel(10.0));
        break;
    }
    Cycle t = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        EncodedBlock enc =
            codec->encode(blocks[i & 255], 0, 1, t);
        benchmark::DoNotOptimize(codec->decode(enc, 0, 1, t));
        ++i;
        t += 3;
    }
    state.SetLabel(to_string(static_cast<Scheme>(state.range(0))));
}
BENCHMARK(BM_EncodeBlock)->DenseRange(0, 4);

void
BM_WindowVaxxEncode(benchmark::State &state)
{
    WindowVaxxCodec codec{ErrorModel(10.0)};
    Rng rng(8);
    std::vector<DataBlock> blocks;
    for (int i = 0; i < 256; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = static_cast<Word>(rng.range(-100000, 100000));
        blocks.emplace_back(ws, DataType::Int32, true);
    }
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encode(blocks[i++ & 255], 0, 1, 0));
}
BENCHMARK(BM_WindowVaxxEncode);

void
BM_WirePackFpc(benchmark::State &state)
{
    FpcCodec codec;
    Rng rng(9);
    std::vector<EncodedBlock> encs;
    for (int i = 0; i < 64; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = sign_extend32(static_cast<Word>(rng.bits()) & 0xFFF, 12);
        encs.push_back(codec.encode(DataBlock(ws, DataType::Int32, false),
                                    0, 1, 0));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        bool raw;
        benchmark::DoNotOptimize(fpc_wire::pack(encs[i++ & 63], raw));
    }
}
BENCHMARK(BM_WirePackFpc);

} // namespace

BENCHMARK_MAIN();
