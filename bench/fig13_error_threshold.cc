/**
 * @file
 * Figure 13: error-threshold sensitivity. For each benchmark and each
 * of the DI-based and FP-based families, average packet latency with
 * plain compression (0% threshold) and VAXX at 5%, 10% and 20%.
 */
#include <cstdio>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Figure 13: error threshold sensitivity");
    print_banner("Figure 13 (error-threshold sensitivity)", opt);

    const std::vector<double> thresholds = {5.0, 10.0, 20.0};
    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "family", "compression", "5%_threshold",
             "10%_threshold", "20%_threshold"});

    struct Family {
        const char *name;
        Scheme compression;
        Scheme vaxx;
    };
    const Family families[] = {
        {"DI-based", Scheme::DiComp, Scheme::DiVaxx},
        {"FP-based", Scheme::FpComp, Scheme::FpVaxx},
    };

    for (const auto &bm : opt.benchmarks) {
        const CommTrace &trace = traces.get(bm);
        for (const Family &f : families) {
            BenchOptions o = opt;
            ReplayResult base = replay_trace(trace, f.compression, o);
            std::vector<double> lat;
            for (double th : thresholds) {
                o.error_threshold_pct = th;
                lat.push_back(replay_trace(trace, f.vaxx, o).total_lat);
            }
            t.row()
                .cell(bm)
                .cell(std::string(f.name))
                .cell(base.total_lat, 2)
                .cell(lat[0], 2)
                .cell(lat[1], 2)
                .cell(lat[2], 2);
        }
    }
    emit(t, opt, "fig13_error_threshold");
    return 0;
}
