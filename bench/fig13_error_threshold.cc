/**
 * @file
 * Figure 13: error-threshold sensitivity. For each benchmark and each
 * of the DI-based and FP-based families, average packet latency with
 * plain compression (0% threshold) and VAXX at 5%, 10% and 20%.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "telemetry/error_profile.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

bool
is_vaxx(Scheme s)
{
    return s == Scheme::DiVaxx || s == Scheme::FpVaxx;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<double> thresholds = {5.0, 10.0, 20.0};

    // One grid: plain compression at the 0% sentinel threshold, the
    // VAXX variants at each paper threshold.
    ExperimentSpec::Builder builder;
    builder.fromCli(argc, argv, "Figure 13: error threshold sensitivity")
        .schemes({Scheme::DiComp, Scheme::DiVaxx, Scheme::FpComp,
                  Scheme::FpVaxx})
        .thresholds({0.0, 5.0, 10.0, 20.0})
        .filter([](const ExperimentPoint &p) {
            return is_vaxx(p.scheme) ? p.threshold > 0.0
                                     : p.threshold == 0.0;
        });
    Experiment ex(builder.build());
    print_banner("Figure 13 (error-threshold sensitivity)", ex.spec());
    ex.run();

    Table t({"benchmark", "family", "compression", "5%_threshold",
             "10%_threshold", "20%_threshold"});

    struct Family {
        const char *name;
        Scheme compression;
        Scheme vaxx;
    };
    const Family families[] = {
        {"DI-based", Scheme::DiComp, Scheme::DiVaxx},
        {"FP-based", Scheme::FpComp, Scheme::FpVaxx},
    };

    auto lat_cell = [&](Table::RowBuilder &row, const PointResult &pr) {
        if (pr.ok)
            row.cell(pr.replay.total_lat, 2);
        else
            row.cell(std::string("FAILED"));
    };

    for (const auto &bm : ex.spec().benchmarks()) {
        for (const Family &f : families) {
            auto row = t.row();
            row.cell(bm).cell(std::string(f.name));
            lat_cell(row, ex.result({.benchmark = bm,
                                     .scheme = f.compression,
                                     .threshold = 0.0}));
            for (double th : thresholds)
                lat_cell(row, ex.result({.benchmark = bm,
                                         .scheme = f.vaxx,
                                         .threshold = th}));
        }
    }
    emit(t, ex.spec(), "fig13_error_threshold");

    // QoR companion table: the mean and worst-case relative error each
    // scheme actually introduced at each threshold, from the per-point
    // ErrorProfile (long form, one row per grid point).
    Table q({"benchmark", "scheme", "threshold", "mean_rel_err",
             "mean_abs_rel_err", "max_abs_rel_err"});
    for (const auto &pt : ex.spec().points()) {
        const PointResult &pr = ex.resultAt(pt.index);
        auto row = q.row();
        row.cell(pt.benchmark)
            .cell(std::string(to_string(pt.scheme)))
            .cell(pt.threshold, 0);
        if (pr.ok && pr.replay.qor) {
            row.cell(pr.replay.qor->mean(), 6)
                .cell(pr.replay.qor->meanAbs(), 6)
                .cell(pr.replay.qor->maxAbs(), 6);
        } else {
            row.cell(std::string("FAILED"))
                .cell(std::string("FAILED"))
                .cell(std::string("FAILED"));
        }
    }
    emit(q, ex.spec(), "fig13_error_threshold_qor");
    return 0;
}
