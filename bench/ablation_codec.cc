/**
 * @file
 * Ablations for the design choices DESIGN.md calls out:
 *   1. Error-range mode: the paper's shift approximation vs an exact
 *      multiplier (compression won vs quality cost).
 *   2. FP-VAXX priority: highest-priority-first (paper) vs
 *      prefer-exact (Sec. 5.3.1 discussion).
 *   3. DI-VAXX placement: insertion-time APCL + TCAM (paper) vs AVCL
 *      on the lookup critical path (latency cost at equal function).
 */
#include <cstdio>

#include "approx/window_vaxx.h"
#include "bench/bench_common.h"
#include "compression/adaptive.h"
#include "traffic/data_provider.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

struct CodecScore {
    double compression_ratio;
    double mean_error;
    Cycle latency;
};

CodecScore
score(CodecSystem &codec, DataType type, std::uint64_t seed)
{
    SyntheticDataProvider provider(type, 16, 0.85, 4.0, seed, 0.5, 12);
    QualityTracker q;
    Cycle t = 0;
    for (int i = 0; i < 3000; ++i) {
        DataBlock b = provider.next(0);
        EncodedBlock enc = codec.encode(b, 0, 1, t);
        DataBlock out = codec.decode(enc, 0, 1, t);
        q.record(b, enc, out);
        t += 5;
    }
    return {q.compressionRatio(), q.meanRelativeError(),
            codec.compressionLatency()};
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec = ExperimentSpec::Builder()
                              .fromCli(argc, argv, "Design-choice ablations")
                              .build();
    const double threshold = spec.thresholds().front();
    print_banner("Ablations (error mode, FPC priority, VAXX placement)",
                 spec);

    Table t({"ablation", "variant", "type", "compr_ratio", "mean_err_pct",
             "compr_latency"});

    for (DataType type : {DataType::Int32, DataType::Float32}) {
        std::string ts = to_string(type);

        // 1. Error-range computation.
        for (ErrorRangeMode mode :
             {ErrorRangeMode::Shift, ErrorRangeMode::Exact}) {
            FpVaxxCodec codec{
                ErrorModel(threshold, mode)};
            CodecScore s = score(codec, type, 11);
            t.row()
                .cell(std::string("error-range"))
                .cell(std::string(mode == ErrorRangeMode::Shift
                                      ? "shift (paper)"
                                      : "exact multiply"))
                .cell(ts)
                .cell(s.compression_ratio, 3)
                .cell(s.mean_error * 100.0, 3)
                .cell(static_cast<long>(s.latency));
        }

        // 2. FP-VAXX match priority.
        for (FpcPriorityMode mode :
             {FpcPriorityMode::PreferApprox, FpcPriorityMode::PreferExact}) {
            FpVaxxCodec codec{ErrorModel(threshold), mode};
            CodecScore s = score(codec, type, 13);
            t.row()
                .cell(std::string("fpc-priority"))
                .cell(std::string(mode == FpcPriorityMode::PreferApprox
                                      ? "prefer-approx (paper)"
                                      : "prefer-exact"))
                .cell(ts)
                .cell(s.compression_ratio, 3)
                .cell(s.mean_error * 100.0, 3)
                .cell(static_cast<long>(s.latency));
        }

        // 3. Window-based error budget (the paper's future work):
        //    per-word threshold vs a shared per-block budget, on
        //    skewed frame-like blocks where most words match exactly
        //    and a few need a wide mask (the video/image scenario the
        //    paper motivates the window with).
        {
            FpVaxxCodec perword{ErrorModel(threshold)};
            WindowVaxxCodec window{ErrorModel(threshold),
                                   /*per_word_cap=*/8.0};
            auto skewed_score = [&](CodecSystem &codec) {
                Rng rng(29);
                QualityTracker q;
                for (int i = 0; i < 3000; ++i) {
                    std::vector<Word> ws(16);
                    for (auto &w : ws) {
                        if (rng.chance(0.25)) {
                            // Hard word: low bits block HalfPadded.
                            w = 0x00010000u |
                                static_cast<Word>(rng.next(0x4000));
                        } else {
                            w = static_cast<Word>(rng.range(-64, 64));
                        }
                    }
                    DataBlock b(ws, DataType::Int32, true);
                    EncodedBlock enc = codec.encode(b, 0, 1, 0);
                    q.record(b, enc, codec.decode(enc, 0, 1, 0));
                }
                return CodecScore{q.compressionRatio(),
                                  q.meanRelativeError(),
                                  codec.compressionLatency()};
            };
            CodecScore sp = skewed_score(perword);
            CodecScore sw = skewed_score(window);
            t.row()
                .cell(std::string("window-budget"))
                .cell(std::string("per-word (paper)"))
                .cell(ts)
                .cell(sp.compression_ratio, 3)
                .cell(sp.mean_error * 100.0, 3)
                .cell(static_cast<long>(sp.latency));
            t.row()
                .cell(std::string("window-budget"))
                .cell(std::string("per-block window (future work)"))
                .cell(ts)
                .cell(sw.compression_ratio, 3)
                .cell(sw.mean_error * 100.0, 3)
                .cell(static_cast<long>(sw.latency));
        }

        // 4. Adaptive on/off wrapper (after Jin et al. [17]) on a
        //    phase-alternating stream: long incompressible bursts
        //    punctuated by compressible phases.
        {
            AdaptiveConfig acfg;
            acfg.n_nodes = 4;
            AdaptiveCodec adaptive(
                std::make_unique<FpVaxxCodec>(
                    ErrorModel(threshold)),
                acfg);
            FpVaxxCodec plain{ErrorModel(threshold)};

            auto phased_score = [&](CodecSystem &codec) {
                Rng rng(31);
                QualityTracker q;
                std::uint64_t searches0 = codec.activity().cam_searches;
                for (int i = 0; i < 4000; ++i) {
                    bool compressible = (i / 500) % 2 == 1;
                    std::vector<Word> ws(16);
                    for (auto &w : ws)
                        w = compressible
                                ? static_cast<Word>(rng.range(-100, 100))
                                : (static_cast<Word>(rng.bits()) |
                                   0x01000000u);
                    DataBlock b(ws, DataType::Int32, false);
                    EncodedBlock enc = codec.encode(b, 0, 1, 0);
                    q.record(b, enc, codec.decode(enc, 0, 1, 0));
                }
                std::uint64_t searches =
                    codec.activity().cam_searches - searches0;
                return std::pair<CodecScore, std::uint64_t>(
                    {q.compressionRatio(), q.meanRelativeError(),
                     codec.compressionLatency()},
                    searches);
            };
            auto [s1, n1] = phased_score(plain);
            auto [s2, n2] = phased_score(adaptive);
            char label[96];
            std::snprintf(label, sizeof(label),
                          "adaptive wrapper (%.0f%% fewer searches)",
                          100.0 * (1.0 - double(n2) / double(n1)));
            t.row()
                .cell(std::string("adaptive-onoff"))
                .cell(std::string("always-on (paper)"))
                .cell(ts)
                .cell(s1.compression_ratio, 3)
                .cell(s1.mean_error * 100.0, 3)
                .cell(static_cast<long>(s1.latency));
            t.row()
                .cell(std::string("adaptive-onoff"))
                .cell(std::string(label))
                .cell(ts)
                .cell(s2.compression_ratio, 3)
                .cell(s2.mean_error * 100.0, 3)
                .cell(static_cast<long>(s2.latency));
        }

        // 5. DI-VAXX approximation placement.
        for (VaxxPlacement placement :
             {VaxxPlacement::Insertion, VaxxPlacement::Lookup}) {
            DictionaryConfig dict;
            dict.n_nodes = 4;
            DiVaxxCodec codec(dict, ErrorModel(threshold),
                              placement);
            CodecScore s = score(codec, type, 17);
            t.row()
                .cell(std::string("vaxx-placement"))
                .cell(std::string(placement == VaxxPlacement::Insertion
                                      ? "insertion (paper)"
                                      : "lookup path"))
                .cell(ts)
                .cell(s.compression_ratio, 3)
                .cell(s.mean_error * 100.0, 3)
                .cell(static_cast<long>(s.latency));
        }
    }
    emit(t, spec, "ablation_codec");
    return 0;
}
