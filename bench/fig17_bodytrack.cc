/**
 * @file
 * Figure 17: bodytrack precise vs approximate output. Runs the
 * tracker precisely and with a 10% data error budget, writes both
 * rendered outputs as PGM images, and reports the output vector
 * difference (the paper observes 2.4% at a 10% threshold).
 */
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"
#include "common/log.h"
#include "workloads/kernels.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

void
write_pgm(const std::string &path, const std::vector<std::uint8_t> &img,
          unsigned w, unsigned h)
{
    std::ofstream f(path, std::ios::binary);
    f << "P5\n" << w << " " << h << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data()),
            static_cast<std::streamsize>(img.size()));
}

WorkloadResult
run_bodytrack(BodytrackWorkload &wl, Scheme scheme, double threshold,
              double approx_ratio)
{
    CacheConfig ccfg;
    ccfg.approx_ratio = approx_ratio;
    CodecConfig cc;
    cc.n_nodes = ccfg.n_nodes;
    cc.error_threshold_pct = threshold;
    auto codec = CodecFactory::create(scheme, cc);
    ApproxCacheSystem mem(ccfg, codec.get());
    return wl.run(mem);
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv,
                     "Figure 17: bodytrack precise vs approximate output")
            .build();
    const ExperimentConfig &cfg = spec.config();
    print_banner("Figure 17 (bodytrack visual comparison)", spec);

    double threshold = spec.thresholds().front();
    double ratio = spec.approxRatios().front();
    BodytrackWorkload wl(cfg.scale);

    // The two tracker runs are independent; run them on the pool.
    ExperimentRunner runner(cfg.jobs, make_progress(cfg));
    std::vector<Outcome<WorkloadResult>> out =
        runner.map(2, [&](std::size_t i) {
            // Each job builds its own workload so the runs stay
            // isolated regardless of worker count.
            BodytrackWorkload local(cfg.scale);
            return i == 0
                       ? run_bodytrack(local, Scheme::Baseline, 0.0, ratio)
                       : run_bodytrack(local, Scheme::FpVaxx, threshold,
                                       ratio);
        });
    if (!out[0].ok || !out[1].ok)
        ANOC_FATAL("bodytrack run failed: ",
                   out[0].ok ? out[1].error : out[0].error);
    const WorkloadResult &precise = out[0].value;
    const WorkloadResult &approx = out[1].value;

    std::error_code ec;
    std::filesystem::create_directories(cfg.csv_dir, ec);
    auto img_p = wl.renderOutput(precise);
    auto img_a = wl.renderOutput(approx);
    write_pgm(cfg.csv_dir + "/fig17_precise.pgm", img_p, wl.imageWidth(),
              wl.imageHeight());
    write_pgm(cfg.csv_dir + "/fig17_approx.pgm", img_a, wl.imageWidth(),
              wl.imageHeight());

    double err = wl.outputError(precise, approx);
    double pix_diff = 0.0;
    for (std::size_t i = 0; i < img_p.size(); ++i)
        pix_diff += std::abs(int(img_p[i]) - int(img_a[i]));
    pix_diff /= 255.0 * static_cast<double>(img_p.size());

    Table t({"metric", "value"});
    t.row().cell(std::string("error threshold (%)")).cell(threshold, 0);
    t.row().cell(std::string("output vector difference (%)"))
        .cell(err * 100.0, 4);
    t.row().cell(std::string("rendered image difference (%)"))
        .cell(pix_diff * 100.0, 4);
    emit(t, spec, "fig17_bodytrack");
    std::printf("[images: %s/fig17_precise.pgm, %s/fig17_approx.pgm]\n",
                cfg.csv_dir.c_str(), cfg.csv_dir.c_str());
    return 0;
}
