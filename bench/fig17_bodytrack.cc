/**
 * @file
 * Figure 17: bodytrack precise vs approximate output. Runs the
 * tracker precisely and with a 10% data error budget, writes both
 * rendered outputs as PGM images, and reports the output vector
 * difference (the paper observes 2.4% at a 10% threshold).
 */
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"
#include "workloads/kernels.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

void
write_pgm(const std::string &path, const std::vector<std::uint8_t> &img,
          unsigned w, unsigned h)
{
    std::ofstream f(path, std::ios::binary);
    f << "P5\n" << w << " " << h << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data()),
            static_cast<std::streamsize>(img.size()));
}

WorkloadResult
run_bodytrack(BodytrackWorkload &wl, Scheme scheme, double threshold,
              const BenchOptions &opt)
{
    CacheConfig ccfg;
    ccfg.approx_ratio = opt.approx_ratio;
    CodecConfig cc;
    cc.n_nodes = ccfg.n_nodes;
    cc.error_threshold_pct = threshold;
    auto codec = make_codec(scheme, cc);
    ApproxCacheSystem mem(ccfg, codec.get());
    return wl.run(mem);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Figure 17: bodytrack precise vs approximate output");
    print_banner("Figure 17 (bodytrack visual comparison)", opt);

    BodytrackWorkload wl(opt.scale);
    WorkloadResult precise =
        run_bodytrack(wl, Scheme::Baseline, 0.0, opt);
    WorkloadResult approx =
        run_bodytrack(wl, Scheme::FpVaxx, opt.error_threshold_pct, opt);

    std::error_code ec;
    std::filesystem::create_directories(opt.csv_dir, ec);
    auto img_p = wl.renderOutput(precise);
    auto img_a = wl.renderOutput(approx);
    write_pgm(opt.csv_dir + "/fig17_precise.pgm", img_p, wl.imageWidth(),
              wl.imageHeight());
    write_pgm(opt.csv_dir + "/fig17_approx.pgm", img_a, wl.imageWidth(),
              wl.imageHeight());

    double err = wl.outputError(precise, approx);
    double pix_diff = 0.0;
    for (std::size_t i = 0; i < img_p.size(); ++i)
        pix_diff += std::abs(int(img_p[i]) - int(img_a[i]));
    pix_diff /= 255.0 * static_cast<double>(img_p.size());

    Table t({"metric", "value"});
    t.row().cell(std::string("error threshold (%)"))
        .cell(opt.error_threshold_pct, 0);
    t.row().cell(std::string("output vector difference (%)"))
        .cell(err * 100.0, 4);
    t.row().cell(std::string("rendered image difference (%)"))
        .cell(pix_diff * 100.0, 4);
    emit(t, opt, "fig17_bodytrack");
    std::printf("[images: %s/fig17_precise.pgm, %s/fig17_approx.pgm]\n",
                opt.csv_dir.c_str(), opt.csv_dir.c_str());
    return 0;
}
