/**
 * @file
 * Extra experiment: memory-style request-reply round-trip latency per
 * scheme under the self-throttling closed-loop generator — the
 * end-to-end "miss latency" view of what the compression schemes buy,
 * complementary to the open-loop/trace figures.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Closed-loop request/reply round-trip latency");
    print_banner("Closed-loop round-trip latency (extra experiment)", opt);

    Table t({"scheme", "window", "round_trip", "replies", "data_flits"});
    for (Scheme s : opt.schemes) {
        for (unsigned window : {1u, 4u, 16u}) {
            NocConfig ncfg;
            CodecConfig cc;
            cc.n_nodes = ncfg.nodes();
            cc.error_threshold_pct = opt.error_threshold_pct;
            auto codec = make_codec(s, cc);
            Network net(ncfg, codec.get());
            Simulator sim;
            net.attach(sim);

            ClosedLoopConfig lc;
            lc.window = window;
            lc.approx_ratio = opt.approx_ratio;
            SyntheticDataProvider provider(DataType::Int32, 16, 0.9, 3.0,
                                           opt.scale + 3, 0.7, 8);
            ClosedLoopTraffic gen(net, lc, provider);
            sim.add(&gen);

            sim.run(opt.cycles);
            gen.setEnabled(false);
            bool ok = sim.runUntil(
                [&] { return gen.quiesced() && net.drained(); }, 500000);

            t.row()
                .cell(to_string(s))
                .cell(static_cast<long>(window))
                .cell(ok ? gen.roundTrip().mean() : -1.0, 2)
                .cell(static_cast<long>(gen.repliesReceived()))
                .cell(static_cast<long>(net.dataFlitsInjected()));
        }
    }
    emit(t, opt, "closed_loop_latency");
    return 0;
}
