/**
 * @file
 * Extra experiment: memory-style request-reply round-trip latency per
 * scheme under the self-throttling closed-loop generator — the
 * end-to-end "miss latency" view of what the compression schemes buy,
 * complementary to the open-loop/trace figures.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

struct LoopResult {
    double round_trip = -1.0;
    std::uint64_t replies = 0;
    std::uint64_t data_flits = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv,
                     "Closed-loop request/reply round-trip latency")
            .build();
    const ExperimentConfig &cfg = spec.config();
    print_banner("Closed-loop round-trip latency (extra experiment)", spec);

    const unsigned windows[] = {1u, 4u, 16u};
    struct Point {
        Scheme scheme;
        unsigned window;
    };
    std::vector<Point> points;
    for (Scheme s : spec.schemes())
        for (unsigned window : windows)
            points.push_back({s, window});

    ExperimentRunner runner(cfg.jobs, make_progress(cfg));
    std::vector<Outcome<LoopResult>> out =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &p = points[i];
            NocConfig ncfg;
            CodecConfig cc;
            cc.n_nodes = ncfg.nodes();
            cc.error_threshold_pct = spec.thresholds().front();
            auto codec = CodecFactory::create(p.scheme, cc);
            Network net(ncfg, codec.get());
            Simulator sim;
            net.attach(sim);

            ClosedLoopConfig lc;
            lc.window = p.window;
            lc.approx_ratio = spec.approxRatios().front();
            SyntheticDataProvider provider(DataType::Int32, 16, 0.9, 3.0,
                                           cfg.scale + 3, 0.7, 8);
            ClosedLoopTraffic gen(net, lc, provider);
            sim.add(&gen);

            sim.run(cfg.cycles);
            gen.setEnabled(false);
            // Drain check every 64 cycles: quiesced()/drained() scan
            // every VC, so per-cycle polling dominates the drain tail.
            bool ok = sim.runUntil(
                [&] { return gen.quiesced() && net.drained(); }, 500000,
                /*check_interval=*/64);

            LoopResult r;
            r.round_trip = ok ? gen.roundTrip().mean() : -1.0;
            r.replies = gen.repliesReceived();
            r.data_flits = net.dataFlitsInjected();
            return r;
        });

    Table t({"scheme", "window", "round_trip", "replies", "data_flits"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        auto row = t.row();
        row.cell(to_string(points[i].scheme))
            .cell(static_cast<long>(points[i].window));
        if (out[i].ok) {
            const LoopResult &r = out[i].value;
            row.cell(r.round_trip, 2)
                .cell(static_cast<long>(r.replies))
                .cell(static_cast<long>(r.data_flits));
        } else {
            row.cell(std::string("FAILED"))
                .cell(std::string("-"))
                .cell(std::string("-"));
        }
    }
    emit(t, spec, "closed_loop_latency");
    return 0;
}
