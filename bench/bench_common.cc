#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/log.h"

namespace approxnoc::bench {

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &what)
{
    CliArgs args(argc, argv);
    if (args.has("help")) {
        std::printf(
            "%s\n"
            "Flags:\n"
            "  --benchmarks=<all|name,name,...>  (default all)\n"
            "  --schemes=<all|name,name,...>     (default all)\n"
            "  --threshold=<pct>                 error threshold (10)\n"
            "  --approx-ratio=<0..1>             approximable ratio (0.75)\n"
            "  --max-records=<n>                 trace replay cap (20000)\n"
            "  --load=<flits/cycle/node>         replay target load (0.04)\n"
            "  --cycles=<n>                      synthetic run length (50000)\n"
            "  --scale=<n>                       workload size multiplier (1)\n"
            "  --csv-dir=<dir>                   CSV output dir (results)\n"
            "  --verbose                         chatty logging\n",
            what.c_str());
        std::exit(0);
    }
    BenchOptions opt;
    opt.benchmarks = parse_benchmarks(args.getString("benchmarks", "all"));
    opt.schemes = parse_schemes(args.getString("schemes", "all"));
    opt.error_threshold_pct = args.getDouble("threshold", 10.0);
    opt.approx_ratio = args.getDouble("approx-ratio", 0.75);
    opt.max_records =
        static_cast<std::size_t>(args.getInt("max-records", 20000));
    opt.target_load = args.getDouble("load", 0.04);
    opt.cycles = static_cast<Cycle>(args.getInt("cycles", 50000));
    opt.scale = static_cast<unsigned>(args.getInt("scale", 1));
    opt.csv_dir = args.getString("csv-dir", "results");
    opt.verbose = args.getBool("verbose", false);
    set_verbose(opt.verbose);
    return opt;
}

void
print_banner(const std::string &figure, const BenchOptions &opt)
{
    std::printf("== APPROX-NoC reproduction: %s ==\n", figure.c_str());
    std::printf(
        "config: 4x4 concentrated 2D mesh (32 nodes), 3-stage routers, "
        "4 VCs x 4 flits, 64-bit flits, XY wormhole\n");
    std::printf("        error threshold %.0f%%, approximable ratio %.0f%%, "
                "8-entry PMTs\n\n",
                opt.error_threshold_pct, opt.approx_ratio * 100.0);
}

void
emit(const Table &t, const BenchOptions &opt, const std::string &name)
{
    t.print(std::cout);
    std::error_code ec;
    std::filesystem::create_directories(opt.csv_dir, ec);
    if (!ec)
        t.writeCsv(opt.csv_dir + "/" + name + ".csv");
    std::printf("\n[csv: %s/%s.csv]\n", opt.csv_dir.c_str(), name.c_str());
}

const CommTrace &
TraceLibrary::get(const std::string &benchmark)
{
    auto it = traces_.find(benchmark);
    if (it != traces_.end())
        return it->second;

    // The paper's trace-collection step: run the kernel through the
    // coherent cache model with a precise codec, recording every miss
    // request/response and writeback as a packet.
    CacheConfig ccfg; // 16 cores + 16 homes = Table 1's 32 endpoints
    ApproxCacheSystem mem(ccfg, nullptr);
    CommTrace trace;
    mem.setTraceSink(&trace);
    auto wl = make_workload(benchmark, scale_);
    wl->run(mem);
    auto [pos, _] = traces_.emplace(benchmark, std::move(trace));
    ANOC_INFORM("trace ", benchmark, ": ", pos->second.size(), " records, ",
                pos->second.duration(), " cycles");
    return pos->second;
}

double
TraceLibrary::naturalLoad(const CommTrace &t, unsigned n_nodes)
{
    if (t.duration() == 0)
        return 0.0;
    std::uint64_t flits = 0;
    for (const auto &r : t.records())
        flits += r.cls == PacketClass::Data ? 9 : 1;
    return static_cast<double>(flits) /
           (static_cast<double>(t.duration()) * n_nodes);
}

ReplayResult
replay_trace(const CommTrace &trace, Scheme scheme, const BenchOptions &opt)
{
    NocConfig ncfg; // Table 1
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = opt.error_threshold_pct;
    auto codec = make_codec(scheme, cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    // Cap the replayed portion of the trace for bounded runtime.
    CommTrace capped;
    if (trace.size() > opt.max_records) {
        // Rebuild the prefix (block indices are preserved by copying
        // the pool wholesale).
        for (const auto &b : trace.blocks())
            capped.addBlock(b);
        for (std::size_t i = 0; i < opt.max_records; ++i)
            capped.add(trace.records()[i]);
    }
    const CommTrace &use = trace.size() > opt.max_records ? capped : trace;

    // Normalize the offered load of the *replayed* portion.
    double natural = TraceLibrary::naturalLoad(use, ncfg.nodes());
    double time_scale =
        natural > 0 && opt.target_load > 0 ? natural / opt.target_load : 1.0;

    TraceReplay replay(net, use, time_scale, opt.approx_ratio);
    sim.add(&replay);

    bool done = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));
    ANOC_ASSERT(done, "replay failed to finish");

    const NetworkStats &s = net.stats();
    ReplayResult r;
    r.queue_lat = s.queue_lat.mean();
    r.net_lat = s.net_lat.mean();
    r.decode_lat = s.decode_lat.mean();
    r.total_lat = s.total_lat.mean();
    r.quality = s.quality.dataQuality();
    r.exact_fraction = s.quality.exactEncodedFraction();
    r.approx_fraction = s.quality.approxEncodedFraction();
    r.compression_ratio = s.quality.compressionRatio();
    r.data_flits = net.dataFlitsInjected();
    r.packets = s.packets_delivered.value();
    r.elapsed = sim.now();
    PowerModel pm;
    r.dynamic_power_mw = pm.dynamicPowerMw(net, sim.now());
    return r;
}

std::vector<Scheme>
parse_schemes(const std::string &s)
{
    if (s == "all")
        return {kAllSchemes, kAllSchemes + 5};
    std::vector<Scheme> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(scheme_from_string(item));
    if (out.empty())
        ANOC_FATAL("no schemes selected");
    return out;
}

std::vector<std::string>
parse_benchmarks(const std::string &s)
{
    if (s == "all")
        return workload_names();
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        make_workload(item); // validates the name
        out.push_back(item);
    }
    if (out.empty())
        ANOC_FATAL("no benchmarks selected");
    return out;
}

} // namespace approxnoc::bench
