#include "bench/bench_common.h"

namespace approxnoc::bench {

void
emit(const Table &t, const ExperimentSpec &spec, const std::string &name)
{
    harness::emit_table(t, spec.config(), name);
}

} // namespace approxnoc::bench
