#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/log.h"

namespace approxnoc::bench {

void
emit(const Table &t, const ExperimentSpec &spec, const std::string &name)
{
    harness::emit_table(t, spec.config(), name);
}

// ------------------------------------------------------------------------
// Deprecated pre-harness API shims.
// ------------------------------------------------------------------------

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &what)
{
    // Reuse the harness CLI front end (it accepts a superset of the old
    // flags), then flatten back into the legacy struct.
    ExperimentSpec spec =
        ExperimentSpec::Builder().fromCli(argc, argv, what).build();
    BenchOptions opt;
    opt.benchmarks = spec.benchmarks();
    opt.schemes = spec.schemes();
    opt.error_threshold_pct = spec.thresholds().front();
    opt.approx_ratio = spec.approxRatios().front();
    opt.max_records = spec.config().max_records;
    opt.target_load = spec.loads().front();
    opt.cycles = spec.config().cycles;
    opt.scale = spec.config().scale;
    opt.csv_dir = spec.config().csv_dir;
    opt.verbose = spec.config().verbose;
    return opt;
}

ExperimentSpec
BenchOptions::toSpec() const
{
    return ExperimentSpec::Builder()
        .benchmarks(benchmarks)
        .schemes(schemes)
        .threshold(error_threshold_pct)
        .approxRatio(approx_ratio)
        .load(target_load)
        .maxRecords(max_records)
        .cycles(cycles)
        .scale(scale)
        .csvDir(csv_dir)
        .verbose(verbose)
        .build();
}

void
print_banner(const std::string &figure, const BenchOptions &opt)
{
    harness::print_banner(figure, opt.toSpec());
}

void
emit(const Table &t, const BenchOptions &opt, const std::string &name)
{
    ExperimentConfig cfg;
    cfg.csv_dir = opt.csv_dir;
    harness::emit_table(t, cfg, name);
}

ReplayResult
replay_trace(const CommTrace &trace, Scheme scheme, const BenchOptions &opt)
{
    ReplayJob job;
    job.scheme = scheme;
    job.threshold = opt.error_threshold_pct;
    job.approx_ratio = opt.approx_ratio;
    job.load = opt.target_load;
    job.max_records = opt.max_records;
    return run_replay(trace, job);
}

std::vector<Scheme>
parse_schemes(const std::string &s)
{
    return harness::parse_scheme_list(s);
}

std::vector<std::string>
parse_benchmarks(const std::string &s)
{
    return harness::parse_benchmark_list(s);
}

} // namespace approxnoc::bench
