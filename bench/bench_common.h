/**
 * @file
 * Shared infrastructure for the per-figure bench harnesses, re-exported
 * from the src/harness experiment subsystem: the ExperimentSpec fluent
 * builder (CLI-integrated), the parallel Experiment runner, the
 * thread-safe TraceLibrary, the replay point executor and the CSV+JSON
 * table emitter. The pre-harness BenchOptions API survives one more PR
 * as thin deprecated shims at the bottom.
 */
#ifndef APPROXNOC_BENCH_BENCH_COMMON_H
#define APPROXNOC_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "cache/approx_cache.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "noc/network.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "traffic/replay.h"
#include "traffic/trace.h"
#include "workloads/workload.h"

namespace approxnoc::bench {

// The unified experiment API, re-exported for harness binaries.
using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentPoint;
using harness::ExperimentRunner;
using harness::ExperimentSpec;
using harness::Outcome;
using harness::PointQuery;
using harness::PointResult;
using harness::ReplayJob;
using harness::ReplayResult;
using harness::ResultSink;
using harness::TraceLibrary;

using harness::derive_seed;
using harness::emit_table;
using harness::make_progress;
using harness::parse_benchmark_list;
using harness::parse_scheme_list;
using harness::print_banner;
using harness::run_replay;
using harness::run_replay_point;

/** emit_table under the figure's name (CSV + JSON alongside). */
void emit(const Table &t, const ExperimentSpec &spec,
          const std::string &name);

// ------------------------------------------------------------------------
// Deprecated pre-harness API (kept as shims for one PR).
// ------------------------------------------------------------------------

/**
 * Everything a figure harness needed to run one experiment.
 * @deprecated Use ExperimentSpec::Builder / Experiment instead.
 */
struct BenchOptions {
    std::vector<std::string> benchmarks; ///< subset of workload_names()
    std::vector<Scheme> schemes;         ///< subset of kAllSchemes
    double error_threshold_pct = 10.0;   ///< Table 1 default
    double approx_ratio = 0.75;          ///< Table 1 default
    std::size_t max_records = 20000;     ///< trace replay cap
    double target_load = 0.04;  ///< offered data flits/cycle/node in replay
    Cycle cycles = 50000;       ///< synthetic run length
    unsigned scale = 1;         ///< workload problem-size multiplier
    std::string csv_dir = "results";
    bool verbose = false;

    /** Parse the common flags; prints usage and exits on --help. */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &what);

    /** The equivalent single-point-per-combination spec. */
    ExperimentSpec toSpec() const;
};

/** @deprecated Use print_banner(figure, spec). */
void print_banner(const std::string &figure, const BenchOptions &opt);

/** @deprecated Use emit(t, spec, name) / harness::emit_table. */
void emit(const Table &t, const BenchOptions &opt, const std::string &name);

/** @deprecated Use harness::run_replay. */
ReplayResult replay_trace(const CommTrace &trace, Scheme scheme,
                          const BenchOptions &opt);

/** @deprecated Use harness::parse_scheme_list. */
[[deprecated("use harness::parse_scheme_list")]]
std::vector<Scheme> parse_schemes(const std::string &s);
/** @deprecated Use harness::parse_benchmark_list. */
[[deprecated("use harness::parse_benchmark_list")]]
std::vector<std::string> parse_benchmarks(const std::string &s);

} // namespace approxnoc::bench

#endif // APPROXNOC_BENCH_BENCH_COMMON_H
