/**
 * @file
 * Shared infrastructure for the per-figure bench harnesses: paper
 * configuration, trace generation from the workload kernels, trace
 * replay through the NoC under each scheme, and result table output.
 */
#ifndef APPROXNOC_BENCH_BENCH_COMMON_H
#define APPROXNOC_BENCH_BENCH_COMMON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/approx_cache.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "traffic/replay.h"
#include "traffic/trace.h"
#include "workloads/workload.h"

namespace approxnoc::bench {

/** Everything a figure harness needs to run one experiment. */
struct BenchOptions {
    std::vector<std::string> benchmarks; ///< subset of workload_names()
    std::vector<Scheme> schemes;         ///< subset of kAllSchemes
    double error_threshold_pct = 10.0;   ///< Table 1 default
    double approx_ratio = 0.75;          ///< Table 1 default
    std::size_t max_records = 20000;     ///< trace replay cap
    double target_load = 0.04;  ///< offered data flits/cycle/node in replay
    Cycle cycles = 50000;       ///< synthetic run length
    unsigned scale = 1;         ///< workload problem-size multiplier
    std::string csv_dir = "results";
    bool verbose = false;

    /** Parse the common flags; prints usage and exits on --help. */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &what);
};

/** Print the Table-1 style header every harness emits. */
void print_banner(const std::string &figure, const BenchOptions &opt);

/** Write @p t as results CSV (best effort) and print it. */
void emit(const Table &t, const BenchOptions &opt, const std::string &name);

/**
 * Communication-trace cache: traces are generated once per benchmark
 * by running the kernel through the cache model with a precise codec
 * and a trace sink (the paper's gem5 trace-collection step).
 */
class TraceLibrary
{
  public:
    explicit TraceLibrary(unsigned scale = 1) : scale_(scale) {}

    /** The trace for @p benchmark (generated and cached on demand). */
    const CommTrace &get(const std::string &benchmark);

    /** Natural offered load of a trace in data-flits/cycle/node. */
    static double naturalLoad(const CommTrace &t, unsigned n_nodes);

  private:
    unsigned scale_;
    std::map<std::string, CommTrace> traces_;
};

/** Results of one trace replay through the NoC. */
struct ReplayResult {
    double queue_lat = 0.0;
    double net_lat = 0.0;
    double decode_lat = 0.0;
    double total_lat = 0.0;
    double quality = 1.0;          ///< data value quality
    double exact_fraction = 0.0;   ///< Fig. 10a
    double approx_fraction = 0.0;  ///< Fig. 10a
    double compression_ratio = 1.0; ///< Fig. 10b
    std::uint64_t data_flits = 0;  ///< Fig. 11
    std::uint64_t packets = 0;
    double dynamic_power_mw = 0.0; ///< Fig. 15
    Cycle elapsed = 0;
};

/**
 * Replay @p trace under @p scheme on the paper's 4x4 cmesh.
 * Timestamps are scaled so the offered load matches
 * @p opt.target_load; at most opt.max_records records are injected and
 * the network is drained afterwards.
 */
ReplayResult replay_trace(const CommTrace &trace, Scheme scheme,
                          const BenchOptions &opt);

/** Scheme list parsing ("all" or comma-separated names). */
std::vector<Scheme> parse_schemes(const std::string &s);
/** Benchmark list parsing ("all" or comma-separated names). */
std::vector<std::string> parse_benchmarks(const std::string &s);

} // namespace approxnoc::bench

#endif // APPROXNOC_BENCH_BENCH_COMMON_H
