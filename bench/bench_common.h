/**
 * @file
 * Shared infrastructure for the per-figure bench harnesses, re-exported
 * from the src/harness experiment subsystem: the ExperimentSpec fluent
 * builder (CLI-integrated), the parallel Experiment runner, the
 * thread-safe TraceLibrary, the replay point executor and the CSV+JSON
 * table emitter.
 */
#ifndef APPROXNOC_BENCH_BENCH_COMMON_H
#define APPROXNOC_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "cache/approx_cache.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "noc/network.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "traffic/replay.h"
#include "traffic/trace.h"
#include "workloads/workload.h"

namespace approxnoc::bench {

// The unified experiment API, re-exported for harness binaries.
using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentPoint;
using harness::ExperimentRunner;
using harness::ExperimentSpec;
using harness::Outcome;
using harness::PointQuery;
using harness::PointResult;
using harness::ReplayJob;
using harness::ReplayResult;
using harness::ResultSink;
using harness::TraceLibrary;

using harness::derive_seed;
using harness::emit_table;
using harness::make_progress;
using harness::parse_benchmark_list;
using harness::parse_scheme_list;
using harness::print_banner;
using harness::run_replay;
using harness::run_replay_point;

/** emit_table under the figure's name (CSV + JSON alongside). */
void emit(const Table &t, const ExperimentSpec &spec,
          const std::string &name);

} // namespace approxnoc::bench

#endif // APPROXNOC_BENCH_BENCH_COMMON_H
