/**
 * @file
 * Section 5.5: per-NI encoder area at 45 nm for every scheme, from
 * the analytical CAM/TCAM/SRAM area model. Paper reference points:
 * DI-VAXX 0.0037 mm^2, FP-VAXX 0.0029 mm^2.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "power/area_model.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv, "Sec 5.5: encoder area overhead")
            .build();
    print_banner("Section 5.5 (encoder area overhead, 45 nm)", spec);

    DictionaryConfig dict;
    dict.n_nodes = 32;
    Table t({"scheme", "area_mm2", "paper_mm2"});
    for (Scheme s : kAllSchemes) {
        double a = encoder_area_mm2(s, dict, 32);
        std::string paper = s == Scheme::DiVaxx   ? "0.0037"
                            : s == Scheme::FpVaxx ? "0.0029"
                                                  : "-";
        t.row().cell(to_string(s)).cell(a, 5).cell(paper);
    }
    emit(t, spec, "area_overhead");
    return 0;
}
