/**
 * @file
 * Figure 10: (a) fraction of words encoded, split into exact
 * compression and approximation, and (b) compression ratio, per
 * benchmark and scheme (geometric-mean row included, as the paper
 * plots GMEAN).
 */
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "common/log.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    ExperimentSpec::Builder builder;
    builder.fromCli(argc, argv,
                    "Figure 10: encoded-word fraction + compression ratio");
    // The paper plots the four compression schemes (no Baseline bar).
    ExperimentSpec cli = builder.build();
    std::vector<Scheme> schemes;
    for (Scheme s : cli.schemes())
        if (s != Scheme::Baseline)
            schemes.push_back(s);
    if (schemes.empty())
        ANOC_FATAL("Figure 10 needs at least one non-Baseline scheme");
    Experiment ex(builder.schemes(schemes).build());
    print_banner("Figure 10 (encoded fraction, compression ratio)",
                 ex.spec());
    ex.run();

    Table t({"benchmark", "scheme", "exact_frac", "approx_frac",
             "encoded_frac", "compr_ratio"});

    std::map<Scheme, std::pair<double, double>> gmean; // log sums
    std::map<Scheme, std::size_t> count;
    for (const auto &bm : ex.spec().benchmarks()) {
        for (Scheme s : ex.spec().schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(std::string("FAILED"))
                    .cell(std::string("-"))
                    .cell(std::string("-"))
                    .cell(std::string("-"));
                continue;
            }
            const ReplayResult &r = pr.replay;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(r.exact_fraction, 3)
                .cell(r.approx_fraction, 3)
                .cell(r.exact_fraction + r.approx_fraction, 3)
                .cell(r.compression_ratio, 3);
            double ef = std::max(1e-6, r.exact_fraction + r.approx_fraction);
            gmean[s].first += std::log(ef);
            gmean[s].second += std::log(std::max(1e-6, r.compression_ratio));
            ++count[s];
        }
    }
    for (Scheme s : ex.spec().schemes()) {
        if (!count[s])
            continue;
        double n = static_cast<double>(count[s]);
        t.row()
            .cell(std::string("GMEAN"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(std::string("-"))
            .cell(std::exp(gmean[s].first / n), 3)
            .cell(std::exp(gmean[s].second / n), 3);
    }
    emit(t, ex.spec(), "fig10_compression");
    return 0;
}
