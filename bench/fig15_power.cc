/**
 * @file
 * Figure 15: dynamic power consumption per benchmark and scheme,
 * normalized to Baseline, from the event-energy power model.
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt =
        BenchOptions::parse(argc, argv, "Figure 15: dynamic power");
    print_banner("Figure 15 (dynamic power, normalized to Baseline)", opt);

    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "scheme", "dyn_power_mw", "normalized",
             "edp_normalized"});

    std::map<Scheme, double> sums;
    std::map<Scheme, double> edp_sums;
    std::size_t rows = 0;
    for (const auto &bm : opt.benchmarks) {
        const CommTrace &trace = traces.get(bm);
        double base_mw = 0.0, base_lat = 0.0;
        for (Scheme s : opt.schemes) {
            ReplayResult r = replay_trace(trace, s, opt);
            if (s == Scheme::Baseline) {
                base_mw = r.dynamic_power_mw;
                base_lat = r.total_lat;
            }
            double norm =
                base_mw > 0 ? r.dynamic_power_mw / base_mw : 1.0;
            // Energy-delay product relative to Baseline: the combined
            // efficiency view (compression wins on both axes).
            double edp = base_mw > 0 && base_lat > 0
                             ? norm * (r.total_lat / base_lat)
                             : 1.0;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(r.dynamic_power_mw, 3)
                .cell(norm, 3)
                .cell(edp, 3);
            sums[s] += norm;
            edp_sums[s] += edp;
        }
        ++rows;
    }
    for (Scheme s : opt.schemes) {
        t.row()
            .cell(std::string("AVG"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(sums[s] / static_cast<double>(rows), 3)
            .cell(edp_sums[s] / static_cast<double>(rows), 3);
    }
    emit(t, opt, "fig15_power");
    return 0;
}
