/**
 * @file
 * Figure 15: dynamic power consumption per benchmark and scheme,
 * normalized to Baseline, from the event-energy power model.
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    Experiment ex(ExperimentSpec::Builder()
                      .fromCli(argc, argv, "Figure 15: dynamic power")
                      .build());
    print_banner("Figure 15 (dynamic power, normalized to Baseline)",
                 ex.spec());
    ex.run();

    Table t({"benchmark", "scheme", "dyn_power_mw", "normalized",
             "edp_normalized"});

    std::map<Scheme, double> sums;
    std::map<Scheme, double> edp_sums;
    std::map<Scheme, std::size_t> counts;
    for (const auto &bm : ex.spec().benchmarks()) {
        double base_mw = 0.0, base_lat = 0.0;
        for (Scheme s : ex.spec().schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(std::string("FAILED"))
                    .cell(std::string("-"))
                    .cell(std::string("-"));
                continue;
            }
            const ReplayResult &r = pr.replay;
            if (s == Scheme::Baseline) {
                base_mw = r.dynamic_power_mw;
                base_lat = r.total_lat;
            }
            double norm =
                base_mw > 0 ? r.dynamic_power_mw / base_mw : 1.0;
            // Energy-delay product relative to Baseline: the combined
            // efficiency view (compression wins on both axes).
            double edp = base_mw > 0 && base_lat > 0
                             ? norm * (r.total_lat / base_lat)
                             : 1.0;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(r.dynamic_power_mw, 3)
                .cell(norm, 3)
                .cell(edp, 3);
            sums[s] += norm;
            edp_sums[s] += edp;
            ++counts[s];
        }
    }
    for (Scheme s : ex.spec().schemes()) {
        if (!counts[s])
            continue;
        t.row()
            .cell(std::string("AVG"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(sums[s] / static_cast<double>(counts[s]), 3)
            .cell(edp_sums[s] / static_cast<double>(counts[s]), 3);
    }
    emit(t, ex.spec(), "fig15_power");
    return 0;
}
