/**
 * @file
 * Figure 12: load-latency curves under synthetic traffic whose data
 * payloads replay benchmark blocks (blackscholes and streamcluster),
 * for Uniform Random and Transpose patterns, 25:75 data:control packet
 * mix. One series per scheme; points past saturation are reported as
 * "sat".
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

/** Latency at one offered load; negative when saturated. */
double
measure_point(Scheme scheme, TrafficPattern pattern, double rate,
              const std::vector<DataBlock> &blocks, const BenchOptions &opt)
{
    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = opt.error_threshold_pct;
    auto codec = make_codec(scheme, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    SyntheticConfig tc;
    tc.injection_rate = rate;
    tc.data_packet_ratio = 0.25; // paper Fig. 12: 25:75
    tc.pattern = pattern;
    tc.approx_ratio = opt.approx_ratio;
    TraceDataProvider provider(blocks);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);

    // BookSim-style methodology: warm up, reset the series, measure.
    Cycle warmup = opt.cycles / 5;
    sim.run(warmup);
    net.stats().reset();
    std::uint64_t offered0 = gen.packetsOffered();
    sim.run(opt.cycles - warmup);

    // Saturation detection: offered vs delivered and queue blow-up.
    double avg = net.stats().total_lat.mean();
    std::uint64_t delivered = net.stats().packets_delivered.value();
    std::uint64_t offered = gen.packetsOffered() - offered0;
    if (delivered < offered * 7 / 10 || avg > 300.0)
        return -1.0;
    return avg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt =
        BenchOptions::parse(argc, argv, "Figure 12: throughput curves");
    print_banner("Figure 12 (load-latency, UR & TR, 25:75 data:control)",
                 opt);

    std::vector<std::string> bms = {"blackscholes", "streamcluster"};
    if (opt.benchmarks.size() < workload_names().size())
        bms = opt.benchmarks; // user narrowed the set

    // Finer steps near saturation so scheme crossover points resolve.
    const std::vector<double> rates = {0.05, 0.15, 0.25, 0.35, 0.40,
                                       0.45, 0.50, 0.55, 0.60, 0.65,
                                       0.70};

    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "pattern", "scheme", "rate", "latency"});
    for (const auto &bm : bms) {
        const CommTrace &trace = traces.get(bm);
        for (TrafficPattern pat :
             {TrafficPattern::UniformRandom, TrafficPattern::Transpose}) {
            for (Scheme s : opt.schemes) {
                bool saturated = false;
                for (double rate : rates) {
                    std::string lat = "sat";
                    if (!saturated) {
                        double v =
                            measure_point(s, pat, rate, trace.blocks(), opt);
                        if (v < 0)
                            saturated = true;
                        else
                            lat = fmt(v, 2);
                    }
                    t.row()
                        .cell(bm)
                        .cell(to_string(pat))
                        .cell(to_string(s))
                        .cell(rate, 2)
                        .cell(lat);
                }
            }
        }
    }
    emit(t, opt, "fig12_throughput");
    return 0;
}
