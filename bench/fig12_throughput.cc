/**
 * @file
 * Figure 12: load-latency curves under synthetic traffic whose data
 * payloads replay benchmark blocks (blackscholes and streamcluster),
 * for Uniform Random and Transpose patterns, 25:75 data:control packet
 * mix. One series per scheme; points past saturation are reported as
 * "sat".
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

/** Latency at one offered load; negative when saturated. */
double
measure_point(Scheme scheme, TrafficPattern pattern, double rate,
              const std::vector<DataBlock> &blocks,
              const ExperimentConfig &cfg, double threshold,
              double approx_ratio)
{
    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = threshold;
    auto codec = CodecFactory::create(scheme, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    SyntheticConfig tc;
    tc.injection_rate = rate;
    tc.data_packet_ratio = 0.25; // paper Fig. 12: 25:75
    tc.pattern = pattern;
    tc.approx_ratio = approx_ratio;
    TraceDataProvider provider(blocks);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);

    // BookSim-style methodology: warm up, reset the series, measure.
    Cycle warmup = cfg.cycles / 5;
    sim.run(warmup);
    net.stats().reset();
    std::uint64_t offered0 = gen.packetsOffered();
    sim.run(cfg.cycles - warmup);

    // Saturation detection: offered vs delivered and queue blow-up.
    double avg = net.stats().total_lat.mean();
    std::uint64_t delivered = net.stats().packets_delivered.value();
    std::uint64_t offered = gen.packetsOffered() - offered0;
    if (delivered < offered * 7 / 10 || avg > 300.0)
        return -1.0;
    return avg;
}

struct Point {
    std::string bm;
    TrafficPattern pattern;
    Scheme scheme;
    double rate;
};

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv, "Figure 12: throughput curves")
            .build();
    const ExperimentConfig &cfg = spec.config();
    print_banner("Figure 12 (load-latency, UR & TR, 25:75 data:control)",
                 spec);

    std::vector<std::string> bms = {"blackscholes", "streamcluster"};
    if (spec.benchmarks().size() < workload_names().size())
        bms = spec.benchmarks(); // user narrowed the set

    // Finer steps near saturation so scheme crossover points resolve.
    const std::vector<double> rates = {0.05, 0.15, 0.25, 0.35, 0.40,
                                       0.45, 0.50, 0.55, 0.60, 0.65,
                                       0.70};
    const TrafficPattern patterns[] = {TrafficPattern::UniformRandom,
                                       TrafficPattern::Transpose};

    // Flat job list (rate-innermost, matching the output row order);
    // saturation is applied per series after the parallel run, so a
    // series' points past its first saturated rate print "sat" exactly
    // as the sequential short-circuit did.
    std::vector<Point> points;
    for (const auto &bm : bms)
        for (TrafficPattern pat : patterns)
            for (Scheme s : spec.schemes())
                for (double rate : rates)
                    points.push_back({bm, pat, s, rate});

    TraceLibrary traces(cfg.scale);
    ExperimentRunner runner(cfg.jobs, make_progress(cfg));
    std::vector<Outcome<double>> out =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &p = points[i];
            return measure_point(p.scheme, p.pattern, p.rate,
                                 traces.get(p.bm).blocks(), cfg,
                                 spec.thresholds().front(),
                                 spec.approxRatios().front());
        });

    Table t({"benchmark", "pattern", "scheme", "rate", "latency"});
    std::size_t idx = 0;
    for ([[maybe_unused]] const auto &bm : bms) {
        for ([[maybe_unused]] TrafficPattern pat : patterns) {
            for ([[maybe_unused]] Scheme s : spec.schemes()) {
                bool saturated = false;
                for ([[maybe_unused]] double rate : rates) {
                    const Point &p = points[idx];
                    const Outcome<double> &o = out[idx];
                    ++idx;
                    std::string lat = "sat";
                    if (!o.ok)
                        lat = "FAILED";
                    else if (!saturated && o.value >= 0)
                        lat = fmt(o.value, 2);
                    else
                        saturated = true;
                    t.row()
                        .cell(p.bm)
                        .cell(to_string(p.pattern))
                        .cell(to_string(p.scheme))
                        .cell(p.rate, 2)
                        .cell(lat);
                }
            }
        }
    }
    emit(t, spec, "fig12_throughput");
    return 0;
}
