/**
 * @file
 * Figure 14: approximable-packet-ratio sensitivity. Average packet
 * latency for the DI-based and FP-based VAXX schemes as the fraction
 * of approximable data packets grows from 25% to 75%, against plain
 * compression.
 */
#include <cstdio>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Figure 14: approximable packet ratio sensitivity");
    print_banner("Figure 14 (approximable-ratio sensitivity)", opt);

    const std::vector<double> ratios = {0.25, 0.50, 0.75};
    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "family", "compression", "25%_approx",
             "50%_approx", "75%_approx"});

    struct Family {
        const char *name;
        Scheme compression;
        Scheme vaxx;
    };
    const Family families[] = {
        {"DI-based", Scheme::DiComp, Scheme::DiVaxx},
        {"FP-based", Scheme::FpComp, Scheme::FpVaxx},
    };

    for (const auto &bm : opt.benchmarks) {
        const CommTrace &trace = traces.get(bm);
        for (const Family &f : families) {
            ReplayResult base = replay_trace(trace, f.compression, opt);
            std::vector<double> lat;
            for (double ratio : ratios) {
                BenchOptions o = opt;
                o.approx_ratio = ratio;
                lat.push_back(replay_trace(trace, f.vaxx, o).total_lat);
            }
            t.row()
                .cell(bm)
                .cell(std::string(f.name))
                .cell(base.total_lat, 2)
                .cell(lat[0], 2)
                .cell(lat[1], 2)
                .cell(lat[2], 2);
        }
    }
    emit(t, opt, "fig14_approx_ratio");
    return 0;
}
