/**
 * @file
 * Figure 14: approximable-packet-ratio sensitivity. Average packet
 * latency for the DI-based and FP-based VAXX schemes as the fraction
 * of approximable data packets grows from 25% to 75%, against plain
 * compression.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "telemetry/error_profile.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

bool
is_vaxx(Scheme s)
{
    return s == Scheme::DiVaxx || s == Scheme::FpVaxx;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<double> ratios = {0.25, 0.50, 0.75};

    // One grid: plain compression at the CLI ratio, the VAXX variants
    // at each paper ratio. A -1 sentinel marks the compression runs so
    // they never collide with a swept value.
    ExperimentSpec::Builder builder;
    builder.fromCli(argc, argv,
                    "Figure 14: approximable packet ratio sensitivity");
    double base_ratio = builder.build().approxRatios().front();
    builder
        .schemes({Scheme::DiComp, Scheme::DiVaxx, Scheme::FpComp,
                  Scheme::FpVaxx})
        .approxRatios({-1.0, 0.25, 0.50, 0.75})
        .filter([](const ExperimentPoint &p) {
            return is_vaxx(p.scheme) ? p.approx_ratio >= 0.0
                                     : p.approx_ratio < 0.0;
        });
    Experiment ex(builder.build());
    print_banner("Figure 14 (approximable-ratio sensitivity)", ex.spec());
    ex.run([&](const ExperimentPoint &pt) {
        ExperimentPoint run = pt;
        if (run.approx_ratio < 0.0)
            run.approx_ratio = base_ratio;
        return run_replay_point(ex.traces().get(run.benchmark), run,
                                ex.spec().config());
    });

    Table t({"benchmark", "family", "compression", "25%_approx",
             "50%_approx", "75%_approx"});

    struct Family {
        const char *name;
        Scheme compression;
        Scheme vaxx;
    };
    const Family families[] = {
        {"DI-based", Scheme::DiComp, Scheme::DiVaxx},
        {"FP-based", Scheme::FpComp, Scheme::FpVaxx},
    };

    auto lat_cell = [&](Table::RowBuilder &row, const PointResult &pr) {
        if (pr.ok)
            row.cell(pr.replay.total_lat, 2);
        else
            row.cell(std::string("FAILED"));
    };

    for (const auto &bm : ex.spec().benchmarks()) {
        for (const Family &f : families) {
            auto row = t.row();
            row.cell(bm).cell(std::string(f.name));
            lat_cell(row, ex.result({.benchmark = bm,
                                     .scheme = f.compression,
                                     .approx_ratio = -1.0}));
            for (double ratio : ratios)
                lat_cell(row, ex.result({.benchmark = bm,
                                         .scheme = f.vaxx,
                                         .approx_ratio = ratio}));
        }
    }
    emit(t, ex.spec(), "fig14_approx_ratio");

    // QoR companion table: the mean and worst-case relative error each
    // scheme introduced at each approximable ratio (the -1 sentinel
    // rows are the plain-compression baseline at the CLI ratio).
    Table q({"benchmark", "scheme", "approx_ratio", "mean_rel_err",
             "mean_abs_rel_err", "max_abs_rel_err"});
    for (const auto &pt : ex.spec().points()) {
        const PointResult &pr = ex.resultAt(pt.index);
        auto row = q.row();
        row.cell(pt.benchmark)
            .cell(std::string(to_string(pt.scheme)))
            .cell(pt.approx_ratio, 2);
        if (pr.ok && pr.replay.qor) {
            row.cell(pr.replay.qor->mean(), 6)
                .cell(pr.replay.qor->meanAbs(), 6)
                .cell(pr.replay.qor->maxAbs(), 6);
        } else {
            row.cell(std::string("FAILED"))
                .cell(std::string("FAILED"))
                .cell(std::string("FAILED"));
        }
    }
    emit(q, ex.spec(), "fig14_approx_ratio_qor");
    return 0;
}
