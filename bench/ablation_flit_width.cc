/**
 * @file
 * Flit-width ablation. The paper (Sec. 5.2.1) observes that flit
 * reduction does not scale proportionally with compression ratio
 * because of internal fragmentation — a mostly-empty tail flit. This
 * bench quantifies that: the same benchmark trace replayed at 32-, 64-
 * (Table 1) and 128-bit flits, per scheme, reporting the compression
 * ratio (width-independent) against the achieved data-flit reduction.
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "common/log.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

struct Point {
    double compr_ratio;
    double flit_reduction;
    double total_lat;
};

Point
run_width(const CommTrace &trace, Scheme scheme, unsigned flit_bits,
          std::uint64_t base_flits, const BenchOptions &opt)
{
    NocConfig ncfg;
    ncfg.flit_bits = flit_bits;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = opt.error_threshold_pct;
    auto codec = make_codec(scheme, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    CommTrace capped;
    for (const auto &b : trace.blocks())
        capped.addBlock(b);
    for (std::size_t i = 0; i < std::min(trace.size(), opt.max_records); ++i)
        capped.add(trace.records()[i]);

    double natural = TraceLibrary::naturalLoad(capped, ncfg.nodes());
    TraceReplay replay(net, capped, natural / opt.target_load,
                       opt.approx_ratio);
    sim.add(&replay);
    bool ok = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));
    ANOC_ASSERT(ok, "replay did not finish");

    Point p;
    p.compr_ratio = net.stats().quality.compressionRatio();
    p.flit_reduction =
        base_flits ? 1.0 - static_cast<double>(net.dataFlitsInjected()) /
                               static_cast<double>(base_flits)
                   : 0.0;
    p.total_lat = net.stats().total_lat.mean();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Ablation: flit width vs internal fragmentation");
    print_banner("Ablation (flit width / internal fragmentation)", opt);

    std::vector<std::string> bms = {"blackscholes", "ssca2"};
    if (opt.benchmarks.size() < workload_names().size())
        bms = opt.benchmarks;

    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "scheme", "flit_bits", "compr_ratio",
             "flit_reduction", "latency"});

    for (const auto &bm : bms) {
        const CommTrace &trace = traces.get(bm);
        for (unsigned width : {32u, 64u, 128u}) {
            // Baseline flit count at this width, analytically: every
            // data packet is 1 head + ceil(512 / width) payload flits.
            std::uint64_t data_pkts = 0;
            for (std::size_t i = 0;
                 i < std::min(trace.size(), opt.max_records); ++i)
                data_pkts +=
                    trace.records()[i].cls == PacketClass::Data ? 1 : 0;
            std::uint64_t base =
                data_pkts * (1 + (512 + width - 1) / width);

            for (Scheme s :
                 {Scheme::DiVaxx, Scheme::FpComp, Scheme::FpVaxx}) {
                Point p = run_width(trace, s, width, base, opt);
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(static_cast<long>(width))
                    .cell(p.compr_ratio, 3)
                    .cell(p.flit_reduction, 3)
                    .cell(p.total_lat, 2);
            }
        }
    }
    emit(t, opt, "ablation_flit_width");
    return 0;
}
