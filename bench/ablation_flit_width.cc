/**
 * @file
 * Flit-width ablation. The paper (Sec. 5.2.1) observes that flit
 * reduction does not scale proportionally with compression ratio
 * because of internal fragmentation — a mostly-empty tail flit. This
 * bench quantifies that: the same benchmark trace replayed at 32-, 64-
 * (Table 1) and 128-bit flits, per scheme, reporting the compression
 * ratio (width-independent) against the achieved data-flit reduction.
 */
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv,
                     "Ablation: flit width vs internal fragmentation")
            .build();
    const ExperimentConfig &cfg = spec.config();
    print_banner("Ablation (flit width / internal fragmentation)", spec);

    std::vector<std::string> bms = {"blackscholes", "ssca2"};
    if (spec.benchmarks().size() < workload_names().size())
        bms = spec.benchmarks();

    const unsigned widths[] = {32u, 64u, 128u};
    const Scheme schemes[] = {Scheme::DiVaxx, Scheme::FpComp,
                              Scheme::FpVaxx};

    struct Point {
        std::string bm;
        unsigned width;
        Scheme scheme;
    };
    std::vector<Point> points;
    for (const auto &bm : bms)
        for (unsigned width : widths)
            for (Scheme s : schemes)
                points.push_back({bm, width, s});

    TraceLibrary traces(cfg.scale);
    ExperimentRunner runner(cfg.jobs, make_progress(cfg));
    traces.prefetch(bms, runner);
    std::vector<Outcome<ReplayResult>> out =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &p = points[i];
            ReplayJob job;
            job.scheme = p.scheme;
            job.threshold = spec.thresholds().front();
            job.approx_ratio = spec.approxRatios().front();
            job.load = spec.loads().front();
            job.max_records = cfg.max_records;
            job.seed = derive_seed(cfg.base_seed, i);
            job.flit_bits = p.width;
            return run_replay(traces.get(p.bm), job);
        });

    Table t({"benchmark", "scheme", "flit_bits", "compr_ratio",
             "flit_reduction", "latency"});
    std::size_t idx = 0;
    for (const auto &bm : bms) {
        const CommTrace &trace = traces.get(bm);
        std::uint64_t data_pkts = 0;
        for (std::size_t i = 0;
             i < std::min(trace.size(), cfg.max_records); ++i)
            data_pkts += trace.records()[i].cls == PacketClass::Data ? 1 : 0;
        for (unsigned width : widths) {
            // Baseline flit count at this width, analytically: every
            // data packet is 1 head + ceil(512 / width) payload flits.
            std::uint64_t base =
                data_pkts * (1 + (512 + width - 1) / width);
            for ([[maybe_unused]] Scheme s : schemes) {
                const Point &p = points[idx];
                const Outcome<ReplayResult> &o = out[idx];
                ++idx;
                if (!o.ok) {
                    t.row()
                        .cell(p.bm)
                        .cell(to_string(p.scheme))
                        .cell(static_cast<long>(p.width))
                        .cell(std::string("FAILED"))
                        .cell(std::string("-"))
                        .cell(std::string("-"));
                    continue;
                }
                const ReplayResult &r = o.value;
                double reduction =
                    base ? 1.0 - static_cast<double>(r.data_flits) /
                                     static_cast<double>(base)
                         : 0.0;
                t.row()
                    .cell(p.bm)
                    .cell(to_string(p.scheme))
                    .cell(static_cast<long>(p.width))
                    .cell(r.compression_ratio, 3)
                    .cell(reduction, 3)
                    .cell(r.total_lat, 2);
            }
        }
    }
    emit(t, spec, "ablation_flit_width");
    return 0;
}
