/**
 * @file
 * Figure 16: application output error and normalized performance as
 * the data error budget grows (0 / 10 / 20 %), from full workload runs
 * through the coherent cache model with the codec on the response
 * path (the paper's Pin + gem5 methodology).
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

WorkloadResult
run_workload(const std::string &bm, Scheme scheme, double threshold,
             const BenchOptions &opt)
{
    CacheConfig ccfg; // Sec. 5.4: 16 cores, 64 KB 2-way L1
    ccfg.approx_ratio = opt.approx_ratio;
    CodecConfig cc;
    cc.n_nodes = ccfg.n_nodes;
    cc.error_threshold_pct = threshold;
    auto codec = make_codec(scheme, cc);
    ApproxCacheSystem mem(ccfg, codec.get());
    auto wl = make_workload(bm, opt.scale);
    return wl->run(mem);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv,
        "Figure 16: application output accuracy + normalized performance");
    print_banner("Figure 16 (application output error, performance)", opt);
    // DI-VAXX by default: approximating to learned reference values
    // surfaces the error-budget sensitivity the paper's Fig. 16 plots
    // (FP-VAXX's static patterns rarely alter integer data at all).
    Scheme scheme = Scheme::DiVaxx;
    if (opt.schemes.size() < 5) { // user narrowed the scheme set
        for (Scheme s : opt.schemes)
            if (s == Scheme::DiVaxx || s == Scheme::FpVaxx)
                scheme = s;
    }
    std::printf("scheme for approximate runs: %s "
                "(select with --schemes=FP-VAXX / DI-VAXX)\n\n",
                to_string(scheme).c_str());

    const std::vector<double> budgets = {0.0, 10.0, 20.0};
    Table t({"benchmark", "error_budget_pct", "output_error_pct",
             "accuracy_pct", "normalized_performance"});

    for (const auto &bm : opt.benchmarks) {
        auto wl = make_workload(bm, opt.scale);
        WorkloadResult precise = run_workload(bm, Scheme::Baseline, 0.0, opt);
        // 0% budget reference for performance normalization: the same
        // scheme with approximation disabled (pure compression).
        WorkloadResult ref = run_workload(bm, scheme, 0.0, opt);
        for (double budget : budgets) {
            WorkloadResult r = budget == 0.0
                                   ? ref
                                   : run_workload(bm, scheme, budget, opt);
            double err = wl->outputError(precise, r);
            double perf = r.exec_cycles
                              ? static_cast<double>(ref.exec_cycles) /
                                    static_cast<double>(r.exec_cycles)
                              : 1.0;
            t.row()
                .cell(bm)
                .cell(budget, 0)
                .cell(err * 100.0, 2)
                .cell((1.0 - err) * 100.0, 2)
                .cell(perf, 3);
        }
    }
    emit(t, opt, "fig16_app_output");
    return 0;
}
