/**
 * @file
 * Figure 16: application output error and normalized performance as
 * the data error budget grows (0 / 10 / 20 %), from full workload runs
 * through the coherent cache model with the codec on the response
 * path (the paper's Pin + gem5 methodology).
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

WorkloadResult
run_workload_point(const std::string &bm, Scheme scheme, double threshold,
                   const ExperimentSpec &spec)
{
    CacheConfig ccfg; // Sec. 5.4: 16 cores, 64 KB 2-way L1
    ccfg.approx_ratio = spec.approxRatios().front();
    CodecConfig cc;
    cc.n_nodes = ccfg.n_nodes;
    cc.error_threshold_pct = threshold;
    auto codec = CodecFactory::create(scheme, cc);
    ApproxCacheSystem mem(ccfg, codec.get());
    auto wl = make_workload(bm, spec.config().scale);
    return wl->run(mem);
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv,
                     "Figure 16: application output accuracy + "
                     "normalized performance")
            .build();
    print_banner("Figure 16 (application output error, performance)", spec);
    // DI-VAXX by default: approximating to learned reference values
    // surfaces the error-budget sensitivity the paper's Fig. 16 plots
    // (FP-VAXX's static patterns rarely alter integer data at all).
    Scheme scheme = Scheme::DiVaxx;
    if (spec.schemes().size() < 5) { // user narrowed the scheme set
        for (Scheme s : spec.schemes())
            if (s == Scheme::DiVaxx || s == Scheme::FpVaxx)
                scheme = s;
    }
    std::printf("scheme for approximate runs: %s "
                "(select with --schemes=FP-VAXX / DI-VAXX)\n\n",
                to_string(scheme).c_str());

    const std::vector<double> budgets = {0.0, 10.0, 20.0};

    // Per benchmark: one precise run, then one run per budget (the 0%
    // budget run doubles as the performance-normalization reference).
    struct Run {
        std::string bm;
        Scheme scheme;
        double threshold;
    };
    std::vector<Run> runs;
    for (const auto &bm : spec.benchmarks()) {
        runs.push_back({bm, Scheme::Baseline, 0.0});
        for (double budget : budgets)
            runs.push_back({bm, scheme, budget});
    }

    ExperimentRunner runner(spec.config().jobs, make_progress(spec.config()));
    std::vector<Outcome<WorkloadResult>> out =
        runner.map(runs.size(), [&](std::size_t i) {
            const Run &r = runs[i];
            return run_workload_point(r.bm, r.scheme, r.threshold, spec);
        });

    Table t({"benchmark", "error_budget_pct", "output_error_pct",
             "accuracy_pct", "normalized_performance"});

    const std::size_t per_bm = 1 + budgets.size();
    for (std::size_t b = 0; b < spec.benchmarks().size(); ++b) {
        const std::string &bm = spec.benchmarks()[b];
        auto wl = make_workload(bm, spec.config().scale);
        const Outcome<WorkloadResult> &precise = out[b * per_bm];
        const Outcome<WorkloadResult> &ref = out[b * per_bm + 1];
        for (std::size_t k = 0; k < budgets.size(); ++k) {
            const Outcome<WorkloadResult> &r = out[b * per_bm + 1 + k];
            if (!precise.ok || !ref.ok || !r.ok) {
                t.row()
                    .cell(bm)
                    .cell(budgets[k], 0)
                    .cell(std::string("FAILED"))
                    .cell(std::string("-"))
                    .cell(std::string("-"));
                continue;
            }
            double err = wl->outputError(precise.value, r.value);
            double perf =
                r.value.exec_cycles
                    ? static_cast<double>(ref.value.exec_cycles) /
                          static_cast<double>(r.value.exec_cycles)
                    : 1.0;
            t.row()
                .cell(bm)
                .cell(budgets[k], 0)
                .cell(err * 100.0, 2)
                .cell((1.0 - err) * 100.0, 2)
                .cell(perf, 3);
        }
    }
    emit(t, spec, "fig16_app_output");
    return 0;
}
