/**
 * @file
 * PMT-size ablation: the paper fixes 8-entry PMTs (Table 1). This
 * sweep varies the dictionary size for DI-COMP/DI-VAXX and reports the
 * compression ratio, packet latency and per-NI encoder area, exposing
 * the capacity/area trade behind that choice.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "common/log.h"

#include <algorithm>
#include "power/area_model.h"

using namespace approxnoc;
using namespace approxnoc::bench;

namespace {

ReplayResult
run_with_pmt(const CommTrace &trace, Scheme scheme, std::size_t entries,
             const BenchOptions &opt)
{
    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = opt.error_threshold_pct;
    cc.dict.pmt_entries = entries;
    auto codec = make_codec(scheme, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    CommTrace capped;
    for (const auto &b : trace.blocks())
        capped.addBlock(b);
    for (std::size_t i = 0; i < std::min(trace.size(), opt.max_records);
         ++i)
        capped.add(trace.records()[i]);
    double natural = TraceLibrary::naturalLoad(capped, ncfg.nodes());
    TraceReplay replay(net, capped,
                       natural > 0 ? natural / opt.target_load : 1.0,
                       opt.approx_ratio);
    sim.add(&replay);
    bool ok = sim.runUntil(
        [&] { return replay.done() && net.drained(); },
        static_cast<Cycle>(2e8));
    ANOC_ASSERT(ok, "replay did not finish");

    ReplayResult r;
    r.total_lat = net.stats().total_lat.mean();
    r.compression_ratio = net.stats().quality.compressionRatio();
    r.exact_fraction = net.stats().quality.exactEncodedFraction();
    r.approx_fraction = net.stats().quality.approxEncodedFraction();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt =
        BenchOptions::parse(argc, argv, "Ablation: dictionary PMT size");
    print_banner("Ablation (dictionary PMT size sweep)", opt);

    std::vector<std::string> bms = {"blackscholes", "streamcluster"};
    if (opt.benchmarks.size() < workload_names().size())
        bms = opt.benchmarks;

    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "scheme", "pmt_entries", "encoded_frac",
             "compr_ratio", "latency", "encoder_mm2"});

    for (const auto &bm : bms) {
        const CommTrace &trace = traces.get(bm);
        for (Scheme s : {Scheme::DiComp, Scheme::DiVaxx}) {
            for (std::size_t entries : {4u, 8u, 16u, 32u}) {
                ReplayResult r = run_with_pmt(trace, s, entries, opt);
                DictionaryConfig dict;
                dict.pmt_entries = entries;
                dict.n_nodes = 32;
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(static_cast<long>(entries))
                    .cell(r.exact_fraction + r.approx_fraction, 3)
                    .cell(r.compression_ratio, 3)
                    .cell(r.total_lat, 2)
                    .cell(encoder_area_mm2(s, dict, 32), 5);
            }
        }
    }
    emit(t, opt, "ablation_pmt_size");
    return 0;
}
