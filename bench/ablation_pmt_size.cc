/**
 * @file
 * PMT-size ablation: the paper fixes 8-entry PMTs (Table 1). This
 * sweep varies the dictionary size for DI-COMP/DI-VAXX and reports the
 * compression ratio, packet latency and per-NI encoder area, exposing
 * the capacity/area trade behind that choice.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "power/area_model.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .fromCli(argc, argv, "Ablation: dictionary PMT size")
            .build();
    const ExperimentConfig &cfg = spec.config();
    print_banner("Ablation (dictionary PMT size sweep)", spec);

    std::vector<std::string> bms = {"blackscholes", "streamcluster"};
    if (spec.benchmarks().size() < workload_names().size())
        bms = spec.benchmarks();

    const Scheme schemes[] = {Scheme::DiComp, Scheme::DiVaxx};
    const std::size_t sizes[] = {4u, 8u, 16u, 32u};

    struct Point {
        std::string bm;
        Scheme scheme;
        std::size_t entries;
    };
    std::vector<Point> points;
    for (const auto &bm : bms)
        for (Scheme s : schemes)
            for (std::size_t entries : sizes)
                points.push_back({bm, s, entries});

    TraceLibrary traces(cfg.scale);
    ExperimentRunner runner(cfg.jobs, make_progress(cfg));
    traces.prefetch(bms, runner);
    std::vector<Outcome<ReplayResult>> out =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &p = points[i];
            ReplayJob job;
            job.scheme = p.scheme;
            job.threshold = spec.thresholds().front();
            job.approx_ratio = spec.approxRatios().front();
            job.load = spec.loads().front();
            job.max_records = cfg.max_records;
            job.seed = derive_seed(cfg.base_seed, i);
            job.pmt_entries = p.entries;
            return run_replay(traces.get(p.bm), job);
        });

    Table t({"benchmark", "scheme", "pmt_entries", "encoded_frac",
             "compr_ratio", "latency", "encoder_mm2"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        DictionaryConfig dict;
        dict.pmt_entries = p.entries;
        dict.n_nodes = 32;
        auto row = t.row();
        row.cell(p.bm)
            .cell(to_string(p.scheme))
            .cell(static_cast<long>(p.entries));
        if (out[i].ok) {
            const ReplayResult &r = out[i].value;
            row.cell(r.exact_fraction + r.approx_fraction, 3)
                .cell(r.compression_ratio, 3)
                .cell(r.total_lat, 2);
        } else {
            row.cell(std::string("FAILED"))
                .cell(std::string("-"))
                .cell(std::string("-"));
        }
        row.cell(encoder_area_mm2(p.scheme, dict, 32), 5);
    }
    emit(t, spec, "ablation_pmt_size");
    return 0;
}
