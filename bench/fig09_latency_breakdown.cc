/**
 * @file
 * Figure 9: average packet latency broken into queueing, network and
 * decode components, plus the overall data approximation quality, for
 * Baseline / DI-COMP / DI-VAXX / FP-COMP / FP-VAXX across the eight
 * benchmark traces (plus the average row).
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    Experiment ex(ExperimentSpec::Builder()
                      .fromCli(argc, argv,
                               "Figure 9: latency breakdown + data quality")
                      .build());
    print_banner("Figure 9 (latency breakdown, data quality)", ex.spec());
    ex.run();

    Table t({"benchmark", "scheme", "queue_lat", "net_lat", "decode_lat",
             "total_lat", "data_quality"});

    std::map<Scheme, std::vector<double>> avg_lat;
    std::map<Scheme, std::vector<double>> avg_q;
    for (const auto &bm : ex.spec().benchmarks()) {
        for (Scheme s : ex.spec().schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(std::string("FAILED"))
                    .cell(std::string("-"))
                    .cell(std::string("-"))
                    .cell(std::string("-"))
                    .cell(std::string("-"));
                continue;
            }
            const ReplayResult &r = pr.replay;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(r.queue_lat, 2)
                .cell(r.net_lat, 2)
                .cell(r.decode_lat, 2)
                .cell(r.total_lat, 2)
                .cell(r.quality, 4);
            avg_lat[s].push_back(r.total_lat);
            avg_q[s].push_back(r.quality);
        }
    }
    for (Scheme s : ex.spec().schemes()) {
        if (avg_lat[s].empty())
            continue;
        double lat = 0, q = 0;
        for (double v : avg_lat[s])
            lat += v;
        for (double v : avg_q[s])
            q += v;
        std::size_t n = avg_lat[s].size();
        t.row()
            .cell(std::string("AVG"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(std::string("-"))
            .cell(std::string("-"))
            .cell(lat / n, 2)
            .cell(q / n, 4);
    }
    emit(t, ex.spec(), "fig09_latency_breakdown");
    return 0;
}
