/**
 * @file
 * Figure 11: number of data flits injected under each scheme,
 * normalized to Baseline, per benchmark trace.
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(
        argc, argv, "Figure 11: normalized data flits injected");
    print_banner("Figure 11 (data flit reduction)", opt);

    TraceLibrary traces(opt.scale);
    Table t({"benchmark", "scheme", "data_flits", "normalized"});

    std::map<Scheme, double> sums;
    std::size_t rows = 0;
    for (const auto &bm : opt.benchmarks) {
        const CommTrace &trace = traces.get(bm);
        std::uint64_t base_flits = 0;
        for (Scheme s : opt.schemes) {
            ReplayResult r = replay_trace(trace, s, opt);
            if (s == Scheme::Baseline)
                base_flits = r.data_flits;
            double norm = base_flits
                              ? static_cast<double>(r.data_flits) /
                                    static_cast<double>(base_flits)
                              : 1.0;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(static_cast<long>(r.data_flits))
                .cell(norm, 3);
            sums[s] += norm;
        }
        ++rows;
    }
    for (Scheme s : opt.schemes) {
        t.row()
            .cell(std::string("AVG"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(sums[s] / static_cast<double>(rows), 3);
    }
    emit(t, opt, "fig11_flit_reduction");
    return 0;
}
