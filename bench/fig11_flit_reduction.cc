/**
 * @file
 * Figure 11: number of data flits injected under each scheme,
 * normalized to Baseline, per benchmark trace.
 */
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace approxnoc;
using namespace approxnoc::bench;

int
main(int argc, char **argv)
{
    Experiment ex(ExperimentSpec::Builder()
                      .fromCli(argc, argv,
                               "Figure 11: normalized data flits injected")
                      .build());
    print_banner("Figure 11 (data flit reduction)", ex.spec());
    ex.run();

    Table t({"benchmark", "scheme", "data_flits", "normalized"});

    std::map<Scheme, double> sums;
    std::map<Scheme, std::size_t> counts;
    for (const auto &bm : ex.spec().benchmarks()) {
        std::uint64_t base_flits = 0;
        for (Scheme s : ex.spec().schemes()) {
            const PointResult &pr = ex.result({.benchmark = bm, .scheme = s});
            if (!pr.ok) {
                t.row()
                    .cell(bm)
                    .cell(to_string(s))
                    .cell(std::string("FAILED"))
                    .cell(std::string("-"));
                continue;
            }
            const ReplayResult &r = pr.replay;
            if (s == Scheme::Baseline)
                base_flits = r.data_flits;
            double norm = base_flits
                              ? static_cast<double>(r.data_flits) /
                                    static_cast<double>(base_flits)
                              : 1.0;
            t.row()
                .cell(bm)
                .cell(to_string(s))
                .cell(static_cast<long>(r.data_flits))
                .cell(norm, 3);
            sums[s] += norm;
            ++counts[s];
        }
    }
    for (Scheme s : ex.spec().schemes()) {
        if (!counts[s])
            continue;
        t.row()
            .cell(std::string("AVG"))
            .cell(to_string(s))
            .cell(std::string("-"))
            .cell(sums[s] / static_cast<double>(counts[s]), 3);
    }
    emit(t, ex.spec(), "fig11_flit_reduction");
    return 0;
}
