/**
 * @file
 * ExperimentRunner / Experiment subsystem tests: the determinism
 * contract (bit-identical tables at --jobs=1 and --jobs=4), failure
 * isolation (a throwing point becomes a failed cell, not an aborted
 * sweep), seed derivation, grid construction and stats merging.
 */
#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace approxnoc;
using namespace approxnoc::harness;

namespace {

ExperimentSpec
small_spec(unsigned jobs)
{
    // 2 benchmarks x 3 schemes, tiny replay so the test stays fast.
    return ExperimentSpec::Builder()
        .benchmarks({"blackscholes", "swaptions"})
        .schemes({Scheme::Baseline, Scheme::DiComp, Scheme::FpVaxx})
        .maxRecords(300)
        .jobs(jobs)
        .build();
}

std::string
render(const Experiment &ex)
{
    std::ostringstream os;
    ex.results().toTable(ex.spec()).print(os);
    return os.str();
}

} // namespace

TEST(Runner, ResolveJobs)
{
    EXPECT_GE(resolve_jobs(0), 1u);
    EXPECT_EQ(resolve_jobs(1), 1u);
    EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(Runner, DeriveSeedIsDeterministicAndDecorrelated)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 100; ++i) {
        std::uint64_t s = derive_seed(42, i);
        EXPECT_EQ(s, derive_seed(42, i));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(Runner, ResultsIndexedByJobNotCompletionOrder)
{
    ExperimentRunner runner(4);
    auto out = runner.map(64, [](std::size_t i) {
        return static_cast<int>(i * 3);
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(out[i].ok);
        EXPECT_EQ(out[i].value, static_cast<int>(i * 3));
    }
}

TEST(Runner, ThrowingJobIsCapturedOthersStillRun)
{
    ExperimentRunner runner(4);
    std::atomic<int> ran{0};
    auto statuses = runner.run(16, [&](std::size_t i) {
        ++ran;
        if (i == 5)
            throw std::runtime_error("boom 5");
    });
    EXPECT_EQ(ran.load(), 16);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (i == 5) {
            EXPECT_FALSE(statuses[i].ok);
            EXPECT_NE(statuses[i].error.find("boom 5"), std::string::npos);
        } else {
            EXPECT_TRUE(statuses[i].ok) << i;
        }
    }
}

TEST(Spec, GridEnumerationAndSeeds)
{
    ExperimentSpec spec = small_spec(1);
    ASSERT_EQ(spec.size(), 6u);
    // Benchmark-major order.
    EXPECT_EQ(spec.points()[0].benchmark, "blackscholes");
    EXPECT_EQ(spec.points()[3].benchmark, "swaptions");
    EXPECT_EQ(spec.points()[0].scheme, Scheme::Baseline);
    EXPECT_EQ(spec.points()[2].scheme, Scheme::FpVaxx);
    for (const auto &p : spec.points())
        EXPECT_EQ(p.seed,
                  derive_seed(spec.config().base_seed, p.index));
}

TEST(Spec, FilterAndSelect)
{
    ExperimentSpec spec =
        ExperimentSpec::Builder()
            .benchmarks({"blackscholes"})
            .schemes({Scheme::DiComp, Scheme::DiVaxx})
            .thresholds({0.0, 5.0, 10.0})
            .filter([](const ExperimentPoint &p) {
                return p.scheme == Scheme::DiVaxx ? p.threshold > 0.0
                                                  : p.threshold == 0.0;
            })
            .build();
    EXPECT_EQ(spec.size(), 3u); // DiComp@0 + DiVaxx@{5,10}
    EXPECT_EQ(spec.select({.scheme = Scheme::DiVaxx}).size(), 2u);
    std::size_t i = spec.indexOf({.scheme = Scheme::DiComp});
    EXPECT_EQ(spec.points()[i].threshold, 0.0);
}

TEST(Experiment, ParallelRunIsBitIdenticalToSerial)
{
    Experiment serial(small_spec(1));
    serial.run();
    Experiment parallel(small_spec(4));
    parallel.run();

    EXPECT_EQ(render(serial), render(parallel));
    for (std::size_t i = 0; i < serial.spec().size(); ++i) {
        const PointResult &a = serial.resultAt(i);
        const PointResult &b = parallel.resultAt(i);
        ASSERT_TRUE(a.ok);
        ASSERT_TRUE(b.ok);
        EXPECT_EQ(a.replay.total_lat, b.replay.total_lat) << i;
        EXPECT_EQ(a.replay.data_flits, b.replay.data_flits) << i;
        EXPECT_EQ(a.replay.compression_ratio, b.replay.compression_ratio)
            << i;
        EXPECT_EQ(a.replay.dynamic_power_mw, b.replay.dynamic_power_mw)
            << i;
    }
}

TEST(Experiment, ThrowingPointBecomesFailedCell)
{
    Experiment ex(small_spec(4));
    const ResultSink &sink =
        ex.run([](const ExperimentPoint &pt) -> ReplayResult {
            if (pt.scheme == Scheme::DiComp)
                throw std::runtime_error("injected failure");
            return ReplayResult{};
        });
    EXPECT_EQ(sink.failures(), 2u); // one DiComp point per benchmark
    for (const auto &p : ex.spec().points()) {
        const PointResult &pr = ex.resultAt(p.index);
        EXPECT_TRUE(pr.done);
        if (p.scheme == Scheme::DiComp) {
            EXPECT_FALSE(pr.ok);
            EXPECT_NE(pr.error.find("injected failure"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(pr.ok);
        }
    }
    // The failed cells surface in the grid table instead of aborting.
    Table t = sink.toTable(ex.spec());
    std::size_t failed_rows = 0;
    for (const auto &row : t.data())
        for (const auto &cell : row)
            failed_rows += cell.find("FAILED") != std::string::npos;
    EXPECT_EQ(failed_rows, 2u);
}

TEST(Stats, RunningStatMergeMatchesSequential)
{
    RunningStat all, left, right;
    for (int i = 0; i < 100; ++i) {
        double v = 0.37 * i - 11.0;
        all.add(v);
        (i < 42 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());

    RunningStat empty;
    empty.merge(all);
    EXPECT_NEAR(empty.mean(), all.mean(), 1e-12);
    all.merge(RunningStat{});
    EXPECT_EQ(all.count(), 100u);
}

TEST(Table, JsonEmission)
{
    Table t({"a", "b"});
    t.row().cell(std::string("x\"y")).cell(1.5, 2);
    EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    std::string path = ::testing::TempDir() + "harness_table.json";
    t.writeJson(path, "demo");
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    std::string json = ss.str();
    EXPECT_NE(json.find("\"name\": \"demo\""), std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"a\", \"b\"]"), std::string::npos);
    EXPECT_NE(json.find("x\\\"y"), std::string::npos);
    EXPECT_NE(json.find("1.50"), std::string::npos);
}
