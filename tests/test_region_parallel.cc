/**
 * @file
 * Region-parallel stepping tests: the byte-determinism contract
 * (metrics, QoR and trace artifacts identical at any --sim-jobs, on
 * mesh and torus, open- and closed-loop), the degenerate partition
 * cases (more regions than rows, serial fallback), and the harness
 * plumbing (ReplayJob.sim_jobs end to end). The RegionParallel suite
 * also runs under TSan in CI, where the parallel sweeps' memory
 * accesses — not just their results — are validated.
 */
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/codec_factory.h"
#include "harness/point_runner.h"
#include "harness/trace_library.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "telemetry/error_profile.h"
#include "telemetry/telemetry.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Every observable output of one run, rendered to strings in memory. */
struct Artifacts {
    std::string metrics;
    std::string qor;
    std::string trace;
    std::uint64_t delivered = 0;
    double total_lat = 0.0;
    unsigned regions = 0;
};

/**
 * One fully isolated simulation: @p sim_jobs region-parallel threads,
 * synthetic uniform traffic (or the closed-loop generator), drained at
 * the end so the artifacts cover complete packet lifecycles.
 */
Artifacts
run_case(Topology topo, unsigned rows, unsigned cols, Scheme scheme,
         unsigned sim_jobs, bool closed_loop = false)
{
    NocConfig ncfg;
    ncfg.rows = rows;
    ncfg.cols = cols;
    ncfg.concentration = 2;
    ncfg.topology = topo;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    cc.error_threshold_pct = 10.0;
    auto codec = CodecFactory::create(scheme, cc);

    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    telemetry::ErrorProfile qor;
    net.bindErrorProfile(&qor);

    telemetry::TelemetryOptions topts;
    topts.metrics_dir = "unused"; // enables the registry collectors
    topts.trace_dir = "unused";   // enables the tracer; never written
    telemetry::PointTelemetry pt(topts);
    net.bindTelemetry(pt);

    SyntheticDataProvider provider(DataType::Float32, 16, 0.9, 3.0, 7,
                                   0.7, 8);
    std::unique_ptr<SyntheticTraffic> synth;
    std::unique_ptr<ClosedLoopTraffic> closed;
    if (closed_loop) {
        ClosedLoopConfig lc;
        lc.seed = 7;
        closed = std::make_unique<ClosedLoopTraffic>(net, lc, provider);
        sim.add(closed.get());
    } else {
        SyntheticConfig tc;
        tc.injection_rate = 0.15;
        tc.data_packet_ratio = 0.3;
        tc.seed = 7;
        synth = std::make_unique<SyntheticTraffic>(net, tc, provider);
        sim.add(synth.get());
    }

    Artifacts a;
    a.regions = net.enableRegionParallel(sim, sim_jobs);

    sim.run(2500);
    if (synth)
        synth->setEnabled(false);
    if (closed)
        closed->setEnabled(false);
    bool drained = sim.runUntil(
        [&] { return net.drained() && (!closed || closed->quiesced()); },
        200000);
    EXPECT_TRUE(drained) << "network failed to drain";

    net.collectTelemetry(*pt.metrics());
    std::ostringstream ms, qs, ts;
    pt.metrics()->writeJson(ms);
    qor.writeJson(qs);
    pt.tracer()->writeJson(ts);
    a.metrics = ms.str();
    a.qor = qs.str();
    a.trace = ts.str();
    a.delivered = net.stats().packets_delivered.value();
    a.total_lat = net.stats().total_lat.mean();
    return a;
}

/** jobs=1 vs jobs=N: every artifact byte-identical. */
void
expect_identical(const Artifacts &serial, const Artifacts &par)
{
    EXPECT_GT(serial.delivered, 0u);
    EXPECT_EQ(serial.delivered, par.delivered);
    EXPECT_EQ(serial.total_lat, par.total_lat);
    EXPECT_EQ(serial.metrics, par.metrics);
    EXPECT_EQ(serial.qor, par.qor);
    EXPECT_EQ(serial.trace, par.trace);
}

} // namespace

TEST(RegionParallel, Mesh4x4ByteIdentical)
{
    Artifacts serial =
        run_case(Topology::Mesh, 4, 4, Scheme::DiVaxx, 1);
    Artifacts par = run_case(Topology::Mesh, 4, 4, Scheme::DiVaxx, 4);
    EXPECT_EQ(serial.regions, 1u);
    EXPECT_EQ(par.regions, 4u);
    expect_identical(serial, par);
}

TEST(RegionParallel, Mesh8x8ByteIdentical)
{
    Artifacts serial =
        run_case(Topology::Mesh, 8, 8, Scheme::FpVaxx, 1);
    Artifacts par = run_case(Topology::Mesh, 8, 8, Scheme::FpVaxx, 4);
    EXPECT_EQ(par.regions, 4u);
    expect_identical(serial, par);
}

TEST(RegionParallel, TorusClosedLoopByteIdentical)
{
    // Torus wrap links make the first and last row stripes neighbors —
    // the deferred-handoff path in both directions — and the
    // closed-loop generator exercises the delivery replay (its reply
    // injection consumes deliveries in serial order).
    Artifacts serial = run_case(Topology::Torus, 4, 4, Scheme::DiComp, 1,
                                /*closed_loop=*/true);
    Artifacts par = run_case(Topology::Torus, 4, 4, Scheme::DiComp, 4,
                             /*closed_loop=*/true);
    EXPECT_EQ(par.regions, 4u);
    expect_identical(serial, par);
}

TEST(RegionParallel, RegionCountClampsToRows)
{
    // More requested regions than router rows: the partition clamps to
    // one stripe per row and stays byte-deterministic.
    Artifacts serial =
        run_case(Topology::Mesh, 4, 4, Scheme::Baseline, 1);
    Artifacts par =
        run_case(Topology::Mesh, 4, 4, Scheme::Baseline, 64);
    EXPECT_EQ(par.regions, 4u);
    expect_identical(serial, par);
}

TEST(RegionParallel, SerialFallbackAtOneJob)
{
    NocConfig ncfg;
    CodecConfig cc;
    cc.n_nodes = ncfg.nodes();
    auto codec = CodecFactory::create(Scheme::Baseline, cc);
    Network net(ncfg, codec.get());
    Simulator sim;
    net.attach(sim);

    EXPECT_EQ(net.enableRegionParallel(sim, 1), 1u);
    EXPECT_EQ(sim.regionCount(), 0u) << "jobs=1 must not install a plan";

    // And a real plan reports its regions.
    EXPECT_EQ(net.enableRegionParallel(sim, 3), 3u);
    EXPECT_EQ(sim.regionCount(), 3u);
    sim.run(10);
}

TEST(RegionParallel, HarnessReplayByteIdentical)
{
    // The ReplayJob.sim_jobs plumbing end to end: same trace replay,
    // artifacts written to disk by the standard point executor.
    using namespace harness;
    TraceLibrary lib;
    auto replay = [&](unsigned sim_jobs, const std::string &dir) {
        ReplayJob job;
        job.scheme = Scheme::FpVaxx;
        job.max_records = 300;
        job.sim_jobs = sim_jobs;
        job.telemetry.metrics_dir = dir;
        job.telemetry.trace_dir = dir;
        job.telemetry.label = "rp";
        return run_replay(lib.get("blackscholes"), job);
    };
    const std::string d1 = ::testing::TempDir() + "region_replay_j1";
    const std::string d4 = ::testing::TempDir() + "region_replay_j4";
    ReplayResult r1 = replay(1, d1);
    ReplayResult r4 = replay(4, d4);

    EXPECT_GT(r1.packets, 0u);
    EXPECT_EQ(r1.packets, r4.packets);
    EXPECT_EQ(r1.total_lat, r4.total_lat);
    for (const char *f :
         {"rp.metrics.json", "rp.qor.json", "rp.trace.json"}) {
        std::string a = slurp(d1 + "/" + f);
        ASSERT_FALSE(a.empty()) << f;
        EXPECT_EQ(a, slurp(d4 + "/" + f)) << f;
    }
}

#ifdef APPROXNOC_SIM_TOOL
TEST(RegionParallelTool, CliArtifactsByteIdentical)
{
    // The --sim-jobs CLI path on both topologies, compared at the file
    // level (the artifacts CI's smoke jobs look at). Kept out of the
    // RegionParallel suite so the TSan job doesn't re-run the
    // subprocesses.
    if (!std::ifstream(APPROXNOC_SIM_TOOL).good())
        GTEST_SKIP() << "approxnoc_sim not built";
    struct Case {
        const char *name;
        const char *flags;
    } cases[] = {
        {"mesh", "--cycles=2000"},
        {"torus", "--topology=torus --scheme=DI-VAXX --cycles=2000"},
    };
    for (const Case &c : cases) {
        const std::string d1 =
            ::testing::TempDir() + "rp_tool_" + c.name + "_j1";
        const std::string d4 =
            ::testing::TempDir() + "rp_tool_" + c.name + "_j4";
        for (const auto &[dir, jobs] :
             {std::pair<std::string, const char *>{d1, "1"}, {d4, "4"}}) {
            std::string cmd = std::string(APPROXNOC_SIM_TOOL) + " " +
                              c.flags + " --quiet --metrics-out=" + dir +
                              " --sim-jobs=" + jobs +
                              " > /dev/null 2>&1";
            ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
        }
        for (const char *f : {"qor.json"}) {
            std::string a = slurp(d1 + "/" + f);
            ASSERT_FALSE(a.empty()) << c.name << "/" << f;
            EXPECT_EQ(a, slurp(d4 + "/" + f)) << c.name << "/" << f;
        }
        // The per-scheme metrics file name depends on the scheme flag.
        const char *mfile =
            std::string(c.name) == "mesh" ? "fp_vaxx.metrics.json"
                                          : "di_vaxx.metrics.json";
        EXPECT_EQ(slurp(d1 + "/" + mfile), slurp(d4 + "/" + mfile))
            << c.name;
    }
}
#endif
