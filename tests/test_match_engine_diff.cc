/**
 * Randomized differential tests for the optimized match engines and the
 * batched encode path:
 *
 *  - the bit-sliced Tcam against the naive RefTcam, and the
 *    hash-indexed Cam against RefCam (tcam/reference.h), driven through
 *    long random insert/erase/search/touch sequences and asserting
 *    identical hit slots, victim choices and activity counters;
 *  - CodecSystem::encodeBlock against word-at-a-time encode() for every
 *    scheme CodecFactory builds, asserting bit-identical NR streams.
 *
 * Capacities straddle the 64-entry bitmap chunk boundary (4, 64, 65,
 * 130) on purpose: the tail-chunk masking in pickVictim and the
 * multi-chunk search loop are the easiest places for the bit-sliced
 * engine to diverge.
 */
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/codec_factory.h"
#include "tcam/reference.h"
#include "tcam/tcam.h"

using namespace approxnoc;

namespace {

/** Small key pool so eviction churn and rehits are frequent. */
Word
pool_key(Rng &rng, unsigned pool_bits)
{
    return static_cast<Word>(rng.next(1u << pool_bits));
}

TernaryPattern
random_pattern(Rng &rng, unsigned pool_bits)
{
    TernaryPattern p;
    p.value = pool_key(rng, pool_bits);
    double roll = rng.uniform();
    if (roll < 0.15) {
        p.mask = 0; // fully exact
    } else if (roll < 0.25) {
        p.mask = 0xFFFFFFFFu; // all don't-care: matches everything
    } else {
        p.mask = (1u << rng.next(9)) - 1u; // low-bit don't-care run
    }
    return p;
}

template <typename A, typename B>
void
expect_same_counters(const A &a, const B &b, const char *what, int step)
{
    ASSERT_EQ(a.searches(), b.searches()) << what << " step " << step;
    ASSERT_EQ(a.peeks(), b.peeks()) << what << " step " << step;
    ASSERT_EQ(a.writes(), b.writes()) << what << " step " << step;
    ASSERT_EQ(a.validCount(), b.validCount()) << what << " step " << step;
}

struct DiffCase {
    std::size_t capacity;
    ReplacementPolicy policy;
    std::uint64_t seed;
};

class MatchEngineDiff : public ::testing::TestWithParam<DiffCase>
{};

std::string
case_name(const ::testing::TestParamInfo<DiffCase> &info)
{
    return "cap" + std::to_string(info.param.capacity) +
           (info.param.policy == ReplacementPolicy::Lru ? "_lru" : "_lfu");
}

TEST_P(MatchEngineDiff, TcamMatchesReference)
{
    const DiffCase &c = GetParam();
    Tcam dut(c.capacity, c.policy);
    RefTcam ref(c.capacity, c.policy);
    Rng rng(c.seed);
    // Keys drawn from 2*capacity-ish values keep the TCAM at full
    // occupancy with constant eviction churn after warmup.
    unsigned pool_bits = 4;
    while ((1u << pool_bits) < 2 * c.capacity)
        ++pool_bits;

    for (int step = 0; step < 10000; ++step) {
        double roll = rng.uniform();
        if (roll < 0.40) {
            Word key = pool_key(rng, pool_bits);
            ASSERT_EQ(dut.search(key), ref.search(key)) << "step " << step;
        } else if (roll < 0.50) {
            // searchVisit: both must visit the same slots in the same
            // order and stop at the same point.
            Word key = pool_key(rng, pool_bits);
            std::size_t stop_after = rng.next(4);
            std::vector<std::size_t> seen_dut, seen_ref;
            auto hit_dut = dut.searchVisit(key, [&](std::size_t s) {
                seen_dut.push_back(s);
                return seen_dut.size() > stop_after;
            });
            auto hit_ref = ref.searchVisit(key, [&](std::size_t s) {
                seen_ref.push_back(s);
                return seen_ref.size() > stop_after;
            });
            ASSERT_EQ(hit_dut, hit_ref) << "step " << step;
            ASSERT_EQ(seen_dut, seen_ref) << "step " << step;
        } else if (roll < 0.58) {
            Word key = pool_key(rng, pool_bits);
            ASSERT_EQ(dut.searchAll(key), ref.searchAll(key))
                << "step " << step;
        } else if (roll < 0.64) {
            Word key = pool_key(rng, pool_bits);
            ASSERT_EQ(dut.peek(key), ref.peek(key)) << "step " << step;
        } else if (roll < 0.70) {
            TernaryPattern p = random_pattern(rng, pool_bits);
            ASSERT_EQ(dut.findPattern(p), ref.findPattern(p))
                << "step " << step;
        } else if (roll < 0.74) {
            TernaryPattern p = random_pattern(rng, pool_bits);
            ASSERT_EQ(dut.victimFor(p), ref.victimFor(p)) << "step " << step;
        } else if (roll < 0.92) {
            TernaryPattern p = random_pattern(rng, pool_bits);
            ASSERT_EQ(dut.insert(p), ref.insert(p)) << "step " << step;
        } else if (roll < 0.96) {
            std::size_t slot = rng.next(c.capacity);
            dut.erase(slot);
            ref.erase(slot);
        } else {
            std::size_t slot = rng.next(c.capacity);
            if (dut.valid(slot)) {
                dut.touch(slot);
                ref.touch(slot);
            }
        }
        ASSERT_NO_FATAL_FAILURE(
            expect_same_counters(dut, ref, "tcam", step));
    }
    // Final state audit: every slot agrees.
    for (std::size_t s = 0; s < c.capacity; ++s) {
        ASSERT_EQ(dut.valid(s), ref.valid(s)) << "slot " << s;
        if (dut.valid(s)) {
            ASSERT_TRUE(dut.pattern(s) == ref.pattern(s)) << "slot " << s;
        }
    }
}

TEST_P(MatchEngineDiff, CamMatchesReference)
{
    const DiffCase &c = GetParam();
    Cam dut(c.capacity, c.policy);
    RefCam ref(c.capacity, c.policy);
    Rng rng(c.seed ^ 0xCA3ull);
    unsigned pool_bits = 4;
    while ((1u << pool_bits) < 2 * c.capacity)
        ++pool_bits;

    for (int step = 0; step < 10000; ++step) {
        double roll = rng.uniform();
        Word key = pool_key(rng, pool_bits);
        if (roll < 0.40) {
            ASSERT_EQ(dut.search(key), ref.search(key)) << "step " << step;
        } else if (roll < 0.52) {
            ASSERT_EQ(dut.peek(key), ref.peek(key)) << "step " << step;
        } else if (roll < 0.58) {
            ASSERT_EQ(dut.victimFor(key), ref.victimFor(key))
                << "step " << step;
        } else if (roll < 0.88) {
            ASSERT_EQ(dut.insert(key), ref.insert(key)) << "step " << step;
        } else if (roll < 0.94) {
            std::size_t slot = rng.next(c.capacity);
            dut.erase(slot);
            ref.erase(slot);
        } else if (roll < 0.98) {
            std::size_t slot = rng.next(c.capacity);
            if (dut.valid(slot)) {
                dut.touch(slot);
                ref.touch(slot);
            }
        } else {
            dut.clear();
            ref.clear();
        }
        ASSERT_NO_FATAL_FAILURE(expect_same_counters(dut, ref, "cam", step));
    }
    for (std::size_t s = 0; s < c.capacity; ++s) {
        ASSERT_EQ(dut.valid(s), ref.valid(s)) << "slot " << s;
        if (dut.valid(s)) {
            ASSERT_EQ(dut.key(s), ref.key(s)) << "slot " << s;
            ASSERT_EQ(dut.frequency(s), ref.frequency(s)) << "slot " << s;
        }
    }
}

TEST_P(MatchEngineDiff, TcamClearAndAllDontCare)
{
    const DiffCase &c = GetParam();
    Tcam dut(c.capacity, c.policy);
    RefTcam ref(c.capacity, c.policy);
    // All-don't-care patterns with distinct values share one canonical
    // form, so every insert after the first rehits slot 0: validCount
    // stays 1 and every key matches it.
    for (int i = 0; i < 3; ++i) {
        TernaryPattern all_x{static_cast<Word>(i * 1000u), 0xFFFFFFFFu};
        ASSERT_EQ(dut.insert(all_x), ref.insert(all_x));
    }
    ASSERT_EQ(dut.validCount(), 1u);
    ASSERT_EQ(dut.search(0xDEADBEEF), ref.search(0xDEADBEEF));
    ASSERT_EQ(dut.search(0), ref.search(0));
    dut.clear();
    ref.clear();
    ASSERT_EQ(dut.validCount(), 0u);
    ASSERT_EQ(dut.search(0), ref.search(0));
    ASSERT_NO_FATAL_FAILURE(expect_same_counters(dut, ref, "clear", 0));
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, MatchEngineDiff,
    ::testing::Values(DiffCase{4, ReplacementPolicy::Lfu, 0x51CEDull},
                      DiffCase{4, ReplacementPolicy::Lru, 0x51CEDull},
                      DiffCase{64, ReplacementPolicy::Lfu, 0xB17Eull},
                      DiffCase{64, ReplacementPolicy::Lru, 0xB17Eull},
                      DiffCase{65, ReplacementPolicy::Lfu, 0xC0DEull},
                      DiffCase{65, ReplacementPolicy::Lru, 0xC0DEull},
                      DiffCase{130, ReplacementPolicy::Lfu, 0xF00Dull},
                      DiffCase{130, ReplacementPolicy::Lru, 0xF00Dull}),
    case_name);

// ---------------------------------------------------------------------
// Concurrent read-only probes. The diagnostic probes (peek, searchAll,
// findPattern) are const and advertised safe to run concurrently with
// each other: the only state they touch is the peeks_ activity counter,
// which is a relaxed atomic precisely so telemetry can snapshot match
// engines while FlowShardedEncoder shards are encoding. N threads
// hammer a fixed Tcam and RefTcam with identical probe sequences; every
// result must match the reference, and afterwards each engine's
// peeks() must equal the exact probe total — a lost update would make
// it smaller. Run under -DANOC_TSAN=ON (CI job tsan-concurrency) this
// also proves the probes are race-free.
// ---------------------------------------------------------------------

TEST(MatchEngineConcurrency, ConcurrentReadOnlyProbesMatchReference)
{
    constexpr std::size_t kCapacity = 65; // straddles the chunk boundary
    constexpr unsigned kThreads = 8;
    constexpr int kProbesPerThread = 4000;
    constexpr unsigned kPoolBits = 8;

    Tcam dut(kCapacity);
    RefTcam ref(kCapacity);
    Rng setup(0xCAFEull);
    for (int i = 0; i < 200; ++i) {
        TernaryPattern p = random_pattern(setup, kPoolBits);
        ASSERT_EQ(dut.insert(p), ref.insert(p));
    }
    const std::uint64_t dut_base = dut.peeks();
    const std::uint64_t ref_base = ref.peeks();

    std::atomic<int> mismatches{0};
    auto reader = [&](unsigned tid) {
        Rng rng(0x9E37ull + tid);
        for (int i = 0; i < kProbesPerThread; ++i) {
            double roll = rng.uniform();
            if (roll < 0.5) {
                Word key = pool_key(rng, kPoolBits);
                if (dut.peek(key) != ref.peek(key))
                    ++mismatches;
            } else if (roll < 0.8) {
                Word key = pool_key(rng, kPoolBits);
                if (dut.searchAll(key) != ref.searchAll(key))
                    ++mismatches;
            } else {
                TernaryPattern p = random_pattern(rng, kPoolBits);
                if (dut.findPattern(p) != ref.findPattern(p))
                    ++mismatches;
            }
        }
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back(reader, t);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    const std::uint64_t probes =
        static_cast<std::uint64_t>(kThreads) * kProbesPerThread;
    EXPECT_EQ(dut.peeks(), dut_base + probes) << "lost peek counts";
    EXPECT_EQ(ref.peeks(), ref_base + probes) << "lost peek counts";
}

// ---------------------------------------------------------------------
// encodeBlock vs word-at-a-time encode equivalence.
// ---------------------------------------------------------------------

DataBlock
make_block(Rng &rng, const std::vector<Word> &hot)
{
    std::vector<Word> ws(16);
    for (auto &w : ws) {
        double roll = rng.uniform();
        if (roll < 0.12)
            w = 0;
        else if (roll < 0.55)
            w = hot[rng.next(hot.size())];
        else if (roll < 0.75)
            w = hot[rng.next(hot.size())] ^ static_cast<Word>(rng.next(256));
        else
            w = static_cast<Word>(rng.bits()) & 0x7FFFFFFFu;
    }
    bool approximable = rng.uniform() < 0.7;
    DataType type = rng.uniform() < 0.5 ? DataType::Int32 : DataType::Float32;
    if (rng.uniform() < 0.1) {
        type = DataType::Raw;
        approximable = false;
    }
    return DataBlock(std::move(ws), type, approximable);
}

void
expect_same_stream(const EncodedBlock &a, const EncodedBlock &b, Scheme s,
                   int block)
{
    ASSERT_EQ(a.bits(), b.bits()) << to_string(s) << " block " << block;
    ASSERT_EQ(a.wordCount(), b.wordCount())
        << to_string(s) << " block " << block;
    ASSERT_EQ(a.words().size(), b.words().size())
        << to_string(s) << " block " << block;
    for (std::size_t i = 0; i < a.words().size(); ++i) {
        const EncodedWord &wa = a.words()[i];
        const EncodedWord &wb = b.words()[i];
        ASSERT_EQ(wa.kind, wb.kind)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.bits, wb.bits)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.payload, wb.payload)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.run, wb.run)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.decoded, wb.decoded)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.approximated, wb.approximated)
            << to_string(s) << " block " << block << " unit " << i;
        ASSERT_EQ(wa.uncompressed, wb.uncompressed)
            << to_string(s) << " block " << block << " unit " << i;
    }
}

TEST(EncodeBlockEquivalence, MatchesWordAtATimeForEveryScheme)
{
    for (Scheme s : kAllSchemes) {
        CodecConfig cc;
        cc.n_nodes = 4;
        cc.dict.pmt_entries = 8;
        // Two codec instances fed identical traffic: one through the
        // word-at-a-time executable spec, one through the batched path.
        // Both also decode every block so the dictionary protocol
        // (training, notifications, pending updates) advances in
        // lockstep — any divergence shows up as a stream mismatch on a
        // later block.
        auto spec = CodecFactory::create(s, cc);
        auto fast = CodecFactory::create(s, cc);
        Rng rng(0xE0C0 + static_cast<std::uint64_t>(s));
        std::vector<Word> hot;
        for (int i = 0; i < 8; ++i)
            hot.push_back(static_cast<Word>(rng.range(500, 5000000)));

        Cycle now = 0;
        for (int block = 0; block < 400; ++block) {
            DataBlock b = make_block(rng, hot);
            NodeId src = static_cast<NodeId>(rng.next(2));
            NodeId dst = static_cast<NodeId>(2 + rng.next(2));
            EncodedBlock e_spec = spec->encode(b, src, dst, now);
            EncodedBlock e_fast = fast->encodeBlock(b, src, dst, now);
            ASSERT_NO_FATAL_FAILURE(
                expect_same_stream(e_spec, e_fast, s, block));
            DataBlock d_spec = spec->decode(e_spec, src, dst, now);
            DataBlock d_fast = fast->decode(e_fast, src, dst, now);
            ASSERT_EQ(d_spec.words(), d_fast.words())
                << to_string(s) << " block " << block;
            now += 51; // past notify_min_interval so training progresses
        }
        EXPECT_EQ(spec->consistencyMismatches(), 0u) << to_string(s);
        EXPECT_EQ(fast->consistencyMismatches(), 0u) << to_string(s);
    }
}

} // namespace
