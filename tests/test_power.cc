/** Power and area model tests. */
#include <gtest/gtest.h>

#include "core/codec_factory.h"
#include "noc/network.h"
#include "power/area_model.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

double
run_power(Scheme s)
{
    NocConfig cfg;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    auto codec = CodecFactory::create(s, cc);
    Network net(cfg, codec.get());
    Simulator sim;
    net.attach(sim);
    SyntheticConfig tc;
    tc.injection_rate = 0.1;
    tc.data_packet_ratio = 0.5;
    SyntheticDataProvider provider(DataType::Int32, 16, 0.95, 2.0, 3, 0.85,
                                   8);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);
    sim.run(20000);
    gen.setEnabled(false);
    sim.runUntil([&] { return net.drained(); }, 100000);
    PowerModel pm;
    return pm.dynamicPowerMw(net, sim.now());
}

} // namespace

TEST(Power, EnergyIsPositiveUnderTraffic)
{
    double mw = run_power(Scheme::Baseline);
    EXPECT_GT(mw, 0.0);
}

TEST(Power, CompressionReducesDynamicPower)
{
    // Fewer flits means less router/link energy; the codec overhead is
    // small (paper Fig. 15: FP-VAXX ~5% below Baseline).
    double base = run_power(Scheme::Baseline);
    double fpvaxx = run_power(Scheme::FpVaxx);
    EXPECT_LT(fpvaxx, base);
    EXPECT_GT(fpvaxx, base * 0.5) << "savings should be moderate";
}

TEST(Power, StaticPowerScalesWithRouters)
{
    NocConfig cfg;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    auto codec = CodecFactory::create(Scheme::Baseline, cc);
    Network net(cfg, codec.get());
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.staticPowerMw(net),
                     pm.params().static_power_mw_per_router * 16);
}

TEST(Area, MatchesPaperBallpark)
{
    DictionaryConfig dict; // 8-entry PMTs
    // Paper Sec. 5.5 at 45 nm: DI-VAXX 0.0037 mm^2, FP-VAXX 0.0029 mm^2
    // per NI. Our analytical model should land within ~25%.
    double di = encoder_area_mm2(Scheme::DiVaxx, dict, 32);
    double fp = encoder_area_mm2(Scheme::FpVaxx, dict, 32);
    EXPECT_NEAR(di, 0.0037, 0.0037 * 0.25);
    EXPECT_NEAR(fp, 0.0029, 0.0029 * 0.25);
}

TEST(Area, OrderingAcrossSchemes)
{
    DictionaryConfig dict;
    double base = encoder_area_mm2(Scheme::Baseline, dict, 32);
    double fp = encoder_area_mm2(Scheme::FpComp, dict, 32);
    double fpv = encoder_area_mm2(Scheme::FpVaxx, dict, 32);
    double di = encoder_area_mm2(Scheme::DiComp, dict, 32);
    double div = encoder_area_mm2(Scheme::DiVaxx, dict, 32);
    EXPECT_EQ(base, 0.0);
    EXPECT_LT(fp, fpv);
    EXPECT_LT(di, div);
    EXPECT_GT(fpv, 0.0);
    EXPECT_GT(div, fpv) << "per-destination original store dominates";
}
