/**
 * Network integration tests: zero-load latency, flit conservation,
 * wormhole integrity, credits, drain, concentration, all schemes
 * end to end.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

NocConfig
small_noc()
{
    NocConfig cfg; // 4x4 cmesh, concentration 2 (Table 1)
    return cfg;
}

struct Bench {
    NocConfig cfg;
    std::unique_ptr<CodecSystem> codec;
    std::unique_ptr<Network> net;
    Simulator sim;

    explicit Bench(Scheme s = Scheme::Baseline, NocConfig c = small_noc())
        : cfg(c)
    {
        CodecConfig cc;
        cc.n_nodes = cfg.nodes();
        codec = CodecFactory::create(s, cc);
        net = std::make_unique<Network>(cfg, codec.get());
        net->attach(sim);
    }
};

} // namespace

TEST(Network, TopologySanity)
{
    NocConfig cfg = small_noc();
    EXPECT_EQ(cfg.routers(), 16u);
    EXPECT_EQ(cfg.nodes(), 32u);
    EXPECT_EQ(cfg.routerOf(0), 0u);
    EXPECT_EQ(cfg.routerOf(1), 0u);
    EXPECT_EQ(cfg.routerOf(2), 1u);
    EXPECT_EQ(cfg.routerOf(31), 15u);
}

TEST(Network, SingleControlPacketZeroLoadLatency)
{
    Bench b;
    auto p = b.net->makeControlPacket(0, 30); // router 0 -> router 15
    b.net->inject(p, 0);
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 10000));

    // Zero-load: hops = (3 col + 3 row + 1 ejection-hop router) XY path
    // routers visited = 7, each costing router_stages cycles.
    EXPECT_EQ(p->queueLatency(), 0u);
    // 1-flit packet: injection cycle + 7 routers * 3 stages.
    EXPECT_EQ(p->netLatency(), 7u * 3u);
    EXPECT_EQ(p->decodeLatency(), 0u);
    EXPECT_EQ(b.net->stats().packets_delivered.value(), 1u);
}

TEST(Network, NeighborLatency)
{
    Bench b;
    auto p = b.net->makeControlPacket(0, 1); // same router, local switch
    b.net->inject(p, 0);
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 1000));
    EXPECT_EQ(p->netLatency(), 3u);
}

TEST(Network, DataPacketFlitCountBaseline)
{
    Bench b;
    DataBlock blk(std::vector<Word>(16, 0xDEADBEEF), DataType::Raw, false);
    auto p = b.net->makeDataPacket(0, 5, blk);
    b.net->inject(p, 0);
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 10000));
    // 16 words x 32 bits = 512 bits = 8 flits + 1 head.
    EXPECT_EQ(p->n_flits, 9u);
    EXPECT_TRUE(p->delivered.sameBits(blk));
}

TEST(Network, CompressedPacketHasFewerFlits)
{
    Bench b(Scheme::FpComp);
    DataBlock blk(std::vector<Word>(16, 0), DataType::Int32, false);
    auto p = b.net->makeDataPacket(0, 5, blk);
    b.net->inject(p, 0);
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 10000));
    EXPECT_EQ(p->n_flits, 2u); // 2 zero-runs -> 12 bits -> 1 flit + head
    EXPECT_TRUE(p->delivered.sameBits(blk));
    EXPECT_EQ(p->decodeLatency(), kDecompressionLatency);
}

TEST(Network, CompressionLatencyShowsAtZeroLoad)
{
    Bench base(Scheme::Baseline);
    Bench fp(Scheme::FpComp);
    DataBlock blk(std::vector<Word>(16, 0x12345678), DataType::Raw, false);
    auto p1 = base.net->makeDataPacket(0, 30, blk);
    auto p2 = fp.net->makeDataPacket(0, 30, blk);
    base.net->inject(p1, 0);
    fp.net->inject(p2, 0);
    ASSERT_TRUE(base.sim.runUntil([&] { return base.net->drained(); }, 10000));
    ASSERT_TRUE(fp.sim.runUntil([&] { return fp.net->drained(); }, 10000));
    EXPECT_EQ(p1->queueLatency(), 0u);
    EXPECT_EQ(p2->queueLatency(), kCompressionLatency);
}

TEST(Network, FlitConservationUnderLoad)
{
    Bench b(Scheme::FpComp);
    SyntheticConfig tc;
    tc.injection_rate = 0.2;
    tc.data_packet_ratio = 0.5;
    SyntheticDataProvider provider(DataType::Int32);
    SyntheticTraffic gen(*b.net, tc, provider);
    b.sim.add(&gen);

    b.sim.run(20000);
    gen.setEnabled(false);
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 100000))
        << "network failed to drain";

    std::uint64_t injected_pkts = 0, delivered_pkts = 0;
    for (NodeId n = 0; n < b.cfg.nodes(); ++n) {
        injected_pkts += b.net->ni(n).packetsInjected();
        delivered_pkts += b.net->ni(n).packetsDelivered();
    }
    EXPECT_GT(delivered_pkts, 1000u);
    EXPECT_EQ(injected_pkts, delivered_pkts);
    EXPECT_EQ(b.net->routerOccupancy(), 0u);
    EXPECT_EQ(b.net->codec().consistencyMismatches(), 0u);
}

TEST(Network, AllSchemesDeliverCorrectly)
{
    Rng rng(81);
    for (Scheme s : kAllSchemes) {
        Bench b(s);
        SyntheticConfig tc;
        tc.injection_rate = 0.15;
        tc.approx_ratio = 0.75;
        SyntheticDataProvider provider(DataType::Int32);
        SyntheticTraffic gen(*b.net, tc, provider);
        b.sim.add(&gen);
        b.sim.run(10000);
        gen.setEnabled(false);
        ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 100000))
            << to_string(s);
        EXPECT_GT(b.net->stats().packets_delivered.value(), 500u)
            << to_string(s);
        EXPECT_EQ(b.net->codec().consistencyMismatches(), 0u)
            << to_string(s);
        // Quality: baseline and exact schemes are error-free.
        if (s == Scheme::Baseline || s == Scheme::DiComp ||
            s == Scheme::FpComp) {
            EXPECT_DOUBLE_EQ(b.net->stats().quality.meanRelativeError(), 0.0)
                << to_string(s);
        } else {
            EXPECT_LE(b.net->stats().quality.meanRelativeError(), 0.10)
                << to_string(s);
        }
    }
}

TEST(Network, VaxxReducesInjectedFlits)
{
    auto run = [](Scheme s) {
        Bench b(s);
        SyntheticConfig tc;
        tc.injection_rate = 0.1;
        tc.data_packet_ratio = 0.5;
        tc.seed = 7;
        // Dictionary-friendly value locality: a hot set that fits the
        // 8-entry PMTs with mostly exact repeats plus near values.
        SyntheticDataProvider provider(DataType::Int32, 16, 0.95, 2.0, 3,
                                       0.85, 8);
        SyntheticTraffic gen(*b.net, tc, provider);
        b.sim.add(&gen);
        b.sim.run(30000);
        gen.setEnabled(false);
        b.sim.runUntil([&] { return b.net->drained(); }, 100000);
        return b.net->dataFlitsInjected();
    };
    std::uint64_t base = run(Scheme::Baseline);
    std::uint64_t di = run(Scheme::DiComp);
    std::uint64_t divaxx = run(Scheme::DiVaxx);
    std::uint64_t fp = run(Scheme::FpComp);
    std::uint64_t fpvaxx = run(Scheme::FpVaxx);

    EXPECT_LT(di, base);
    EXPECT_LT(fp, base);
    EXPECT_LE(divaxx, di);
    EXPECT_LE(fpvaxx, fp);
}

TEST(Network, DictionaryNotificationsBecomeControlPackets)
{
    Bench b(Scheme::DiComp);
    SyntheticConfig tc;
    tc.injection_rate = 0.1;
    tc.data_packet_ratio = 1.0;
    SyntheticDataProvider provider(DataType::Int32, 16, 0.95, 1.0);
    SyntheticTraffic gen(*b.net, tc, provider);
    b.sim.add(&gen);
    b.sim.run(5000);
    gen.setEnabled(false);
    b.sim.runUntil([&] { return b.net->drained(); }, 100000);
    EXPECT_GT(b.net->stats().notification_packets.value(), 0u);
}

TEST(Network, SelfAddressedPacketsRejected)
{
    Bench b;
    auto p = b.net->makeControlPacket(3, 3);
    EXPECT_DEATH(b.net->inject(p, 0), "self-addressed");
}

TEST(Network, HotspotStressDoesNotDeadlock)
{
    Bench b(Scheme::DiVaxx);
    SyntheticConfig tc;
    tc.injection_rate = 0.4;
    tc.pattern = TrafficPattern::Hotspot;
    tc.data_packet_ratio = 0.4;
    SyntheticDataProvider provider(DataType::Float32);
    SyntheticTraffic gen(*b.net, tc, provider);
    b.sim.add(&gen);
    b.sim.run(30000); // would panic via watchdog on deadlock
    gen.setEnabled(false);
    EXPECT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 200000));
}

TEST(Network, CompressionLatencyHiddenByQueueing)
{
    // Paper Sec. 4.3: compression overlaps NI queueing, so when the
    // injection queue is busy the 3-cycle encode latency vanishes.
    // Back-to-back packets: total makespan must match pure flit
    // serialization plus a single pipeline fill, not + 3 per packet.
    Bench b(Scheme::FpComp);
    DataBlock blk(std::vector<Word>(16, 0xDEADBEEF), DataType::Raw, false);
    const int n = 20;
    std::vector<PacketPtr> pkts;
    for (int i = 0; i < n; ++i) {
        auto p = b.net->makeDataPacket(0, 2, blk);
        b.net->inject(p, 0);
        pkts.push_back(p);
    }
    ASSERT_TRUE(b.sim.runUntil([&] { return b.net->drained(); }, 100000));

    // Every packet after the first must show zero added compression
    // stall at injection: head flits go out every n_flits cycles.
    for (int i = 1; i < n; ++i) {
        Cycle gap = pkts[i]->inject_start - pkts[i - 1]->inject_start;
        EXPECT_EQ(gap, pkts[i - 1]->n_flits)
            << "packet " << i << " stalled beyond serialization";
    }
    // Only the first packet pays the pipeline fill.
    EXPECT_EQ(pkts[0]->queueLatency(), kCompressionLatency);
}
