/**
 * Cross-scheme property sweep: the DESIGN.md invariants checked for
 * every (scheme, threshold, data type) combination on randomized,
 * value-local block streams.
 *
 *  1. decode(encode(x)) == x bit-exactly for non-approximable blocks;
 *  2. every approximated word stays within the shift-mode error bound
 *     e / (100 - e);
 *  3. compression never expands a block;
 *  4. the encoder's expectation always matches the decoder's view
 *     (consistencyMismatches == 0);
 *  5. bit accounting is internally consistent (word counts, fractions).
 */
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/codec_factory.h"

using namespace approxnoc;

namespace {

using Combo = std::tuple<Scheme, double, DataType>;

std::string
combo_name(const ::testing::TestParamInfo<Combo> &info)
{
    auto [scheme, threshold, type] = info.param;
    std::string s = to_string(scheme) + "_t" +
                    std::to_string(static_cast<int>(threshold)) + "_" +
                    to_string(type);
    for (auto &c : s)
        if (c == '-')
            c = '_';
    return s;
}

/** Value-local stream mixing exact repeats, near values and noise. */
DataBlock
make_block(Rng &rng, DataType type, const std::vector<Word> &hot,
           bool approximable)
{
    std::vector<Word> ws(16);
    for (auto &w : ws) {
        double roll = rng.uniform();
        if (roll < 0.35) {
            w = hot[rng.next(hot.size())];
        } else if (roll < 0.6) {
            Word base = hot[rng.next(hot.size())];
            w = base ^ static_cast<Word>(rng.next(1u << 6));
        } else if (roll < 0.75) {
            w = 0;
        } else {
            w = static_cast<Word>(rng.bits());
            if (type == DataType::Float32)
                w = (w & 0x7FFFFFFF) | 0x20000000; // keep it normal-ish
        }
    }
    return DataBlock(std::move(ws), type, approximable);
}

} // namespace

class SchemeProperties : public ::testing::TestWithParam<Combo>
{
  protected:
    void
    SetUp() override
    {
        auto [scheme, threshold, type] = GetParam();
        scheme_ = scheme;
        threshold_ = threshold;
        type_ = type;
        CodecConfig cc;
        cc.n_nodes = 8;
        cc.error_threshold_pct = threshold;
        codec_ = CodecFactory::create(scheme, cc);

        Rng seeder(static_cast<std::uint64_t>(threshold * 7 + 3));
        for (int i = 0; i < 6; ++i) {
            Word w = type_ == DataType::Float32
                         ? (0x3F800000u +
                            static_cast<Word>(seeder.next(1u << 22)))
                         : static_cast<Word>(seeder.range(500, 5000000));
            hot_.push_back(w);
        }
    }

    Scheme scheme_;
    double threshold_;
    DataType type_;
    std::unique_ptr<CodecSystem> codec_;
    std::vector<Word> hot_;
};

TEST_P(SchemeProperties, InvariantsHoldOverRandomStream)
{
    Rng rng(991);
    const double bound =
        threshold_ > 0 ? threshold_ / (100.0 - threshold_) + 1e-9 : 0.0;
    Cycle t = 0;

    for (int i = 0; i < 1500; ++i) {
        bool approximable = rng.chance(0.75);
        DataBlock b = make_block(rng, type_, hot_, approximable);
        NodeId src = static_cast<NodeId>(rng.next(8));
        NodeId dst = static_cast<NodeId>(rng.next(8));
        if (src == dst)
            continue;

        EncodedBlock enc = codec_->encode(b, src, dst, t);
        DataBlock out = codec_->decode(enc, src, dst, t);
        t += static_cast<Cycle>(rng.next(40));

        // (5) accounting.
        ASSERT_EQ(enc.wordCount(), b.size());
        ASSERT_EQ(out.size(), b.size());
        ASSERT_EQ(enc.exactCompressedWords() + enc.approximatedWords() +
                      enc.uncompressedWords(),
                  b.size());

        // (3) no expansion.
        ASSERT_LE(enc.bits(), b.sizeBits());

        if (!approximable || scheme_ == Scheme::Baseline ||
            scheme_ == Scheme::DiComp || scheme_ == Scheme::FpComp) {
            // (1) exactness.
            ASSERT_TRUE(out.sameBits(b))
                << "lossless path altered data, block " << i;
            ASSERT_EQ(enc.approximatedWords(), 0u);
        } else {
            // (2) error bound per word.
            for (std::size_t j = 0; j < b.size(); ++j) {
                if (b.word(j) == out.word(j))
                    continue;
                double p, a;
                if (type_ == DataType::Float32) {
                    p = b.floatAt(j);
                    a = out.floatAt(j);
                } else {
                    p = b.intAt(j);
                    a = out.intAt(j);
                }
                ASSERT_NE(p, 0.0) << "zero words must stay exact";
                ASSERT_TRUE(std::isfinite(p) && std::isfinite(a))
                    << "specials must stay exact";
                ASSERT_LE(std::fabs(a - p), std::fabs(p) * bound)
                    << "word " << j << ": " << p << " -> " << a;
            }
        }
    }
    // (4) consistency.
    EXPECT_EQ(codec_->consistencyMismatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchemeProperties,
    ::testing::Combine(::testing::Values(Scheme::Baseline, Scheme::DiComp,
                                         Scheme::DiVaxx, Scheme::FpComp,
                                         Scheme::FpVaxx),
                       ::testing::Values(0.0, 5.0, 10.0, 20.0),
                       ::testing::Values(DataType::Int32,
                                         DataType::Float32)),
    combo_name);

// ---------------------------------------------------------------------------
// Per-flow isolation (the CodecSystem contract behind
// harness::FlowShardedEncoder, compression/codec.h): traffic on flow
// A = (0 -> 1) must leave flow B = (2 -> 3)'s encoder and decoder
// state untouched. We drive B's stream through two identically
// configured codecs — one that also carries A's stream, interleaved
// block-by-block — and require B's encoded words and decoded blocks to
// match bit-exactly throughout, then prove the *final* dictionary
// state is identical with a probe wave of fresh encodes. Parameterized
// over the stateful dictionary schemes, whose PMTs are where
// cross-flow leakage would show up.

namespace {

void
expect_same_stream(const EncodedBlock &x, const EncodedBlock &y, int i)
{
    ASSERT_EQ(x.words().size(), y.words().size()) << "block " << i;
    for (std::size_t w = 0; w < x.words().size(); ++w) {
        const EncodedWord &a = x.words()[w];
        const EncodedWord &b = y.words()[w];
        ASSERT_EQ(a.kind, b.kind) << "block " << i << " word " << w;
        ASSERT_EQ(a.bits, b.bits) << "block " << i << " word " << w;
        ASSERT_EQ(a.payload, b.payload) << "block " << i << " word " << w;
        ASSERT_EQ(a.run, b.run) << "block " << i << " word " << w;
        ASSERT_EQ(a.approx_count, b.approx_count)
            << "block " << i << " word " << w;
        ASSERT_EQ(a.decoded, b.decoded) << "block " << i << " word " << w;
        ASSERT_EQ(a.approximated, b.approximated)
            << "block " << i << " word " << w;
        ASSERT_EQ(a.uncompressed, b.uncompressed)
            << "block " << i << " word " << w;
    }
}

} // namespace

class FlowIsolation : public ::testing::TestWithParam<Scheme>
{
  protected:
    static std::unique_ptr<CodecSystem>
    make_codec(Scheme scheme)
    {
        CodecConfig cc;
        cc.n_nodes = 8;
        cc.error_threshold_pct = 10.0;
        return CodecFactory::create(scheme, cc);
    }

    static std::vector<Word>
    make_hot(std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Word> hot;
        for (int i = 0; i < 6; ++i)
            hot.push_back(0x3F800000u +
                          static_cast<Word>(rng.next(1u << 22)));
        return hot;
    }
};

TEST_P(FlowIsolation, ForeignFlowLeavesStateUntouched)
{
    constexpr NodeId kASrc = 0, kADst = 1, kBSrc = 2, kBDst = 3;
    auto with_a = make_codec(GetParam()); // carries A and B
    auto b_only = make_codec(GetParam()); // carries B alone

    // Disjoint hot sets so A's stream would visibly corrupt B's PMTs
    // if any state were shared.
    std::vector<Word> hot_a = make_hot(17);
    std::vector<Word> hot_b = make_hot(4242);
    Rng rng_a(5), rng_b(6), rng_t(7);

    Cycle t = 0;
    for (int i = 0; i < 400; ++i) {
        bool approx = (i % 4) != 0;
        DataBlock ba = make_block(rng_a, DataType::Float32, hot_a, approx);
        DataBlock bb = make_block(rng_b, DataType::Float32, hot_b, approx);

        // A's traffic only exists in with_a.
        EncodedBlock ea = with_a->encode(ba, kASrc, kADst, t);
        with_a->decode(ea, kASrc, kADst, t);

        // B sees the identical (block, cycle) sequence in both codecs.
        EncodedBlock e1 = with_a->encode(bb, kBSrc, kBDst, t);
        EncodedBlock e2 = b_only->encode(bb, kBSrc, kBDst, t);
        expect_same_stream(e1, e2, i);

        DataBlock d1 = with_a->decode(e1, kBSrc, kBDst, t);
        DataBlock d2 = b_only->decode(e2, kBSrc, kBDst, t);
        ASSERT_TRUE(d1.sameBits(d2)) << "decode diverged at block " << i;

        t += static_cast<Cycle>(rng_t.next(40));
    }

    // Probe wave: fresh blocks, encode-only. Identical streams here
    // mean B's final encoder state (PMT contents, replacement
    // metadata, drained update FIFO) is identical — not just the
    // per-block outputs above.
    t += 100000; // flush any in-flight decoder notifications
    for (int i = 0; i < 50; ++i) {
        DataBlock bb = make_block(rng_b, DataType::Float32, hot_b, true);
        EncodedBlock e1 = with_a->encode(bb, kBSrc, kBDst, t);
        EncodedBlock e2 = b_only->encode(bb, kBSrc, kBDst, t);
        expect_same_stream(e1, e2, 1000 + i);
        t += 13;
    }

    EXPECT_EQ(with_a->consistencyMismatches(), 0u);
    EXPECT_EQ(b_only->consistencyMismatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(DictionarySchemes, FlowIsolation,
                         ::testing::Values(Scheme::DiComp, Scheme::DiVaxx),
                         [](const ::testing::TestParamInfo<Scheme> &info) {
                             std::string s = to_string(info.param);
                             for (auto &c : s)
                                 if (c == '-')
                                     c = '_';
                             return s;
                         });
