/**
 * Cross-scheme property sweep: the DESIGN.md invariants checked for
 * every (scheme, threshold, data type) combination on randomized,
 * value-local block streams.
 *
 *  1. decode(encode(x)) == x bit-exactly for non-approximable blocks;
 *  2. every approximated word stays within the shift-mode error bound
 *     e / (100 - e);
 *  3. compression never expands a block;
 *  4. the encoder's expectation always matches the decoder's view
 *     (consistencyMismatches == 0);
 *  5. bit accounting is internally consistent (word counts, fractions).
 */
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/codec_factory.h"

using namespace approxnoc;

namespace {

using Combo = std::tuple<Scheme, double, DataType>;

std::string
combo_name(const ::testing::TestParamInfo<Combo> &info)
{
    auto [scheme, threshold, type] = info.param;
    std::string s = to_string(scheme) + "_t" +
                    std::to_string(static_cast<int>(threshold)) + "_" +
                    to_string(type);
    for (auto &c : s)
        if (c == '-')
            c = '_';
    return s;
}

/** Value-local stream mixing exact repeats, near values and noise. */
DataBlock
make_block(Rng &rng, DataType type, const std::vector<Word> &hot,
           bool approximable)
{
    std::vector<Word> ws(16);
    for (auto &w : ws) {
        double roll = rng.uniform();
        if (roll < 0.35) {
            w = hot[rng.next(hot.size())];
        } else if (roll < 0.6) {
            Word base = hot[rng.next(hot.size())];
            w = base ^ static_cast<Word>(rng.next(1u << 6));
        } else if (roll < 0.75) {
            w = 0;
        } else {
            w = static_cast<Word>(rng.bits());
            if (type == DataType::Float32)
                w = (w & 0x7FFFFFFF) | 0x20000000; // keep it normal-ish
        }
    }
    return DataBlock(std::move(ws), type, approximable);
}

} // namespace

class SchemeProperties : public ::testing::TestWithParam<Combo>
{
  protected:
    void
    SetUp() override
    {
        auto [scheme, threshold, type] = GetParam();
        scheme_ = scheme;
        threshold_ = threshold;
        type_ = type;
        CodecConfig cc;
        cc.n_nodes = 8;
        cc.error_threshold_pct = threshold;
        codec_ = CodecFactory::create(scheme, cc);

        Rng seeder(static_cast<std::uint64_t>(threshold * 7 + 3));
        for (int i = 0; i < 6; ++i) {
            Word w = type_ == DataType::Float32
                         ? (0x3F800000u +
                            static_cast<Word>(seeder.next(1u << 22)))
                         : static_cast<Word>(seeder.range(500, 5000000));
            hot_.push_back(w);
        }
    }

    Scheme scheme_;
    double threshold_;
    DataType type_;
    std::unique_ptr<CodecSystem> codec_;
    std::vector<Word> hot_;
};

TEST_P(SchemeProperties, InvariantsHoldOverRandomStream)
{
    Rng rng(991);
    const double bound =
        threshold_ > 0 ? threshold_ / (100.0 - threshold_) + 1e-9 : 0.0;
    Cycle t = 0;

    for (int i = 0; i < 1500; ++i) {
        bool approximable = rng.chance(0.75);
        DataBlock b = make_block(rng, type_, hot_, approximable);
        NodeId src = static_cast<NodeId>(rng.next(8));
        NodeId dst = static_cast<NodeId>(rng.next(8));
        if (src == dst)
            continue;

        EncodedBlock enc = codec_->encode(b, src, dst, t);
        DataBlock out = codec_->decode(enc, src, dst, t);
        t += static_cast<Cycle>(rng.next(40));

        // (5) accounting.
        ASSERT_EQ(enc.wordCount(), b.size());
        ASSERT_EQ(out.size(), b.size());
        ASSERT_EQ(enc.exactCompressedWords() + enc.approximatedWords() +
                      enc.uncompressedWords(),
                  b.size());

        // (3) no expansion.
        ASSERT_LE(enc.bits(), b.sizeBits());

        if (!approximable || scheme_ == Scheme::Baseline ||
            scheme_ == Scheme::DiComp || scheme_ == Scheme::FpComp) {
            // (1) exactness.
            ASSERT_TRUE(out.sameBits(b))
                << "lossless path altered data, block " << i;
            ASSERT_EQ(enc.approximatedWords(), 0u);
        } else {
            // (2) error bound per word.
            for (std::size_t j = 0; j < b.size(); ++j) {
                if (b.word(j) == out.word(j))
                    continue;
                double p, a;
                if (type_ == DataType::Float32) {
                    p = b.floatAt(j);
                    a = out.floatAt(j);
                } else {
                    p = b.intAt(j);
                    a = out.intAt(j);
                }
                ASSERT_NE(p, 0.0) << "zero words must stay exact";
                ASSERT_TRUE(std::isfinite(p) && std::isfinite(a))
                    << "specials must stay exact";
                ASSERT_LE(std::fabs(a - p), std::fabs(p) * bound)
                    << "word " << j << ": " << p << " -> " << a;
            }
        }
    }
    // (4) consistency.
    EXPECT_EQ(codec_->consistencyMismatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchemeProperties,
    ::testing::Combine(::testing::Values(Scheme::Baseline, Scheme::DiComp,
                                         Scheme::DiVaxx, Scheme::FpComp,
                                         Scheme::FpVaxx),
                       ::testing::Values(0.0, 5.0, 10.0, 20.0),
                       ::testing::Values(DataType::Int32,
                                         DataType::Float32)),
    combo_name);
