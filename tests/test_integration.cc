/**
 * Cross-feature integration: extension codecs plugged into the full
 * network, invalid configuration rejection, and end-to-end stat
 * coherence across traffic modes.
 */
#include <gtest/gtest.h>

#include "approx/window_vaxx.h"
#include "compression/adaptive.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "noc/qos_loop.h"
#include "sim/simulator.h"
#include "traffic/closed_loop.h"
#include "traffic/data_provider.h"
#include "traffic/synthetic.h"

using namespace approxnoc;

namespace {

void
run_traffic(Network &net, Simulator &sim, double rate, Cycle cycles,
            DataType type = DataType::Int32)
{
    SyntheticConfig tc;
    tc.injection_rate = rate;
    tc.data_packet_ratio = 0.5;
    SyntheticDataProvider provider(type, 16, 0.9, 3.0, 7, 0.7, 8);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);
    sim.run(cycles);
    gen.setEnabled(false);
    ASSERT_TRUE(sim.runUntil([&] { return net.drained(); }, 300000));
}

} // namespace

TEST(Integration, WindowVaxxDrivesTheNetwork)
{
    NocConfig cfg;
    WindowVaxxCodec codec{ErrorModel(10.0)};
    Network net(cfg, &codec);
    Simulator sim;
    net.attach(sim);
    run_traffic(net, sim, 0.15, 15000, DataType::Float32);
    EXPECT_GT(net.stats().packets_delivered.value(), 1000u);
    EXPECT_EQ(codec.consistencyMismatches(), 0u);
    EXPECT_GT(net.stats().quality.compressionRatio(), 1.0);
    EXPECT_LE(net.stats().quality.meanRelativeError(), 0.10);
}

TEST(Integration, AdaptiveWrappedDictionaryDrivesTheNetwork)
{
    NocConfig cfg;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    AdaptiveConfig acfg;
    acfg.n_nodes = cfg.nodes();
    AdaptiveCodec codec(CodecFactory::create(Scheme::DiVaxx, cc), acfg);
    Network net(cfg, &codec);
    Simulator sim;
    net.attach(sim);
    run_traffic(net, sim, 0.15, 15000);
    EXPECT_GT(net.stats().packets_delivered.value(), 1000u);
    EXPECT_EQ(codec.consistencyMismatches(), 0u);
}

TEST(Integration, QosLoopOnTorusWithClosedLoopTraffic)
{
    NocConfig cfg;
    cfg.topology = Topology::Torus;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    cc.error_threshold_pct = 20.0;
    auto codec = CodecFactory::create(Scheme::FpVaxx, cc);
    Network net(cfg, codec.get());
    Simulator sim;
    net.attach(sim);

    ClosedLoopConfig lc;
    lc.window = 4;
    SyntheticDataProvider provider(DataType::Float32, 16, 0.9, 3.0, 7,
                                   0.7, 8);
    ClosedLoopTraffic gen(net, lc, provider);
    sim.add(&gen);
    ErrorControlLoop loop(net, QosController(0.1, 20.0), 1000);
    sim.add(&loop);

    sim.run(25000);
    gen.setEnabled(false);
    ASSERT_TRUE(sim.runUntil(
        [&] { return gen.quiesced() && net.drained(); }, 300000));
    EXPECT_GT(gen.repliesReceived(), 1000u);
    EXPECT_EQ(codec->consistencyMismatches(), 0u);
}

TEST(Integration, WestFirstTorusComboDies)
{
    NocConfig cfg;
    cfg.topology = Topology::Torus;
    cfg.routing = RoutingAlgo::WestFirst;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    auto codec = CodecFactory::create(Scheme::Baseline, cc);
    EXPECT_DEATH({ Network net(cfg, codec.get()); },
                 "only valid on a mesh");
}

TEST(Integration, StatsResetStartsCleanWindow)
{
    NocConfig cfg;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    auto codec = CodecFactory::create(Scheme::FpComp, cc);
    Network net(cfg, codec.get());
    Simulator sim;
    net.attach(sim);

    SyntheticConfig tc;
    tc.injection_rate = 0.1;
    SyntheticDataProvider provider(DataType::Int32);
    SyntheticTraffic gen(net, tc, provider);
    sim.add(&gen);
    sim.run(5000);
    EXPECT_GT(net.stats().packets_delivered.value(), 0u);
    net.stats().reset();
    EXPECT_EQ(net.stats().packets_delivered.value(), 0u);
    EXPECT_EQ(net.stats().total_lat.count(), 0u);
    sim.run(5000);
    EXPECT_GT(net.stats().packets_delivered.value(), 0u);
}
