/**
 * Failure-injection tests: the decoders must detect (count) corrupted
 * or inconsistent NRs without crashing or silently propagating
 * garbage, and the network must survive pathological inputs.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/codec_factory.h"
#include "noc/network.h"
#include "sim/simulator.h"

using namespace approxnoc;

namespace {

EncodedWord
tampered(EncodedWord w, std::uint32_t new_payload)
{
    w.payload = new_payload;
    return w;
}

} // namespace

TEST(FaultInjection, DictionaryDetectsCorruptIndex)
{
    DictionaryConfig dict;
    dict.n_nodes = 4;
    DiCompCodec codec(dict);

    // Train a pattern so compressed words appear.
    DataBlock b({0xABCD, 0xABCD}, DataType::Int32, false);
    Cycle t = 0;
    for (int i = 0; i < 4; ++i) {
        codec.decode(codec.encode(b, 0, 1, t), 0, 1, t);
        t += 60;
    }
    EncodedBlock enc = codec.encode(b, 0, 1, t);
    ASSERT_EQ(enc.uncompressedWords(), 0u) << "training failed";

    // Corrupt the index of every compressed word (bit flip in flight).
    EncodedBlock bad;
    for (const auto &w : enc.words())
        bad.append(tampered(w, w.payload ^ 0x7u));
    bad.setMeta(enc.type(), enc.approximable());

    std::uint64_t before = codec.consistencyMismatches();
    DataBlock out = codec.decode(bad, 0, 1, t);
    EXPECT_GT(codec.consistencyMismatches(), before)
        << "corruption must be detected";
    EXPECT_EQ(out.size(), b.size()) << "decode must not crash or truncate";
}

TEST(FaultInjection, DictionaryDetectsUnknownIndexFromUntrainedPair)
{
    DictionaryConfig dict;
    dict.n_nodes = 4;
    DiCompCodec codec(dict);
    // Hand-craft a compressed reference to a never-trained index.
    EncodedBlock forged;
    EncodedWord ew;
    ew.kind = static_cast<std::uint8_t>(DiWordKind::Compressed);
    ew.bits = 4;
    ew.payload = 5; // index 5 was never installed
    ew.decoded = 0x1234;
    forged.append(ew);
    forged.setMeta(DataType::Int32, false);

    DataBlock out = codec.decode(forged, 2, 3, 0);
    EXPECT_EQ(codec.consistencyMismatches(), 1u);
    EXPECT_EQ(out.size(), 1u);
}

TEST(FaultInjection, LostNotificationOnlyCostsCompression)
{
    // Drop every decoder->encoder notification (e.g. a filtered
    // control channel): data must stay exact; only compression is lost.
    DictionaryConfig dict;
    dict.n_nodes = 4;
    dict.notify_delay = 1000000; // never applies within the test
    DiCompCodec codec(dict);
    Rng rng(133);
    Cycle t = 0;
    for (int i = 0; i < 500; ++i) {
        std::vector<Word> ws(8);
        for (auto &w : ws)
            w = rng.chance(0.7) ? 0x42u : static_cast<Word>(rng.bits());
        DataBlock b(ws, DataType::Int32, false);
        DataBlock out = codec.decode(codec.encode(b, 0, 1, t), 0, 1, t);
        ASSERT_TRUE(out.sameBits(b));
        t += 5;
    }
    EXPECT_EQ(codec.consistencyMismatches(), 0u);
}

TEST(FaultInjection, AllSpecialFloatBlockSurvivesEveryScheme)
{
    std::vector<Word> specials = {0x7F800000, 0xFF800000, 0x7FC00000,
                                  0x00000000, 0x80000000, 0x00000001,
                                  0x7FFFFFFF, 0xFFC00001};
    specials.resize(16, 0x7FC00000);
    DataBlock b(specials, DataType::Float32, true);
    for (Scheme s : kAllSchemes) {
        CodecConfig cc;
        cc.n_nodes = 4;
        cc.error_threshold_pct = 20.0;
        auto codec = CodecFactory::create(s, cc);
        Cycle t = 0;
        for (int i = 0; i < 5; ++i) {
            DataBlock out = codec->decode(codec->encode(b, 0, 1, t), 0, 1, t);
            ASSERT_TRUE(out.sameBits(b)) << to_string(s);
            t += 60;
        }
    }
}

TEST(FaultInjection, EmptyAndSingleWordBlocks)
{
    for (Scheme s : kAllSchemes) {
        CodecConfig cc;
        cc.n_nodes = 4;
        auto codec = CodecFactory::create(s, cc);
        DataBlock empty(0, DataType::Int32, true);
        EncodedBlock e0 = codec->encode(empty, 0, 1, 0);
        EXPECT_EQ(e0.bits(), 0u) << to_string(s);
        EXPECT_EQ(codec->decode(e0, 0, 1, 0).size(), 0u);

        DataBlock one({0xFFFFFFFF}, DataType::Int32, true);
        DataBlock out = codec->decode(codec->encode(one, 0, 1, 0), 0, 1, 0);
        ASSERT_EQ(out.size(), 1u) << to_string(s);
    }
}

TEST(FaultInjection, BurstToSingleVictimDrains)
{
    // Every node floods one victim simultaneously: the ejection port
    // serializes, queues grow, but everything must still drain.
    NocConfig cfg;
    CodecConfig cc;
    cc.n_nodes = cfg.nodes();
    auto codec = CodecFactory::create(Scheme::FpVaxx, cc);
    Network net(cfg, codec.get());
    Simulator sim;
    net.attach(sim);
    DataBlock blk(std::vector<Word>(16, 7), DataType::Int32, true);
    for (NodeId src = 1; src < cfg.nodes(); ++src)
        for (int k = 0; k < 20; ++k)
            net.inject(net.makeDataPacket(src, 0, blk), 0);
    ASSERT_TRUE(sim.runUntil([&] { return net.drained(); }, 500000));
    EXPECT_EQ(net.stats().packets_delivered.value(), 31u * 20u);
}
