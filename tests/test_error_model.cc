/** ErrorModel and AVCL tests, including the error-bound invariant. */
#include <cmath>
#include <gtest/gtest.h>

#include "approx/avcl.h"
#include "approx/error_model.h"
#include "common/bits.h"
#include "common/rng.h"

using namespace approxnoc;

TEST(ErrorModel, ShiftBits)
{
    EXPECT_EQ(ErrorModel(10.0).shiftBits(), 4u);  // ceil(log2(10))
    EXPECT_EQ(ErrorModel(20.0).shiftBits(), 3u);  // ceil(log2(5))
    EXPECT_EQ(ErrorModel(5.0).shiftBits(), 5u);   // ceil(log2(20))
    EXPECT_EQ(ErrorModel(25.0).shiftBits(), 2u);  // ceil(log2(4))
    EXPECT_EQ(ErrorModel(50.0).shiftBits(), 1u);
}

TEST(ErrorModel, DisabledAtZeroThreshold)
{
    ErrorModel em(0.0);
    EXPECT_FALSE(em.enabled());
    EXPECT_EQ(em.errorRange(1000000), 0u);
    EXPECT_EQ(em.dontCareBits(1000000), 0u);
}

TEST(ErrorModel, PaperShiftExample)
{
    // Paper Sec. 3.2: threshold 25%, value 128 -> error range 32.
    ErrorModel em(25.0, ErrorRangeMode::Shift);
    EXPECT_EQ(em.errorRange(128), 32u);
}

TEST(ErrorModel, ShiftIsConservativeVsExact)
{
    Rng rng(3);
    for (double e : {5.0, 10.0, 20.0, 25.0, 33.0}) {
        ErrorModel shift(e, ErrorRangeMode::Shift);
        ErrorModel exact(e, ErrorRangeMode::Exact);
        for (int i = 0; i < 2000; ++i) {
            std::uint64_t v = rng.next(1ull << 32);
            EXPECT_LE(shift.errorRange(v), exact.errorRange(v))
                << "e=" << e << " v=" << v;
        }
    }
}

TEST(ErrorModel, ErrorRangeWithinThreshold)
{
    Rng rng(5);
    for (double e : {5.0, 10.0, 20.0}) {
        ErrorModel em(e, ErrorRangeMode::Shift);
        for (int i = 0; i < 2000; ++i) {
            std::uint64_t v = 1 + rng.next(1ull << 31);
            double rel = static_cast<double>(em.errorRange(v)) /
                         static_cast<double>(v);
            EXPECT_LE(rel, e / 100.0 + 1e-12);
        }
    }
}

TEST(ErrorModel, DontCareBitsBound)
{
    Rng rng(9);
    for (double e : {5.0, 10.0, 20.0}) {
        ErrorModel em(e);
        for (int i = 0; i < 2000; ++i) {
            std::uint64_t v = 1 + rng.next(1ull << 31);
            unsigned k = em.dontCareBits(v);
            // Flipping all k low bits changes the value by at most
            // 2^k - 1, which must sit inside the error range.
            EXPECT_LE((1ull << k) - 1, em.errorRange(v));
        }
    }
}

TEST(Avcl, RawAndNonFiniteBypass)
{
    Avcl avcl{ErrorModel(10.0)};
    EXPECT_TRUE(avcl.analyze(12345, DataType::Raw).bypass);
    EXPECT_TRUE(avcl.analyze(0x7F800000, DataType::Float32).bypass); // inf
    EXPECT_TRUE(avcl.analyze(0x7FC00000, DataType::Float32).bypass); // NaN
    EXPECT_TRUE(avcl.analyze(0x00000000, DataType::Float32).bypass); // 0
    EXPECT_TRUE(avcl.analyze(0x00000001, DataType::Float32).bypass); // denorm
}

TEST(Avcl, SmallIntegersBypass)
{
    // errorRange(small) = 0 -> no don't-care bits -> bypass.
    Avcl avcl{ErrorModel(10.0)};
    for (Word w : {0u, 1u, 5u, 15u})
        EXPECT_TRUE(avcl.analyze(w, DataType::Int32).bypass) << w;
}

TEST(Avcl, IntErrorBoundInvariant)
{
    Rng rng(21);
    for (double e : {5.0, 10.0, 20.0}) {
        Avcl avcl{ErrorModel(e)};
        for (int i = 0; i < 5000; ++i) {
            auto v = static_cast<std::int32_t>(rng.range(-2000000000, 2000000000));
            Word w = static_cast<Word>(v);
            auto d = avcl.analyze(w, DataType::Int32);
            if (d.bypass)
                continue;
            // Any value reachable by changing the k don't-care bits
            // stays within e% of the original magnitude.
            std::uint64_t max_change = (1ull << d.dont_care_bits) - 1;
            double mag = std::abs(static_cast<double>(v));
            EXPECT_LE(static_cast<double>(max_change), mag * e / 100.0 + 1e-9)
                << "v=" << v << " e=" << e;
        }
    }
}

TEST(Avcl, FloatErrorBoundInvariant)
{
    Rng rng(23);
    for (double e : {5.0, 10.0, 20.0}) {
        Avcl avcl{ErrorModel(e)};
        for (int i = 0; i < 5000; ++i) {
            float f = static_cast<float>(rng.uniform(-1e20, 1e20));
            Word w = std::bit_cast<Word>(f);
            auto d = avcl.analyze(w, DataType::Float32);
            if (d.bypass)
                continue;
            ASSERT_LE(d.dont_care_bits, 23u)
                << "don't-cares must stay in the mantissa";
            // Perturb the mantissa maximally within the mask: the float
            // value must stay within e%.
            Word w2 = w ^ low_mask32(d.dont_care_bits);
            float f2 = std::bit_cast<float>(w2);
            EXPECT_LE(std::abs(f2 - f), std::abs(f) * e / 100.0 * 1.0001f)
                << "f=" << f;
        }
    }
}

TEST(Avcl, PatternForCanonicalizes)
{
    Avcl avcl{ErrorModel(20.0)};
    // 1000 with 20% threshold: range = 1000 >> 3 = 125 -> k = 6.
    TernaryPattern p = avcl.patternFor(1000, DataType::Int32);
    EXPECT_EQ(p.mask, low_mask32(6));
    EXPECT_EQ(p.value & p.mask, 0u) << "canonical form zeroes masked bits";
    EXPECT_TRUE(p.matches(1000));
    EXPECT_TRUE(p.matches(1000 ^ 0x3F));
    EXPECT_FALSE(p.matches(1000 + 64));
}

TEST(Avcl, ActivationsCounted)
{
    Avcl avcl{ErrorModel(10.0)};
    EXPECT_EQ(avcl.activations(), 0u);
    avcl.analyze(100, DataType::Int32);
    avcl.analyze(100, DataType::Int32);
    EXPECT_EQ(avcl.activations(), 2u);
}
