/** FP-VAXX codec tests: approximation gains, error bound, bypasses. */
#include <cmath>
#include <gtest/gtest.h>

#include "approx/fp_vaxx.h"
#include "common/rng.h"

using namespace approxnoc;

namespace {

/** Relative-error ceiling for shift-mode VAXX: e / (100 - e). */
double
bound_for(double e_pct)
{
    return e_pct / (100.0 - e_pct) + 1e-9;
}

} // namespace

TEST(FpVaxx, NonApproximableBlocksAreExact)
{
    FpVaxxCodec codec{ErrorModel(10.0)};
    Rng rng(51);
    for (int i = 0; i < 300; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = static_cast<Word>(rng.bits());
        DataBlock b(ws, DataType::Int32, /*approximable=*/false);
        EncodedBlock enc = codec.encode(b, 0, 1, 0);
        EXPECT_EQ(enc.approximatedWords(), 0u);
        DataBlock out = codec.decode(enc, 0, 1, 0);
        EXPECT_TRUE(out.sameBits(b));
    }
}

TEST(FpVaxx, ApproximationImprovesCompression)
{
    // Values just outside the Sign8 window compress only with VAXX.
    std::vector<std::int32_t> vals;
    for (int i = 0; i < 16; ++i)
        vals.push_back(300 + i); // needs 9+ bits exact, 8 after approx? no:
    // 300 >> 4 (10%) = 18 -> k = 4: candidate can zero low 4 bits ->
    // 304/288... Sign16 matches exactly anyway; use larger values that
    // only HalfPadded can catch after approximation.
    vals.clear();
    for (int i = 0; i < 16; ++i)
        vals.push_back((0x00770000 | (i * 16))); // low halfword small
    DataBlock precise = DataBlock::fromInts(vals, true);

    FpcCodec exact;
    FpVaxxCodec vaxx{ErrorModel(10.0)};
    EncodedBlock e1 = exact.encode(precise, 0, 1, 0);
    EncodedBlock e2 = vaxx.encode(precise, 0, 1, 0);
    EXPECT_LT(e2.bits(), e1.bits());
    EXPECT_GT(e2.approximatedWords(), 0u);
}

TEST(FpVaxx, IntErrorBoundHolds)
{
    Rng rng(53);
    for (double e : {5.0, 10.0, 20.0}) {
        FpVaxxCodec codec{ErrorModel(e)};
        for (int i = 0; i < 800; ++i) {
            std::vector<std::int32_t> vals(16);
            for (auto &v : vals)
                v = static_cast<std::int32_t>(rng.range(-100000, 100000));
            DataBlock b = DataBlock::fromInts(vals, true);
            EncodedBlock enc = codec.encode(b, 0, 1, 0);
            DataBlock out = codec.decode(enc, 0, 1, 0);
            for (std::size_t j = 0; j < b.size(); ++j) {
                double p = b.intAt(j), a = out.intAt(j);
                if (p == 0.0) {
                    EXPECT_EQ(a, 0.0);
                } else {
                    EXPECT_LE(std::abs(a - p), std::abs(p) * bound_for(e))
                        << "word " << j << " " << p << " -> " << a;
                }
            }
        }
    }
}

TEST(FpVaxx, FloatErrorBoundHolds)
{
    Rng rng(57);
    for (double e : {5.0, 10.0, 20.0}) {
        FpVaxxCodec codec{ErrorModel(e)};
        for (int i = 0; i < 800; ++i) {
            std::vector<float> vals(16);
            for (auto &v : vals)
                v = static_cast<float>(rng.uniform(-1e9, 1e9));
            DataBlock b = DataBlock::fromFloats(vals, true);
            EncodedBlock enc = codec.encode(b, 0, 1, 0);
            DataBlock out = codec.decode(enc, 0, 1, 0);
            for (std::size_t j = 0; j < b.size(); ++j) {
                float p = b.floatAt(j), a = out.floatAt(j);
                EXPECT_LE(std::abs(a - p), std::abs(p) * bound_for(e))
                    << p << " -> " << a;
            }
        }
    }
}

TEST(FpVaxx, FloatSpecialsAreBitExact)
{
    FpVaxxCodec codec{ErrorModel(20.0)};
    std::vector<Word> ws = {
        0x00000000, // +0
        0x80000000, // -0
        0x7F800000, // +inf
        0xFF800000, // -inf
        0x7FC00000, // NaN
        0x00000001, // denormal
        0x000FFFFF, // denormal
        0x00000000,
    };
    DataBlock b(ws, DataType::Float32, true);
    EncodedBlock enc = codec.encode(b, 0, 1, 0);
    DataBlock out = codec.decode(enc, 0, 1, 0);
    EXPECT_TRUE(out.sameBits(b)) << "specials must bypass approximation";
}

TEST(FpVaxx, ZeroThresholdDegeneratesToFpc)
{
    Rng rng(59);
    FpVaxxCodec vaxx{ErrorModel(0.0)};
    FpcCodec fpc;
    for (int i = 0; i < 500; ++i) {
        std::vector<Word> ws(16);
        for (auto &w : ws)
            w = static_cast<Word>(rng.bits() & 0xFFFF);
        DataBlock b(ws, DataType::Int32, true);
        EncodedBlock ev = vaxx.encode(b, 0, 1, 0);
        EncodedBlock ef = fpc.encode(b, 0, 1, 0);
        EXPECT_EQ(ev.bits(), ef.bits());
        EXPECT_EQ(ev.approximatedWords(), 0u);
    }
}

TEST(FpVaxx, HigherThresholdCompressesMore)
{
    Rng rng(61);
    std::vector<std::size_t> bits;
    for (double e : {0.0, 5.0, 10.0, 20.0}) {
        FpVaxxCodec codec{ErrorModel(e)};
        std::size_t total = 0;
        Rng local(61);
        for (int i = 0; i < 400; ++i) {
            std::vector<std::int32_t> vals(16);
            for (auto &v : vals)
                v = static_cast<std::int32_t>(local.range(0, 1 << 20));
            DataBlock b = DataBlock::fromInts(vals, true);
            total += codec.encode(b, 0, 1, 0).bits();
        }
        bits.push_back(total);
    }
    for (std::size_t i = 1; i < bits.size(); ++i)
        EXPECT_LE(bits[i], bits[i - 1])
            << "larger error budget must not hurt compression";
}

TEST(FpVaxx, PreferExactAvoidsNeedlessError)
{
    // A word that matches Sign16 exactly but ZeroRun approximately
    // would be approximated under PreferApprox (paper behaviour).
    std::vector<std::int32_t> vals(16, 20); // 20 >> 3 = 2 -> k=1;
    // With e=20%: k=1, so 20 -> cannot reach zero; use tiny value 1.
    // value 1: range 0 -> bypass. Construct: value 6 with e=50%:
    // range = 3 -> k=2 -> 6&~3=4 != 0. Zero unreachable; rely on Sign4:
    // 6 matches Sign4 exactly anyway. Use a case where approx changes
    // value: 0x00770008, e=20% -> k up to 0x77.. >>3 big -> HalfPadded
    // approximates low bits away, while TwoHalfSign8 matches exactly.
    std::vector<Word> ws(16, 0x00770008u);
    DataBlock b(ws, DataType::Int32, true);

    FpVaxxCodec paper{ErrorModel(20.0), FpcPriorityMode::PreferApprox};
    FpVaxxCodec exact{ErrorModel(20.0), FpcPriorityMode::PreferExact};

    EncodedBlock ep = paper.encode(b, 0, 1, 0);
    EncodedBlock ee = exact.encode(b, 0, 1, 0);
    EXPECT_GT(ep.approximatedWords(), 0u)
        << "paper mode takes the higher-priority approximate match";
    EXPECT_EQ(ee.approximatedWords(), 0u)
        << "PreferExact keeps the exact lower-priority match";
    DataBlock out = exact.decode(ee, 0, 1, 0);
    EXPECT_TRUE(out.sameBits(b));
}
