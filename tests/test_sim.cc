/** Simulation kernel tests: event queue ordering, two-phase stepping. */
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "telemetry/phase_profiler.h"

using namespace approxnoc;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&](Cycle) { fired.push_back(2); });
    q.schedule(5, [&](Cycle) { fired.push_back(1); });
    q.schedule(20, [&](Cycle) { fired.push_back(3); });

    q.runUntil(4);
    EXPECT_TRUE(fired.empty());
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    q.runUntil(100);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&fired, i](Cycle) { fired.push_back(i); });
    q.runUntil(7);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kNeverCycle);
    q.schedule(42, [](Cycle) {});
    EXPECT_EQ(q.nextEventCycle(), 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&](Cycle now) {
        ++count;
        q.scheduleAfter(now, 1, [&](Cycle) { ++count; });
    });
    q.runUntil(1);
    EXPECT_EQ(count, 1);
    q.runUntil(2);
    EXPECT_EQ(count, 2);
}

namespace {

/** Records the phase interleaving across two components. */
class PhaseProbe : public Clocked
{
  public:
    PhaseProbe(std::vector<std::string> &log, std::string tag)
        : Clocked("probe" + tag), log_(log), tag_(std::move(tag))
    {}
    void evaluate(Cycle) override { log_.push_back("e" + tag_); }
    void advance(Cycle) override { log_.push_back("a" + tag_); }

  private:
    std::vector<std::string> &log_;
    std::string tag_;
};

} // namespace

TEST(Simulator, TwoPhaseOrdering)
{
    Simulator sim;
    std::vector<std::string> log;
    PhaseProbe p1(log, "1"), p2(log, "2");
    sim.add(&p1);
    sim.add(&p2);
    sim.step();
    EXPECT_EQ(log, (std::vector<std::string>{"e1", "e2", "a1", "a2"}))
        << "all evaluates must precede all advances";
    EXPECT_EQ(sim.now(), 1u);
}

TEST(Simulator, RunCounts)
{
    Simulator sim;
    sim.run(100);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilPredicate)
{
    Simulator sim;
    bool ok = sim.runUntil([&] { return sim.now() >= 10; }, 1000);
    EXPECT_TRUE(ok);
    EXPECT_EQ(sim.now(), 10u);
    ok = sim.runUntil([] { return false; }, 5);
    EXPECT_FALSE(ok);
}

TEST(Simulator, RunUntilCheckIntervalBurstsAndOvershoots)
{
    // With check_interval=10 the predicate runs before each burst of
    // 10 cycles: done-at-5 is noticed at 10 (documented overshoot).
    Simulator sim;
    int checks = 0;
    bool ok = sim.runUntil(
        [&] {
            ++checks;
            return sim.now() >= 5;
        },
        1000, /*check_interval=*/10);
    EXPECT_TRUE(ok);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(checks, 2);

    // The burst never runs past max_cycles.
    ok = sim.runUntil([] { return false; }, 15, /*check_interval=*/10);
    EXPECT_FALSE(ok);
    EXPECT_EQ(sim.now(), 25u);
}

TEST(Simulator, ProfilerSurvivesLateRegistration)
{
    // Regression test: the per-component phase cache used to be built
    // lazily from a stale size, so registering a component after the
    // first profiled step indexed out of bounds. add() now grows the
    // cache eagerly, keeping it in lockstep with the component list.
    Simulator sim;
    telemetry::PhaseProfiler prof;
    std::vector<std::string> log;
    PhaseProbe p1(log, "1");
    sim.add(&p1);
    sim.bindProfiler(&prof);
    sim.step();

    PhaseProbe p2(log, "2");
    sim.add(&p2);
    sim.step();
    EXPECT_EQ(log, (std::vector<std::string>{"e1", "a1", "e1", "e2",
                                             "a1", "a2"}));
}

TEST(Simulator, EventsFireBeforeComponents)
{
    Simulator sim;
    std::vector<std::string> log;
    PhaseProbe p(log, "c");
    sim.add(&p);
    sim.events().schedule(0, [&](Cycle) { log.push_back("ev"); });
    sim.step();
    ASSERT_GE(log.size(), 1u);
    EXPECT_EQ(log[0], "ev");
}
